# Convenience targets for the eMPTCP reproduction.

PY ?= python

.PHONY: install test check lint bench bench-smoke bench-verbose trace-smoke packet-smoke perf-smoke fleet-smoke service-smoke obs-smoke report report-paper examples clean

install:
	$(PY) -m pip install -e . || $(PY) setup.py develop

test: check trace-smoke packet-smoke perf-smoke fleet-smoke service-smoke obs-smoke
	PYTHONPATH=src $(PY) -m pytest tests/

check:  ## static tiers: lint + dataflow vs baselines + config verification
	PYTHONPATH=src $(PY) -m repro.cli check lint
	PYTHONPATH=src $(PY) -m repro.cli check dataflow
	PYTHONPATH=src $(PY) -m repro.cli check config
	@command -v ruff >/dev/null 2>&1 \
		&& ruff check src tests \
		|| echo "ruff not installed; skipping (CI runs it)"
	@command -v mypy >/dev/null 2>&1 \
		&& mypy \
		|| echo "mypy not installed; skipping (CI runs it)"

lint: check

trace-smoke:  ## one traced smoke run; the exported JSONL must validate
	rm -rf .trace-smoke
	PYTHONPATH=src $(PY) -m repro.cli fig6 --runs 1 --size-mb 2 --trace \
		--metrics --no-progress --cache-dir .trace-smoke > /dev/null
	PYTHONPATH=src $(PY) -m repro.cli trace validate .trace-smoke/obs
	PYTHONPATH=src $(PY) -m repro.cli check trace .trace-smoke/obs
	PYTHONPATH=src $(PY) -m repro.cli trace summarize .trace-smoke/obs
	rm -rf .trace-smoke

packet-smoke:  ## emptcp end-to-end on the packet engine, traced + cached
	rm -rf .packet-smoke
	PYTHONPATH=src $(PY) -m repro.cli run emptcp good --engine packet \
		--runs 1 --size-mb 2 --trace --cache --cache-dir .packet-smoke \
		--manifest .packet-smoke/manifest.jsonl --no-progress > /dev/null
	test -s .packet-smoke/manifest.jsonl
	PYTHONPATH=src $(PY) -m repro.cli check trace .packet-smoke/obs
	PYTHONPATH=src $(PY) -m repro.cli validate --size-mb 2 --no-progress
	rm -rf .packet-smoke

perf-smoke:  ## tiny bench record, self-compare (0 regressions), profiler table
	rm -rf .perf-smoke && mkdir -p .perf-smoke
	PYTHONPATH=src $(PY) -m repro.cli perf record --size-mb 2 --runs 2 \
		--output .perf-smoke/bench.json 2> /dev/null
	PYTHONPATH=src $(PY) -m repro.cli check perf .perf-smoke/bench.json
	PYTHONPATH=src $(PY) -m repro.cli perf compare \
		.perf-smoke/bench.json .perf-smoke/bench.json
	PYTHONPATH=src $(PY) -m repro.cli perf profile emptcp good --size-mb 2
	PYTHONPATH=src $(PY) -c "from repro.runtime.bench import \
		format_overhead, profiling_overhead; \
		print(format_overhead(profiling_overhead(4.0)))"
	rm -rf .perf-smoke

fleet-smoke:  ## 1k-session flow-tier fleet under a time budget, obs-sampled
	rm -rf .fleet-smoke && mkdir -p .fleet-smoke
	timeout 120 env PYTHONPATH=src $(PY) -m repro.cli fleet run \
		--sessions 1000 --duration-s 60 --trace \
		--obs-dir .fleet-smoke/obs --no-progress
	PYTHONPATH=src $(PY) -m repro.cli trace validate .fleet-smoke/obs
	PYTHONPATH=src $(PY) -m repro.cli fleet sweep 100 1000 --duration-s 20 \
		--no-progress > /dev/null
	timeout 120 env PYTHONPATH=src $(PY) -m repro.cli validate \
		--engine flow --size-mb 2 --no-progress
	rm -rf .fleet-smoke

service-smoke:  ## HTTP service round trip: warm resubmit must be all hits
	rm -rf .service-smoke
	timeout 180 env PYTHONPATH=src $(PY) -m repro.cli service smoke \
		--cache-dir .service-smoke --size-mb 1 --jobs 2
	rm -rf .service-smoke

obs-smoke:  ## distributed-trace loop: sweep over HTTP, scrape /v1/metrics, reassemble + CHK7xx
	rm -rf .obs-smoke
	timeout 180 env PYTHONPATH=src $(PY) -m repro.cli service obs-smoke \
		--cache-dir .obs-smoke --size-mb 2 --jobs 2
	PYTHONPATH=src $(PY) -m repro.cli trace tree .obs-smoke/obs > /dev/null
	PYTHONPATH=src $(PY) -m repro.cli check trace .obs-smoke/obs
	rm -rf .obs-smoke

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-verbose:  ## print every figure's rows
	$(PY) -m pytest benchmarks/ --benchmark-only -s

bench-smoke:  ## smoke-scale report through the parallel runtime
	PYTHONPATH=src $(PY) -m repro.cli report --scale smoke --jobs 2 \
		--output SMOKE_REPORT.md

report:  ## full evaluation at default scale -> REPORT.md
	$(PY) -m repro.cli report --scale default --output REPORT.md

report-paper:  ## paper-scale evaluation (256 MB x 10 runs)
	$(PY) -m repro.cli report --scale paper --output REPORT.md

examples:
	for f in examples/*.py; do echo "== $$f"; $(PY) $$f || exit 1; done

clean:
	rm -rf .pytest_cache .benchmarks build *.egg-info src/*.egg-info .trace-smoke .packet-smoke .perf-smoke .fleet-smoke .service-smoke .obs-smoke
	find . -name __pycache__ -type d -exec rm -rf {} +
