"""Figure 4 — operating region where MPTCP is the most energy-efficient
way to complete an entire transfer (1, 4, 16 MB)."""

from conftest import banner, once

from repro.experiments.regions import figure4_regions


def test_fig04_regions(benchmark):
    regions = once(benchmark, figure4_regions)
    banner("Figure 4: MPTCP-best operating regions by download size")
    for label, bounds in regions.items():
        area = sum(hi - lo for lo, hi in bounds.values())
        print(f"  {label}: rows with a region = {len(bounds)}, "
              f"total WiFi-span = {area:.2f} Mbps")
        for lte_rate in sorted(bounds)[:6]:
            lo, hi = bounds[lte_rate]
            print(f"    LTE {lte_rate:5.2f} -> WiFi [{lo:.2f}, {hi:.2f}]")

    def row_count(label):
        return len(regions[label])

    def span(label):
        return sum(hi - lo for lo, hi in regions[label].values())

    # The paper's nesting: larger downloads amortise the cellular fixed
    # overhead, so the region grows with size.
    assert span("1MB") <= span("4MB") <= span("16MB")
    assert row_count("16MB") >= row_count("4MB") >= row_count("1MB")
    assert row_count("16MB") > 0
