"""Micro-benchmarks of the simulation engines themselves.

Unlike the figure benches (macro, single-shot), these measure wall-time
throughput of the substrate — useful to catch performance regressions
when extending the simulator.
"""

import random

from repro.net.bandwidth import ConstantCapacity
from repro.packet.link import PacketLink
from repro.packet.mptcp import single_path_connection
from repro.sim.engine import Simulator
from repro.tcp.connection import FiniteSource, TcpConnection
from repro.units import mbps_to_bytes_per_sec, mib


def test_perf_event_loop(benchmark):
    """Raw event scheduling/dispatch throughput (50k events)."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 50_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 50_000


def test_perf_fluid_download(benchmark):
    """One 64 MiB fluid download (thousands of TCP rounds)."""

    def run():
        sim = Simulator()
        from repro.net.interface import InterfaceKind, NetworkInterface
        from repro.net.path import NetworkPath

        path = NetworkPath(
            NetworkInterface(InterfaceKind.WIFI),
            ConstantCapacity(mbps_to_bytes_per_sec(10.0)),
            base_rtt=0.02,
        )
        path.attach(sim)
        source = FiniteSource(mib(64))
        conn = TcpConnection(sim, path, source, rng=random.Random(0))
        conn.connect()
        sim.run(until=200.0)
        return source.exhausted

    assert benchmark(run)


def test_perf_packet_download(benchmark):
    """One 4 MiB packet-level download (~3k segments + ACK events)."""

    def run():
        sim = Simulator()
        link = PacketLink(
            sim,
            ConstantCapacity(mbps_to_bytes_per_sec(10.0)),
            one_way_delay=0.02,
            rng=random.Random(0),
        )
        conn = single_path_connection(sim, link, FiniteSource(mib(4)))
        conn.open()
        sim.run(until=60.0, max_events=20_000_000)
        return conn.completed_at is not None

    assert benchmark(run)
