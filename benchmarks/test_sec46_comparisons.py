"""§4.6 — comparison with existing approaches: MPTCP with WiFi-First
(Raiciu et al.) and the MDP scheduler (Pluntke et al.)."""

from conftest import banner, once

from repro.analysis.stats import mean
from repro.baselines.mdp import MdpAction
from repro.experiments.comparisons import (
    mdp_policy_actions,
    run_mobility_comparison,
)


def test_sec46_mdp_policy_collapses_to_wifi(benchmark):
    actions = once(benchmark, mdp_policy_actions)
    banner("§4.6: actions the generated MDP policy ever chooses")
    print("  ", [a.value for a in actions])
    # "We observe that the generated MDP schedulers choose WiFi-only
    # for all scenarios" — LTE per-second power never drops below WiFi.
    assert actions == [MdpAction.WIFI]


def test_sec46_mobility_comparison(benchmark):
    results = once(benchmark, lambda: run_mobility_comparison(runs=3))
    banner("§4.6: all five strategies on the mobility walk (250 s x 3)")
    print(f"{'protocol':12s} {'energy (J)':>11} {'downloaded MB':>14} "
          f"{'uJ/bit':>8}")
    rows = {}
    for protocol, runs in results.items():
        energy = mean([r.energy_j for r in runs])
        data = mean([r.bytes_received for r in runs])
        jpb = mean([r.joules_per_bit for r in runs]) * 1e6
        rows[protocol] = (energy, data, jpb)
        print(f"{protocol:12s} {energy:11.1f} {data / 1e6:14.1f} {jpb:8.3f}")

    # WiFi-First never activates its LTE backup (the association never
    # breaks), so it degenerates into TCP over WiFi — but pays the
    # backup subflow's promotion/tail at establishment.
    wf_energy, wf_data, _ = rows["wifi-first"]
    tw_energy, tw_data, _ = rows["tcp-wifi"]
    assert wf_data == mean([r.bytes_received for r in results["tcp-wifi"]])
    assert wf_energy > tw_energy
    # The MDP scheduler chose WiFi-only everywhere: same bytes as TCP
    # over WiFi ("same energy performance (and limitations)").
    assert rows["mdp"][1] == tw_data
    # eMPTCP downloads substantially more than any WiFi-only strategy.
    assert rows["emptcp"][1] > 1.1 * tw_data
