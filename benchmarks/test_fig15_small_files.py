"""Figure 15 — small file transfers in the wild (256 KB)."""

from conftest import banner, once

from repro.experiments.wild import SMALL_BYTES, collect_traces, whiskers_by_category


def _print_whiskers(summaries, unit):
    for category, by_protocol in summaries.items():
        print(f"  {category.value}")
        for protocol, w in by_protocol.items():
            print(
                f"    {protocol:10s} Q1={w.q1:8.2f} med={w.median:8.2f} "
                f"Q3={w.q3:8.2f} {unit}  outliers={len(w.outliers)}"
            )


def test_fig15_small_transfers(benchmark):
    traces = once(
        benchmark, lambda: collect_traces(SMALL_BYTES, n_environments=24)
    )
    banner("Figure 15: small file transfers (256 KB, 24 wild envs)")
    energy = whiskers_by_category(traces, "energy_j")
    print("-- energy (J)")
    _print_whiskers(energy, "J")
    times = whiskers_by_category(traces, "download_time")
    print("-- download time (s)")
    _print_whiskers(times, "s")

    # In every populated category eMPTCP's median energy sits with TCP
    # over WiFi, far below MPTCP (paper: 75-90% less).
    for category, by_protocol in energy.items():
        emptcp = by_protocol["emptcp"].median
        mptcp = by_protocol["mptcp"].median
        wifi = by_protocol["tcp-wifi"].median
        assert emptcp < 0.35 * mptcp, category
        assert abs(emptcp - wifi) < 0.3 * wifi + 0.5, category
    # Download times are statistically similar to MPTCP's (the Bad-WiFi
    # categories show the widest spread, as in the paper's whiskers).
    for category, by_protocol in times.items():
        assert by_protocol["emptcp"].median <= by_protocol["mptcp"].median * 1.8
