"""Figure 8 — random WiFi bandwidth changes: mean ± SEM over repeated
runs (paper: 10 runs of a 256 MB download)."""

from conftest import banner, once

from repro.analysis.report import print_protocol_summary, relative_to
from repro.analysis.stats import mean
from repro.experiments.random_bw import run_random_bw
from repro.units import mib


def test_fig08_random_bw(benchmark):
    results = once(
        benchmark, lambda: run_random_bw(runs=5, download_bytes=mib(256))
    )
    banner("Figure 8: Random WiFi Bandwidth Changes (256 MiB x 5 runs)")
    print(print_protocol_summary("", results))
    rel_energy = relative_to(results, "mptcp", "energy_j")
    rel_time = relative_to(results, "mptcp", "download_time")
    print("relative to MPTCP: "
          + ", ".join(f"{p}: E={rel_energy[p]:.2f} t={rel_time[p]:.2f}"
                      for p in results))

    energy = {p: mean([r.energy_j for r in rs]) for p, rs in results.items()}
    time = {p: mean([r.download_time for r in rs]) for p, rs in results.items()}
    # Paper: eMPTCP ~8% below MPTCP, ~6% below TCP/WiFi (we reproduce
    # the MPTCP saving and land at parity vs TCP/WiFi).
    assert energy["emptcp"] < energy["mptcp"]
    assert energy["emptcp"] <= 1.05 * energy["tcp-wifi"]
    # Paper: eMPTCP ~22% slower than MPTCP, ~2x faster than TCP/WiFi.
    assert time["mptcp"] < time["emptcp"] < time["tcp-wifi"]
    assert time["tcp-wifi"] > 1.5 * time["emptcp"]
