"""Figure 13 — mobility: per-byte energy and download amount."""

from conftest import banner, once

from repro.analysis.stats import mean, sem
from repro.experiments.mobility import run_mobility


def test_fig13_mobility_comparison(benchmark):
    results = once(benchmark, lambda: run_mobility(runs=5))
    banner("Figure 13: mobility — J/bit and downloaded bytes (250 s x 5)")
    print(f"{'protocol':10s} {'uJ/bit':>14} {'downloaded MB':>16}")
    for protocol, runs in results.items():
        jpb = [r.joules_per_bit * 1e6 for r in runs]
        data = [r.bytes_received / 1e6 for r in runs]
        print(
            f"{protocol:10s} {mean(jpb):8.3f}±{sem(jpb):4.3f} "
            f"{mean(data):10.1f}±{sem(data):5.1f}"
        )

    jpb = {p: mean([r.joules_per_bit for r in rs]) for p, rs in results.items()}
    data = {p: mean([r.bytes_received for r in rs]) for p, rs in results.items()}
    # Paper: eMPTCP's per-byte energy ~22% below MPTCP's and ~8-15%
    # above TCP over WiFi's.
    assert jpb["tcp-wifi"] < jpb["emptcp"] < jpb["mptcp"]
    assert jpb["emptcp"] < 0.95 * jpb["mptcp"]
    assert jpb["emptcp"] < 1.35 * jpb["tcp-wifi"]
    # Paper: MPTCP downloads ~33% more than eMPTCP, which downloads
    # ~28% more than TCP over WiFi.
    assert data["tcp-wifi"] < data["emptcp"] < data["mptcp"]
    assert data["emptcp"] > 1.1 * data["tcp-wifi"]
