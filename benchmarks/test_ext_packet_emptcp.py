"""Extension bench: the Figure 5/6 headline shapes regenerated on the
segment-level transport engine — the eMPTCP control plane (predictor,
EIB, controller, delayed establishment) is engine-agnostic."""

import pytest
from conftest import banner, once

from repro.packet.emptcp import run_packet_protocol
from repro.units import mib

PROTOCOLS = ("mptcp", "emptcp", "tcp-wifi")


def test_ext_packet_level_fig5(benchmark):
    results = once(
        benchmark,
        lambda: {p: run_packet_protocol(p, 12.0, 10.0, mib(16)) for p in PROTOCOLS},
    )
    banner("Packet-level Figure 5: static good WiFi (16 MiB)")
    for protocol, (t, e) in results.items():
        print(f"  {protocol:9s} t={t:6.2f} s  E={e:6.2f} J")
    energy = {p: e for p, (_t, e) in results.items()}
    times = {p: t for p, (t, _e) in results.items()}
    assert energy["emptcp"] == pytest.approx(energy["tcp-wifi"], rel=0.05)
    assert energy["mptcp"] > 1.3 * energy["emptcp"]
    assert times["mptcp"] < times["emptcp"]


def test_ext_packet_level_fig6(benchmark):
    results = once(
        benchmark,
        lambda: {p: run_packet_protocol(p, 0.8, 10.0, mib(8)) for p in PROTOCOLS},
    )
    banner("Packet-level Figure 6: static bad WiFi (8 MiB)")
    for protocol, (t, e) in results.items():
        print(f"  {protocol:9s} t={t:6.2f} s  E={e:6.2f} J")
    energy = {p: e for p, (_t, e) in results.items()}
    times = {p: t for p, (t, _e) in results.items()}
    assert energy["emptcp"] == pytest.approx(energy["mptcp"], rel=0.25)
    assert times["emptcp"] < 2.0 * times["mptcp"]
    assert times["tcp-wifi"] > 4 * times["mptcp"]
