"""Table 1 — mobile device specifications."""

from conftest import banner, once

from repro.experiments.overheads import table1_rows


def test_table1_devices(benchmark):
    rows = once(benchmark, table1_rows)
    banner("Table 1: Mobile Devices")
    for row in rows:
        for key, value in row.items():
            print(f"  {key:16s} {value}")
        print()
    assert {r["Name"] for r in rows} == {"Samsung Galaxy S3", "LG Nexus 5"}
    assert all(r["WiFi chipset"].startswith("Broadcom") for r in rows)
