"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it
runs the corresponding experiment once (``benchmark.pedantic`` with one
round — these are macro-benchmarks, not micro-timings), prints the same
rows/series the paper reports (run pytest with ``-s`` to see them), and
asserts the headline shape.

Sizes and repetition counts are scaled down where the paper used 256 MB
x 5-10 runs; the CLI (``emptcp-repro``) accepts paper-scale parameters.
"""

from __future__ import annotations


def once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def banner(title: str) -> None:
    """Print a figure banner."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
