"""Figures 11 & 12 — the mobility route and the accumulated-energy
traces of one walk."""

from conftest import banner, once

from repro.experiments.mobility import example_traces, mobility_capacity_trace
from repro.units import bytes_per_sec_to_mbps
from repro.workloads.mobility import (
    DEFAULT_AP_POSITION,
    DEFAULT_USABLE_RANGE,
    default_route,
)


def test_fig11_route_definition(benchmark):
    trace = once(benchmark, mobility_capacity_trace)
    route = default_route()
    banner("Figure 11: mobility route (UMass CS building analogue)")
    print(f"AP at {DEFAULT_AP_POSITION}, usable range {DEFAULT_USABLE_RANGE} m, "
          f"route duration {route.duration:.0f} s")
    rates = [bytes_per_sec_to_mbps(r) for _t, r in trace]
    in_range = sum(1 for r in rates if r > 4.0) / len(rates)
    print(f"WiFi rate: min {min(rates):.2f}, max {max(rates):.2f} Mbps; "
          f"{in_range:.0%} of samples above 4 Mbps")
    # The route is mostly in range with clear out-of-range excursions.
    assert 0.5 < in_range < 0.95
    assert max(rates) > 15.0
    assert min(rates) < 0.5


def test_fig12_mobility_energy_traces(benchmark):
    traces = once(benchmark, example_traces)
    banner("Figure 12: accumulated energy over the 250 s walk")
    print("time(s)  " + "  ".join(f"{p:>9s}" for p in traces))
    for t in range(0, 251, 25):
        row = []
        for result in traces.values():
            series = result.energy_series
            row.append(f"{series.value_at(min(t, series.times[-1])):9.1f}")
        print(f"{t:7d}  " + "  ".join(row))

    energy = {p: r.energy_j for p, r in traces.items()}
    # Figure 12's slopes: TCP/WiFi < eMPTCP < MPTCP.
    assert energy["tcp-wifi"] < energy["emptcp"] < energy["mptcp"]
    # eMPTCP used LTE only during the out-of-range excursions: its LTE
    # bytes are a fraction of MPTCP's.
    assert (
        traces["emptcp"].diagnostics["lte_bytes"]
        < traces["mptcp"].diagnostics["lte_bytes"]
    )
