"""Extension bench: sensitivity of eMPTCP's tuning knobs.

§4.1: "While these values have worked well for our experiments,
refining them to improve performance remains a subject for future
work."  This bench does that refinement study: each knob is swept over
the scenario that stresses it.
"""

from conftest import banner, once

from repro.experiments.random_bw import random_bw_scenario
from repro.experiments.sensitivity import (
    format_sweep,
    sweep_kappa,
    sweep_safety_factor,
    sweep_tau,
)
from repro.experiments.wild import environment_scenario
from repro.net.host import WILD_SERVERS
from repro.units import mib
from repro.workloads.wild import CLIENT_SITES, WildEnvironment


def _bad_wifi_scenario(size=mib(32)):
    env = WildEnvironment(
        site=CLIENT_SITES["campus"],
        server=WILD_SERVERS["WDC"],
        wifi_mbps=1.5,
        lte_mbps=10.0,
    )
    return environment_scenario(env, size, fluctuating=False)


def test_ext_sensitivity_kappa(benchmark):
    points = once(benchmark, lambda: sweep_kappa(_bad_wifi_scenario(), runs=2))
    banner("Sensitivity: kappa on a 32 MiB bad-WiFi download")
    print(format_sweep(points))
    # On genuinely bad WiFi, every kappa eventually reaches LTE (via
    # kappa or tau) — the knob shifts *when*, so download time grows
    # (weakly) with kappa.
    assert all(p.cell_established_frac == 1.0 for p in points)
    times = [p.download_time for p in points]
    assert times == sorted(times) or max(times) - min(times) < 0.2 * min(times)


def test_ext_sensitivity_tau(benchmark):
    points = once(benchmark, lambda: sweep_tau(_bad_wifi_scenario(), runs=2))
    banner("Sensitivity: tau on a 32 MiB bad-WiFi download")
    print(format_sweep(points))
    # Larger tau delays the LTE join on bad WiFi -> longer downloads.
    assert points[0].download_time <= points[-1].download_time
    assert all(p.cell_established_frac == 1.0 for p in points)


def test_ext_sensitivity_safety_factor(benchmark):
    points = once(
        benchmark,
        lambda: sweep_safety_factor(
            random_bw_scenario(download_bytes=mib(64)), runs=2
        ),
    )
    banner("Sensitivity: safety factor under random WiFi bandwidth")
    print(format_sweep(points))
    # Hysteresis reduces controller churn monotonically-ish: the widest
    # factor must switch no more than the zero factor.
    assert points[-1].decision_switches <= points[0].decision_switches
