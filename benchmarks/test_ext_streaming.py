"""Extension bench (§7 future work): video streaming.

A 2.5 Mbps, 120 s stream over on/off WiFi.  The buffer-driven fetch
pattern is bursty, so always-on MPTCP keeps refreshing the LTE tail for
chunks WiFi could have carried; eMPTCP uses LTE only when WiFi cannot
sustain the bitrate.  TCP over WiFi saves the most energy but rebuffers.
"""

from conftest import banner, once

from repro.analysis.stats import mean
from repro.experiments.streaming import run_streaming_comparison


def test_ext_streaming(benchmark):
    results = once(benchmark, lambda: run_streaming_comparison(runs=3))
    banner("Extension: 2.5 Mbps video stream, on/off WiFi (3 runs)")
    print(f"{'protocol':10s} {'energy':>9} {'stalls':>7} {'stall time':>11} "
          f"{'startup':>8}")
    stats = {}
    for protocol, runs in results.items():
        stats[protocol] = {
            "energy": mean([r.energy_j for r in runs]),
            "stalls": mean([float(r.rebuffer_events) for r in runs]),
            "stall_time": mean([r.rebuffer_time for r in runs]),
            "startup": mean([r.startup_delay for r in runs]),
        }
        s = stats[protocol]
        print(f"{protocol:10s} {s['energy']:8.1f}J {s['stalls']:7.1f} "
              f"{s['stall_time']:10.1f}s {s['startup']:7.2f}s")

    # Quality: eMPTCP streams as smoothly as MPTCP; WiFi-only stalls.
    assert stats["emptcp"]["stall_time"] <= stats["mptcp"]["stall_time"] + 1.0
    assert stats["tcp-wifi"]["stall_time"] > stats["emptcp"]["stall_time"]
    # Energy: eMPTCP undercuts always-on MPTCP.
    assert stats["emptcp"]["energy"] < stats["mptcp"]["energy"]
    # Every protocol finishes the video within the window.
    for runs in results.values():
        assert all(r.finished for r in runs)
