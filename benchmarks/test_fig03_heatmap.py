"""Figure 3 — per-byte energy efficiency heat map (MPTCP / best single)."""

from conftest import banner, once

from repro.experiments.regions import figure3_heatmap


def test_fig03_heatmap(benchmark):
    wifi, lte, grid = once(benchmark, lambda: figure3_heatmap(step=0.5))
    banner("Figure 3: per-byte energy of MPTCP / best single path "
           "(< 1 means the dark 'V'; 2 Mbps grid shown)")
    shown = [i for i, w in enumerate(wifi) if abs(w % 2.0) < 1e-9]
    print("LTE\\WiFi " + " ".join(f"{wifi[i]:5.0f}" for i in shown))
    for row_idx in shown:
        cells = " ".join(f"{grid[row_idx][i]:5.2f}" for i in shown)
        print(f"{lte[row_idx]:8.0f} {cells}")

    flat = [v for row in grid for v in row]
    # The "V" exists and both single-path regions exist.
    assert min(flat) < 1.0
    assert max(flat) > 1.0
    # Right side (fast WiFi, modest LTE): WiFi-only wins -> ratio > 1.
    i_wifi_10 = wifi.index(10.0)
    i_lte_2 = lte.index(2.0)
    assert grid[i_lte_2][i_wifi_10] > 1.0
    # Inside the V (Table 2's BOTH region): ratio < 1.
    i_wifi_half = wifi.index(0.5)
    i_lte_1 = lte.index(1.0)
    assert grid[i_lte_1][i_wifi_half] < 1.0
