"""Figure 14 — categorisation of in-the-wild traces at the 8 Mbps
good/bad boundary."""

from conftest import banner, once

from repro.analysis.categorize import Category
from repro.experiments.wild import LARGE_BYTES, collect_traces, scatter_points


def test_fig14_trace_categories(benchmark):
    traces = once(
        benchmark,
        lambda: collect_traces(
            LARGE_BYTES, n_environments=24, protocols=("mptcp",)
        ),
    )
    points = scatter_points(traces)
    banner("Figure 14: wild trace categories (16 MiB downloads, 24 envs)")
    counts = {}
    for point in points:
        counts[point["category"]] = counts.get(point["category"], 0) + 1
    for category, count in sorted(counts.items()):
        print(f"  {category:22s} {count:3d} traces")
    print("  sample points (WiFi, LTE Mbps):")
    for point in points[:8]:
        print(f"    ({point['wifi_mbps']:5.2f}, {point['lte_mbps']:5.2f}) "
              f"-> {point['category']}")

    # All four quadrants are populated (the paper's scatter spans both
    # axes from ~0 to ~25 Mbps).
    assert set(counts) == {c.value for c in Category}
    wifi_vals = [p["wifi_mbps"] for p in points]
    lte_vals = [p["lte_mbps"] for p in points]
    assert max(wifi_vals) > 10 and min(wifi_vals) < 6
    assert max(lte_vals) > 10 and min(lte_vals) < 6
