"""Figure 6 — static bad WiFi (<1 Mbps)."""

import pytest
from conftest import banner, once

from repro.analysis.report import print_protocol_summary
from repro.analysis.stats import mean
from repro.experiments.static_bw import run_static
from repro.units import mib


def test_fig06_static_bad_wifi(benchmark):
    results = once(
        benchmark, lambda: run_static(False, runs=3, download_bytes=mib(64))
    )
    banner("Figure 6: Static Bad WiFi (64 MiB x 3 runs)")
    print(print_protocol_summary("", results))

    energy = {p: mean([r.energy_j for r in rs]) for p, rs in results.items()}
    time = {p: mean([r.download_time for r in rs]) for p, rs in results.items()}
    # eMPTCP behaves like MPTCP (after the kappa/tau LTE startup delay).
    assert energy["emptcp"] == pytest.approx(energy["mptcp"], rel=0.25)
    assert time["emptcp"] == pytest.approx(time["mptcp"], rel=0.35)
    # TCP over WiFi is an order of magnitude slower.
    assert time["tcp-wifi"] > 5 * time["mptcp"]
    # And the LTE subflow was indeed delayed by ~tau.
    delay = results["emptcp"][0].diagnostics["cell_established_at"]
    assert delay == pytest.approx(3.0, abs=1.0)
