"""Extension bench: cross-model validation (fluid vs packet engines).

Runs matched scenarios through both transport engines and prints the
agreement table — the evidence that the fluid model underlying every
reproduced figure tracks a segment-level implementation.
"""

from conftest import banner, once

from repro.net.interface import InterfaceKind
from repro.check.packet import (
    PathSpec,
    compare_onoff_single_path,
    compare_single_path,
    fluid_mptcp_time,
    hol_goodput_collapse,
    packet_mptcp_time,
)
from repro.units import mib


def test_ext_validation_single_path(benchmark):
    specs = [
        ("wifi-good 12Mbps/40ms", PathSpec(12.0, 0.04)),
        ("wifi-bad 0.8Mbps/50ms", PathSpec(0.8, 0.05)),
        ("lte 10Mbps/70ms", PathSpec(10.0, 0.07, kind=InterfaceKind.LTE)),
        ("high-rtt 6Mbps/200ms", PathSpec(6.0, 0.20)),
        ("lossy 12Mbps/40ms/0.5%", PathSpec(12.0, 0.04, loss=0.005)),
    ]
    results = once(
        benchmark, lambda: compare_single_path(specs, size_bytes=mib(4))
    )
    banner("Validation: single-path completion time, fluid vs packet (4 MiB)")
    print(f"{'path':26s} {'fluid':>8} {'packet':>8} {'ratio':>7}")
    for c in results:
        print(f"{c.label:26s} {c.fluid_time:7.2f}s {c.packet_time:7.2f}s "
              f"{c.ratio:7.2f}")
    for c in results:
        if c.label.startswith("lossy"):
            # Known divergence: the fluid engine is optimistic on short
            # lossy transfers (slow-start transient; steady state agrees
            # with the Reno formula — see docs/MODEL.md).
            assert 0.35 < c.ratio <= 1.1, c.label
        else:
            assert 0.85 < c.ratio < 1.15, c.label


def test_ext_validation_onoff_modulation(benchmark):
    """The §4.3 on/off WiFi condition, paired sample paths."""
    results = once(
        benchmark, lambda: compare_onoff_single_path(size_bytes=mib(32))
    )
    banner("Validation: on/off WiFi modulation (32 MiB), fluid vs packet")
    for c in results:
        print(f"  {c.label:16s} fluid={c.fluid_time:7.1f}s "
              f"packet={c.packet_time:7.1f}s ratio={c.ratio:.2f}")
    for c in results:
        assert 0.9 < c.ratio < 1.1, c.label


def test_ext_validation_mptcp_and_hol(benchmark):
    specs = [
        PathSpec(8.0, 0.04),
        PathSpec(6.0, 0.07, kind=InterfaceKind.LTE),
    ]

    def run():
        fluid = fluid_mptcp_time(specs, mib(8))
        by_buffer = {
            buf: packet_mptcp_time(specs, mib(8), rcv_buffer=buf)[0]
            for buf in (128_000.0, 256_000.0, 512_000.0, 2_000_000.0)
        }
        hol = hol_goodput_collapse()
        return fluid, by_buffer, hol

    fluid, by_buffer, (alone, together) = once(benchmark, run)
    banner("Validation: MPTCP aggregation and head-of-line blocking")
    print(f"fluid MPTCP (8 MiB over 8+6 Mbps): {fluid:6.2f} s")
    for buf, t in sorted(by_buffer.items()):
        print(f"packet MPTCP, rcv_buffer={buf / 1000:6.0f} KB:  {t:6.2f} s")
    print(f"HoL pathology: fast path alone {alone:.2f} s vs MPTCP with a "
          f"slow laggy path + 64 KB buffer {together:.2f} s")

    # The fluid model's scheduler-utilization corresponds to the
    # constrained-receive-buffer regime of the packet engine.
    assert by_buffer[512_000.0] < fluid < by_buffer[128_000.0]
    # The Bad/Bad mechanism exists at packet level: adding a bad path
    # can make MPTCP slower than the good path alone.
    assert together > alone
