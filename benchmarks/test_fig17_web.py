"""Figure 17 — web browsing case study (CNN-like page, 107 objects,
6 parallel persistent connections)."""

from conftest import banner, once

from repro.analysis.stats import mean, sem
from repro.experiments.web import run_web_comparison


def test_fig17_web_browsing(benchmark):
    results = once(benchmark, lambda: run_web_comparison(runs=5))
    banner("Figure 17: Web browsing (107 objects, 6 connections, 5 loads)")
    print(f"{'protocol':10s} {'energy (J)':>16} {'latency (s)':>16} {'LTE KB':>8}")
    for protocol, runs in results.items():
        energy = [r.energy_j for r in runs]
        latency = [r.latency for r in runs]
        lte = mean([r.lte_bytes for r in runs]) / 1e3
        print(
            f"{protocol:10s} {mean(energy):9.2f}±{sem(energy):4.2f} "
            f"{mean(latency):10.2f}±{sem(latency):4.2f} {lte:8.1f}"
        )

    energy = {p: mean([r.energy_j for r in rs]) for p, rs in results.items()}
    latency = {p: mean([r.latency for r in rs]) for p, rs in results.items()}
    # Paper: MPTCP consumes ~60% more energy than eMPTCP / TCP over
    # WiFi; eMPTCP's latency is statistically the same as MPTCP's.
    assert energy["mptcp"] > 1.4 * energy["emptcp"]
    assert abs(energy["emptcp"] - energy["tcp-wifi"]) < 0.25 * energy["tcp-wifi"]
    assert latency["emptcp"] <= 1.35 * latency["mptcp"]
    # eMPTCP never opens the LTE subflow for sub-256 KB objects.
    assert all(r.lte_bytes == 0.0 for r in results["emptcp"])
