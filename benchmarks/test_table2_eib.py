"""Table 2 — Energy Information Base transition thresholds."""

import pytest
from conftest import banner, once

from repro.experiments.regions import TABLE2_PAPER, table2_rows


def test_table2_eib(benchmark):
    rows = once(benchmark, table2_rows)
    banner("Table 2: Energy Information Base (Galaxy S3, LTE)")
    print(f"{'LTE Mbps':>9} {'LTE-only <':>11} {'WiFi-only >=':>13}"
          f" {'paper <':>9} {'paper >=':>9}")
    for entry in rows:
        paper_cell, paper_wifi = TABLE2_PAPER[entry.cell_mbps]
        print(
            f"{entry.cell_mbps:9.1f} {entry.cellular_only_below:11.3f} "
            f"{entry.wifi_only_above:13.3f} {paper_cell:9.3f} {paper_wifi:9.3f}"
        )
    # Shape: thresholds within 30% of the published rows (abs slack for
    # the tiny 0.5-row cellular threshold) and correctly ordered.
    for entry in rows:
        paper_cell, paper_wifi = TABLE2_PAPER[entry.cell_mbps]
        assert entry.wifi_only_above == pytest.approx(paper_wifi, rel=0.30)
        assert entry.cellular_only_below == pytest.approx(
            paper_cell, rel=0.30, abs=0.03
        )
        assert entry.cellular_only_below < entry.wifi_only_above
