"""Figure 9 — example throughput traces with random WiFi background
traffic (n = 2, λ_on = 0.05, λ_off = 0.025)."""

from conftest import banner, once

from repro.experiments.background import example_traces
from repro.units import bytes_per_sec_to_mbps, mib


def test_fig09_background_trace(benchmark):
    traces = once(benchmark, lambda: example_traces(download_bytes=mib(128)))
    banner("Figure 9: throughput traces with background traffic "
           "(n=2, lambda_on=0.05, lambda_off=0.025; 128 MiB)")
    for protocol, result in traces.items():
        print(f"-- {protocol}")
        horizon = int(result.download_time)
        step = max(5, horizon // 12)
        for t in range(0, horizon + 1, step):
            wifi = bytes_per_sec_to_mbps(
                result.wifi_rate_series.value_at(min(t, horizon))
            )
            lte = bytes_per_sec_to_mbps(
                result.cell_rate_series.value_at(min(t, horizon))
            )
            print(f"   t={t:4d}s  WiFi={wifi:5.2f} Mbps  LTE={lte:5.2f} Mbps")

    mptcp, emptcp = traces["mptcp"], traces["emptcp"]
    # MPTCP always keeps LTE active; eMPTCP avoids energy-inefficient
    # path usage, so it moves a small fraction of MPTCP's LTE bytes
    # (none at all when WiFi never degrades below the EIB threshold).
    assert (
        emptcp.diagnostics.get("lte_bytes", 0.0)
        < 0.25 * mptcp.diagnostics["lte_bytes"]
    )
    assert mptcp.diagnostics["mp_prio_events"] == 0
    # MPTCP's min-RTT scheduler does not aggressively shift load onto
    # LTE while WiFi still delivers: LTE stays near/below WiFi's share.
    assert (
        mptcp.diagnostics["lte_bytes"]
        < 1.5 * mptcp.diagnostics["wifi_bytes"]
    )
    # And eMPTCP still beats MPTCP on energy in this trace.
    assert emptcp.energy_j < mptcp.energy_j
