"""Figure 5 — static good WiFi (>10 Mbps)."""

import pytest
from conftest import banner, once

from repro.analysis.report import print_protocol_summary
from repro.analysis.stats import mean
from repro.experiments.static_bw import run_static
from repro.units import mib


def test_fig05_static_good_wifi(benchmark):
    results = once(
        benchmark, lambda: run_static(True, runs=3, download_bytes=mib(64))
    )
    banner("Figure 5: Static Good WiFi (64 MiB x 3 runs)")
    print(print_protocol_summary("", results))

    energy = {p: mean([r.energy_j for r in rs]) for p, rs in results.items()}
    time = {p: mean([r.download_time for r in rs]) for p, rs in results.items()}
    # eMPTCP chooses WiFi-only and matches single-path TCP.
    assert energy["emptcp"] == pytest.approx(energy["tcp-wifi"], rel=0.05)
    assert time["emptcp"] == pytest.approx(time["tcp-wifi"], rel=0.05)
    # MPTCP burns clearly more energy (paper: ~60% more).
    assert energy["mptcp"] > 1.3 * energy["emptcp"]
    # ... for a modest time win.
    assert time["mptcp"] < time["emptcp"]
