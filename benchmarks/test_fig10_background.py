"""Figure 10 — comparison normalised to MPTCP under random WiFi
background traffic for (λ_off, n) in {(0.025, 2), (0.025, 3), (0.05, 3)}."""

from conftest import banner, once

from repro.experiments.background import normalize_to_mptcp, run_background
from repro.units import mib


def test_fig10_background_sweep(benchmark):
    results = once(
        benchmark, lambda: run_background(runs=3, download_bytes=mib(64))
    )
    rows = normalize_to_mptcp(results)
    banner("Figure 10: relative to MPTCP (64 MiB x 3 runs; <100% is better)")
    print(f"{'lambda_off':>10} {'n':>3} {'protocol':10s} {'energy':>8} {'time':>8}")
    for row in rows:
        print(
            f"{row.lambda_off:10.3f} {row.n:3d} {row.protocol:10s} "
            f"{row.energy_pct:7.1f}% {row.time_pct:7.1f}%"
        )

    emptcp_rows = [r for r in rows if r.protocol == "emptcp"]
    wifi_rows = [r for r in rows if r.protocol == "tcp-wifi"]
    # eMPTCP saves energy vs MPTCP in every configuration (paper: 9-11%)
    # at the cost of larger download times (paper: 20-40% larger).
    for row in emptcp_rows:
        assert row.energy_pct < 100.0
        assert 100.0 < row.time_pct < 260.0
    # TCP over WiFi pays with download time under contention — never
    # faster than eMPTCP, and clearly slower in the heavy (n=3,
    # lambda_off=0.025) configuration (paper: up to ~70% slower).
    for e_row, w_row in zip(emptcp_rows, wifi_rows):
        assert w_row.time_pct >= e_row.time_pct * 0.98
    heavy_e = next(r for r in emptcp_rows if r.n == 3 and r.lambda_off == 0.025)
    heavy_w = next(r for r in wifi_rows if r.n == 3 and r.lambda_off == 0.025)
    assert heavy_w.time_pct > 1.25 * heavy_e.time_pct
