"""Figure 16 — large file transfers in the wild (16 MB)."""

from conftest import banner, once

from repro.analysis.categorize import Category
from repro.experiments.wild import LARGE_BYTES, collect_traces, whiskers_by_category


def test_fig16_large_transfers(benchmark):
    traces = once(
        benchmark, lambda: collect_traces(LARGE_BYTES, n_environments=24)
    )
    banner("Figure 16: large file transfers (16 MiB, 24 wild envs)")
    energy = whiskers_by_category(traces, "energy_j")
    times = whiskers_by_category(traces, "download_time")
    for category in energy:
        print(f"  {category.value}")
        for protocol in energy[category]:
            e = energy[category][protocol]
            t = times[category][protocol]
            print(
                f"    {protocol:10s} energy med={e.median:8.2f} J "
                f"[{e.q1:7.2f},{e.q3:7.2f}]  time med={t.median:7.2f} s"
            )

    # Good WiFi categories: eMPTCP uses far less energy than MPTCP
    # (paper: ~50%) and tracks TCP over WiFi.
    for category in (Category.GOOD_BAD, Category.GOOD_GOOD):
        if category not in energy:
            continue
        e = energy[category]
        assert e["emptcp"].median < 0.85 * e["mptcp"].median, category
        assert abs(e["emptcp"].median - e["tcp-wifi"].median) < (
            0.3 * e["tcp-wifi"].median
        ), category
    # Bad WiFi & good LTE: eMPTCP tracks MPTCP, and TCP over WiFi is the
    # clear loser in download time.
    if Category.BAD_GOOD in energy:
        e = energy[Category.BAD_GOOD]
        t = times[Category.BAD_GOOD]
        assert e["emptcp"].median < 1.35 * e["mptcp"].median
        assert t["tcp-wifi"].median > 1.5 * t["mptcp"].median
    # Bad/Bad: the paper reports eMPTCP as the most efficient (~33%
    # below MPTCP); our model reproduces this as close-to-MPTCP rather
    # than a clear win (EXPERIMENTS.md records the deviation), with TCP
    # over WiFi again paying in download time.
    if Category.BAD_BAD in energy:
        e = energy[Category.BAD_BAD]
        t = times[Category.BAD_BAD]
        assert e["emptcp"].median <= 1.25 * e["mptcp"].median
        assert t["tcp-wifi"].median > 1.5 * t["mptcp"].median
