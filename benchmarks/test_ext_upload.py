"""Extension bench (§7 future work): bulk uploads.

Uploads invert the marginal-energy balance — radios transmit at several
times their receive power — so the EIB's WiFi-only region widens and
eMPTCP avoids LTE even harder than for downloads.
"""

import pytest
from conftest import banner, once

from repro.analysis.stats import mean
from repro.experiments.regions import table2_rows
from repro.experiments.upload import run_upload, upload_eib_rows
from repro.units import mib


def test_ext_upload_eib_shift(benchmark):
    rows = once(benchmark, upload_eib_rows)
    down_rows = table2_rows()
    banner("Extension: EIB thresholds, upload vs download direction")
    print(f"{'LTE Mbps':>9} {'WiFi-only >= (down)':>20} {'(up)':>8}")
    for d, u in zip(down_rows, rows):
        print(f"{d.cell_mbps:9.1f} {d.wifi_only_above:20.3f} {u.wifi_only_above:8.3f}")
    for d, u in zip(down_rows, rows):
        # LTE transmit power is expensive: WiFi-only wins earlier.
        assert u.wifi_only_above < d.wifi_only_above


def test_ext_upload_comparison(benchmark):
    def run():
        return {
            "good": run_upload(True, runs=3, upload_bytes=mib(32)),
            "bad": run_upload(False, runs=3, upload_bytes=mib(32)),
        }

    results = once(benchmark, run)
    banner("Extension: 32 MiB uploads (photo/video sync)")
    for label, by_protocol in results.items():
        print(f"-- {label} WiFi")
        for protocol, runs in by_protocol.items():
            print(f"   {protocol:9s} E={mean([r.energy_j for r in runs]):7.1f} J "
                  f"t={mean([r.download_time for r in runs]):7.1f} s")

    good = {p: mean([r.energy_j for r in rs]) for p, rs in results["good"].items()}
    bad = {p: mean([r.energy_j for r in rs]) for p, rs in results["bad"].items()}
    # Good WiFi: eMPTCP == TCP/WiFi, far below MPTCP (the LTE transmit
    # slope makes always-on MPTCP even worse than for downloads).
    assert good["emptcp"] == pytest.approx(good["tcp-wifi"], rel=0.05)
    assert good["mptcp"] > 1.3 * good["emptcp"]
    # Bad WiFi: eMPTCP still brings LTE up because finishing sooner
    # beats crawling on WiFi, paying transmit power for longer.
    bad_t = {
        p: mean([r.download_time for r in rs]) for p, rs in results["bad"].items()
    }
    assert bad_t["emptcp"] < 0.5 * bad_t["tcp-wifi"]
    assert bad["emptcp"] < bad["tcp-wifi"]
