"""Extension bench: the headline results hold across devices (Nexus 5)
and cellular technologies (3G) — the paper evaluates both devices
(Table 1) and shows both technologies' fixed costs (Figure 1)."""

import dataclasses

import pytest
from conftest import banner, once

from repro.analysis.stats import mean
from repro.energy.device import NEXUS_5
from repro.experiments.runner import run_scenario
from repro.experiments.static_bw import static_scenario
from repro.net.interface import InterfaceKind
from repro.units import mib

PROTOCOLS = ("mptcp", "emptcp", "tcp-wifi")


def _run(scenario, protocols=PROTOCOLS, seeds=(0, 1)):
    return {
        p: [run_scenario(p, scenario, seed=s) for s in seeds] for p in protocols
    }


def test_ext_nexus5_good_wifi(benchmark):
    def run():
        scenario = dataclasses.replace(
            static_scenario(True, download_bytes=mib(32)), profile=NEXUS_5
        )
        return _run(scenario)

    results = once(benchmark, run)
    banner("Extension: Figure-5 shape on the LG Nexus 5")
    energy = {p: mean([r.energy_j for r in rs]) for p, rs in results.items()}
    for protocol, e in energy.items():
        print(f"  {protocol:9s} {e:7.1f} J")
    assert energy["emptcp"] == pytest.approx(energy["tcp-wifi"], rel=0.05)
    assert energy["mptcp"] > 1.25 * energy["emptcp"]


def test_ext_threeg_good_wifi(benchmark):
    def run():
        scenario = dataclasses.replace(
            static_scenario(True, download_bytes=mib(32)),
            cell_kind=InterfaceKind.THREEG,
        )
        return _run(scenario)

    results = once(benchmark, run)
    banner("Extension: Figure-5 shape with a 3G cellular interface")
    energy = {p: mean([r.energy_j for r in rs]) for p, rs in results.items()}
    for protocol, e in energy.items():
        print(f"  {protocol:9s} {e:7.1f} J")
    # 3G's smaller fixed overhead shrinks but does not erase the gap.
    assert energy["emptcp"] == pytest.approx(energy["tcp-wifi"], rel=0.05)
    assert energy["mptcp"] > 1.1 * energy["emptcp"]


def test_ext_threeg_bad_wifi(benchmark):
    def run():
        scenario = dataclasses.replace(
            static_scenario(False, download_bytes=mib(32)),
            cell_kind=InterfaceKind.THREEG,
        )
        return _run(scenario)

    results = once(benchmark, run)
    banner("Extension: Figure-6 shape with a 3G cellular interface")
    energy = {p: mean([r.energy_j for r in rs]) for p, rs in results.items()}
    time = {p: mean([r.download_time for r in rs]) for p, rs in results.items()}
    for protocol in results:
        print(f"  {protocol:9s} {energy[protocol]:7.1f} J  {time[protocol]:7.1f} s")
    assert energy["emptcp"] == pytest.approx(energy["mptcp"], rel=0.3)
    assert time["tcp-wifi"] > 4 * time["mptcp"]
