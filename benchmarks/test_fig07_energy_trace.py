"""Figure 7 — accumulated energy consumption under random WiFi
bandwidth changes (one example run, identical bandwidth sample path for
all three protocols)."""

from conftest import banner, once

from repro.experiments.random_bw import example_trace
from repro.units import mib


def test_fig07_energy_trace(benchmark):
    traces = once(benchmark, lambda: example_trace(download_bytes=mib(128)))
    banner("Figure 7: accumulated energy, random WiFi bandwidth (128 MiB)")
    # Print the cumulative-energy series resampled on a 20 s grid.
    horizon = max(r.download_time for r in traces.values())
    grid = [t for t in range(0, int(horizon) + 20, 20)]
    print("time(s)  " + "  ".join(f"{p:>9s}" for p in traces))
    for t in grid:
        row = []
        for result in traces.values():
            series = result.energy_series
            value = series.value_at(min(t, series.times[-1]))
            row.append(f"{value:9.1f}")
        print(f"{t:7d}  " + "  ".join(row))
    for protocol, result in traces.items():
        print(f"{protocol:9s} completes at t={result.download_time:7.1f}s "
              f"with {result.energy_j:7.1f} J")

    # Energy accumulates monotonically and eMPTCP suspends/resumes LTE.
    for result in traces.values():
        assert result.energy_series.values == sorted(result.energy_series.values)
    assert traces["emptcp"].diagnostics["mp_prio_events"] >= 1
    # Completion order: MPTCP < eMPTCP < TCP over WiFi.
    assert (
        traces["mptcp"].download_time
        < traces["emptcp"].download_time
        < traces["tcp-wifi"].download_time
    )
