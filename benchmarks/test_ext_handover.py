"""Extension bench: WiFi dissociation handover (§2.1 modes, Paasch et
al. [21] / Raiciu et al. [28] discussion in §6)."""

from conftest import banner, once

from repro.experiments.handover import run_handover_comparison
from repro.units import mib


def test_ext_handover(benchmark):
    results = once(
        benchmark, lambda: run_handover_comparison(download_bytes=mib(48))
    )
    banner("Extension: 48 MiB download through two 12 s WiFi dissociations")
    print(f"{'strategy':18s} {'time':>8} {'energy':>9} {'LTE MB':>7} {'subflows':>9}")
    for protocol, r in results.items():
        print(f"{protocol:18s} {r.download_time:7.1f}s {r.energy_j:8.1f}J "
              f"{r.lte_bytes / 1e6:7.1f} {r.subflows:9d}")

    # Every strategy survives hard dissociations by reaching LTE.
    for protocol, r in results.items():
        assert r.lte_bytes > 0, protocol
    # Full-MPTCP is the fastest (both subflows always warm).
    fastest = min(results.values(), key=lambda r: r.download_time)
    assert fastest.protocol == "mptcp"
    # Backup mode (WiFi-First) beats Single-Path mode on failover
    # readiness no worse than 25% in time (the backup handshake is
    # already done when the outage hits).
    assert (
        results["wifi-first"].download_time
        <= results["single-path-mode"].download_time * 1.25
    )
