"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation flips one eMPTCP mechanism and measures its contribution
on the scenario that motivates it:

* the 10% safety factor (hysteresis) — random-bandwidth scenario;
* delayed subflow establishment (κ/τ) — small transfers;
* the RFC 2861 idle-reset disable (§3.6) — random-bandwidth scenario;
* the cellular-only veto (§3.4) — static bad WiFi;
* Holt-Winters smoothing vs a last-sample predictor.
"""

import dataclasses

from conftest import banner, once

from repro.analysis.stats import mean
from repro.core.config import EMPTCPConfig
from repro.experiments.runner import run_scenario
from repro.experiments.random_bw import random_bw_scenario
from repro.experiments.static_bw import static_scenario
from repro.experiments.wild import SMALL_BYTES, environment_scenario
from repro.net.host import WILD_SERVERS
from repro.units import mib
from repro.workloads.wild import CLIENT_SITES, WildEnvironment

SEEDS = (0, 1, 2)


def _run(scenario, config=None, protocol="emptcp"):
    if config is not None:
        scenario = dataclasses.replace(scenario, emptcp_config=config)
    return [run_scenario(protocol, scenario, seed=s) for s in SEEDS]


def test_ablation_hysteresis(benchmark):
    """Without the safety factor the controller flips more often,
    paying promotion/tail on every LTE resume."""

    def run():
        scenario = random_bw_scenario(download_bytes=mib(64))
        with_h = _run(scenario, EMPTCPConfig(safety_factor=0.10))
        without = _run(scenario, EMPTCPConfig(safety_factor=0.0))
        return with_h, without

    with_h, without = once(benchmark, run)
    switches_with = mean([r.diagnostics["decision_switches"] for r in with_h])
    switches_without = mean([r.diagnostics["decision_switches"] for r in without])
    banner("Ablation: 10% safety factor (random WiFi bandwidth)")
    print(f"  decision switches: with={switches_with:.1f} "
          f"without={switches_without:.1f}")
    print(f"  energy: with={mean([r.energy_j for r in with_h]):.1f} J "
          f"without={mean([r.energy_j for r in without]):.1f} J")
    assert switches_with <= switches_without


def test_ablation_delayed_establishment(benchmark):
    """κ/τ delay is what produces the 75-90% small-transfer savings.

    The eager extreme — establish the cellular subflow at connection
    setup, no efficiency gate — is exactly standard MPTCP, so the
    ablation compares against it.  (Shrinking κ/τ alone does not remove
    the delay: the predictor's efficiency veto still blocks the join on
    a fast WiFi path.)"""

    env = WildEnvironment(
        site=CLIENT_SITES["campus"],
        server=WILD_SERVERS["WDC"],
        wifi_mbps=12.0,
        lte_mbps=12.0,
    )

    def run():
        scenario = environment_scenario(env, SMALL_BYTES, fluctuating=False)
        delayed = _run(scenario)
        eager = _run(scenario, protocol="mptcp")
        return delayed, eager

    delayed, eager = once(benchmark, run)
    e_delayed = mean([r.energy_j for r in delayed])
    e_eager = mean([r.energy_j for r in eager])
    banner("Ablation: delayed subflow establishment (256 KB, good WiFi)")
    print(f"  energy: delayed={e_delayed:.2f} J  eager(=MPTCP)={e_eager:.2f} J")
    assert e_delayed < 0.5 * e_eager


def test_ablation_rfc2861_reset(benchmark):
    """Re-enabling the RFC 2861 window reset makes resumed subflows
    slow-start from scratch, hurting download time."""

    def run():
        scenario = random_bw_scenario(download_bytes=mib(64))
        disabled = _run(scenario, EMPTCPConfig(disable_rfc2861_reset=True))
        enabled = _run(scenario, EMPTCPConfig(disable_rfc2861_reset=False))
        return disabled, enabled

    disabled, enabled = once(benchmark, run)
    t_disabled = mean([r.download_time for r in disabled])
    t_enabled = mean([r.download_time for r in enabled])
    banner("Ablation: RFC 2861 CWND reset on idle (random WiFi bandwidth)")
    print(f"  download time: reset-disabled={t_disabled:.1f} s "
          f"reset-enabled={t_enabled:.1f} s")
    assert t_disabled <= t_enabled * 1.05


def test_ablation_cellular_only_veto(benchmark):
    """Allowing cellular-only decisions in static bad WiFi: the paper
    notes the expected gain over BOTH is small (§3.4)."""

    def run():
        scenario = static_scenario(good_wifi=False, download_bytes=mib(32))
        vetoed = _run(scenario, EMPTCPConfig(allow_cellular_only=False))
        allowed = _run(scenario, EMPTCPConfig(allow_cellular_only=True))
        return vetoed, allowed

    vetoed, allowed = once(benchmark, run)
    e_vetoed = mean([r.energy_j for r in vetoed])
    e_allowed = mean([r.energy_j for r in allowed])
    banner("Ablation: cellular-only veto (static bad WiFi)")
    print(f"  energy: veto(BOTH)={e_vetoed:.1f} J  LTE-only allowed={e_allowed:.1f} J")
    # The gain from cellular-only is "not much more than using both".
    assert abs(e_allowed - e_vetoed) < 0.30 * e_vetoed


def test_ablation_predictor_choice(benchmark):
    """Holt-Winters vs a last-sample predictor (alpha=1, beta=0): the
    naive predictor is noisier, so the controller switches at least as
    often."""

    def run():
        scenario = random_bw_scenario(download_bytes=mib(64))
        hw = _run(scenario, EMPTCPConfig())
        naive = _run(scenario, EMPTCPConfig(hw_alpha=1.0, hw_beta=0.0))
        return hw, naive

    hw, naive = once(benchmark, run)
    s_hw = mean([r.diagnostics["decision_switches"] for r in hw])
    s_naive = mean([r.diagnostics["decision_switches"] for r in naive])
    banner("Ablation: Holt-Winters vs last-sample prediction")
    print(f"  decision switches: holt-winters={s_hw:.1f} last-sample={s_naive:.1f}")
    print(f"  energy: holt-winters={mean([r.energy_j for r in hw]):.1f} J "
          f"last-sample={mean([r.energy_j for r in naive]):.1f} J")
    assert s_hw <= s_naive + 1.0


def test_ablation_coupling_algorithm(benchmark):
    """LIA vs OLIA vs uncoupled congestion control on standard MPTCP
    (disjoint WiFi+LTE paths): all three must aggregate, with OLIA no
    slower than LIA here (no shared bottleneck to be friendly to)."""
    import dataclasses as _dc

    from repro.experiments.runner import build_paths, setup_energy
    from repro.experiments.static_bw import static_scenario
    from repro.mptcp.connection import MPTCPConnection
    from repro.sim.engine import Simulator
    from repro.sim.rng import RandomStreams
    from repro.tcp.connection import FiniteSource
    from repro.net.interface import InterfaceKind

    def run_one(coupled, algorithm):
        scenario = static_scenario(True, download_bytes=mib(32))
        sim = Simulator()
        streams = RandomStreams(0)
        wifi, lte, _ = build_paths(sim, scenario, streams)
        meter, _rrc = setup_energy(
            sim, scenario.profile, InterfaceKind.LTE, wifi, lte
        )
        conn = MPTCPConnection(
            sim,
            wifi,
            FiniteSource(mib(32)),
            secondary_paths=[lte],
            rng=streams.stream("protocol"),
            coupled=coupled,
            coupling_algorithm=algorithm,
        )
        conn.on_complete(lambda _c: sim.stop())
        conn.open()
        sim.run(until=2000.0)
        return conn.completed_at

    def run():
        return {
            "lia": run_one(True, "lia"),
            "olia": run_one(True, "olia"),
            "uncoupled": run_one(False, "lia"),
        }

    times = once(benchmark, run)
    banner("Ablation: coupled congestion control algorithm (32 MiB, MPTCP)")
    for name, t in times.items():
        print(f"  {name:10s} {t:7.2f} s")
    assert all(t is not None for t in times.values())
    # Uncoupled is the most aggressive; OLIA comparable to LIA here.
    assert times["uncoupled"] <= times["lia"] * 1.05
    assert times["olia"] <= times["lia"] * 1.25
