"""Figure 1 — fixed energy cost of WiFi and cellular interfaces."""

import pytest
from conftest import banner, once

from repro.energy.device import DEVICES
from repro.experiments.overheads import (
    FIGURE1_PAPER,
    fixed_overheads,
    measured_fixed_overhead,
)
from repro.net.interface import InterfaceKind


def test_fig01_fixed_overhead(benchmark):
    rows = once(benchmark, fixed_overheads)
    banner("Figure 1: Fixed Energy Overhead (J)")
    print(f"{'device':22s} {'iface':6s} {'ours':>7} {'paper':>7}")
    for device, iface, joules in rows:
        paper = FIGURE1_PAPER.get((device, iface), float("nan"))
        print(f"{device:22s} {iface:6s} {joules:7.2f} {paper:7.2f}")
    for device, iface, joules in rows:
        assert joules == pytest.approx(FIGURE1_PAPER[(device, iface)], rel=0.10)


def test_fig01_rrc_machine_agrees_with_closed_form(benchmark):
    """Driving the event-driven RRC machine through one cycle must give
    the same joules as the profile's closed form."""

    def run():
        out = {}
        for profile in DEVICES.values():
            for kind in (InterfaceKind.THREEG, InterfaceKind.LTE):
                out[(profile.name, kind)] = (
                    measured_fixed_overhead(profile, kind),
                    profile.fixed_overhead(kind),
                )
        return out

    results = once(benchmark, run)
    for (_name, _kind), (measured, closed_form) in results.items():
        assert measured == pytest.approx(closed_form, rel=0.01)
