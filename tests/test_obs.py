"""The observability layer: tracer, metrics, capture sessions, schema,
summaries, and the runtime/CLI integration."""

import json

import pytest

import repro.obs as obs
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import Scenario
from repro.net.bandwidth import ConstantCapacity
from repro.net.interface import InterfaceKind
from repro.obs.events import validate_event, validate_events
from repro.obs.summarize import (
    format_trace_summary,
    summarize_events,
    summarize_target,
)
from repro.runtime import RunManifest, RunSpec, run_many
from repro.units import mbps_to_bytes_per_sec, mib


def moderate_scenario(download=mib(8)):
    """Moderate WiFi vs. slow LTE: slow enough that κ establishes the
    cellular subflow, fast enough that the controller then suspends it
    — exercises every instrumented decision point in one run."""
    return Scenario(
        name="static-moderate-wifi",
        wifi_capacity=lambda _rng: ConstantCapacity(mbps_to_bytes_per_sec(2.0)),
        cell_capacity=lambda _rng: ConstantCapacity(mbps_to_bytes_per_sec(2.0)),
        download_bytes=download,
    )


class TestTracer:
    def test_emit_and_filter(self):
        tracer = obs.Tracer()
        tracer.emit("tcp.loss", t=1.0, conn="c", interface="wifi")
        tracer.emit("energy.checkpoint", t=2.0, total_j=1.0, power_w=0.5)
        assert len(tracer) == 2
        assert tracer.emitted == 2
        assert [e["type"] for e in tracer.events("tcp.loss")] == ["tcp.loss"]
        assert tracer.events("tcp.loss")[0]["t"] == 1.0

    def test_ring_bounds_memory(self):
        tracer = obs.Tracer(ring_size=10)
        for i in range(25):
            tracer.emit("tcp.loss", t=float(i), conn="c", interface="wifi")
        assert len(tracer) == 10
        assert tracer.emitted == 25
        assert tracer.dropped == 15
        assert tracer.events()[0]["t"] == 15.0  # oldest kept

    def test_ring_size_validated(self):
        with pytest.raises(ValueError):
            obs.Tracer(ring_size=0)

    def test_clear_keeps_emitted_counter(self):
        tracer = obs.Tracer()
        tracer.emit("tcp.loss", t=0.0, conn="c", interface="wifi")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.emitted == 1

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = obs.Tracer()
        tracer.emit("tcp.loss", t=1.5, conn="c", interface="lte")
        path = tracer.to_jsonl(tmp_path / "t.trace.jsonl")
        assert obs.read_jsonl(path) == tracer.events()

    def test_read_jsonl_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.trace.jsonl"
        path.write_text('{"t": 1.0, "type": "tcp.loss"}\nnot-json\n')
        with pytest.raises(ValueError, match="bad.trace.jsonl:2"):
            obs.read_jsonl(path)


class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = obs.MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.5)
        reg.gauge("g").set(7.0)
        for v in (1.0, 3.0):
            reg.histogram("h").observe(v)
        data = reg.to_dict()
        assert data["counters"]["c"] == 3.5
        assert data["gauges"]["g"] == 7.0
        assert data["histograms"]["h"]["count"] == 2
        assert data["histograms"]["h"]["mean"] == 2.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            obs.MetricsRegistry().counter("c").inc(-1.0)

    def test_name_cannot_change_kind(self):
        reg = obs.MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")


class TestCaptureSession:
    def test_ambient_lookup(self):
        assert obs.current() is None
        assert obs.tracer_or_none() is None
        assert obs.metrics_or_none() is None
        with obs.capture() as session:
            assert obs.current() is session
            assert obs.tracer_or_none() is session.tracer
            assert obs.metrics_or_none() is session.metrics
        assert obs.current() is None

    def test_nested_capture_shadows(self):
        with obs.capture() as outer:
            with obs.capture() as inner:
                assert obs.tracer_or_none() is inner.tracer
            assert obs.tracer_or_none() is outer.tracer

    def test_trace_only_session(self):
        with obs.capture(metrics=False) as session:
            assert session.metrics is None
            assert obs.metrics_or_none() is None
            assert obs.tracer_or_none() is not None

    def test_components_outside_capture_carry_no_tracer(self):
        """The zero-overhead contract: a run constructed with no
        session active holds None references and emits nothing, even
        if a capture starts later."""
        from repro.core.predictor import BandwidthPredictor
        from repro.sim.engine import Simulator

        predictor = BandwidthPredictor(Simulator())
        assert predictor._trace is None
        with obs.capture() as session:
            predictor.observe(InterfaceKind.WIFI, 1e6)
        assert session.tracer.emitted == 0

    def test_options_roundtrip(self):
        options = obs.ObsOptions(dir="/tmp/x", trace=True, metrics=True)
        assert obs.ObsOptions.from_dict(options.to_dict()) == options
        assert options.enabled
        assert not obs.ObsOptions(dir="x", trace=False, metrics=False).enabled


class TestEventSchema:
    def test_valid_event(self):
        event = {"t": 1.0, "type": "tcp.loss", "conn": "c", "interface": "w"}
        assert validate_event(event) == []

    def test_unknown_type_rejected(self):
        assert validate_event({"t": 1.0, "type": "nope"}) != []

    def test_missing_field_rejected(self):
        problems = validate_event({"t": 1.0, "type": "tcp.loss", "conn": "c"})
        assert any("interface" in p for p in problems)

    def test_wrong_field_type_rejected(self):
        problems = validate_event(
            {"t": 1.0, "type": "mptcp.mp_prio", "subflow": "s", "low": "yes"}
        )
        assert any("low" in p for p in problems)

    def test_extra_fields_allowed(self):
        event = {
            "t": 1.0, "type": "tcp.loss", "conn": "c", "interface": "w",
            "extra": 99,
        }
        assert validate_event(event) == []

    def test_non_numeric_t_rejected(self):
        assert validate_event({"t": "soon", "type": "tcp.loss",
                               "conn": "c", "interface": "w"}) != []


class TestInstrumentedRun:
    @pytest.fixture(scope="class")
    def traced_run(self):
        with obs.capture() as session:
            result = run_scenario("emptcp", moderate_scenario())
        return session, result

    def test_expected_event_types_emitted(self, traced_run):
        session, _ = traced_run
        types = {e["type"] for e in session.tracer.events()}
        assert {
            "controller.decision",
            "predictor.sample",
            "delay.trigger",
            "mptcp.mp_prio",
            "subflow.suspend",
            "rrc.transition",
            "energy.checkpoint",
        } <= types

    def test_every_event_validates(self, traced_run):
        session, _ = traced_run
        assert validate_events(session.tracer.events()) == []

    def test_controller_events_carry_both_thresholds(self, traced_run):
        session, _ = traced_run
        decision = session.tracer.events("controller.decision")[0]
        assert decision["safety_factor"] == pytest.approx(0.10)
        assert decision["cell_only_thr_mbps"] < decision["wifi_only_thr_mbps"]

    def test_energy_checkpoint_matches_result(self, traced_run):
        session, result = traced_run
        last = session.tracer.events("energy.checkpoint")[-1]
        assert last["total_j"] == pytest.approx(result.energy_j)

    def test_metrics_aggregates(self, traced_run):
        session, _ = traced_run
        data = session.metrics.to_dict()
        assert data["counters"]["sim.events"] > 0
        assert data["counters"]["mptcp.mp_prio"] >= 1
        assert data["counters"]["controller.decisions"] > 0
        assert data["histograms"]["predictor.sample_mbps.wifi"]["count"] > 0

    def test_summary_aggregates(self, traced_run):
        session, _ = traced_run
        summary = summarize_events(session.tracer.events())
        assert summary["events"] == len(session.tracer)
        assert summary["controller"]["decisions"]
        assert summary["mp_prio"]["suspend"] >= 1
        assert "wifi" in summary["predictor"]
        assert summary["rrc"]["transitions"] > 0
        assert summary["final_energy_j"] is not None
        text = format_trace_summary(summary)
        assert "controller:" in text and "MP_PRIO" in text


class TestRuntimeIntegration:
    def test_run_many_exports_per_spec_files(self, tmp_path):
        spec = RunSpec(
            protocol="emptcp",
            builder="static",
            kwargs={"good_wifi": False, "download_bytes": mib(1),
                    "lte_mbps": 10.0},
        )
        options = obs.ObsOptions(dir=str(tmp_path / "obs"), metrics=True)
        manifest_path = tmp_path / "run.jsonl"
        with RunManifest(manifest_path) as manifest:
            run_many([spec], manifest=manifest, obs=options)

        stem = spec.content_hash()
        trace_path = tmp_path / "obs" / f"{stem}.trace.jsonl"
        metrics_path = tmp_path / "obs" / f"{stem}.metrics.json"
        assert trace_path.is_file() and metrics_path.is_file()
        events = obs.read_jsonl(trace_path)
        assert events and validate_events(events) == []
        assert "counters" in json.loads(metrics_path.read_text())

        entries = RunManifest.read(manifest_path)
        assert entries[0].outcome == "executed"
        assert entries[0].trace == str(trace_path)

        summary = summarize_target(tmp_path / "obs")
        assert summary["files"] == {trace_path.name: len(events)}

    def test_run_many_pool_workers_export(self, tmp_path):
        specs = [
            RunSpec(
                protocol=protocol,
                builder="static",
                kwargs={"good_wifi": False, "download_bytes": mib(1),
                        "lte_mbps": 10.0},
            )
            for protocol in ("emptcp", "mptcp")
        ]
        options = obs.ObsOptions(dir=str(tmp_path / "obs"))
        run_many(specs, jobs=2, obs=options)
        exported = sorted((tmp_path / "obs").glob("*.trace.jsonl"))
        assert len(exported) == 2

    def test_manifest_without_trace_field_still_parses(self, tmp_path):
        """Manifests written before the obs layer lack the ``trace``
        key; reading them must not break."""
        line = {
            "spec_hash": "x", "label": "l", "protocol": "p", "builder": "b",
            "seed": 0, "outcome": "executed", "wall_time_s": 0.1,
            "worker": "local", "attempt": 1, "timestamp": 0.0,
        }
        path = tmp_path / "old.jsonl"
        path.write_text(json.dumps(line) + "\n")
        entries = RunManifest.read(path)
        assert entries[0].trace == ""
