"""Tests for delayed subflow establishment (§3.5, equation (1))."""

import pytest

from tests.helpers import make_path, rng
from repro.core.config import EMPTCPConfig
from repro.core.controller import PathDecision, PathUsageController
from repro.core.delay import DelayedSubflowEstablishment, minimum_tau
from repro.core.eib import cached_eib
from repro.core.predictor import BandwidthPredictor
from repro.energy.device import GALAXY_S3
from repro.errors import ConfigurationError
from repro.mptcp.connection import MPTCPConnection
from repro.net.interface import InterfaceKind
from repro.sim.engine import Simulator
from repro.tcp.connection import FiniteSource
from repro.units import mbps_to_bytes_per_sec


class TestMinimumTau:
    def test_equation_one(self):
        """τ >= R x (log2((B R + W)/W) + φ)."""
        bw = mbps_to_bytes_per_sec(8.0)
        rtt = 0.1
        winit = 10 * 1448.0
        tau = minimum_tau(bw, rtt, required_samples=10, initial_window_bytes=winit)
        import math

        expected = rtt * (math.log2((bw * rtt + winit) / winit) + 10)
        assert tau == pytest.approx(expected)

    def test_larger_bandwidth_needs_larger_tau(self):
        lo = minimum_tau(mbps_to_bytes_per_sec(1.0), 0.1, 10)
        hi = minimum_tau(mbps_to_bytes_per_sec(100.0), 0.1, 10)
        assert hi > lo

    def test_paper_setting_is_below_three_seconds(self):
        """§4.1: their estimated bound was ~2.67 s with τ = 3 s."""
        tau = minimum_tau(mbps_to_bytes_per_sec(10.0), 0.2, 10)
        assert tau < 3.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            minimum_tau(0.0, 0.1, 10)
        with pytest.raises(ConfigurationError):
            minimum_tau(1.0, 0.1, 0)
        with pytest.raises(ConfigurationError):
            minimum_tau(1.0, 0.1, 10, initial_window_bytes=0.0)


def build(sim, wifi_mbps=2.0, size=50_000_000.0, **config_kwargs):
    """An MPTCP connection with a delayed-establishment module wired the
    way EMPTCPConnection does it."""
    config = EMPTCPConfig(**config_kwargs)
    wifi = make_path(sim, InterfaceKind.WIFI, mbps=wifi_mbps, rtt=0.05)
    lte = make_path(sim, InterfaceKind.LTE, mbps=10.0, rtt=0.07)
    source = FiniteSource(size)
    conn = MPTCPConnection(
        sim, wifi, source, secondary_paths=[lte], rng=rng(), auto_join=False
    )
    predictor = BandwidthPredictor(sim, config)
    controller = PathUsageController(
        config, cached_eib(GALAXY_S3), predictor, InterfaceKind.LTE
    )
    conn.on_subflow_established(predictor.attach_subflow)
    delayed = DelayedSubflowEstablishment(
        sim, conn, config, predictor, controller, establish=lambda: conn.add_subflow(lte)
    )
    conn.open()
    delayed.start()
    return conn, delayed, source


class TestKappaTrigger:
    def test_establishes_after_kappa_bytes_on_slowish_wifi(self):
        sim = Simulator()
        conn, delayed, _ = build(sim, wifi_mbps=2.0, kappa_bytes=200_000.0,
                                 tau_seconds=300.0)
        sim.run(until=10.0)
        assert delayed.done
        assert delayed.trigger == "kappa"
        assert delayed.wifi_bytes >= 200_000.0
        assert conn.subflow_for(InterfaceKind.LTE) is not None

    def test_no_establishment_below_kappa(self):
        sim = Simulator()
        # 100 KB transfer, kappa 1 MB, long tau: LTE never needed.
        conn, delayed, source = build(
            sim, wifi_mbps=8.0, size=100_000.0, tau_seconds=300.0
        )
        sim.run(until=30.0)
        assert source.exhausted
        assert not delayed.done
        assert conn.subflow_for(InterfaceKind.LTE) is None

    def test_kappa_veto_when_wifi_fast(self):
        """κ reached but WiFi-only is more efficient -> postponed."""
        sim = Simulator()
        conn, delayed, _ = build(
            sim, wifi_mbps=12.0, kappa_bytes=500_000.0, tau_seconds=300.0
        )
        sim.run(until=20.0)
        assert delayed.wifi_bytes > 500_000.0
        assert not delayed.done
        assert delayed.postponements > 0


class TestTauTrigger:
    def test_tau_fires_on_slow_wifi(self):
        """WiFi so slow κ is never reached: the timer establishes LTE."""
        sim = Simulator()
        conn, delayed, _ = build(sim, wifi_mbps=0.5, tau_seconds=3.0)
        sim.run(until=5.0)
        assert delayed.done
        assert delayed.trigger == "tau"
        assert delayed.established_at == pytest.approx(3.0, abs=0.5)

    def test_tau_postponed_when_wifi_fast(self):
        sim = Simulator()
        conn, delayed, _ = build(sim, wifi_mbps=12.0, tau_seconds=1.0)
        sim.run(until=10.0)
        assert not delayed.done
        assert delayed.timer_expirations >= 2  # re-armed and re-checked

    def test_tau_postponed_while_idle(self):
        """An idle connection must not trigger cellular establishment
        (HTTP keeps connections open after the transfer)."""
        sim = Simulator()
        # Transfer finishes quickly; connection then idles with slow wifi
        # predictions in place.
        conn, delayed, source = build(
            sim, wifi_mbps=2.0, size=150_000.0, tau_seconds=3.0,
            kappa_bytes=1_000_000.0,
        )
        sim.run(until=30.0)
        assert source.exhausted
        assert not delayed.done
        assert delayed.postponements > 0


class TestEstablishOnce:
    def test_only_one_cellular_subflow(self):
        sim = Simulator()
        conn, delayed, _ = build(sim, wifi_mbps=0.5, tau_seconds=1.0)
        sim.run(until=30.0)
        lte_subflows = [
            sf for sf in conn.subflows if sf.interface_kind is InterfaceKind.LTE
        ]
        assert len(lte_subflows) == 1
