"""Integration tests for the full EMPTCPConnection (§3.6 wiring)."""

import pytest

from tests.helpers import make_path, rng
from repro.core.config import EMPTCPConfig
from repro.core.controller import PathDecision
from repro.core.emptcp import EMPTCPConnection
from repro.errors import ConfigurationError
from repro.mptcp.options import MpPrio
from repro.net.bandwidth import PiecewiseTraceCapacity
from repro.net.interface import InterfaceKind, NetworkInterface
from repro.net.path import NetworkPath
from repro.sim.engine import Simulator
from repro.tcp.connection import FiniteSource
from repro.energy.device import GALAXY_S3
from repro.units import mbps_to_bytes_per_sec, mib


def make_emptcp(sim, wifi_mbps=2.0, lte_mbps=10.0, size=mib(16), config=None,
                wifi_path=None):
    wifi = wifi_path or make_path(sim, InterfaceKind.WIFI, mbps=wifi_mbps, rtt=0.05)
    lte = make_path(sim, InterfaceKind.LTE, mbps=lte_mbps, rtt=0.07)
    source = FiniteSource(size)
    conn = EMPTCPConnection(
        sim, wifi, lte, source, profile=GALAXY_S3, config=config, rng=rng()
    )
    return conn, source


class TestConstruction:
    def test_path_kinds_validated(self):
        sim = Simulator()
        wifi = make_path(sim, InterfaceKind.WIFI)
        lte = make_path(sim, InterfaceKind.LTE)
        with pytest.raises(ConfigurationError):
            EMPTCPConnection(sim, lte, lte, FiniteSource(1e6), GALAXY_S3)
        with pytest.raises(ConfigurationError):
            EMPTCPConnection(sim, wifi, wifi, FiniteSource(1e6), GALAXY_S3)

    def test_section_36_flags_default_on(self):
        sim = Simulator()
        conn, _ = make_emptcp(sim)
        assert conn.mptcp.reuse_reset_rtt
        assert not conn.mptcp.rfc2861_idle_reset


class TestGoodWiFiBehaviour:
    def test_never_establishes_lte(self):
        """Fig 5 / Fig 16-GG behaviour: fast WiFi -> WiFi-only."""
        sim = Simulator()
        conn, source = make_emptcp(sim, wifi_mbps=12.0, size=mib(8))
        conn.open()
        sim.run(until=60.0)
        assert source.exhausted
        assert conn.mptcp.subflow_for(InterfaceKind.LTE) is None
        assert conn.decision is PathDecision.WIFI_ONLY

    def test_completes_like_single_path(self):
        sim = Simulator()
        conn, _ = make_emptcp(sim, wifi_mbps=12.0, size=mib(8))
        conn.open()
        sim.run(until=60.0)
        ideal = mib(8) / mbps_to_bytes_per_sec(12.0)
        assert conn.completed_at == pytest.approx(ideal, rel=0.35)


class TestBadWiFiBehaviour:
    def test_establishes_lte_and_uses_both(self):
        """Fig 6 behaviour: slow WiFi -> LTE joined after κ/τ delay."""
        sim = Simulator()
        conn, source = make_emptcp(sim, wifi_mbps=0.8, size=mib(16))
        conn.open()
        sim.run(until=120.0)
        assert source.exhausted
        lte_sf = conn.mptcp.subflow_for(InterfaceKind.LTE)
        assert lte_sf is not None
        assert lte_sf.bytes_delivered > mib(8)  # LTE carried the bulk
        assert conn.delayed.established_at == pytest.approx(
            conn.config.tau_seconds, abs=1.0
        )


class TestDynamicSwitching:
    def _modulated_wifi_path(self, sim):
        # 0-40 s slow, 40-80 s fast, then slow again.
        slow = mbps_to_bytes_per_sec(0.8)
        fast = mbps_to_bytes_per_sec(12.0)
        cap = PiecewiseTraceCapacity([(0.0, slow), (40.0, fast), (80.0, slow)])
        path = NetworkPath(NetworkInterface(InterfaceKind.WIFI), cap, base_rtt=0.05)
        path.attach(sim)
        return path

    def test_suspends_lte_when_wifi_improves_and_resumes_after(self):
        """Fig 7's narrative: LTE used while WiFi is slow, suspended via
        MP_PRIO once WiFi improves, resumed when it degrades again."""
        sim = Simulator()
        wifi_path = self._modulated_wifi_path(sim)
        conn, _ = make_emptcp(sim, size=mib(256), wifi_path=wifi_path)
        conn.open()
        sim.run(until=120.0)
        lte_sf = conn.mptcp.subflow_for(InterfaceKind.LTE)
        assert lte_sf is not None
        assert lte_sf.suspend_count >= 1
        assert lte_sf.resume_count >= 1
        prio_log = [o for o in conn.option_log if isinstance(o, MpPrio)]
        assert any(o.low for o in prio_log)
        assert any(not o.low for o in prio_log)

    def test_resumed_subflow_has_zeroed_rtt(self):
        sim = Simulator()
        wifi_path = self._modulated_wifi_path(sim)
        conn, _ = make_emptcp(sim, size=mib(256), wifi_path=wifi_path)
        conn.open()
        # Run until just past a resume event.
        sim.run(until=85.0)
        lte_sf = conn.mptcp.subflow_for(InterfaceKind.LTE)
        if lte_sf is not None and lte_sf.resume_count > 0:
            # After re-use, RTT was reset and re-learned from fresh
            # rounds; it must be well below the pre-suspend estimate
            # path (no stale inflation) — weak check: it's finite and
            # sane.
            assert 0.0 <= lte_sf.effective_rtt < 1.0


class TestControlPlaneShutdown:
    def test_no_pending_control_events_after_completion(self):
        sim = Simulator()
        conn, source = make_emptcp(sim, wifi_mbps=8.0, size=mib(1))
        conn.open()
        sim.run(until=60.0)
        assert source.exhausted
        # Drain whatever remains (RRC tail etc.); the queue must empty,
        # proving no immortal periodic process leaks.
        sim.run(until=sim.now + 60.0)
        assert sim.pending_events() == 0

    def test_on_complete_listener(self):
        sim = Simulator()
        conn, _ = make_emptcp(sim, wifi_mbps=8.0, size=mib(1))
        seen = []
        conn.on_complete(lambda c: seen.append(sim.now))
        conn.open()
        sim.run(until=60.0)
        assert len(seen) == 1
        assert conn.completed_at == seen[0]

    def test_close_stops_everything(self):
        sim = Simulator()
        conn, _ = make_emptcp(sim, wifi_mbps=0.8, size=mib(64))
        conn.open()
        sim.run(until=10.0)
        conn.close()
        sim.run(until=sim.now + 60.0)
        assert sim.pending_events() == 0
