"""Tests for network paths, interfaces, hosts, and the WiFi channel."""

import pytest

from repro.errors import ConfigurationError
from repro.net.bandwidth import ConstantCapacity
from repro.net.contention import WiFiChannel
from repro.net.host import WILD_SERVERS, MobileDevice, Server
from repro.net.interface import InterfaceKind, NetworkInterface
from repro.net.path import NetworkPath
from repro.sim.engine import Simulator


class FakeFlow:
    def __init__(self, sending=True):
        self.sending = sending


class FakeNode:
    def __init__(self, active=False, rate=0.0):
        self.active = active
        self.rate = rate


def make_path(sim=None, mbps_rate=1000.0, channel=None, cap=None, **kwargs):
    cap = cap or ConstantCapacity(mbps_rate)
    path = NetworkPath(
        NetworkInterface(InterfaceKind.WIFI),
        cap,
        base_rtt=kwargs.pop("base_rtt", 0.05),
        channel=channel,
        **kwargs,
    )
    if sim is not None:
        path.attach(sim)
    return path


class TestInterfaceKind:
    def test_cellular_flags(self):
        assert InterfaceKind.LTE.is_cellular
        assert InterfaceKind.THREEG.is_cellular
        assert not InterfaceKind.WIFI.is_cellular
        assert InterfaceKind.WIFI.is_wifi

    def test_default_names(self):
        assert NetworkInterface(InterfaceKind.WIFI).name == "wlan0"
        assert NetworkInterface(InterfaceKind.LTE).name == "rmnet0"


class TestNetworkPath:
    def test_fair_share_among_senders(self):
        path = make_path(mbps_rate=900.0)
        f1, f2 = FakeFlow(), FakeFlow()
        path.register_flow(f1)
        path.register_flow(f2)
        assert path.available_rate(f1) == pytest.approx(450.0)

    def test_idle_flows_do_not_consume_share(self):
        path = make_path(mbps_rate=900.0)
        f1, f2 = FakeFlow(), FakeFlow(sending=False)
        path.register_flow(f1)
        path.register_flow(f2)
        assert path.available_rate(f1) == pytest.approx(900.0)

    def test_unregistered_flow_counts_as_extra_sender(self):
        path = make_path(mbps_rate=900.0)
        f1 = FakeFlow()
        path.register_flow(f1)
        outsider = FakeFlow()
        assert path.available_rate(outsider) == pytest.approx(450.0)

    def test_down_interface_gives_zero_rate(self):
        path = make_path()
        path.interface.up = False
        assert not path.is_up
        assert path.available_rate(FakeFlow()) == 0.0

    def test_invalid_params_rejected(self):
        cap = ConstantCapacity(1.0)
        iface = NetworkInterface(InterfaceKind.WIFI)
        with pytest.raises(ConfigurationError):
            NetworkPath(iface, cap, base_rtt=0.0)
        with pytest.raises(ConfigurationError):
            NetworkPath(iface, cap, base_rtt=0.05, loss_rate=1.0)
        with pytest.raises(ConfigurationError):
            NetworkPath(iface, cap, base_rtt=0.05, buffer_bytes=0.0)

    def test_channel_must_wrap_same_capacity(self):
        cap = ConstantCapacity(1.0)
        other = ConstantCapacity(2.0)
        channel = WiFiChannel(other)
        with pytest.raises(ConfigurationError):
            make_path(cap=cap, channel=channel)

    def test_aggregate_rate_tracks_flows(self):
        sim = Simulator()
        path = make_path(sim)
        events = []
        path.on_aggregate_rate(lambda t, r: events.append((t, r)))
        f1, f2 = FakeFlow(), FakeFlow()
        path.notify_rate(f1, 100.0)
        path.notify_rate(f2, 50.0)
        assert path.aggregate_rate == pytest.approx(150.0)
        path.notify_rate(f1, 0.0)
        assert path.aggregate_rate == pytest.approx(50.0)
        assert events[-1] == (0.0, 50.0)

    def test_unregister_clears_rate(self):
        sim = Simulator()
        path = make_path(sim)
        f1 = FakeFlow()
        path.register_flow(f1)
        path.notify_rate(f1, 100.0)
        path.unregister_flow(f1)
        assert path.aggregate_rate == 0.0


class TestWiFiChannel:
    def test_no_interferers_full_capacity(self):
        cap = ConstantCapacity(1000.0)
        channel = WiFiChannel(cap)
        assert channel.available_rate() == pytest.approx(1000.0)
        assert channel.extra_loss() == 0.0

    def test_active_interferers_reduce_capacity(self):
        cap = ConstantCapacity(1000.0)
        channel = WiFiChannel(cap, airtime_overhead=0.1)
        channel.add_interferer(FakeNode(active=True, rate=200.0))
        # residual 800 * (1 - 0.1)
        assert channel.available_rate() == pytest.approx(720.0)

    def test_inactive_interferers_cost_nothing(self):
        cap = ConstantCapacity(1000.0)
        channel = WiFiChannel(cap)
        channel.add_interferer(FakeNode(active=False, rate=500.0))
        assert channel.available_rate() == pytest.approx(1000.0)

    def test_capacity_never_negative(self):
        cap = ConstantCapacity(100.0)
        channel = WiFiChannel(cap)
        channel.add_interferer(FakeNode(active=True, rate=500.0))
        assert channel.available_rate() == 0.0

    def test_loss_scales_with_active_nodes(self):
        cap = ConstantCapacity(1000.0)
        channel = WiFiChannel(cap, loss_per_active_node=0.01)
        channel.add_interferer(FakeNode(active=True, rate=1.0))
        channel.add_interferer(FakeNode(active=True, rate=1.0))
        channel.add_interferer(FakeNode(active=False, rate=1.0))
        assert channel.extra_loss() == pytest.approx(0.02)
        assert channel.active_interferers == 2

    def test_invalid_params_rejected(self):
        cap = ConstantCapacity(1.0)
        with pytest.raises(ConfigurationError):
            WiFiChannel(cap, airtime_overhead=1.0)
        with pytest.raises(ConfigurationError):
            WiFiChannel(cap, loss_per_active_node=-0.1)


class TestHosts:
    def test_dual_homed_device(self):
        device = MobileDevice.dual_homed()
        assert device.wifi.kind is InterfaceKind.WIFI
        assert device.cellular().kind is InterfaceKind.LTE

    def test_wifi_required(self):
        with pytest.raises(ConfigurationError):
            MobileDevice("x", [NetworkInterface(InterfaceKind.LTE)])

    def test_duplicate_interface_rejected(self):
        with pytest.raises(ConfigurationError):
            MobileDevice(
                "x",
                [
                    NetworkInterface(InterfaceKind.WIFI),
                    NetworkInterface(InterfaceKind.WIFI),
                ],
            )

    def test_dual_homed_rejects_wifi_as_cellular(self):
        with pytest.raises(ConfigurationError):
            MobileDevice.dual_homed(cellular=InterfaceKind.WIFI)

    def test_wild_servers(self):
        assert set(WILD_SERVERS) == {"WDC", "AMS", "SNG"}
        assert WILD_SERVERS["SNG"].internet_rtt > WILD_SERVERS["WDC"].internet_rtt

    def test_negative_rtt_rejected(self):
        with pytest.raises(ConfigurationError):
            Server("x", internet_rtt=-1.0)
