"""Tests for the cellular RRC state machine."""

import pytest

from repro.energy.device import GALAXY_S3
from repro.energy.rrc import RrcMachine, RrcParams, RrcState
from repro.errors import EnergyModelError
from repro.sim.engine import Simulator

PARAMS = RrcParams(
    promotion_time=0.5,
    promotion_power_w=1.2,
    tail_time=10.0,
    tail_power_w=1.0,
    active_hold=0.2,
)


def make_machine():
    sim = Simulator()
    return sim, RrcMachine(sim, PARAMS)


def test_starts_idle():
    _sim, machine = make_machine()
    assert machine.state is RrcState.IDLE
    assert machine.is_idle


def test_activity_from_idle_promotes_with_latency():
    sim, machine = make_machine()
    latency = machine.on_activity(sim.now)
    assert latency == pytest.approx(0.5)
    assert machine.state is RrcState.PROMOTING
    assert machine.promotions == 1


def test_promotion_completes_into_active():
    sim, machine = make_machine()
    machine.on_activity(sim.now)
    sim.run(until=0.5)
    assert machine.state is RrcState.ACTIVE


def test_activity_during_promotion_returns_remaining_time():
    sim, machine = make_machine()
    machine.on_activity(sim.now)
    sim.run(until=0.2)
    assert machine.on_activity(sim.now) == pytest.approx(0.3)
    assert machine.promotions == 1  # no double promotion


def test_inactivity_enters_tail_then_idle():
    sim, machine = make_machine()
    machine.on_activity(sim.now)
    sim.run(until=0.5)  # promoted
    sim.run(until=0.5 + 0.2 + 0.01)  # hold expires
    assert machine.state is RrcState.TAIL
    sim.run(until=0.5 + 0.2 + 10.0 + 0.01)
    assert machine.state is RrcState.IDLE


def test_activity_during_tail_reactivates_without_promotion():
    sim, machine = make_machine()
    machine.on_activity(sim.now)
    sim.run(until=2.0)  # in tail by now
    assert machine.state is RrcState.TAIL
    assert machine.on_activity(sim.now) == 0.0
    assert machine.state is RrcState.ACTIVE
    assert machine.promotions == 1


def test_continuous_activity_stays_active():
    sim, machine = make_machine()
    machine.on_activity(sim.now)
    sim.run(until=0.5)
    for i in range(50):
        sim.run(until=0.5 + 0.1 * (i + 1))
        machine.on_activity(sim.now)
    assert machine.state is RrcState.ACTIVE


def test_state_listeners_see_full_cycle():
    sim, machine = make_machine()
    states = []
    machine.on_state_change(lambda _t, s: states.append(s))
    machine.on_activity(sim.now)
    sim.run(until=30.0)
    assert states == [
        RrcState.PROMOTING,
        RrcState.ACTIVE,
        RrcState.TAIL,
        RrcState.IDLE,
    ]


def test_fixed_overhead_joules():
    assert PARAMS.fixed_overhead_joules == pytest.approx(0.5 * 1.2 + 10.0 * 1.0)


def test_second_cycle_promotes_again():
    sim, machine = make_machine()
    machine.on_activity(sim.now)
    sim.run(until=30.0)
    assert machine.is_idle
    latency = machine.on_activity(sim.now)
    assert latency == pytest.approx(0.5)
    assert machine.promotions == 2


def test_galaxy_s3_lte_fixed_overhead_matches_figure1():
    """The S3's LTE promotion + tail cycle costs ~12.6 J."""
    from repro.net.interface import InterfaceKind

    params = GALAXY_S3.rrc[InterfaceKind.LTE]
    assert params.fixed_overhead_joules == pytest.approx(12.59, rel=0.01)


def test_invalid_params_rejected():
    with pytest.raises(EnergyModelError):
        RrcParams(-1.0, 1.0, 1.0, 1.0)
    with pytest.raises(EnergyModelError):
        RrcParams(1.0, -1.0, 1.0, 1.0)
