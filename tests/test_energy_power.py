"""Tests for interface power models and device profiles."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.energy.device import DEVICES, GALAXY_S3, NEXUS_5
from repro.energy.power import InterfacePower
from repro.energy.rrc import RrcState
from repro.errors import EnergyModelError
from repro.net.interface import InterfaceKind
from repro.units import mbps_to_bytes_per_sec


class TestInterfacePower:
    def test_linear_in_throughput(self):
        p = InterfacePower(base_w=0.5, per_mbps_w=0.1)
        assert p.active_power_w(0.0) == pytest.approx(0.5)
        assert p.active_power_w(10.0) == pytest.approx(1.5)

    def test_bytes_per_sec_matches_mbps(self):
        p = InterfacePower(base_w=0.5, per_mbps_w=0.1)
        assert p.active_power(mbps_to_bytes_per_sec(4.0)) == pytest.approx(
            p.active_power_w(4.0)
        )

    def test_negative_params_rejected(self):
        with pytest.raises(EnergyModelError):
            InterfacePower(base_w=-1.0, per_mbps_w=0.1)

    def test_idle_above_base_rejected(self):
        with pytest.raises(EnergyModelError):
            InterfacePower(base_w=0.1, per_mbps_w=0.0, idle_w=0.2)

    def test_negative_rate_rejected(self):
        p = InterfacePower(base_w=0.5, per_mbps_w=0.1)
        with pytest.raises(EnergyModelError):
            p.active_power(-1.0)


class TestDeviceProfile:
    def test_registry_has_both_devices(self):
        assert set(DEVICES) == {"galaxy-s3", "nexus-5"}

    def test_transfer_power_uses_linear_model(self):
        p = GALAXY_S3.interface_power(
            InterfaceKind.WIFI, mbps_to_bytes_per_sec(10.0)
        )
        assert p == pytest.approx(0.500 + 10 * 0.100)

    def test_idle_cellular_power_by_rrc_state(self):
        lte = InterfaceKind.LTE
        promo = GALAXY_S3.interface_power(lte, 0.0, RrcState.PROMOTING)
        tail = GALAXY_S3.interface_power(lte, 0.0, RrcState.TAIL)
        idle = GALAXY_S3.interface_power(lte, 0.0, RrcState.IDLE)
        assert promo == pytest.approx(1.21)
        assert tail == pytest.approx(1.06)
        assert idle == pytest.approx(GALAXY_S3.interfaces[lte].idle_w)

    def test_overlap_saving_applies_only_with_two_radios(self):
        rate = mbps_to_bytes_per_sec(5.0)
        idle_3g = GALAXY_S3.interfaces[InterfaceKind.THREEG].idle_w
        idle_lte = GALAXY_S3.interfaces[InterfaceKind.LTE].idle_w
        wifi_active = GALAXY_S3.interface_power(InterfaceKind.WIFI, rate)
        lte_active = GALAXY_S3.interface_power(InterfaceKind.LTE, rate)
        p_one = GALAXY_S3.total_power({InterfaceKind.WIFI: rate})
        assert p_one == pytest.approx(wifi_active + idle_lte + idle_3g)
        p_two = GALAXY_S3.total_power(
            {InterfaceKind.WIFI: rate, InterfaceKind.LTE: rate}
        )
        assert p_two == pytest.approx(
            wifi_active + lte_active + idle_3g - GALAXY_S3.overlap_saving_w
        )

    def test_total_power_never_negative(self):
        assert GALAXY_S3.total_power({}) >= 0.0

    def test_fixed_overheads_match_figure1(self):
        """Figure 1's bar heights, within 10%."""
        targets = [
            (GALAXY_S3, InterfaceKind.WIFI, 0.15),
            (GALAXY_S3, InterfaceKind.THREEG, 6.4),
            (GALAXY_S3, InterfaceKind.LTE, 12.0),
            (NEXUS_5, InterfaceKind.WIFI, 0.06),
            (NEXUS_5, InterfaceKind.THREEG, 7.5),
            (NEXUS_5, InterfaceKind.LTE, 12.5),
        ]
        for profile, kind, expected in targets:
            assert profile.fixed_overhead(kind) == pytest.approx(expected, rel=0.10)

    def test_lte_base_power_exceeds_wifi(self):
        """The premise of the whole paper: the cellular radio is the
        expensive one."""
        for profile in DEVICES.values():
            assert (
                profile.interfaces[InterfaceKind.LTE].base_w
                > profile.interfaces[InterfaceKind.WIFI].base_w
            )

    def test_unknown_interface_rejected(self):
        from repro.energy.device import DeviceProfile
        from repro.energy.power import InterfacePower

        profile = DeviceProfile(
            name="t",
            interfaces={InterfaceKind.WIFI: InterfacePower(0.5, 0.1)},
            rrc={},
            overlap_saving_w=0.0,
            wifi_activation_j=0.0,
        )
        with pytest.raises(EnergyModelError):
            profile.interface_power(InterfaceKind.LTE, 0.0)

    def test_table1_metadata_present(self):
        assert GALAXY_S3.spec.wifi_chipset == "Broadcom BCM4334"
        assert NEXUS_5.spec.android_version == "4.4.4 (KitKat)"

    @given(
        st.floats(min_value=0.0, max_value=50.0),
        st.floats(min_value=0.0, max_value=50.0),
    )
    def test_property_total_power_monotone_in_rates(self, w1, w2):
        """More throughput never costs less power."""
        lo, hi = sorted([w1, w2])
        rates_lo = {InterfaceKind.WIFI: mbps_to_bytes_per_sec(lo)}
        rates_hi = {InterfaceKind.WIFI: mbps_to_bytes_per_sec(hi)}
        assert GALAXY_S3.total_power(rates_hi) >= GALAXY_S3.total_power(rates_lo)
