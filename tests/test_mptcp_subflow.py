"""Tests for subflows, schedulers, and LIA coupling."""

import pytest

from tests.helpers import make_path, rng
from repro.errors import ProtocolError
from repro.mptcp.coupled import LiaCoupling
from repro.mptcp.scheduler import MinRttScheduler, RoundRobinScheduler
from repro.mptcp.subflow import Subflow, SubflowPriority
from repro.net.interface import InterfaceKind
from repro.sim.engine import Simulator
from repro.tcp.connection import FiniteSource


def make_subflow(sim, kind=InterfaceKind.WIFI, mbps=8.0, size=5_000_000.0, **kwargs):
    path = make_path(sim, kind=kind, mbps=mbps)
    source = FiniteSource(size)
    return Subflow(sim, path, source, rng=rng(), **kwargs), source


class TestSubflowLifecycle:
    def test_establish_and_transfer(self):
        sim = Simulator()
        subflow, source = make_subflow(sim, size=500_000.0)
        subflow.establish()
        sim.run(until=10.0)
        assert subflow.established
        assert source.exhausted
        assert subflow.bytes_delivered == pytest.approx(500_000.0)

    def test_interface_kind_exposed(self):
        sim = Simulator()
        subflow, _ = make_subflow(sim, kind=InterfaceKind.LTE)
        assert subflow.interface_kind is InterfaceKind.LTE

    def test_suspend_before_establish_rejected(self):
        sim = Simulator()
        subflow, _ = make_subflow(sim)
        with pytest.raises(ProtocolError):
            subflow.suspend()

    def test_suspend_stops_transfer(self):
        sim = Simulator()
        subflow, _ = make_subflow(sim)
        subflow.establish()
        sim.run(until=1.0)
        subflow.suspend()
        assert subflow.suspended
        assert subflow.priority is SubflowPriority.LOW
        sim.run(until=1.5)
        delivered = subflow.bytes_delivered
        sim.run(until=3.0)
        assert subflow.bytes_delivered == delivered

    def test_resume_restores_transfer(self):
        sim = Simulator()
        subflow, _ = make_subflow(sim)
        subflow.establish()
        sim.run(until=1.0)
        subflow.suspend()
        sim.run(until=2.0)
        subflow.resume()
        sim.run(until=3.0)
        assert not subflow.suspended
        assert subflow.sending or subflow.bytes_delivered > 0

    def test_resume_with_rtt_reset(self):
        sim = Simulator()
        subflow, _ = make_subflow(sim)
        subflow.establish()
        sim.run(until=1.0)
        subflow.suspend()
        subflow.resume(reset_rtt=True)
        assert subflow.effective_rtt == 0.0

    def test_suspend_resume_counters(self):
        sim = Simulator()
        subflow, _ = make_subflow(sim)
        subflow.establish()
        sim.run(until=1.0)
        subflow.suspend()
        subflow.suspend()  # idempotent
        subflow.resume()
        assert subflow.suspend_count == 1
        assert subflow.resume_count == 1

    def test_backup_subflow_establishes_paused(self):
        sim = Simulator()
        subflow, _ = make_subflow(sim)
        subflow.priority = SubflowPriority.BACKUP
        subflow.establish()
        sim.run(until=2.0)
        assert subflow.established
        assert subflow.suspended
        assert subflow.bytes_delivered == 0.0

    def test_usable_requires_established_unsuspended_up(self):
        sim = Simulator()
        subflow, _ = make_subflow(sim)
        assert not subflow.usable
        subflow.establish()
        sim.run(until=1.0)
        assert subflow.usable
        subflow.path.interface.up = False
        assert not subflow.usable


class TestMinRttScheduler:
    def _established(self, sim, kind, mbps, rtt):
        path = make_path(sim, kind=kind, mbps=mbps, rtt=rtt)
        sf = Subflow(sim, path, FiniteSource(1e7), rng=rng())
        sf.establish()
        return sf

    def test_prefers_lowest_rtt(self):
        sim = Simulator()
        fast = self._established(sim, InterfaceKind.WIFI, 8.0, 0.02)
        slow = self._established(sim, InterfaceKind.LTE, 8.0, 0.2)
        sim.run(until=1.0)
        sched = MinRttScheduler()
        assert sched.select([slow, fast]) is fast

    def test_zeroed_rtt_sorts_first(self):
        sim = Simulator()
        a = self._established(sim, InterfaceKind.WIFI, 8.0, 0.02)
        b = self._established(sim, InterfaceKind.LTE, 8.0, 0.2)
        sim.run(until=1.0)
        b.suspend()
        b.resume(reset_rtt=True)
        sched = MinRttScheduler()
        assert sched.select([a, b]) is b

    def test_skips_suspended(self):
        sim = Simulator()
        a = self._established(sim, InterfaceKind.WIFI, 8.0, 0.02)
        b = self._established(sim, InterfaceKind.LTE, 8.0, 0.2)
        sim.run(until=1.0)
        a.suspend()
        sched = MinRttScheduler()
        assert sched.select([a, b]) is b

    def test_empty_when_nothing_usable(self):
        assert MinRttScheduler().select([]) is None


class TestRoundRobin:
    def test_cycles(self):
        sim = Simulator()
        path1 = make_path(sim, kind=InterfaceKind.WIFI)
        path2 = make_path(sim, kind=InterfaceKind.LTE)
        a = Subflow(sim, path1, FiniteSource(1e7), rng=rng())
        b = Subflow(sim, path2, FiniteSource(1e7), rng=rng())
        a.establish()
        b.establish()
        sim.run(until=1.0)
        sched = RoundRobinScheduler()
        first = sched.select([a, b])
        second = sched.select([a, b])
        assert {first, second} == {a, b}


class TestLiaCoupling:
    def _pair(self, sim):
        a = self._established(sim, InterfaceKind.WIFI, 8.0, 0.05)
        b = self._established(sim, InterfaceKind.LTE, 8.0, 0.05)
        return a, b

    def _established(self, sim, kind, mbps, rtt):
        path = make_path(sim, kind=kind, mbps=mbps, rtt=rtt)
        sf = Subflow(sim, path, FiniteSource(1e8), rng=rng())
        sf.establish()
        return sf

    def test_single_subflow_uncoupled(self):
        sim = Simulator()
        a = self._established(sim, InterfaceKind.WIFI, 8.0, 0.05)
        sim.run(until=1.0)
        coupling = LiaCoupling(lambda: [a])
        assert coupling.factor_for(a) == 1.0

    def test_two_subflows_factor_below_one(self):
        sim = Simulator()
        a, b = self._pair(sim)
        sim.run(until=2.0)
        coupling = LiaCoupling(lambda: [a, b])
        fa = coupling.factor_for(a)
        fb = coupling.factor_for(b)
        assert 0.0 < fa <= 1.0
        assert 0.0 < fb <= 1.0
        # Symmetric paths -> total coupled growth no faster than one TCP.
        assert fa * a.cwnd / (a.cwnd + b.cwnd) + fb * b.cwnd / (
            a.cwnd + b.cwnd
        ) <= 1.0 + 1e-9

    def test_alpha_equal_paths_is_about_one_over_n(self):
        """For n identical subflows, RFC 6356 alpha -> 1/n x n = ...
        alpha = total * (w/r^2) / (n w / r)^2 = 1/n."""
        sim = Simulator()
        a, b = self._pair(sim)
        sim.run(until=0.2)  # same cwnd, same rtt early on
        alpha = LiaCoupling.alpha([a, b])
        assert alpha == pytest.approx(0.5, rel=0.2)

    def test_alpha_empty_is_one(self):
        assert LiaCoupling.alpha([]) == 1.0
