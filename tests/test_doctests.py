"""Doc-adjacent behaviour tests: the claims made in module docstrings
and DESIGN.md are executable here, so documentation cannot silently rot.
"""

import pytest

from repro.core.delay import minimum_tau
from repro.core.eib import cached_eib
from repro.energy.device import GALAXY_S3
from repro.energy.efficiency import Strategy, per_byte_energy
from repro.net.interface import InterfaceKind
from repro.units import mbps_to_bytes_per_sec


class TestDesignDocClaims:
    def test_design_calibration_example_lte1(self):
        """DESIGN.md §5: 'the WiFi-only threshold lands at ≈0.53x the
        LTE throughput and the LTE-only threshold at ≈0.13x'."""
        eib = cached_eib(GALAXY_S3)
        cell_only, wifi_only = eib.thresholds(1.0)
        assert wifi_only == pytest.approx(0.53, abs=0.05)
        assert cell_only == pytest.approx(0.13, abs=0.03)

    def test_paper_hysteresis_worked_example(self):
        """§3.4's worked example: at LTE 1 Mbps and a ~0.5 WiFi-only
        threshold, the BOTH->WIFI_ONLY switch needs threshold x 1.1 and
        the reverse threshold x 0.9."""
        eib = cached_eib(GALAXY_S3)
        _cell, wifi_thr = eib.thresholds(1.0)
        up = wifi_thr * 1.1
        down = wifi_thr * 0.9
        assert down < wifi_thr < up
        # Matches the paper's 0.452 / 0.502 / 0.552 structure (scaled to
        # our calibrated threshold).
        assert up / down == pytest.approx(0.552 / 0.452, rel=0.01)

    def test_scheduler_utilization_docstring_numbers(self):
        """mptcp.connection docstring: 'with WiFi at 12 Mbps an LTE
        subflow capable of 10 Mbps gets ~45% of it; with WiFi collapsed
        to 0.5 Mbps it gets ~95%'."""
        cap = mbps_to_bytes_per_sec(10.0)
        fast_pref = mbps_to_bytes_per_sec(12.0)
        slow_pref = mbps_to_bytes_per_sec(0.5)
        assert cap / (cap + fast_pref) == pytest.approx(0.45, abs=0.01)
        assert cap / (cap + slow_pref) == pytest.approx(0.95, abs=0.01)

    def test_paper_tau_bound_example(self):
        """§4.1: 'the estimated condition based on equation (1) to
        guarantee ten bandwidth samples is τ >= 2.67 s' — our
        implementation lands in that neighbourhood for a plausible
        campus-WiFi operating point."""
        tau = minimum_tau(
            mbps_to_bytes_per_sec(10.0), wifi_rtt=0.2, required_samples=10
        )
        assert 2.0 < tau < 3.0

    def test_kappa_design_point(self):
        """§4.1: 'MPTCP is rarely more energy efficient than single
        path TCP when downloading a file smaller than [1 MB]' — at the
        EIB level the steady-state BOTH advantage over WiFi-only for a
        mid-V operating point is smaller than LTE's fixed overhead when
        spread over 1 MB."""
        wifi, lte = 0.3, 1.0  # inside the V
        both = per_byte_energy(GALAXY_S3, Strategy.BOTH, wifi, lte)
        wifi_only = per_byte_energy(GALAXY_S3, Strategy.WIFI_ONLY, wifi, lte)
        saving_per_mb = (wifi_only - both) * 1_000_000.0
        assert saving_per_mb < GALAXY_S3.fixed_overhead(InterfaceKind.LTE)
