"""Per-run perf telemetry, the bench suite, the CHK6xx tier, and the
``repro perf`` / ``trace timeline`` CLI surface."""

import copy
import json

import pytest

from repro.check.perf import (
    check_bench_doc,
    check_perf_record,
    check_perf_target,
    check_spans,
)
from repro.check.findings import Report
from repro.cli import main
from repro.errors import ConfigurationError
from repro.runtime import PerfMeter, PerfRecord, PerfStore, RunSpec
from repro.runtime.bench import (
    bench_specs,
    compare_bench,
    format_bench_table,
    format_comparison,
    latest_bench,
    measure_spec,
    read_bench,
    run_bench,
    write_bench,
)
from repro.runtime.manifest import RunManifest
from repro.units import mib


def tiny_spec(engine="fluid", seed=0):
    return RunSpec(
        protocol="emptcp",
        builder="static",
        kwargs={"good_wifi": True, "download_bytes": mib(1)},
        seed=seed,
        engine=engine,
    )


def make_record(**overrides):
    base = dict(
        spec_hash="a" * 64,
        label="static/emptcp#s0",
        engine="fluid",
        wall_s=2.0,
        sim_s=10.0,
        events=100,
        events_per_sec=50.0,
        peak_rss_kb=1024,
    )
    base.update(overrides)
    return PerfRecord(**base)


class TestPerfRecord:
    def test_dict_roundtrip(self):
        record = make_record()
        assert PerfRecord.from_dict(record.to_dict()) == record
        assert record.to_dict()["schema"] == 1

    def test_meter_measures_a_real_run(self):
        spec = tiny_spec()
        meter = PerfMeter(spec)
        spec.execute()
        record = meter.finish(0.5)
        assert record.spec_hash == spec.content_hash()
        assert record.engine == "fluid"
        assert record.events > 0
        assert record.sim_s > 0
        assert record.events_per_sec == pytest.approx(record.events / 0.5)
        assert record.peak_rss_kb > 0

    def test_meter_diffs_only_its_own_run(self):
        spec = tiny_spec()
        spec.execute()  # advance the process-wide accumulator
        meter = PerfMeter(spec)
        record = meter.finish(1.0)
        assert record.events == 0
        assert record.sim_s == pytest.approx(0.0)


class TestPerfStore:
    def test_record_history_best(self, tmp_path):
        store = PerfStore(tmp_path / "perf")
        slow = make_record(wall_s=4.0, events_per_sec=25.0)
        fast = make_record(wall_s=1.0, events_per_sec=100.0)
        store.record(slow)
        store.record(fast)
        history = store.history(slow.spec_hash)
        assert history == [slow, fast]
        assert store.best(slow.spec_hash) == fast
        assert store.spec_hashes() == [slow.spec_hash]

    def test_missing_and_malformed_lines(self, tmp_path):
        store = PerfStore(tmp_path / "perf")
        assert store.history("deadbeef") == []
        assert store.best("deadbeef") is None
        record = make_record()
        path = store.record(record)
        path.write_text(path.read_text() + "not json\n")
        assert store.history(record.spec_hash) == [record]


class TestManifestPerf:
    def test_perf_roundtrips_with_trace(self, tmp_path):
        spec = tiny_spec()
        record = make_record(spec_hash=spec.content_hash())
        path = tmp_path / "manifest.jsonl"
        with RunManifest(path) as manifest:
            manifest.record(spec, "executed", wall_time_s=0.5,
                            trace="a.trace.jsonl", perf=record.to_dict())
            manifest.record(spec, "cached")
        first, second = RunManifest.read(path)
        assert first.trace == "a.trace.jsonl"
        assert PerfRecord.from_dict(first.perf) == record
        assert second.perf is None

    def test_old_schema_manifest_without_perf_key_parses(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "manifest.jsonl"
        with RunManifest(path) as manifest:
            entry = manifest.record(spec, "executed", wall_time_s=0.5)
        # Strip the perf (and trace) keys to simulate a pre-perf file.
        line = json.loads(path.read_text())
        del line["perf"]
        del line["trace"]
        path.write_text(json.dumps(line) + "\n")
        (parsed,) = RunManifest.read(path)
        assert parsed.perf is None and parsed.trace == ""
        assert parsed.spec_hash == entry.spec_hash


class TestBench:
    def test_bench_specs_cover_both_figures_and_engines(self):
        keys = [key for key, _spec in bench_specs()]
        assert "fig05-static-good/emptcp@fluid" in keys
        assert "fig06-static-bad/emptcp@packet" in keys
        assert len(keys) == 4

    def test_measure_spec_validates_repeats(self):
        with pytest.raises(ConfigurationError):
            measure_spec(tiny_spec(), repeats=0)

    def test_run_write_read_compare(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        doc = run_bench(size_mb=0.25, repeats=1,
                        protocols=("emptcp",), engines=("fluid",),
                        fleet_sessions=100)
        # fig05 + fig06 on the fluid engine, the fleet record, and the
        # batch-submit (scheduler facade) record
        assert len(doc["records"]) == 4
        fleet = doc["records"][-2]
        assert fleet["key"] == "fleet-100/flow"
        assert fleet["engine"] == "flow"
        assert fleet["sessions"] == 100 and fleet["events"] > 0
        batch = doc["records"][-1]
        assert batch["key"] == "batch-fig56/submit"
        assert batch["batch_specs"] == 2 and batch["events"] > 0
        assert check_bench_doc(doc).ok
        path = write_bench(doc)
        assert path.name.startswith("BENCH_") and read_bench(path) == doc
        assert latest_bench() == path
        assert compare_bench(doc, doc).ok
        assert "events/s" in format_bench_table(doc)

    def test_doctored_regression_detected(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        doc = run_bench(size_mb=0.25, repeats=1,
                        protocols=("emptcp",), engines=("fluid",),
                        fleet_sessions=0)
        doctored = copy.deepcopy(doc)
        doctored["records"][0]["events_per_sec"] *= 0.8  # >10% drop
        comparison = compare_bench(doc, doctored)
        assert not comparison.ok
        assert len(comparison.regressions) == 1
        assert "REGRESSION" in format_comparison(comparison)

    def test_disjoint_keys_reported_not_compared(self):
        doc_a = {"records": [{"key": "a", "events_per_sec": 1.0}]}
        doc_b = {"records": [{"key": "b", "events_per_sec": 1.0}]}
        comparison = compare_bench(doc_a, doc_b)
        assert comparison.ok  # nothing comparable, nothing regressed
        assert comparison.only_baseline == ["a"]
        assert comparison.only_current == ["b"]

    def test_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            compare_bench({"records": []}, {"records": []}, threshold=1.5)

    def test_read_bench_rejects_non_bench_files(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{}")
        with pytest.raises(ConfigurationError):
            read_bench(path)
        with pytest.raises(ConfigurationError):
            read_bench(tmp_path / "missing.json")


class TestChk6xx:
    def test_chk601_clean_record(self):
        report = Report(tier="perf")
        check_perf_record(make_record().to_dict(), report)
        assert report.ok and report.checked == 1

    def test_chk601_missing_key(self):
        report = Report(tier="perf")
        data = make_record().to_dict()
        del data["events"]
        check_perf_record(data, report)
        assert [f.rule for f in report.findings] == ["CHK601"]

    def test_chk601_inconsistent_throughput(self):
        report = Report(tier="perf")
        check_perf_record(make_record(events_per_sec=999.0).to_dict(), report)
        assert any("inconsistent" in f.message for f in report.findings)

    def test_chk602_orphan_and_bad_depth(self):
        profile = {"spans": [
            {"path": "root", "name": "root", "depth": 1, "count": 1,
             "wall_s": 1.0, "sim_s": 1.0},
            {"path": "ghost/child", "name": "child", "depth": 2, "count": 1,
             "wall_s": 0.1, "sim_s": 0.1},
            {"path": "root/kid", "name": "kid", "depth": 5, "count": 0,
             "wall_s": 0.1, "sim_s": 0.1},
        ]}
        report = check_spans(profile)
        rules = sorted(f.rule for f in report.findings)
        assert "CHK602" in rules
        messages = " ".join(f.message for f in report.findings)
        assert "orphan" in messages and "count" in messages and "depth" in messages

    def test_chk603_children_exceed_parent(self):
        profile = {"spans": [
            {"path": "root", "name": "root", "depth": 1, "count": 1,
             "wall_s": 0.001, "sim_s": 1.0},
            {"path": "root/a", "name": "a", "depth": 2, "count": 1,
             "wall_s": 0.0005, "sim_s": 0.8},
            {"path": "root/b", "name": "b", "depth": 2, "count": 1,
             "wall_s": 0.0005, "sim_s": 0.8},
        ]}
        report = check_spans(profile)
        assert [f.rule for f in report.findings] == ["CHK603"]
        assert "sim" in report.findings[0].message

    def test_chk603_real_profile_is_clean(self):
        import repro.obs as obs

        with obs.capture(trace=False, metrics=False, profile=True) as session:
            tiny_spec().execute()
        report = check_spans(session.profiler.to_dict())
        assert report.ok and report.checked >= 3

    def test_check_perf_target_on_files(self, tmp_path):
        bench = tmp_path / "BENCH_x.json"
        bench.write_text(json.dumps(
            {"records": [make_record().to_dict()]}))
        spans = tmp_path / "run.spans.json"
        spans.write_text(json.dumps({"spans": [
            {"path": "root", "name": "root", "depth": 1, "count": 1,
             "wall_s": 1.0, "sim_s": 1.0}]}))
        report = check_perf_target(tmp_path)
        assert report.ok and report.checked == 2
        broken = tmp_path / "broken.spans.json"
        broken.write_text("{")
        assert not check_perf_target(broken).ok


class TestTimeline:
    def test_timeline_merges_events_and_spans(self, tmp_path):
        trace = tmp_path / "run.trace.jsonl"
        trace.write_text(json.dumps(
            {"type": "tcp.loss", "t": 1.5, "conn": "c", "interface": "wifi"}
        ) + "\n")
        (tmp_path / "run.spans.json").write_text(json.dumps({"spans": [
            {"path": "sim.run", "count": 2, "wall_s": 0.001, "sim_s": 9.0,
             "first_sim_t": 0.0}]}))
        from repro.obs.summarize import build_timeline, format_timeline

        entries = build_timeline(trace)
        assert [e["kind"] for e in entries] == ["span", "event"]
        text = format_timeline(entries)
        assert "tcp.loss" in text and "sim.run" in text
        assert "1 event(s), 1 span path(s)" in text

    def test_timeline_without_spans_file(self, tmp_path):
        trace = tmp_path / "run.trace.jsonl"
        trace.write_text(json.dumps({"type": "tcp.loss", "t": 0.1,
                                     "conn": "c", "interface": "wifi"}) + "\n")
        from repro.obs.summarize import build_timeline

        assert [e["kind"] for e in build_timeline(trace)] == ["event"]

    def test_summarize_skips_empty_trace_file(self, tmp_path):
        from repro.obs.summarize import format_trace_summary, summarize_target

        good = tmp_path / "good.trace.jsonl"
        good.write_text(json.dumps({"type": "tcp.loss", "t": 0.1,
                                    "conn": "c", "interface": "wifi"}) + "\n")
        (tmp_path / "empty.trace.jsonl").write_text("")
        summary = summarize_target(tmp_path)
        assert summary["events"] == 1
        assert summary["skipped"] == ["empty.trace.jsonl"]
        assert "skipped empty trace file" in format_trace_summary(summary)


class TestPerfCli:
    def run_cli(self, capsys, *argv):
        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_perf_profile_prints_span_table(self, capsys):
        code, out, _err = self.run_cli(
            capsys, "perf", "profile", "emptcp", "good", "--size-mb", "1")
        assert code == 0
        assert "sim.run" in out and "sim.dispatch" in out
        assert "perf: OK" in out

    def test_perf_profile_rejects_unknown_protocol(self, capsys):
        code, _out, err = self.run_cli(capsys, "perf", "profile", "nope")
        assert code == 2 and "unknown protocol" in err

    def test_perf_record_compare_check_workflow(self, capsys, tmp_path,
                                                monkeypatch):
        monkeypatch.chdir(tmp_path)
        code, out, _err = self.run_cli(
            capsys, "perf", "record", "--size-mb", "0.25", "--runs", "1")
        assert code == 0 and "bench record written to" in out
        bench = latest_bench(tmp_path)
        assert bench is not None

        code, out, _err = self.run_cli(
            capsys, "perf", "compare", str(bench), str(bench))
        assert code == 0 and "0 regression(s)" in out

        doctored = json.loads(bench.read_text())
        doctored["records"][0]["events_per_sec"] *= 0.5
        doctored_path = tmp_path / "doctored.json"
        doctored_path.write_text(json.dumps(doctored))
        code, out, _err = self.run_cli(
            capsys, "perf", "compare", str(bench), str(doctored_path))
        assert code == 1 and "REGRESSION" in out

        # perf check re-runs the suite against the latest BENCH_*.json
        code, out, _err = self.run_cli(
            capsys, "perf", "check", "--runs", "1")
        assert code in (0, 1)  # wall-clock noise may flag a regression
        assert str(bench.name) in out

    def test_perf_compare_usage_error(self, capsys):
        code, _out, err = self.run_cli(capsys, "perf", "compare")
        assert code == 2 and "usage" in err

    def test_perf_check_without_baseline_errors(self, capsys, tmp_path,
                                                monkeypatch):
        monkeypatch.chdir(tmp_path)
        code, _out, err = self.run_cli(capsys, "perf", "check")
        assert code == 2 and "no baseline" in err

    def test_unknown_perf_subcommand(self, capsys):
        code, _out, err = self.run_cli(capsys, "perf", "bogus")
        assert code == 2 and "profile, record" in err

    def test_check_perf_subcommand(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        bench = tmp_path / "BENCH_1.json"
        bench.write_text(json.dumps({"records": [make_record().to_dict()]}))
        code, out, _err = self.run_cli(capsys, "check", "perf")
        assert code == 0 and "perf: OK" in out

    def test_check_perf_without_artifacts_errors(self, capsys, tmp_path,
                                                 monkeypatch):
        monkeypatch.chdir(tmp_path)
        code, _out, err = self.run_cli(
            capsys, "check", "perf", "--cache-dir", str(tmp_path / "cache"))
        assert code == 2 and "no BENCH_" in err

    def test_trace_typo_lists_subcommands_before_path_check(self, capsys,
                                                            tmp_path):
        code, _out, err = self.run_cli(
            capsys, "trace", "summarise",
            "--cache-dir", str(tmp_path / "nonexistent"))
        assert code == 2
        assert "summarize, validate, timeline, or tree" in err

    def test_trace_timeline_cli(self, capsys, tmp_path):
        trace = tmp_path / "run.trace.jsonl"
        trace.write_text(json.dumps({"type": "tcp.loss", "t": 0.3,
                                     "conn": "c", "interface": "wifi"}) + "\n")
        code, out, _err = self.run_cli(capsys, "trace", "timeline", str(trace))
        assert code == 0 and "tcp.loss" in out

    def test_run_with_profile_exports_spans(self, capsys, tmp_path):
        code, _out, _err = self.run_cli(
            capsys, "run", "emptcp", "good", "--size-mb", "1", "--runs", "1",
            "--trace", "--profile", "--cache-dir", str(tmp_path))
        assert code == 0
        spans = list((tmp_path / "obs").glob("*.spans.json"))
        assert len(spans) == 1
        profile = json.loads(spans[0].read_text())
        assert check_spans(profile).ok

    def test_executed_runs_carry_perf_in_manifest(self, capsys, tmp_path):
        manifest_path = tmp_path / "m.jsonl"
        code, _out, _err = self.run_cli(
            capsys, "run", "emptcp", "good", "--size-mb", "1", "--runs", "1",
            "--manifest", str(manifest_path),
            "--cache-dir", str(tmp_path / "cache"))
        assert code == 0
        entries = RunManifest.read(manifest_path)
        executed = [e for e in entries if e.outcome == "executed"]
        assert executed and all(e.perf is not None for e in executed)
        for entry in executed:
            record = PerfRecord.from_dict(entry.perf)
            assert record.events > 0
            report = Report(tier="perf")
            check_perf_record(entry.perf, report)
            assert report.ok
