"""Tests for the path usage controller and its 10% safety factor."""

import pytest

from repro.core.config import EMPTCPConfig
from repro.core.controller import PathDecision, PathUsageController
from repro.core.eib import cached_eib
from repro.core.predictor import BandwidthPredictor
from repro.energy.device import GALAXY_S3
from repro.net.interface import InterfaceKind
from repro.sim.engine import Simulator
from repro.units import mbps_to_bytes_per_sec

WIFI = InterfaceKind.WIFI
LTE = InterfaceKind.LTE


def make_controller(initial=PathDecision.BOTH, **config_kwargs):
    sim = Simulator()
    config = EMPTCPConfig(**config_kwargs)
    predictor = BandwidthPredictor(sim, config)
    eib = cached_eib(GALAXY_S3, LTE)
    controller = PathUsageController(config, eib, predictor, LTE, initial=initial)
    return controller, predictor, eib


def feed(predictor, wifi_mbps, lte_mbps, n=20):
    for _ in range(n):
        predictor.observe(WIFI, mbps_to_bytes_per_sec(wifi_mbps))
        predictor.observe(LTE, mbps_to_bytes_per_sec(lte_mbps))


class TestBasicDecisions:
    def test_fast_wifi_switches_to_wifi_only(self):
        controller, predictor, _ = make_controller()
        feed(predictor, 10.0, 8.0)
        assert controller.decide() is PathDecision.WIFI_ONLY

    def test_slow_wifi_keeps_both(self):
        controller, predictor, _ = make_controller()
        feed(predictor, 1.0, 8.0)
        assert controller.decide() is PathDecision.BOTH

    def test_cellular_only_vetoed_by_default(self):
        controller, predictor, _ = make_controller()
        feed(predictor, 0.05, 8.0)  # deep in the LTE-only region
        assert controller.decide() is PathDecision.BOTH

    def test_cellular_only_allowed_when_configured(self):
        controller, predictor, _ = make_controller(allow_cellular_only=True)
        feed(predictor, 0.05, 8.0)
        assert controller.decide() is PathDecision.CELLULAR_ONLY

    def test_switch_counter_and_log(self):
        controller, predictor, _ = make_controller()
        feed(predictor, 10.0, 8.0)
        controller.decide(now=1.0)
        assert controller.switches == 1
        assert controller.decision_log == [(1.0, PathDecision.WIFI_ONLY)]
        controller.decide(now=2.0)
        assert controller.switches == 1  # no change, no extra switch


class TestHysteresis:
    """The paper's worked example (§3.4): at LTE 1 Mbps the raw
    WiFi-only threshold is ~0.5 Mbps.  From BOTH, switching to
    WiFi-only requires threshold x 1.1; from WiFi-only, switching back
    requires threshold x 0.9."""

    def _thresholds(self, controller, lte=1.0):
        return controller.eib.thresholds(lte)

    def test_from_both_needs_margin_above_threshold(self):
        controller, predictor, _ = make_controller(initial=PathDecision.BOTH)
        _, wifi_thr = self._thresholds(controller)
        feed(predictor, wifi_thr * 1.05, 1.0)  # above raw, below +10%
        assert controller.decide() is PathDecision.BOTH
        feed(predictor, wifi_thr * 1.15, 1.0)
        assert controller.decide() is PathDecision.WIFI_ONLY

    def test_from_wifi_only_needs_margin_below_threshold(self):
        controller, predictor, _ = make_controller(initial=PathDecision.WIFI_ONLY)
        _, wifi_thr = self._thresholds(controller)
        feed(predictor, wifi_thr * 0.95, 1.0)  # below raw, above -10%
        assert controller.decide() is PathDecision.WIFI_ONLY
        feed(predictor, wifi_thr * 0.85, 1.0)
        assert controller.decide() is PathDecision.BOTH

    def test_no_oscillation_at_the_boundary(self):
        """Throughput hovering exactly at the raw threshold must not
        flip the decision back and forth."""
        controller, predictor, _ = make_controller(initial=PathDecision.BOTH)
        _, wifi_thr = self._thresholds(controller)
        for i in range(50):
            wobble = wifi_thr * (1.0 + 0.03 * (-1) ** i)  # ±3% noise
            feed(predictor, wobble, 1.0, n=1)
            controller.decide()
        assert controller.switches <= 1

    def test_zero_safety_factor_flips_at_threshold(self):
        controller, predictor, _ = make_controller(
            initial=PathDecision.BOTH, safety_factor=0.0
        )
        _, wifi_thr = self._thresholds(controller)
        feed(predictor, wifi_thr * 1.01, 1.0)
        assert controller.decide() is PathDecision.WIFI_ONLY

    def test_widened_edges_are_exact(self):
        """Both widened transition edges sit at exactly ±10% of the EIB
        thresholds.  ``_decide_with_hysteresis`` is driven directly —
        Holt-Winters forecasts only converge approximately, and these
        tests pin the edge itself."""
        lte = 1.0
        controller, _, _ = make_controller(initial=PathDecision.BOTH)
        _, wifi_thr = self._thresholds(controller, lte)
        sf = controller.config.safety_factor
        assert sf == 0.10

        # suspend edge (BOTH -> WIFI_ONLY): fires at exactly thr*(1+sf)
        edge_up = wifi_thr * (1 + sf)
        eps = wifi_thr * 1e-9
        assert (
            controller._decide_with_hysteresis(edge_up - eps, lte)
            is PathDecision.BOTH
        )
        assert (
            controller._decide_with_hysteresis(edge_up, lte)
            is PathDecision.WIFI_ONLY
        )

        # resume edge (WIFI_ONLY -> BOTH): fires strictly below thr*(1-sf)
        controller, _, _ = make_controller(initial=PathDecision.WIFI_ONLY)
        edge_down = wifi_thr * (1 - sf)
        assert (
            controller._decide_with_hysteresis(edge_down, lte)
            is PathDecision.WIFI_ONLY
        )
        assert (
            controller._decide_with_hysteresis(edge_down - eps, lte)
            is PathDecision.BOTH
        )

    @pytest.mark.parametrize(
        "initial,wifi_factor,expected",
        [
            # From BOTH: anything in [thr*0.9, thr*1.1) stays BOTH.
            (PathDecision.BOTH, 0.90, PathDecision.BOTH),
            (PathDecision.BOTH, 1.00, PathDecision.BOTH),
            (PathDecision.BOTH, 1.09, PathDecision.BOTH),
            (PathDecision.BOTH, 1.10, PathDecision.WIFI_ONLY),
            (PathDecision.BOTH, 1.25, PathDecision.WIFI_ONLY),
            # From WIFI_ONLY: anything in [thr*0.9, thr*1.1) stays put.
            (PathDecision.WIFI_ONLY, 1.10, PathDecision.WIFI_ONLY),
            (PathDecision.WIFI_ONLY, 1.00, PathDecision.WIFI_ONLY),
            (PathDecision.WIFI_ONLY, 0.91, PathDecision.WIFI_ONLY),
            (PathDecision.WIFI_ONLY, 0.90, PathDecision.WIFI_ONLY),
            (PathDecision.WIFI_ONLY, 0.89, PathDecision.BOTH),
        ],
    )
    def test_wifi_only_band_parametrized(self, initial, wifi_factor, expected):
        lte = 1.0
        controller, _, _ = make_controller(initial=initial)
        _, wifi_thr = self._thresholds(controller, lte)
        decision = controller._decide_with_hysteresis(
            wifi_thr * wifi_factor, lte
        )
        assert decision is expected

    def test_no_oscillation_straddling_the_threshold(self):
        """A bandwidth alternating across the raw threshold (but inside
        the ±10% hysteresis band) never flips the decision — from
        either starting state."""
        lte = 1.0
        for initial in (PathDecision.BOTH, PathDecision.WIFI_ONLY):
            controller, _, _ = make_controller(initial=initial)
            _, wifi_thr = self._thresholds(controller, lte)
            for i in range(100):
                wifi = wifi_thr * (1.0 + 0.08 * (-1) ** i)  # ±8%: straddles
                decision = controller._decide_with_hysteresis(wifi, lte)
                assert decision is initial

    def test_cellular_only_exits_with_hysteresis(self):
        controller, predictor, _ = make_controller(
            initial=PathDecision.CELLULAR_ONLY, allow_cellular_only=True
        )
        cell_thr, _ = self._thresholds(controller, lte=8.0)
        feed(predictor, cell_thr * 1.05, 8.0)
        assert controller.decide() is PathDecision.CELLULAR_ONLY
        feed(predictor, cell_thr * 1.2, 8.0)
        assert controller.decide() is PathDecision.BOTH


class TestRawDecision:
    def test_raw_matches_eib(self):
        controller, _, eib = make_controller()
        assert controller.raw_decision(10.0, 1.0) is PathDecision.WIFI_ONLY
        assert controller.raw_decision(0.05, 8.0) is PathDecision.CELLULAR_ONLY
        cell_thr, wifi_thr = eib.thresholds(2.0)
        assert (
            controller.raw_decision((cell_thr + wifi_thr) / 2, 2.0)
            is PathDecision.BOTH
        )

    def test_never_activated_cellular_uses_initial_bandwidth(self):
        """Before LTE is ever used the predictor assumes 5 Mbps, so a
        fast WiFi still yields WIFI_ONLY."""
        controller, predictor, _ = make_controller(initial=PathDecision.WIFI_ONLY)
        for _ in range(10):
            predictor.observe(WIFI, mbps_to_bytes_per_sec(12.0))
        assert controller.decide() is PathDecision.WIFI_ONLY
