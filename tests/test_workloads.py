"""Tests for workload generators: background traffic, mobility, web,
wild environments."""

import random

import pytest

from repro.analysis.categorize import Category, categorize
from repro.errors import WorkloadError
from repro.net.bandwidth import ConstantCapacity
from repro.net.contention import WiFiChannel
from repro.sim.engine import Simulator
from repro.units import kib
from repro.workloads.background import OnOffUdpNode, make_interferers
from repro.workloads.mobility import (
    MobilityRoute,
    Waypoint,
    default_route,
    route_capacity_trace,
    wifi_rate_at_distance,
)
from repro.workloads.web import ObjectQueueSource, WebPage, cnn_like_page
from repro.workloads.wild import MAX_MBPS, MIN_MBPS, WildSampler


class TestOnOffUdpNode:
    def test_starts_in_requested_state(self):
        sim = Simulator()
        node = OnOffUdpNode(sim, 0.05, 0.05, random.Random(0), start_on=True)
        assert node.active
        assert node.rate > 0

    def test_silent_node_offers_no_load(self):
        sim = Simulator()
        node = OnOffUdpNode(sim, 0.05, 0.05, random.Random(0), start_on=False)
        assert not node.active
        assert node.rate == 0.0

    def test_transitions_happen(self):
        sim = Simulator()
        node = OnOffUdpNode(sim, 0.05, 0.05, random.Random(1))
        sim.run(until=1000.0)
        assert node.transitions > 5

    def test_mean_on_dwell_matches_lambda_off(self):
        """While on, the node turns off at rate λ_off: mean dwell 1/λ_off."""
        sim = Simulator()
        node = OnOffUdpNode(sim, 0.05, 0.025, random.Random(7), start_on=True)
        transitions = []
        orig_flip = node._flip

        def tracking_flip():
            transitions.append((sim.now, node.active))
            orig_flip()

        node._flip = tracking_flip
        sim.run(until=200_000.0)
        on_dwells = []
        last_on_start = 0.0
        for t, was_active_before in transitions:
            if was_active_before:  # flipping off: end of an on-period
                on_dwells.append(t - last_on_start)
            else:
                last_on_start = t
        mean_on = sum(on_dwells) / len(on_dwells)
        assert mean_on == pytest.approx(40.0, rel=0.2)

    def test_invalid_params_rejected(self):
        sim = Simulator()
        with pytest.raises(Exception):
            OnOffUdpNode(sim, 0.0, 0.05, random.Random(0))
        with pytest.raises(Exception):
            OnOffUdpNode(sim, 0.05, 0.05, random.Random(0), rate_bytes_per_sec=0.0)

    def test_make_interferers_attaches_n_nodes(self):
        sim = Simulator()
        channel = WiFiChannel(ConstantCapacity(1e6))
        nodes = make_interferers(sim, channel, 3, 0.05, 0.025, random.Random(0))
        assert len(nodes) == 3
        assert len(channel.interferers) == 3


class TestMobility:
    def test_route_position_interpolates(self):
        route = MobilityRoute([Waypoint(0, 0, 0), Waypoint(10, 10, 0)])
        assert route.position(5) == (5.0, 0.0)
        assert route.position(-1) == (0.0, 0.0)
        assert route.position(99) == (10.0, 0.0)

    def test_route_validation(self):
        with pytest.raises(WorkloadError):
            MobilityRoute([Waypoint(0, 0, 0)])
        with pytest.raises(WorkloadError):
            MobilityRoute([Waypoint(0, 0, 0), Waypoint(0, 1, 1)])

    def test_rate_decreases_with_distance(self):
        near = wifi_rate_at_distance(1.0, 1000.0, 30.0)
        mid = wifi_rate_at_distance(20.0, 1000.0, 30.0)
        far = wifi_rate_at_distance(60.0, 1000.0, 30.0)
        assert near > mid > far

    def test_rate_negligible_beyond_usable_range(self):
        rate = wifi_rate_at_distance(45.0, 1000.0, 30.0)
        assert rate < 50.0  # < 5% of max

    def test_floor_rate_keeps_association(self):
        rate = wifi_rate_at_distance(100.0, 1000.0, 30.0, floor_rate=10.0)
        assert rate == 10.0

    def test_trace_covers_route_duration(self):
        route = default_route()
        trace = route_capacity_trace(route, (5.0, 5.0), 1000.0, 30.0, step=1.0)
        assert trace[0][0] == 0.0
        assert trace[-1][0] >= route.duration - 1.0
        assert all(r >= 0 for _t, r in trace)

    def test_default_route_goes_out_of_range(self):
        """The Figure 11 route must include in-range and out-of-range
        stretches for the Figure 12 dynamics to exist."""
        trace = route_capacity_trace(
            default_route(), (5.0, 5.0), 1000.0, 30.0, step=1.0
        )
        rates = [r for _t, r in trace]
        assert max(rates) > 900.0  # near AP
        assert min(rates) < 50.0  # well out of range

    def test_invalid_distance_rejected(self):
        with pytest.raises(WorkloadError):
            wifi_rate_at_distance(-1.0, 1000.0, 30.0)


class TestWebPage:
    def test_cnn_like_page_shape(self):
        page = cnn_like_page()
        assert len(page) == 107
        assert all(s < kib(256) for s in page.object_sizes)
        assert page.total_bytes > 500_000  # a real page, not crumbs

    def test_deterministic_by_seed(self):
        assert cnn_like_page(seed=1).object_sizes == cnn_like_page(seed=1).object_sizes
        assert cnn_like_page(seed=1).object_sizes != cnn_like_page(seed=2).object_sizes

    def test_empty_page_rejected(self):
        with pytest.raises(WorkloadError):
            WebPage([])
        with pytest.raises(WorkloadError):
            WebPage([0.0])

    def test_queue_source_object_boundaries(self):
        src = ObjectQueueSource()
        assert src.exhausted
        src.push(100.0)
        assert not src.exhausted
        assert src.take(60.0) == 60.0
        assert src.take(60.0) == 40.0
        assert src.exhausted
        src.push(50.0)
        assert not src.exhausted

    def test_queue_source_is_not_final(self):
        assert ObjectQueueSource.final is False

    def test_queue_source_rejects_empty_object(self):
        with pytest.raises(WorkloadError):
            ObjectQueueSource().push(0.0)


class TestWildSampler:
    def test_deterministic_by_seed(self):
        a = [e.name for e in WildSampler(seed=1).environments(10)]
        b = [e.name for e in WildSampler(seed=1).environments(10)]
        assert a == b

    def test_throughputs_clamped(self):
        for env in WildSampler(seed=3).environments(200):
            assert MIN_MBPS <= env.wifi_mbps <= MAX_MBPS
            assert MIN_MBPS <= env.lte_mbps <= MAX_MBPS

    def test_all_categories_occur(self):
        """Figure 14 shows traces in all four quadrants."""
        cats = {
            categorize(e.wifi_mbps, e.lte_mbps)
            for e in WildSampler(seed=185).environments(120)
        }
        assert cats == set(Category)

    def test_rtt_includes_server_component(self):
        for env in WildSampler(seed=2).environments(30):
            assert env.wifi_rtt > env.site.wifi_access_rtt - 1e-12
            assert env.lte_rtt > env.wifi_rtt  # LTE access latency higher

    def test_invalid_count_rejected(self):
        with pytest.raises(WorkloadError):
            WildSampler().environments(0)
