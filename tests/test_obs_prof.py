"""The span profiler: nesting, aggregation, sim-time determinism,
export, and the instrumented-run integration."""

import json

import pytest

import repro.obs as obs
from repro.experiments.runner import run_scenario
from repro.experiments.static_bw import static_scenario
from repro.obs.prof import MAX_DEPTH, Profiler, format_span_table
from repro.units import mib


class FakeClock:
    """A settable sim clock for unit tests."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestProfilerCore:
    def test_spans_aggregate_by_path(self):
        prof = Profiler()
        for _ in range(3):
            with prof.span("outer"):
                with prof.span("inner"):
                    pass
        paths = {tuple(node.path): node.count for node in prof.records()}
        assert paths == {("outer",): 3, ("outer", "inner"): 3}

    def test_sibling_spans_do_not_merge(self):
        prof = Profiler()
        with prof.span("a"):
            with prof.span("x"):
                pass
        with prof.span("b"):
            with prof.span("x"):
                pass
        paths = sorted(tuple(n.path) for n in prof.records())
        assert ("a", "x") in paths and ("b", "x") in paths

    def test_sim_time_attribution(self):
        clock = FakeClock()
        prof = Profiler(clock=clock)
        with prof.span("outer"):
            clock.t = 2.0
            with prof.span("inner"):
                clock.t = 5.0
        nodes = {tuple(n.path): n for n in prof.records()}
        assert nodes[("outer",)].sim_s == pytest.approx(5.0)
        assert nodes[("outer", "inner")].sim_s == pytest.approx(3.0)
        self_wall, self_sim = prof.self_times(("outer",))
        assert self_sim == pytest.approx(2.0)
        assert self_wall >= 0.0

    def test_first_sim_t_records_entry_time(self):
        clock = FakeClock()
        prof = Profiler(clock=clock)
        clock.t = 7.5
        with prof.span("late"):
            pass
        clock.t = 9.0
        with prof.span("late"):
            pass
        (node,) = prof.records()
        assert node.first_sim_t == pytest.approx(7.5)

    def test_bind_clock_first_wins(self):
        prof = Profiler()
        first, second = FakeClock(), FakeClock()
        prof.bind_clock(first)
        prof.bind_clock(second)
        assert prof.clock is first

    def test_end_without_begin_is_noop(self):
        prof = Profiler()
        prof.end()
        assert prof.records() == []

    def test_unwind_closes_open_spans(self):
        prof = Profiler()
        prof.begin("a")
        prof.begin("b")
        assert prof.open_spans == 2
        prof.unwind()
        assert prof.open_spans == 0
        assert {tuple(n.path) for n in prof.records()} == {("a",), ("a", "b")}

    def test_depth_collapses_at_limit(self):
        prof = Profiler()
        for i in range(MAX_DEPTH + 8):
            prof.begin(f"s{i}")
        prof.unwind()
        assert max(node.depth for node in prof.records()) <= MAX_DEPTH


class TestExport:
    def test_to_dict_self_cumulative_consistency(self):
        clock = FakeClock()
        prof = Profiler(clock=clock)
        with prof.span("outer"):
            clock.t = 1.0
            with prof.span("inner"):
                clock.t = 4.0
        profile = prof.to_dict()
        assert profile["clock_bound"] is True
        by_path = {s["path"]: s for s in profile["spans"]}
        outer, inner = by_path["outer"], by_path["outer/inner"]
        assert outer["self_sim_s"] == pytest.approx(
            outer["sim_s"] - inner["sim_s"]
        )
        assert inner["depth"] == 2 and inner["name"] == "inner"
        json.dumps(profile)  # JSON-ready

    def test_to_dict_unwinds_open_spans(self):
        prof = Profiler()
        prof.begin("dangling")
        profile = prof.to_dict()
        assert [s["path"] for s in profile["spans"]] == ["dangling"]
        assert prof.open_spans == 0

    def test_format_span_table(self):
        prof = Profiler(clock=FakeClock())
        with prof.span("outer"):
            with prof.span("inner"):
                pass
        table = format_span_table(prof.to_dict())
        assert "outer" in table and "  inner" in table
        assert "cum ms" in table and "self sim s" in table

    def test_format_empty_profile(self):
        assert "no spans" in format_span_table(Profiler().to_dict())


class TestCaptureIntegration:
    def test_profile_capture_populates_session(self):
        with obs.capture(trace=False, metrics=False, profile=True) as session:
            assert session.tracer is None
            assert session.profiler is not None
            assert obs.profiler_or_none() is session.profiler
        assert obs.profiler_or_none() is None

    def test_instrumented_run_builds_span_tree(self):
        scenario = static_scenario(True, download_bytes=mib(1))
        with obs.capture(trace=False, metrics=False, profile=True) as session:
            run_scenario("emptcp", scenario, seed=0)
        profile = session.profiler.to_dict()
        paths = {s["path"] for s in profile["spans"]}
        assert profile["clock_bound"] is True
        assert any(p.endswith("sim.dispatch") for p in paths)
        assert any(p == "sim.run" for p in paths)
        # children never exceed their parent (the CHK603 invariant)
        by_path = {s["path"]: s for s in profile["spans"]}
        for path, span in by_path.items():
            kids = [
                s for p, s in by_path.items()
                if p.startswith(path + "/") and p.count("/") == path.count("/") + 1
            ]
            assert sum(k["sim_s"] for k in kids) <= span["sim_s"] + 1e-9

    def test_sim_time_column_is_deterministic(self):
        scenario_args = dict(download_bytes=mib(1))

        def profile_once():
            with obs.capture(trace=False, metrics=False, profile=True) as s:
                run_scenario("emptcp", static_scenario(True, **scenario_args),
                             seed=0)
            return {
                span["path"]: (span["count"], span["sim_s"])
                for span in s.profiler.to_dict()["spans"]
            }

        assert profile_once() == profile_once()

    def test_unprofiled_components_carry_no_profiler(self):
        from repro.sim.engine import Simulator

        sim = Simulator()
        assert sim._prof is None


class TestHistogramPercentiles:
    def test_percentile_exact_ranks(self):
        from repro.obs.metrics import Histogram

        hist = Histogram("h")
        for value in [30, 10, 20, 40, 50]:  # unsorted on purpose
            hist.observe(value)
        assert hist.percentile(0) == 10
        assert hist.percentile(50) == 30
        assert hist.percentile(100) == 50
        assert hist.percentile(75) == pytest.approx(40)

    def test_summary_includes_percentiles(self):
        from repro.obs.metrics import Histogram

        hist = Histogram("h")
        for value in range(1, 101):
            hist.observe(float(value))
        summary = hist.summary()
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p90"] == pytest.approx(90.1)
        assert summary["p99"] == pytest.approx(99.01)

    def test_empty_histogram_edge_case(self):
        from repro.obs.metrics import Histogram

        hist = Histogram("h")
        assert hist.percentile(50) is None
        summary = hist.summary()
        assert summary == {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                           "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}

    def test_percentile_range_validated(self):
        from repro.obs.metrics import Histogram

        with pytest.raises(ValueError):
            Histogram("h").percentile(101)

    def test_observe_after_percentile_resorts(self):
        from repro.obs.metrics import Histogram

        hist = Histogram("h")
        hist.observe(10)
        hist.observe(30)
        assert hist.percentile(100) == 30
        hist.observe(20)
        assert hist.percentile(50) == 20
