"""Prometheus text exposition (repro.obs.prom): a golden file pins the
wire format, the parser round-trips what the renderer writes, and
MetricsRegistry instruments map onto the right family kinds.
"""

from pathlib import Path

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import (
    MetricFamily,
    parse_prometheus,
    registry_families,
    render_prometheus,
    sanitize_name,
)

pytestmark = pytest.mark.runtime

GOLDEN = Path("tests/data/metrics.golden.prom")


def _golden_families():
    return [
        MetricFamily("repro_queue_submitted_total", "counter",
                     "queue jobs submitted since start").add(7),
        MetricFamily("repro_jobs_in_flight", "gauge",
                     "jobs executing per shard")
        .add(2, shard="pool-0").add(1, shard="pool-1"),
        MetricFamily("repro_cache_hit_ratio", "gauge").add(0.75),
        MetricFamily(
            "repro_run_wall_seconds", "summary",
            sum_count=(3.5, 4.0),
        ).add(0.5, quantile="0.5").add(1.25, quantile="0.9"),
    ]


class TestRender:
    def test_golden_file(self):
        # Pin the exact bytes: scrapers are line-oriented and a silent
        # format drift breaks every dashboard at once.  Regenerate with
        # `python -c "from tests.test_obs_prom import *; \
        #             GOLDEN.write_text(render_prometheus(_golden_families()))"`
        assert render_prometheus(_golden_families()) == GOLDEN.read_text()

    def test_families_sorted_and_terminated(self):
        text = render_prometheus(list(reversed(_golden_families())))
        assert text == render_prometheus(_golden_families())
        assert text.endswith("\n")
        names = [line.split()[2] for line in text.splitlines()
                 if line.startswith("# TYPE")]
        assert names == sorted(names)

    def test_label_escaping(self):
        fam = MetricFamily("m", "gauge").add(1.0, label='say "hi"\nnow')
        line = [l for l in render_prometheus([fam]).splitlines()
                if not l.startswith("#")][0]
        assert '\\"hi\\"' in line and "\\n" in line
        parsed = parse_prometheus(render_prometheus([fam]))
        assert parsed["m"][0][0]["label"] == 'say "hi"\nnow'

    def test_sanitize_name(self):
        assert sanitize_name("scheduler.cache-hits") == "scheduler_cache_hits"


class TestParse:
    def test_roundtrip(self):
        parsed = parse_prometheus(render_prometheus(_golden_families()))
        assert parsed["repro_queue_submitted_total"] == [({}, 7.0)]
        assert ({"shard": "pool-0"}, 2.0) in parsed["repro_jobs_in_flight"]
        assert parsed["repro_run_wall_seconds_sum"] == [({}, 3.5)]
        assert parsed["repro_run_wall_seconds_count"] == [({}, 4.0)]

    def test_ignores_comments_and_junk(self):
        parsed = parse_prometheus("# HELP x y\n\nnot-a-number oops\nm 1\n")
        assert parsed == {"m": [({}, 1.0)]}


class TestRegistryFamilies:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("scheduler.jobs_done").inc(3)
        registry.gauge("queue.depth").set(5.0)
        hist = registry.histogram("run.wall_s")
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        families = {f.name: f for f in registry_families(registry)}
        done = families["repro_scheduler_jobs_done_total"]
        assert done.kind == "counter" and done.samples == [({}, 3.0)]
        assert families["repro_queue_depth"].kind == "gauge"
        summary = families["repro_run_wall_s"]
        assert summary.kind == "summary"
        assert summary.sum_count == (10.0, 4.0)
        quantiles = {labels["quantile"] for labels, _ in summary.samples}
        assert quantiles == {"0.5", "0.9", "0.99"}

    def test_counter_total_suffix_not_doubled(self):
        registry = MetricsRegistry()
        registry.counter("events.total").inc()
        families = [f.name for f in registry_families(registry)]
        assert families == ["repro_events_total"]

    def test_empty_histograms_are_skipped(self):
        registry = MetricsRegistry()
        registry.histogram("quiet.wall_s")
        assert registry_families(registry) == []
