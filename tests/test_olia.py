"""Tests for the OLIA coupled congestion controller."""

import pytest

from tests.helpers import make_path, rng
from repro.errors import ProtocolError
from repro.mptcp.connection import MPTCPConnection
from repro.mptcp.olia import OliaCoupling
from repro.mptcp.subflow import Subflow
from repro.net.interface import InterfaceKind
from repro.sim.engine import Simulator
from repro.tcp.connection import FiniteSource
from repro.units import mib


def established(sim, kind, mbps, rtt):
    path = make_path(sim, kind=kind, mbps=mbps, rtt=rtt)
    sf = Subflow(sim, path, FiniteSource(1e8), rng=rng())
    sf.establish()
    return sf


class TestOliaCoupling:
    def test_single_subflow_uncoupled(self):
        sim = Simulator()
        a = established(sim, InterfaceKind.WIFI, 8.0, 0.05)
        sim.run(until=1.0)
        assert OliaCoupling(lambda: [a]).factor_for(a) == 1.0

    def test_factor_bounded(self):
        sim = Simulator()
        a = established(sim, InterfaceKind.WIFI, 8.0, 0.05)
        b = established(sim, InterfaceKind.LTE, 8.0, 0.05)
        sim.run(until=2.0)
        coupling = OliaCoupling(lambda: [a, b])
        for sf in (a, b):
            assert 0.0 <= coupling.factor_for(sf) <= 1.0

    def test_equal_paths_split_evenly(self):
        """Symmetric paths: the basis term alone, ~1/4 each for n=2
        equal windows (w/rtt)^2/(2w/rtt)^2 = 1/4."""
        sim = Simulator()
        a = established(sim, InterfaceKind.WIFI, 8.0, 0.05)
        b = established(sim, InterfaceKind.LTE, 8.0, 0.05)
        sim.run(until=0.2)  # near-identical windows early on
        coupling = OliaCoupling(lambda: [a, b])
        fa, fb = coupling.factor_for(a), coupling.factor_for(b)
        assert fa == pytest.approx(fb, rel=0.3)
        assert fa == pytest.approx(0.25, abs=0.15)

    def test_reforwarding_boosts_good_small_window_path(self):
        """OLIA's defining property: the best-quality path with the
        smaller window gets a larger growth factor than the
        maximum-window path."""
        sim = Simulator()
        fast = established(sim, InterfaceKind.WIFI, 12.0, 0.02)  # low rtt
        slow = established(sim, InterfaceKind.LTE, 12.0, 0.12)
        sim.run(until=3.0)
        # Make the slow path hold the bigger window artificially.
        slow.connection.cc.cwnd = 3 * fast.connection.cc.cwnd
        coupling = OliaCoupling(lambda: [fast, slow])
        rates = {
            sf: sf.cwnd / max(sf.effective_rtt, 1e-9) for sf in (fast, slow)
        }
        if rates[fast] > rates[slow]:  # fast path is best-quality
            assert coupling.factor_for(fast) > coupling.factor_for(slow)

    def test_mptcp_connection_accepts_olia(self):
        sim = Simulator()
        wifi = make_path(sim, InterfaceKind.WIFI, mbps=8.0, rtt=0.04)
        lte = make_path(sim, InterfaceKind.LTE, mbps=6.0, rtt=0.07)
        source = FiniteSource(mib(4))
        conn = MPTCPConnection(
            sim,
            wifi,
            source,
            secondary_paths=[lte],
            rng=rng(),
            coupling_algorithm="olia",
        )
        conn.open()
        sim.run(until=60.0)
        assert conn.completed_at is not None
        assert conn.coupling_algorithm == "olia"

    def test_unknown_algorithm_rejected(self):
        sim = Simulator()
        wifi = make_path(sim, InterfaceKind.WIFI)
        with pytest.raises(ProtocolError):
            MPTCPConnection(
                sim, wifi, FiniteSource(1e6), coupling_algorithm="cubic"
            )
