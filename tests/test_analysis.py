"""Tests for statistics, categorisation, and report formatting."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.categorize import GOOD_THRESHOLD_MBPS, Category, categorize
from repro.analysis.report import format_table, relative_to
from repro.analysis.stats import (
    mean,
    quartiles,
    sample_std,
    sem,
    whisker_summary,
)
from repro.errors import ConfigurationError


class TestBasicStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean([])

    def test_std_matches_numpy_ddof1(self):
        xs = [3.1, 4.1, 5.9, 2.6, 5.3]
        assert sample_std(xs) == pytest.approx(np.std(xs, ddof=1))

    def test_std_of_single_sample_is_zero(self):
        assert sample_std([5.0]) == 0.0

    def test_sem_definition(self):
        """Paper eq. (2): SEM = s / sqrt(n) — with the squared deviation
        the published formula accidentally omits."""
        xs = [1.0, 2.0, 3.0, 4.0]
        assert sem(xs) == pytest.approx(sample_std(xs) / 2.0)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=100))
    def test_property_std_matches_numpy(self, xs):
        assert sample_std(xs) == pytest.approx(
            float(np.std(xs, ddof=1)), rel=1e-9, abs=1e-9
        )


class TestQuartiles:
    def test_matches_numpy_linear(self):
        xs = [1.0, 3.0, 7.0, 9.0, 12.0, 13.0, 47.0]
        q1, med, q3 = quartiles(xs)
        assert q1 == pytest.approx(np.percentile(xs, 25))
        assert med == pytest.approx(np.percentile(xs, 50))
        assert q3 == pytest.approx(np.percentile(xs, 75))

    def test_single_value(self):
        assert quartiles([5.0]) == (5.0, 5.0, 5.0)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=60))
    def test_property_ordering(self, xs):
        q1, med, q3 = quartiles(xs)
        assert q1 <= med <= q3


class TestWhiskers:
    def test_outliers_identified(self):
        xs = [1.0, 2.0, 2.0, 3.0, 3.0, 3.0, 4.0, 4.0, 100.0]
        w = whisker_summary(xs)
        assert w.outliers == (100.0,)
        assert w.whisker_high == 4.0

    def test_no_outliers_in_tight_sample(self):
        w = whisker_summary([1.0, 2.0, 3.0, 4.0, 5.0])
        assert w.outliers == ()
        assert w.whisker_low == 1.0
        assert w.whisker_high == 5.0

    def test_fences_at_1_5_iqr(self):
        xs = list(map(float, range(1, 12)))  # Q1=3.5, Q3=8.5, IQR=5
        w = whisker_summary(xs + [16.01])  # just outside Q3 + 1.5*5.125...
        # Recompute with the added point to assert consistency instead
        # of hand-derived constants:
        assert all(x <= w.q3 + 1.5 * w.iqr for x in xs)

    @given(st.lists(st.floats(min_value=-1e5, max_value=1e5), min_size=1, max_size=80))
    def test_property_outliers_plus_inliers_is_sample(self, xs):
        w = whisker_summary(xs)
        assert w.n == len(xs)
        inside = [x for x in xs if w.whisker_low <= x <= w.whisker_high]
        assert len(inside) + len(w.outliers) == len(xs)


class TestCategorize:
    def test_four_quadrants(self):
        t = GOOD_THRESHOLD_MBPS
        assert categorize(t + 1, t + 1) is Category.GOOD_GOOD
        assert categorize(t + 1, t - 1) is Category.GOOD_BAD
        assert categorize(t - 1, t + 1) is Category.BAD_GOOD
        assert categorize(t - 1, t - 1) is Category.BAD_BAD

    def test_threshold_is_8mbps(self):
        assert GOOD_THRESHOLD_MBPS == 8.0

    def test_boundary_counts_as_good(self):
        assert categorize(8.0, 8.0) is Category.GOOD_GOOD


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["x", "y"], ["long", "z"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "----" in lines[1]

    def test_format_table_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out

    def test_relative_to(self):
        class R:
            def __init__(self, e):
                self.energy_j = e

        results = {"mptcp": [R(10.0), R(10.0)], "emptcp": [R(5.0), R(5.0)]}
        rel = relative_to(results, "mptcp", "energy_j")
        assert rel["mptcp"] == pytest.approx(1.0)
        assert rel["emptcp"] == pytest.approx(0.5)
