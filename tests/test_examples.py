"""Every example script must run clean — they are the documentation's
executable half."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_the_expected_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "flaky_cafe_wifi.py",
        "commuter_walk.py",
        "web_browsing.py",
        "video_streaming.py",
        "custom_device.py",
        "two_engines.py",
        "measure_and_fit.py",
    } <= names
