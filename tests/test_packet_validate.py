"""Cross-model validation tests: fluid vs packet engines."""

import pytest

from repro.net.interface import InterfaceKind
from repro.check.packet import (
    ModelComparison,
    PathSpec,
    compare_single_path,
    fluid_mptcp_time,
    fluid_single_path_time,
    hol_goodput_collapse,
    packet_mptcp_time,
    packet_single_path_time,
)
from repro.units import mbps_to_bytes_per_sec, mib


class TestSinglePathAgreement:
    def test_clean_paths_agree_within_15pct(self):
        """On loss-free paths the two engines' completion times agree —
        this is the foundation the reproduction's numbers rest on."""
        specs = [
            ("fast", PathSpec(8.0, 0.05)),
            ("slow", PathSpec(2.0, 0.10)),
            ("high-rtt", PathSpec(6.0, 0.20)),
        ]
        for comparison in compare_single_path(specs, size_bytes=mib(4)):
            assert 0.85 < comparison.ratio < 1.15, comparison.label

    def test_lossy_path_fluid_is_optimistic_but_bounded(self):
        """Under random loss the fluid model is known to be optimistic
        (one loss event per round vs per-segment losses); the divergence
        stays within a factor ~2 (documented in docs/MODEL.md)."""
        spec = PathSpec(12.0, 0.04, loss=0.005)
        fluid = fluid_single_path_time(spec, mib(4))
        packet = packet_single_path_time(spec, mib(4))
        assert 0.35 < fluid / packet <= 1.1

    def test_ratio_property(self):
        c = ModelComparison("x", 1.0, fluid_time=2.0, packet_time=4.0)
        assert c.ratio == 0.5


class TestMptcpAgreement:
    SPECS = [
        PathSpec(8.0, 0.04),
        PathSpec(6.0, 0.07, kind=InterfaceKind.LTE),
    ]

    def test_both_engines_beat_the_best_single_path(self):
        alone = mib(8) / mbps_to_bytes_per_sec(8.0)
        fluid = fluid_mptcp_time(self.SPECS, mib(8))
        packet, _ = packet_mptcp_time(self.SPECS, mib(8))
        assert fluid < alone
        assert packet < alone

    def test_fluid_matches_constrained_receive_buffer_regime(self):
        """The fluid scheduler-utilization model corresponds to a
        phone-typical constrained receive buffer: its completion time
        lands between the packet engine's 128 KB and 512 KB regimes."""
        fluid = fluid_mptcp_time(self.SPECS, mib(8))
        small, _ = packet_mptcp_time(self.SPECS, mib(8), rcv_buffer=128_000.0)
        large, _ = packet_mptcp_time(self.SPECS, mib(8), rcv_buffer=512_000.0)
        assert large < fluid < small

    def test_receive_buffer_monotonicity(self):
        times = [
            packet_mptcp_time(self.SPECS, mib(8), rcv_buffer=buf)[0]
            for buf in (96_000.0, 256_000.0, 1_000_000.0)
        ]
        assert times[0] > times[1] > times[2] * 0.95


class TestHolPathology:
    def test_mptcp_can_lose_to_single_path(self):
        """The Bad/Bad mechanism: a slow, laggy second path plus a small
        receive buffer makes MPTCP *slower* than the fast path alone."""
        alone, together = hol_goodput_collapse()
        assert together > alone

    def test_reinjection_bounds_the_damage(self):
        """Opportunistic reinjection (Raiciu et al. NSDI'12) keeps the
        slow-path penalty bounded at every buffer size — matching the
        paper's observation that MPTCP in Bad/Bad conditions is merely
        unremarkable, not catastrophic."""
        for buf in (64_000.0, 500_000.0, 4_000_000.0):
            alone, together = hol_goodput_collapse(rcv_buffer=buf)
            assert together <= alone * 1.3, buf


class TestOnOffAgreement:
    def test_onoff_modulation_agreement(self):
        """Under the §4.3 on/off WiFi modulation (the Figure 7/8
        condition) the two engines agree within 10% on paired sample
        paths."""
        from repro.check.packet import compare_onoff_single_path

        for c in compare_onoff_single_path(size_bytes=mib(16), seeds=(1, 2)):
            assert 0.9 < c.ratio < 1.1, c.label


class TestRemovedShim:
    def test_old_import_path_raises_with_pointer(self):
        """repro.packet.validate spent one release as a deprecation
        shim; it now fails fast, pointing at repro.check.packet."""
        with pytest.raises(ImportError, match="repro.check.packet"):
            import repro.packet.validate  # noqa: F401


class TestEngineAgreementGolden:
    def test_agreement_report_matches_golden(self, test_data_dir):
        """The unified-runner agreement table (what `repro.cli validate`
        prints) against a checked-in golden: labels and verdict exact,
        ratios within a drift band."""
        import json

        from repro.check.packet import run_engine_agreement

        golden = json.loads(
            (test_data_dir / "engine_agreement.golden.json").read_text()
        )
        report, comparisons = run_engine_agreement(
            size_bytes=mib(golden["size_mib"])
        )
        assert report.ok is golden["ok"]
        assert [c.label for c in comparisons] == [
            g["label"] for g in golden["comparisons"]
        ]
        for c, g in zip(comparisons, golden["comparisons"]):
            assert c.ratio == pytest.approx(g["ratio"], abs=0.15), c.label
