"""Tests for the fluid TCP connection."""

import math

import pytest

from tests.helpers import make_path, rng
from repro.errors import ProtocolError
from repro.net.interface import InterfaceKind
from repro.sim.engine import Simulator
from repro.tcp.connection import (
    FiniteSource,
    InfiniteSource,
    TcpConnection,
    TcpState,
)
from repro.units import mbps_to_bytes_per_sec


def make_conn(sim, path, size=1_000_000.0, **kwargs):
    source = FiniteSource(size)
    conn = TcpConnection(sim, path, source, rng=rng(), **kwargs)
    return conn, source


class TestSources:
    def test_finite_source_grants_up_to_remaining(self):
        src = FiniteSource(100.0)
        assert src.take(60.0) == 60.0
        assert src.take(60.0) == 40.0
        assert src.take(60.0) == 0.0
        assert src.exhausted

    def test_finite_source_rejects_nonpositive(self):
        with pytest.raises(Exception):
            FiniteSource(0.0)

    def test_infinite_source_never_exhausts(self):
        src = InfiniteSource()
        assert src.take(1e9) == 1e9
        assert not src.exhausted
        assert src.remaining == math.inf


class TestHandshake:
    def test_establishes_after_one_rtt(self):
        sim = Simulator()
        path = make_path(sim, rtt=0.08)
        conn, _ = make_conn(sim, path)
        conn.connect()
        assert conn.state is TcpState.CONNECTING
        sim.run(until=0.08)
        assert conn.established
        assert conn.established_at == pytest.approx(0.08)
        assert conn.handshake_rtt == pytest.approx(0.08)

    def test_extra_delay_postpones_establishment(self):
        sim = Simulator()
        path = make_path(sim, rtt=0.08)
        conn, _ = make_conn(sim, path)
        conn.connect(extra_delay=1.0)
        sim.run(until=1.0)
        assert not conn.established
        sim.run(until=1.1)
        assert conn.established

    def test_double_connect_rejected(self):
        sim = Simulator()
        path = make_path(sim)
        conn, _ = make_conn(sim, path)
        conn.connect()
        with pytest.raises(ProtocolError):
            conn.connect()

    def test_established_listener_fires(self):
        sim = Simulator()
        path = make_path(sim)
        conn, _ = make_conn(sim, path)
        seen = []
        conn.on_established(seen.append)
        conn.connect()
        sim.run(until=1.0)
        assert seen == [conn]


class TestTransfer:
    def test_transfer_completes_all_bytes(self):
        sim = Simulator()
        path = make_path(sim, mbps=8.0, rtt=0.05)
        conn, source = make_conn(sim, path, size=2_000_000.0)
        conn.connect()
        sim.run(until=60.0)
        assert source.exhausted
        assert conn.bytes_delivered == pytest.approx(2_000_000.0)

    def test_throughput_approaches_capacity(self):
        """A long transfer on a clean 8 Mbps path should take roughly
        size/capacity once slow start finishes."""
        sim = Simulator()
        path = make_path(sim, mbps=8.0, rtt=0.05)
        size = 10_000_000.0  # 10 MB at 1 MB/s -> ~10 s
        conn, source = make_conn(sim, path, size=size)
        done = []
        conn.on_delivery(
            lambda c, _d: done.append(sim.now) if source.exhausted else None
        )
        conn.connect()
        sim.run(until=120.0)
        assert source.exhausted
        finish = done[-1]
        ideal = size / mbps_to_bytes_per_sec(8.0)
        assert ideal <= finish < ideal * 1.35

    def test_slow_start_ramp_visible(self):
        """Early rounds deliver far less than capacity."""
        sim = Simulator()
        path = make_path(sim, mbps=50.0, rtt=0.1)
        conn, _ = make_conn(sim, path, size=50_000_000.0)
        rates = []
        conn.on_rate_change(lambda t, r: rates.append((t, r)))
        conn.connect()
        sim.run(until=0.45)
        first_rates = [r for _t, r in rates if r > 0]
        assert first_rates, "no sending observed"
        assert first_rates[0] < mbps_to_bytes_per_sec(50.0) / 4

    def test_delivery_listener_sees_all_bytes(self):
        sim = Simulator()
        path = make_path(sim, mbps=8.0)
        conn, _ = make_conn(sim, path, size=500_000.0)
        total = []
        conn.on_delivery(lambda _c, d: total.append(d))
        conn.connect()
        sim.run(until=30.0)
        assert sum(total) == pytest.approx(500_000.0)

    def test_rate_zero_after_completion(self):
        sim = Simulator()
        path = make_path(sim, mbps=8.0)
        conn, _ = make_conn(sim, path, size=100_000.0)
        conn.connect()
        sim.run(until=30.0)
        assert conn.current_rate == 0.0
        assert not conn.sending

    def test_shared_source_drained_by_two_connections(self):
        sim = Simulator()
        path_a = make_path(sim, mbps=8.0)
        path_b = make_path(sim, mbps=4.0, kind=InterfaceKind.LTE)
        source = FiniteSource(3_000_000.0)
        conn_a = TcpConnection(sim, path_a, source, rng=rng(1))
        conn_b = TcpConnection(sim, path_b, source, rng=rng(2))
        conn_a.connect()
        conn_b.connect()
        sim.run(until=60.0)
        assert source.exhausted
        assert conn_a.bytes_delivered > 0
        assert conn_b.bytes_delivered > 0
        assert conn_a.bytes_delivered + conn_b.bytes_delivered == pytest.approx(
            3_000_000.0
        )


class TestLossBehaviour:
    def test_random_loss_reduces_throughput(self):
        size = 4_000_000.0

        def finish_time(loss):
            sim = Simulator()
            path = make_path(sim, mbps=20.0, rtt=0.05, loss=loss)
            conn, source = make_conn(sim, path, size=size)
            conn.connect()
            sim.run(until=600.0)
            assert source.exhausted
            return conn.last_activity

        assert finish_time(0.005) > finish_time(0.0)

    def test_losses_counted_on_lossy_path(self):
        sim = Simulator()
        path = make_path(sim, mbps=20.0, loss=0.01)
        conn, _ = make_conn(sim, path, size=4_000_000.0)
        conn.connect()
        sim.run(until=600.0)
        assert conn.cc.losses > 0

    def test_buffer_overflow_triggers_backoff(self):
        """With a tiny buffer the window cannot grow unboundedly."""
        sim = Simulator()
        path = make_path(sim, mbps=2.0, rtt=0.05, buffer_bytes=10_000.0)
        conn, _ = make_conn(sim, path, size=3_000_000.0)
        conn.connect()
        sim.run(until=30.0)
        assert conn.cc.losses > 0
        bdp = mbps_to_bytes_per_sec(2.0) * 0.05
        assert conn.cc.cwnd < bdp + 10_000.0 + conn.cc.mss * 20


class TestStall:
    def test_zero_capacity_stalls_then_recovers(self):
        sim = Simulator()
        from repro.net.bandwidth import PiecewiseTraceCapacity
        from repro.net.interface import NetworkInterface
        from repro.net.path import NetworkPath

        cap = PiecewiseTraceCapacity([(0.0, 0.0), (5.0, 500_000.0)])
        path = NetworkPath(NetworkInterface(InterfaceKind.WIFI), cap, base_rtt=0.05)
        path.attach(sim)
        conn, source = make_conn(sim, path, size=200_000.0)
        conn.connect()
        sim.run(until=4.9)
        assert conn.bytes_delivered == 0.0
        sim.run(until=20.0)
        assert source.exhausted


class TestPauseResume:
    def _running_conn(self, sim, idle_reset=True):
        path = make_path(sim, mbps=8.0)
        conn, source = make_conn(
            sim, path, size=50_000_000.0, rfc2861_idle_reset=idle_reset
        )
        conn.connect()
        sim.run(until=2.0)
        return conn, source

    def test_pause_stops_sending(self):
        sim = Simulator()
        conn, _ = self._running_conn(sim)
        delivered_before = conn.bytes_delivered
        conn.pause()
        sim.run(until=4.0)
        # At most one in-flight round completes after pause.
        assert conn.bytes_delivered <= delivered_before + conn.cc.cwnd
        assert conn.current_rate == 0.0

    def test_resume_continues(self):
        sim = Simulator()
        conn, _ = self._running_conn(sim)
        conn.pause()
        sim.run(until=4.0)
        delivered = conn.bytes_delivered
        conn.resume()
        sim.run(until=6.0)
        assert conn.bytes_delivered > delivered

    def test_rfc2861_reset_after_long_idle(self):
        sim = Simulator()
        conn, _ = self._running_conn(sim, idle_reset=True)
        conn.pause()
        big = conn.cc.cwnd
        sim.run(until=30.0)  # idle far beyond RTO
        conn.resume()
        assert conn.cc.cwnd == pytest.approx(conn.cc.init_cwnd)
        assert conn.cc.cwnd < big

    def test_emptcp_disables_idle_reset(self):
        sim = Simulator()
        conn, _ = self._running_conn(sim, idle_reset=False)
        conn.pause()
        sim.run(until=30.0)  # idle far beyond RTO; in-flight round settles
        big = conn.cc.cwnd
        conn.resume()
        assert conn.cc.cwnd == pytest.approx(big)
        assert big > conn.cc.init_cwnd

    def test_resume_with_rtt_reset(self):
        sim = Simulator()
        conn, _ = self._running_conn(sim)
        conn.pause()
        sim.run(until=3.0)
        conn.resume(reset_rtt=True)
        assert conn.srtt == 0.0

    def test_resume_unestablished_rejected(self):
        sim = Simulator()
        path = make_path(sim)
        conn, _ = make_conn(sim, path)
        with pytest.raises(ProtocolError):
            conn.resume()


class TestClose:
    def test_close_stops_everything(self):
        sim = Simulator()
        path = make_path(sim, mbps=8.0)
        conn, _ = make_conn(sim, path, size=50_000_000.0)
        conn.connect()
        sim.run(until=2.0)
        conn.close()
        delivered = conn.bytes_delivered
        sim.run(until=10.0)
        assert conn.bytes_delivered == delivered
        assert conn.state is TcpState.CLOSED
        assert conn.current_rate == 0.0

    def test_close_is_idempotent(self):
        sim = Simulator()
        path = make_path(sim)
        conn, _ = make_conn(sim, path)
        conn.connect()
        conn.close()
        conn.close()
