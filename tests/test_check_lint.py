"""Tier-1 linter (repro.check.lint): every rule with a triggering and a
clean fixture, plus noqa suppression and the baseline round trip."""

import json
import textwrap

import pytest

from repro.check.baseline import (
    fingerprint_counts,
    load_baseline,
    new_findings,
    write_baseline,
)
from repro.check.lint import lint_paths, lint_source
from repro.errors import ConfigurationError

#: A path inside a deterministic package (REP101/REP102 apply).
DET = "src/repro/sim/fixture.py"
#: A path outside the deterministic packages (they do not).
FREE = "src/repro/analysis/fixture.py"


def rules(findings):
    return sorted(f.rule for f in findings)


def lint(source, path=DET):
    return lint_source(textwrap.dedent(source), path)


# ---------------------------------------------------------------------------
# REP100: syntax errors are findings, not crashes


def test_rep100_syntax_error():
    findings = lint("def broken(:\n")
    assert rules(findings) == ["REP100"]


# ---------------------------------------------------------------------------
# REP101: wall-clock reads in deterministic packages


def test_rep101_wallclock_flagged_in_deterministic_package():
    src = """
        import time

        def stamp():
            return time.time()
    """
    assert rules(lint(src)) == ["REP101"]


def test_rep101_respects_import_alias():
    src = """
        import time as _time

        def stamp():
            return _time.monotonic()
    """
    assert rules(lint(src)) == ["REP101"]


def test_rep101_datetime_now():
    src = """
        import datetime

        def stamp():
            return datetime.now()
    """
    assert rules(lint(src)) == ["REP101"]


def test_rep101_silent_outside_deterministic_packages():
    src = """
        import time

        def stamp():
            return time.time()
    """
    assert lint(src, path=FREE) == []


def test_rep101_sim_clock_is_clean():
    src = """
        def stamp(sim):
            return sim.now
    """
    assert lint(src) == []


# ---------------------------------------------------------------------------
# REP102: unseeded randomness


def test_rep102_global_random_call():
    src = """
        import random

        def draw():
            return random.random()
    """
    assert rules(lint(src)) == ["REP102"]


def test_rep102_unseeded_random_constructor():
    src = """
        import random

        def make_rng():
            return random.Random()
    """
    assert rules(lint(src)) == ["REP102"]


def test_rep102_seeded_random_is_clean():
    src = """
        import random

        def make_rng(seed: int):
            return random.Random(seed)
    """
    assert lint(src) == []


def test_rep102_silent_outside_deterministic_packages():
    src = """
        import random

        def draw():
            return random.random()
    """
    assert lint(src, path=FREE) == []


# ---------------------------------------------------------------------------
# REP103: float == against clock expressions


def test_rep103_eq_against_now():
    src = """
        def poll(sim):
            if sim.now == 3.0:
                return True
    """
    assert rules(lint(src)) == ["REP103"]


def test_rep103_neq_against_time_suffix():
    src = """
        def poll(deadline_time, t):
            return t != deadline_time
    """
    # Both sides look like clocks; one finding per comparison.
    assert rules(lint(src)) == ["REP103"]


def test_rep103_ordered_comparison_is_clean():
    src = """
        def poll(sim, deadline_time):
            return sim.now >= deadline_time
    """
    assert lint(src) == []


def test_rep103_none_check_is_clean():
    src = """
        def poll(completed_at):
            return completed_at == None
    """
    assert lint(src) == []


# ---------------------------------------------------------------------------
# REP104: Tracer.emit vs EVENT_SCHEMA


def test_rep104_unknown_event_type():
    src = """
        def note(tracer, sim):
            tracer.emit("bogus.event", t=sim.now)
    """
    findings = lint(src)
    assert rules(findings) == ["REP104"]
    assert "bogus.event" in findings[0].message


def test_rep104_missing_declared_fields():
    src = """
        def note(tracer, sim):
            tracer.emit("tcp.loss", t=sim.now, conn="c0")
    """
    findings = lint(src)
    assert rules(findings) == ["REP104"]
    assert "interface" in findings[0].message


def test_rep104_complete_emission_is_clean():
    src = """
        def note(tracer, sim):
            tracer.emit("tcp.loss", t=sim.now, conn="c0", interface="wifi")
    """
    assert lint(src) == []


def test_rep104_dynamic_kwargs_are_opaque():
    src = """
        def note(tracer, sim, fields):
            tracer.emit("tcp.loss", t=sim.now, **fields)
    """
    assert lint(src) == []


# ---------------------------------------------------------------------------
# REP105: unit-suffix discipline


def test_rep105_bare_quantity_parameter():
    src = """
        def drain(energy: float):
            return energy
    """
    assert rules(lint(src)) == ["REP105"]


def test_rep105_suffixed_parameter_is_clean():
    src = """
        def drain(energy_j: float, bandwidth_mbps: float):
            return energy_j
    """
    assert lint(src) == []


def test_rep105_class_field_annotation():
    src = """
        class Budget:
            power: float
            power_w: float
    """
    findings = lint(src)
    assert rules(findings) == ["REP105"]
    assert "power" in findings[0].context


def test_rep105_loss_rate_is_exempt():
    src = """
        def lossy(loss_rate: float):
            return loss_rate
    """
    assert lint(src) == []


def test_rep105_nonscalar_shapes_are_exempt():
    src = """
        def plot(rate_series, power_model):
            return rate_series, power_model
    """
    assert lint(src) == []


def test_rep105_non_numeric_annotation_is_exempt():
    src = """
        def label(energy: str):
            return energy
    """
    assert lint(src) == []


# ---------------------------------------------------------------------------
# REP106: config keys must be EMPTCPConfig fields


def test_rep106_bad_runspec_config_key():
    src = """
        def make(RunSpec):
            return RunSpec(protocol="emptcp", builder="static",
                           config={"tau_secondz": 1.0})
    """
    findings = lint(src)
    assert rules(findings) == ["REP106"]
    assert "tau_secondz" in findings[0].message


def test_rep106_valid_config_key_is_clean():
    src = """
        def make(RunSpec):
            return RunSpec(protocol="emptcp", builder="static",
                           config={"tau_seconds": 1.0})
    """
    assert lint(src) == []


def test_rep106_sweep_config_parameter():
    src = """
        def sweep(sweep_config):
            return sweep_config("not_a_field", [1, 2, 3])
    """
    assert rules(lint(src)) == ["REP106"]


# ---------------------------------------------------------------------------
# REP107: __all__ in sync, both directions


def test_rep107_all_lists_unbound_name():
    src = """
        from repro.units import mbps_to_bytes_per_sec

        __all__ = ["mbps_to_bytes_per_sec", "ghost"]
    """
    findings = lint_source(
        textwrap.dedent(src), "src/repro/fake/__init__.py"
    )
    assert rules(findings) == ["REP107"]
    assert "ghost" in findings[0].message


def test_rep107_public_name_missing_from_all():
    src = """
        from repro.units import mbps_to_bytes_per_sec, mib

        __all__ = ["mib"]
    """
    findings = lint_source(
        textwrap.dedent(src), "src/repro/fake/__init__.py"
    )
    assert rules(findings) == ["REP107"]
    assert "mbps_to_bytes_per_sec" in findings[0].message


def test_rep107_only_applies_to_init_files():
    src = """
        from repro.units import mib

        __all__ = ["mib", "ghost"]
    """
    assert lint_source(textwrap.dedent(src), "src/repro/fake/module.py") == []


def test_rep107_stdlib_imports_are_not_public():
    src = """
        import json
        from pathlib import Path

        from repro.units import mib

        __all__ = ["mib"]
    """
    assert lint_source(textwrap.dedent(src), "src/repro/fake/__init__.py") == []


# ---------------------------------------------------------------------------
# noqa suppression


def test_noqa_with_matching_rule_suppresses():
    src = """
        import random

        def draw():
            return random.random()  # repro: noqa[REP102]
    """
    assert lint(src) == []


def test_bare_noqa_suppresses_everything():
    src = """
        import time

        def stamp():
            return time.time()  # repro: noqa
    """
    assert lint(src) == []


def test_noqa_with_other_rule_does_not_suppress():
    src = """
        import random

        def draw():
            return random.random()  # repro: noqa[REP105]
    """
    assert rules(lint(src)) == ["REP102"]


# ---------------------------------------------------------------------------
# baseline round trip


def _sample_findings():
    return lint(
        """
        import random

        def draw():
            return random.random()
        """
    )


def test_baseline_round_trip(tmp_path):
    findings = _sample_findings()
    path = tmp_path / "baseline.json"
    write_baseline(path, findings)
    baseline = load_baseline(path)
    assert baseline == fingerprint_counts(findings)
    new, stale = new_findings(findings, baseline)
    assert new == [] and stale == []


def test_baseline_flags_new_and_stale(tmp_path):
    findings = _sample_findings()
    path = tmp_path / "baseline.json"
    write_baseline(path, findings)
    baseline = load_baseline(path)
    # A fresh violation not in the baseline is "new"...
    extra = lint(
        """
        import time

        def stamp():
            return time.time()
        """
    )
    new, stale = new_findings(findings + extra, baseline)
    assert rules(new) == ["REP101"]
    # ...and a fixed one leaves a stale fingerprint behind.
    new, stale = new_findings([], baseline)
    assert new == [] and len(stale) == 1


def test_baseline_missing_file_is_empty():
    assert load_baseline("/nonexistent/baseline.json") == {}


def test_baseline_malformed_file_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("not json")
    with pytest.raises(ConfigurationError):
        load_baseline(path)


# ---------------------------------------------------------------------------
# whole-tree regression: the committed baseline covers src/repro


def test_committed_baseline_is_current(repo_root):
    report = lint_paths([repo_root / "src" / "repro"], rel_to=repo_root)
    baseline = load_baseline(repo_root / ".repro-check-baseline.json")
    new, _stale = new_findings(report.findings, baseline)
    assert new == [], "\n".join(f.format() for f in new)


def test_lint_paths_relativizes(repo_root, tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("import random\nrandom.seed(1)\n")
    report = lint_paths([target], rel_to=tmp_path)
    assert report.checked == 1
    # Outside a repro/<deterministic> tree nothing fires.
    assert report.ok
