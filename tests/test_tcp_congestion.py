"""Tests for the Reno congestion controller."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.tcp.congestion import DEFAULT_MSS, RenoCongestionControl


def test_initial_window_is_ten_segments():
    cc = RenoCongestionControl()
    assert cc.cwnd == pytest.approx(10 * DEFAULT_MSS)
    assert cc.in_slow_start


def test_slow_start_doubles_per_window():
    cc = RenoCongestionControl()
    start = cc.cwnd
    cc.on_ack(start)  # one full window acked
    assert cc.cwnd == pytest.approx(2 * start)


def test_slow_start_capped_at_ssthresh():
    cc = RenoCongestionControl()
    cc.ssthresh = cc.cwnd * 1.5
    cc.on_ack(cc.cwnd)  # would double past ssthresh
    assert cc.cwnd == pytest.approx(cc.ssthresh)


def test_congestion_avoidance_adds_one_mss_per_rtt():
    cc = RenoCongestionControl()
    cc.on_loss()  # enter CA
    assert not cc.in_slow_start
    w = cc.cwnd
    cc.on_ack(w)  # one full window of acks
    assert cc.cwnd == pytest.approx(w + cc.mss)


def test_coupled_increase_scales_ca_growth():
    cc = RenoCongestionControl()
    cc.on_loss()
    w = cc.cwnd
    cc.on_ack(w, coupling=0.5)
    assert cc.cwnd == pytest.approx(w + 0.5 * cc.mss)


def test_slow_start_is_never_coupled():
    cc = RenoCongestionControl()
    w = cc.cwnd
    cc.on_ack(w, coupling=0.0)
    assert cc.cwnd == pytest.approx(2 * w)


def test_loss_halves_window():
    cc = RenoCongestionControl()
    cc.cwnd = 100 * cc.mss
    cc.on_loss()
    assert cc.cwnd == pytest.approx(50 * cc.mss)
    assert cc.ssthresh == pytest.approx(50 * cc.mss)
    assert cc.losses == 1


def test_window_floor_is_two_mss():
    cc = RenoCongestionControl()
    cc.cwnd = 1 * cc.mss
    cc.on_loss()
    assert cc.cwnd == pytest.approx(2 * cc.mss)


def test_timeout_collapses_to_initial_window():
    cc = RenoCongestionControl()
    cc.cwnd = 100 * cc.mss
    cc.on_timeout()
    assert cc.cwnd == pytest.approx(cc.init_cwnd)
    assert cc.ssthresh == pytest.approx(50 * cc.mss)
    assert cc.timeouts == 1


def test_idle_reset_rfc2861():
    cc = RenoCongestionControl()
    cc.cwnd = 100 * cc.mss
    cc.ssthresh = math.inf
    cc.reset_after_idle()
    assert cc.cwnd == pytest.approx(cc.init_cwnd)


def test_max_cwnd_cap():
    cc = RenoCongestionControl(max_cwnd=20 * DEFAULT_MSS)
    for _ in range(10):
        cc.on_ack(cc.cwnd)
    assert cc.cwnd <= 20 * DEFAULT_MSS


def test_zero_ack_is_noop():
    cc = RenoCongestionControl()
    w = cc.cwnd
    cc.on_ack(0.0)
    assert cc.cwnd == w


def test_invalid_args_rejected():
    with pytest.raises(ConfigurationError):
        RenoCongestionControl(mss=0)
    with pytest.raises(ConfigurationError):
        RenoCongestionControl(init_cwnd_segments=0)
    with pytest.raises(ConfigurationError):
        RenoCongestionControl().on_ack(-1.0)


@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("ack"), st.floats(min_value=1.0, max_value=1e6)),
            st.tuples(st.just("loss"), st.just(0.0)),
            st.tuples(st.just("timeout"), st.just(0.0)),
        ),
        max_size=200,
    )
)
def test_property_window_always_positive_and_finite(events):
    cc = RenoCongestionControl()
    for kind, arg in events:
        if kind == "ack":
            cc.on_ack(arg)
        elif kind == "loss":
            cc.on_loss()
        else:
            cc.on_timeout()
        assert cc.cwnd > 0
        assert math.isfinite(cc.cwnd)
        assert cc.cwnd <= cc.max_cwnd
