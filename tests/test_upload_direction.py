"""Tests for upload-direction support (§7 future-work extension)."""

import pytest

from repro.core.eib import cached_eib
from repro.energy.device import GALAXY_S3
from repro.energy.efficiency import Strategy, per_byte_energy, strategy_power
from repro.energy.meter import EnergyMeter
from repro.energy.power import Direction, InterfacePower
from repro.errors import EnergyModelError
from repro.experiments.runner import run_scenario
from repro.experiments.upload import run_upload, upload_eib_rows, upload_scenario
from repro.net.interface import InterfaceKind
from repro.sim.engine import Simulator
from repro.units import mbps_to_bytes_per_sec, mib


class TestInterfacePowerDirections:
    def test_upload_slope_defaults_to_download(self):
        p = InterfacePower(base_w=0.5, per_mbps_w=0.1)
        assert p.per_mbps_up_w == p.per_mbps_w
        assert p.active_power_w(4.0, Direction.UP) == p.active_power_w(4.0)

    def test_distinct_upload_slope(self):
        p = InterfacePower(base_w=0.5, per_mbps_w=0.1, per_mbps_up_w=0.4)
        assert p.active_power_w(4.0, Direction.UP) == pytest.approx(0.5 + 1.6)
        assert p.active_power_w(4.0, Direction.DOWN) == pytest.approx(0.5 + 0.4)

    def test_negative_upload_slope_rejected(self):
        with pytest.raises(EnergyModelError):
            InterfacePower(base_w=0.5, per_mbps_w=0.1, per_mbps_up_w=-0.1)

    def test_profiles_have_steeper_upload_slopes(self):
        for kind in (InterfaceKind.WIFI, InterfaceKind.LTE, InterfaceKind.THREEG):
            params = GALAXY_S3.interfaces[kind]
            assert params.per_mbps_up_w > params.per_mbps_w


class TestDirectionalEfficiency:
    def test_upload_costs_more_per_byte(self):
        down = per_byte_energy(GALAXY_S3, Strategy.CELLULAR_ONLY, 0.0, 8.0)
        up = per_byte_energy(
            GALAXY_S3, Strategy.CELLULAR_ONLY, 0.0, 8.0, direction=Direction.UP
        )
        assert up > down

    def test_strategy_power_direction(self):
        down = strategy_power(GALAXY_S3, Strategy.BOTH, 5.0, 5.0)
        up = strategy_power(
            GALAXY_S3, Strategy.BOTH, 5.0, 5.0, direction=Direction.UP
        )
        assert up > down

    def test_upload_eib_thresholds_lower(self):
        """LTE upload is so much costlier that WiFi-only wins earlier."""
        down_rows = cached_eib(GALAXY_S3).table_rows([1.0, 2.0])
        up_rows = upload_eib_rows(lte_rows=[1.0, 2.0])
        for d, u in zip(down_rows, up_rows):
            assert u.wifi_only_above < d.wifi_only_above

    def test_eib_cache_keyed_by_direction(self):
        down = cached_eib(GALAXY_S3, InterfaceKind.LTE, Direction.DOWN)
        up = cached_eib(GALAXY_S3, InterfaceKind.LTE, Direction.UP)
        assert down is not up
        assert up is cached_eib(GALAXY_S3, InterfaceKind.LTE, Direction.UP)


class TestDirectionalMeter:
    def test_meter_uses_upload_slope(self):
        rate = mbps_to_bytes_per_sec(5.0)
        sim_d = Simulator()
        down = EnergyMeter(sim_d, GALAXY_S3, direction=Direction.DOWN)
        down.set_rate(InterfaceKind.LTE, rate)
        sim_u = Simulator()
        up = EnergyMeter(sim_u, GALAXY_S3, direction=Direction.UP)
        up.set_rate(InterfaceKind.LTE, rate)
        assert up.power > down.power


class TestUploadScenarios:
    def test_upload_run_costs_more_than_download(self):
        down = upload_scenario(True, upload_bytes=mib(8))
        down.direction = Direction.DOWN
        down_result = run_scenario("mptcp", down, seed=0)
        up = upload_scenario(True, upload_bytes=mib(8))
        up_result = run_scenario("mptcp", up, seed=0)
        assert up_result.energy_j > down_result.energy_j
        # Same fluid dynamics, so identical transfer time.
        assert up_result.download_time == pytest.approx(down_result.download_time)

    def test_emptcp_tracks_wifi_only_on_good_wifi_upload(self):
        results = run_upload(True, runs=1, upload_bytes=mib(8))
        e = {p: rs[0].energy_j for p, rs in results.items()}
        assert e["emptcp"] == pytest.approx(e["tcp-wifi"], rel=0.05)
        assert e["mptcp"] > 1.2 * e["emptcp"]

    def test_bad_wifi_upload_uses_lte(self):
        results = run_upload(False, runs=1, upload_bytes=mib(8))
        emptcp = results["emptcp"][0]
        assert emptcp.diagnostics["cell_established"] == 1.0
        assert emptcp.download_time < results["tcp-wifi"][0].download_time
