"""Tests for the integrating energy meter."""

import pytest

from repro.energy.device import GALAXY_S3
from repro.energy.meter import EnergyMeter
from repro.energy.rrc import RrcState
from repro.errors import EnergyModelError
from repro.net.interface import InterfaceKind
from repro.sim.engine import Simulator
from repro.units import mbps_to_bytes_per_sec

WIFI = InterfaceKind.WIFI
LTE = InterfaceKind.LTE


def make_meter():
    sim = Simulator()
    return sim, EnergyMeter(sim, GALAXY_S3)


def device_power(rates, rrc_states=None):
    """Whole-device power as the meter computes it: platform baseline
    plus the network model."""
    return GALAXY_S3.baseline_w + GALAXY_S3.total_power(rates, rrc_states or {})


def advance(sim, dt):
    sim.run(until=sim.now + dt)


def test_idle_device_consumes_idle_power_only():
    sim, meter = make_meter()
    advance(sim, 10.0)
    idle_power = device_power({})
    assert meter.checkpoint() == pytest.approx(10.0 * idle_power)


def test_transfer_energy_is_power_times_time():
    sim, meter = make_meter()
    rate = mbps_to_bytes_per_sec(10.0)
    meter.set_rate(WIFI, rate)
    advance(sim, 5.0)
    meter.set_rate(WIFI, 0.0)
    expected = 5.0 * device_power({WIFI: rate})
    assert meter.checkpoint() == pytest.approx(expected)


def test_piecewise_integration_across_changes():
    sim, meter = make_meter()
    r1 = mbps_to_bytes_per_sec(2.0)
    r2 = mbps_to_bytes_per_sec(8.0)
    meter.set_rate(WIFI, r1)
    advance(sim, 2.0)
    meter.set_rate(WIFI, r2)
    advance(sim, 3.0)
    meter.set_rate(WIFI, 0.0)
    expected = 2.0 * device_power({WIFI: r1}) + 3.0 * device_power({WIFI: r2})
    assert meter.checkpoint() == pytest.approx(expected)


def test_rrc_state_power_integrated():
    sim, meter = make_meter()
    meter.set_rrc_state(LTE, RrcState.TAIL)
    advance(sim, 4.0)
    meter.set_rrc_state(LTE, RrcState.IDLE)
    tail_power = device_power({}, {LTE: RrcState.TAIL})
    idle_power = device_power({})
    assert tail_power > idle_power
    assert meter.checkpoint() == pytest.approx(4.0 * tail_power)


def test_add_rate_accumulates_flows():
    sim, meter = make_meter()
    meter.add_rate(WIFI, 100.0)
    meter.add_rate(WIFI, 50.0)
    assert meter.rate(WIFI) == pytest.approx(150.0)
    meter.add_rate(WIFI, -150.0)
    assert meter.rate(WIFI) == 0.0


def test_add_rate_negative_aggregate_rejected():
    _sim, meter = make_meter()
    with pytest.raises(EnergyModelError):
        meter.add_rate(WIFI, -10.0)


def test_one_shot_energy():
    sim, meter = make_meter()
    meter.add_one_shot(2.5)
    assert meter.total_energy == pytest.approx(2.5)
    with pytest.raises(EnergyModelError):
        meter.add_one_shot(-1.0)


def test_total_energy_includes_pending_interval():
    sim, meter = make_meter()
    rate = mbps_to_bytes_per_sec(10.0)
    meter.set_rate(WIFI, rate)
    advance(sim, 5.0)
    # No checkpoint: total_energy must still reflect elapsed time.
    expected = 5.0 * device_power({WIFI: rate})
    assert meter.total_energy == pytest.approx(expected)


def test_energy_series_is_monotone():
    sim, meter = make_meter()
    meter.set_rate(WIFI, 100.0)
    advance(sim, 1.0)
    meter.set_rate(WIFI, 200.0)
    advance(sim, 1.0)
    meter.checkpoint()
    values = meter.energy_series.values
    assert values == sorted(values)


def test_overlap_saving_visible_in_meter():
    sim, meter = make_meter()
    r = mbps_to_bytes_per_sec(5.0)
    meter.set_rate(WIFI, r)
    p_single = meter.power
    meter.set_rate(LTE, r)
    p_both = meter.power
    wifi_alone = GALAXY_S3.interface_power(WIFI, r)
    lte_alone = GALAXY_S3.interface_power(LTE, r)
    idle_3g = GALAXY_S3.interfaces[InterfaceKind.THREEG].idle_w
    base = GALAXY_S3.baseline_w
    assert p_single == pytest.approx(
        base + wifi_alone + GALAXY_S3.interfaces[LTE].idle_w + idle_3g
    )
    assert p_both == pytest.approx(
        base + wifi_alone + lte_alone + idle_3g - GALAXY_S3.overlap_saving_w
    )
