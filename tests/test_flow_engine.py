"""The vectorized fleet engine and its DataPlanePort adapter."""

import numpy as np
import pytest

from repro.control.port import DataPlanePort, SubflowLike
from repro.core.config import EMPTCPConfig
from repro.errors import ConfigurationError
from repro.experiments.protocols import build_protocol
from repro.experiments.static_bw import static_scenario
from repro.experiments.runner import run_scenario
from repro.flow.dataplane import FlowDataPlane, FlowSubflowView
from repro.flow.engine import FleetEngine
from repro.flow.state import FleetState, SessionParams
from repro.net.interface import InterfaceKind
from repro.units import mbps_to_bytes_per_sec, mib


def _single(protocol="emptcp", wifi_mbps=12.0, download_mb=2.0, **kw):
    params = [
        SessionParams(
            protocol=protocol,
            wifi_capacity_bytes_per_sec=mbps_to_bytes_per_sec(wifi_mbps),
            cell_capacity_bytes_per_sec=mbps_to_bytes_per_sec(10.0),
            download_bytes=mib(download_mb),
            **kw,
        )
    ]
    state = FleetState(params, EMPTCPConfig())
    return state, FleetEngine(state)


class TestPortConformance:
    def test_dataplane_satisfies_port_protocols(self):
        state, _engine = _single()
        plane = FlowDataPlane(state, 0)
        assert isinstance(plane, DataPlanePort)
        wifi = plane.subflow(InterfaceKind.WIFI)
        assert isinstance(wifi, FlowSubflowView)
        assert isinstance(wifi, SubflowLike)

    def test_cell_subflow_absent_until_established(self):
        state, engine = _single(protocol="emptcp", wifi_mbps=0.8,
                                download_mb=8.0)
        plane = FlowDataPlane(state, 0)
        assert plane.subflow(InterfaceKind.LTE) is None
        engine.run_until(10.0, max_epochs=200)
        assert bool(state.cell_established[0])
        cell = plane.subflow(InterfaceKind.LTE)
        assert cell is not None and cell.interface_kind is InterfaceKind.LTE

    def test_tcp_wifi_cannot_join_cellular(self):
        state, _engine = _single(protocol="tcp-wifi")
        plane = FlowDataPlane(state, 0)
        with pytest.raises(ConfigurationError):
            plane.join_cellular()

    def test_set_subflow_usage_counts_suspends(self):
        state, engine = _single(protocol="mptcp")
        engine.step()
        plane = FlowDataPlane(state, 0)
        plane.set_subflow_usage(InterfaceKind.WIFI, False)
        assert bool(state.wifi_suspended[0])
        assert int(state.wifi_suspend_count[0]) == 1
        plane.set_subflow_usage(InterfaceKind.WIFI, False)  # idempotent
        assert int(state.wifi_suspend_count[0]) == 1
        plane.set_subflow_usage(InterfaceKind.WIFI, True)
        assert not bool(state.wifi_suspended[0])


class TestEngineBehavior:
    def test_good_wifi_never_establishes_cell(self):
        state, engine = _single(protocol="emptcp", wifi_mbps=12.0)
        engine.run_until(30.0, max_epochs=300)
        assert bool(state.done[0])
        assert not bool(state.cell_established[0])

    def test_bad_wifi_establishes_cell_at_tau(self):
        state, engine = _single(protocol="emptcp", wifi_mbps=0.8,
                                download_mb=8.0)
        engine.run_until(30.0, max_epochs=300)
        assert bool(state.cell_established[0])
        cfg = EMPTCPConfig()
        assert state.cell_established_t_s[0] == pytest.approx(
            cfg.tau_seconds, abs=2 * engine.epoch_s
        )

    def test_all_closed_and_energy_recorded(self):
        state, engine = _single(protocol="tcp-wifi")
        engine.run_until(60.0, max_epochs=400)
        assert engine.all_closed()
        assert np.isfinite(state.energy_at_completion_j[0])
        assert state.energy_j[0] > state.energy_at_completion_j[0] > 0

    def test_step_budget_enforced(self):
        from repro.errors import SimulationError

        _state, engine = _single(download_mb=64.0)
        with pytest.raises(SimulationError):
            engine.run_until(1e6, max_epochs=4)


class TestDeterminism:
    def test_flow_scenario_is_deterministic(self):
        scenario = static_scenario(False, download_bytes=mib(2))
        a = run_scenario("emptcp", scenario, seed=3, engine="flow")
        b = run_scenario("emptcp", scenario, seed=3, engine="flow")
        assert a.download_time == b.download_time
        assert a.energy_at_completion_j == b.energy_at_completion_j
        assert a.diagnostics == b.diagnostics


class TestEngineDispatch:
    def test_build_protocol_rejects_flow(self):
        scenario = static_scenario(True, download_bytes=mib(1))
        with pytest.raises(ConfigurationError, match="flow"):
            build_protocol(
                "emptcp", None, None, None, None, scenario.profile,
                engine="flow",
            )

    def test_run_scenario_rejects_unsupported_protocol(self):
        scenario = static_scenario(True, download_bytes=mib(1))
        with pytest.raises(ConfigurationError):
            run_scenario("mdp", scenario, engine="flow")

    def test_empty_fleet_rejected(self):
        with pytest.raises(ConfigurationError):
            FleetState([], EMPTCPConfig())
