"""Tests for timers and periodic processes."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess, Timer


class TestTimer:
    def test_fires_after_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(3.0)
        sim.run()
        assert fired == [3.0]

    def test_restart_rearms(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(3.0)
        sim.run(until=1.0)
        timer.start(3.0)  # re-arm at t=1
        sim.run()
        assert fired == [4.0]

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(3.0)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_armed_property(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert not timer.armed
        timer.start(1.0)
        assert timer.armed
        sim.run()
        assert not timer.armed

    def test_fires_once_per_arm(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.run()
        sim.run(until=10.0)
        assert fired == [1.0]


class TestPeriodicProcess:
    def test_ticks_at_interval(self):
        sim = Simulator()
        ticks = []
        proc = PeriodicProcess(sim, 2.0, lambda: ticks.append(sim.now))
        proc.start()
        sim.run(until=7.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_immediate_start(self):
        sim = Simulator()
        ticks = []
        proc = PeriodicProcess(sim, 2.0, lambda: ticks.append(sim.now))
        proc.start(immediate=True)
        sim.run(until=3.0)
        assert ticks == [0.0, 2.0]

    def test_stop_halts_ticks(self):
        sim = Simulator()
        ticks = []
        proc = PeriodicProcess(sim, 1.0, lambda: ticks.append(sim.now))
        proc.start()
        sim.run(until=2.5)
        proc.stop()
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_interval_change_applies_to_next_tick(self):
        sim = Simulator()
        ticks = []
        proc = PeriodicProcess(sim, 1.0, lambda: ticks.append(sim.now))
        proc.start()
        sim.run(until=1.5)
        proc.interval = 5.0
        sim.run(until=12.0)
        # The tick pending at start keeps its old schedule (t=2), then 5s gaps.
        assert ticks == [1.0, 2.0, 7.0, 12.0]

    def test_invalid_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            PeriodicProcess(sim, 0.0, lambda: None)
        proc = PeriodicProcess(sim, 1.0, lambda: None)
        with pytest.raises(ConfigurationError):
            proc.interval = -1.0

    def test_running_property(self):
        sim = Simulator()
        proc = PeriodicProcess(sim, 1.0, lambda: None)
        assert not proc.running
        proc.start()
        assert proc.running
        proc.stop()
        assert not proc.running

    def test_callback_can_stop_its_own_process(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 2:
                proc.stop()

        proc = PeriodicProcess(sim, 1.0, tick)
        proc.start()
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]
