"""Population-scale fleet runs: specs, contention, obs sampling."""

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.flow.fleet import (
    DEFAULT_MIX,
    FleetScenario,
    FleetSpec,
    build_fleet,
    run_fleet,
    sweep_fleet,
)
from repro.obs.events import validate_events


def _small_spec(**kw):
    defaults = dict(sessions=80, duration_s=20.0, seed=7)
    defaults.update(kw)
    return FleetSpec(**defaults)


class TestFleetSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FleetSpec(sessions=0)
        with pytest.raises(ConfigurationError):
            FleetSpec(duration_s=0.0)
        with pytest.raises(ConfigurationError):
            FleetSpec(device="no-such-phone")
        with pytest.raises(ConfigurationError):
            FleetSpec(cell_kind="wifi")
        with pytest.raises(ConfigurationError):
            FleetScenario("x", protocol="mdp")

    def test_content_hash_tracks_spec(self):
        a, b = _small_spec(), _small_spec()
        assert a.content_hash() == b.content_hash()
        assert a.content_hash() != _small_spec(seed=8).content_hash()
        assert (
            a.content_hash()
            != _small_spec(cell_capacity_mbps=10.0).content_hash()
        )

    def test_build_is_deterministic(self):
        s1, _e1, a1 = build_fleet(_small_spec())
        s2, _e2, a2 = build_fleet(_small_spec())
        assert (a1 == a2).all()
        assert (s1.start_s == s2.start_s).all()
        assert (s1.cell_id == s2.cell_id).all()


class TestFleetRun:
    def test_run_covers_every_stratum(self):
        result = run_fleet(_small_spec())
        assert result.completed == result.sessions == 80
        assert set(result.per_stratum) == {s.name for s in DEFAULT_MIX}
        assert result.session_steps > 0
        assert result.energy_total_j > 0
        doc = result.to_dict()
        assert doc["schema"] == 1 and doc["spec_hash"] == result.spec_hash

    def test_run_is_deterministic(self):
        a = run_fleet(_small_spec())
        b = run_fleet(_small_spec())
        assert a.to_dict() == b.to_dict()

    def test_contention_slows_shared_cells(self):
        # All-cellular-heavy mix: one overloaded cell must deliver less
        # than contention-free private cells in the same window.
        mix = (FleetScenario("cell-heavy", "mptcp", wifi_mbps=0.4,
                             cell_mbps=30.0, download_mb=None),)
        crowded = run_fleet(_small_spec(
            mix=mix, cells=1, cell_capacity_mbps=40.0, duration_s=10.0
        ))
        private = run_fleet(_small_spec(
            mix=mix, cells=0, duration_s=10.0
        ))
        assert crowded.bytes_total < 0.5 * private.bytes_total

    def test_sweep_scales_population(self):
        results = sweep_fleet(_small_spec(duration_s=10.0), [20, 60])
        assert [r.sessions for r in results] == [20, 60]
        assert results[0].spec_hash != results[1].spec_hash
        with pytest.raises(ConfigurationError):
            sweep_fleet(_small_spec(), [])

    def test_open_ended_sessions_never_complete(self):
        mix = (FleetScenario("stream", "tcp-wifi", download_mb=None),)
        result = run_fleet(_small_spec(mix=mix, duration_s=10.0))
        assert result.completed == 0
        assert result.bytes_total > 0


class TestFleetObs:
    def test_events_sampled_and_schema_valid(self):
        spec = _small_spec()
        with obs.capture(trace=True, metrics=False, profile=False) as ses:
            run_fleet(spec)
            events = list(ses.tracer)
        epochs = [e for e in events if e["type"] == "fleet.epoch"]
        sessions = [e for e in events if e["type"] == "fleet.session"]
        assert epochs, "no fleet.epoch heartbeat emitted"
        assert sessions, "no fleet.session completions emitted"
        # Bounded sampling: per-session events capped, epoch events
        # strided — a 10^5 fleet must not emit 10^5 records per epoch.
        assert len(sessions) <= 32
        assert len(epochs) <= 1 + int(
            spec.duration_s / (0.25 * 4)
        )
        assert validate_events(events) == []

    def test_no_tracer_no_events(self):
        # Must run clean (and fast) with observability disabled.
        result = run_fleet(_small_spec(duration_s=10.0))
        assert result.epochs > 0

    def test_trace_timeline_merges_sampled_fleet_events(self, tmp_path):
        # `repro trace timeline` over an exported fleet trace: sampled
        # fleet.epoch heartbeats and fleet.session completions land in
        # one sim-time-ordered timeline (with spans, when profiled).
        from repro.obs.summarize import build_timeline, format_timeline

        spec = _small_spec()
        with obs.capture(trace=True, metrics=False, profile=False) as ses:
            result = run_fleet(spec)
        path = ses.tracer.to_jsonl(
            tmp_path / f"fleet-{result.spec_hash}.trace.jsonl"
        )
        entries = build_timeline(path)
        assert entries, "fleet trace produced an empty timeline"
        labels = {entry["label"] for entry in entries}
        assert "fleet.epoch" in labels
        assert "fleet.session" in labels
        times = [entry["t"] for entry in entries]
        assert times == sorted(times)
        assert all(entry["kind"] == "event" for entry in entries)
        text = format_timeline(entries)
        assert "fleet.epoch" in text and "fleet.session" in text
