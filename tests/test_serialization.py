"""Tests for device-profile serialisation and the report generator."""

import pytest

from repro.energy.device import GALAXY_S3, NEXUS_5
from repro.energy.serialization import (
    profile_from_dict,
    profile_from_json,
    profile_to_dict,
    profile_to_json,
)
from repro.errors import ConfigurationError, EnergyModelError
from repro.net.interface import InterfaceKind


class TestProfileSerialization:
    @pytest.mark.parametrize("profile", [GALAXY_S3, NEXUS_5])
    def test_round_trip_preserves_model(self, profile):
        restored = profile_from_json(profile_to_json(profile))
        assert restored.name == profile.name
        assert restored.overlap_saving_w == profile.overlap_saving_w
        assert restored.baseline_w == profile.baseline_w
        for kind in profile.interfaces:
            a, b = profile.interfaces[kind], restored.interfaces[kind]
            assert (a.base_w, a.per_mbps_w, a.per_mbps_up_w, a.idle_w) == (
                b.base_w,
                b.per_mbps_w,
                b.per_mbps_up_w,
                b.idle_w,
            )
        for kind in profile.rrc:
            assert (
                restored.rrc[kind].fixed_overhead_joules
                == profile.rrc[kind].fixed_overhead_joules
            )
        assert restored.spec == profile.spec

    def test_round_trip_builds_identical_eib(self):
        from repro.core.eib import EnergyInformationBase

        restored = profile_from_json(profile_to_json(GALAXY_S3))
        grid = [0.5, 1.0, 2.0]
        original = EnergyInformationBase(GALAXY_S3, cell_grid_mbps=grid)
        rebuilt = EnergyInformationBase(restored, cell_grid_mbps=grid)
        for cell in grid:
            assert original.thresholds(cell) == pytest.approx(
                rebuilt.thresholds(cell)
            )

    def test_malformed_json_rejected(self):
        with pytest.raises(EnergyModelError):
            profile_from_json("{not json")

    def test_missing_fields_rejected(self):
        with pytest.raises(EnergyModelError):
            profile_from_dict({"name": "x"})

    def test_unknown_interface_kind_rejected(self):
        data = profile_to_dict(GALAXY_S3)
        data["interfaces"]["zigbee"] = data["interfaces"]["wifi"]
        with pytest.raises(EnergyModelError):
            profile_from_dict(data)

    def test_loaded_profile_usable_in_a_run(self):
        import dataclasses

        from repro.experiments.runner import run_scenario
        from repro.experiments.static_bw import static_scenario
        from repro.units import mib

        restored = profile_from_json(profile_to_json(NEXUS_5))
        scenario = dataclasses.replace(
            static_scenario(True, download_bytes=mib(1)), profile=restored
        )
        result = run_scenario("emptcp", scenario)
        assert result.energy_j > 0


class TestReportGenerator:
    def test_smoke_report_contains_all_sections(self):
        from repro.experiments.report_all import generate_report

        text = generate_report("smoke")
        for section in (
            "Table 2",
            "Figure 1",
            "Figure 5",
            "Figure 6",
            "Figure 8",
            "Figure 10",
            "Figure 13",
            "Figure 15",
            "Figure 16",
            "Figure 17",
            "§4.6",
        ):
            assert section in text, section

    def test_unknown_scale_rejected(self):
        from repro.experiments.report_all import generate_report

        with pytest.raises(ConfigurationError):
            generate_report("galactic")

    def test_cli_report_writes_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.md"
        code = main(["report", "--scale", "smoke", "--output", str(out)])
        assert code == 0
        assert out.read_text().startswith("# Reproduction report")
