"""Tests for named, seeded random streams."""

from repro.sim.rng import RandomStreams, hash_seed


def test_same_name_same_stream_object():
    streams = RandomStreams(1)
    assert streams.stream("a") is streams.stream("a")


def test_streams_reproducible_across_factories():
    a = RandomStreams(42).stream("wifi").random()
    b = RandomStreams(42).stream("wifi").random()
    assert a == b


def test_different_names_are_independent():
    streams = RandomStreams(42)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_creation_order_does_not_matter():
    s1 = RandomStreams(7)
    s1.stream("x")
    first = s1.stream("y").random()
    s2 = RandomStreams(7)
    second = s2.stream("y").random()  # "x" never created here
    assert first == second


def test_different_master_seeds_differ():
    assert RandomStreams(1).stream("a").random() != RandomStreams(2).stream("a").random()


def test_spawn_is_independent_of_parent():
    parent = RandomStreams(3)
    child = parent.spawn("child")
    assert parent.stream("a").random() != child.stream("a").random()


def test_hash_seed_stable():
    # Regression guard: the derivation must never change, or seeds
    # recorded in EXPERIMENTS.md become unreproducible.
    assert hash_seed(0, "a") == hash_seed(0, "a")
    assert hash_seed(0, "a") != hash_seed(1, "a")
    assert hash_seed(0, "a") != hash_seed(0, "b")
