"""Robustness / failure-injection properties of the fluid engine.

These hypothesis tests throw adversarial link conditions at the
transport and control plane and assert liveness invariants: transfers
make progress whenever capacity exists, nothing deadlocks, energy
accounting stays consistent.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.helpers import rng
from repro.energy.device import GALAXY_S3
from repro.energy.meter import EnergyMeter
from repro.energy.rrc import RrcState
from repro.net.bandwidth import PiecewiseTraceCapacity
from repro.net.interface import InterfaceKind, NetworkInterface
from repro.net.path import NetworkPath
from repro.sim.engine import Simulator
from repro.tcp.connection import FiniteSource, TcpConnection
from repro.units import mbps_to_bytes_per_sec


@st.composite
def capacity_traces(draw):
    """Random piecewise traces: segments of 1-10 s at 0-10 Mbps, with a
    guaranteed non-zero final segment so completion is possible."""
    n = draw(st.integers(min_value=1, max_value=8))
    trace = []
    t = 0.0
    for _ in range(n):
        rate = draw(st.sampled_from([0.0, 0.3, 1.0, 4.0, 10.0]))
        trace.append((t, mbps_to_bytes_per_sec(rate)))
        t += draw(st.floats(min_value=1.0, max_value=10.0))
    trace.append((t, mbps_to_bytes_per_sec(4.0)))  # recovery at the end
    return trace


@settings(max_examples=25, deadline=None)
@given(trace=capacity_traces(), seed=st.integers(min_value=0, max_value=99))
def test_property_fluid_tcp_survives_any_capacity_trace(trace, seed):
    """Outages, collapses, recoveries in any order: the transfer always
    completes once capacity returns, and delivers exactly its size."""
    sim = Simulator()
    path = NetworkPath(
        NetworkInterface(InterfaceKind.WIFI),
        PiecewiseTraceCapacity(trace),
        base_rtt=0.05,
    )
    path.attach(sim)
    size = 500_000.0
    source = FiniteSource(size)
    conn = TcpConnection(sim, path, source, rng=random.Random(seed))
    conn.connect()
    sim.run(until=trace[-1][0] + 600.0, max_events=10_000_000)
    assert source.exhausted
    assert conn.bytes_delivered == pytest.approx(size)


@settings(max_examples=15, deadline=None)
@given(
    events=st.lists(
        st.sampled_from(["pause", "resume", "run"]),
        min_size=1,
        max_size=20,
    ),
    seed=st.integers(min_value=0, max_value=99),
)
def test_property_pause_resume_storms_never_corrupt_state(events, seed):
    """Arbitrary MP_PRIO storms: delivered bytes never exceed the
    transfer size and the connection remains usable throughout."""
    from tests.helpers import make_path
    from repro.mptcp.subflow import Subflow

    sim = Simulator()
    path = make_path(sim, mbps=8.0)
    size = 2_000_000.0
    source = FiniteSource(size)
    subflow = Subflow(sim, path, source, rng=random.Random(seed))
    subflow.establish()
    sim.run(until=0.5)
    for event in events:
        if event == "pause":
            subflow.suspend()
        elif event == "resume":
            subflow.resume()
        else:
            sim.run(until=sim.now + 0.5)
        assert subflow.bytes_delivered <= size + 1e-6
    subflow.resume()
    sim.run(until=sim.now + 60.0)
    assert source.exhausted


@settings(max_examples=20, deadline=None)
@given(
    updates=st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=5.0),  # dt
            st.sampled_from(list(RrcState)),
            st.floats(min_value=0.0, max_value=2e6),  # rate
        ),
        min_size=1,
        max_size=40,
    )
)
def test_property_meter_energy_monotone_under_any_updates(updates):
    """Energy never decreases, whatever sequence of rate/RRC updates
    the meter sees."""
    sim = Simulator()
    meter = EnergyMeter(sim, GALAXY_S3)
    last = 0.0
    for dt, state, rate in updates:
        sim.run(until=sim.now + dt)
        meter.set_rrc_state(InterfaceKind.LTE, state)
        meter.set_rate(InterfaceKind.WIFI, rate)
        energy = meter.total_energy
        assert energy >= last - 1e-9
        last = energy
    values = meter.energy_series.values
    assert values == sorted(values)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50))
def test_property_emptcp_always_terminates_cleanly(seed):
    """Random on/off WiFi: eMPTCP completes and leaves no immortal
    events behind."""
    from repro.core.emptcp import EMPTCPConnection
    from tests.helpers import make_path
    from repro.net.bandwidth import TwoStateMarkovCapacity

    sim = Simulator()
    cap = TwoStateMarkovCapacity(
        high_rate=mbps_to_bytes_per_sec(10.0),
        low_rate=mbps_to_bytes_per_sec(0.5),
        mean_high=8.0,
        mean_low=8.0,
        rng=random.Random(seed),
        start_high=bool(seed % 2),
    )
    wifi = NetworkPath(NetworkInterface(InterfaceKind.WIFI), cap, base_rtt=0.05)
    wifi.attach(sim)
    lte = make_path(sim, InterfaceKind.LTE, mbps=8.0, rtt=0.07)
    source = FiniteSource(4_000_000.0)
    conn = EMPTCPConnection(
        sim, wifi, lte, source, profile=GALAXY_S3, rng=rng(seed)
    )
    conn.on_complete(lambda _c: sim.stop())
    conn.open()
    sim.run(until=600.0)
    assert conn.completed_at is not None
    conn.close()