"""Tier-3 trace invariants (repro.check.traces): the golden-file test
over a handcrafted known-bad trace, plus targeted per-rule fixtures."""

from repro.check.traces import (
    LEGAL_RRC_TRANSITIONS,
    check_events,
    check_trace_file,
    check_traces,
)
from repro.obs.trace import read_jsonl


def rules(report):
    return sorted(f.rule for f in report.findings)


def decision(t, wifi, decision_value, raw=None, switched=True, sf=0.1):
    return {
        "type": "controller.decision",
        "t": t,
        "wifi_mbps": wifi,
        "cell_mbps": 2.0,
        "raw": raw or decision_value,
        "decision": decision_value,
        "cell_only_thr_mbps": 0.5,
        "wifi_only_thr_mbps": 2.0,
        "safety_factor": sf,
        "switched": switched,
    }


# ---------------------------------------------------------------------------
# the golden file: one known-bad trace, every finding diffed verbatim


def test_known_bad_trace_matches_golden_output(test_data_dir):
    events = read_jsonl(test_data_dir / "bad.trace.jsonl")
    report = check_events(events, path="bad.trace.jsonl")
    expected = (test_data_dir / "bad.trace.expected").read_text()
    assert report.format() + "\n" == expected
    # The seeded violations cover every trace rule.
    assert set(rules(report)) == {
        "CHK301",
        "CHK302",
        "CHK303",
        "CHK304",
        "CHK305",
        "CHK306",
        "CHK307",
    }


def test_check_trace_file_reads_the_golden_fixture(test_data_dir):
    report = check_trace_file(test_data_dir / "bad.trace.jsonl")
    assert not report.ok
    assert report.checked == 14


# ---------------------------------------------------------------------------
# a legal trace passes everything


def test_clean_trace_passes():
    events = [
        {"type": "energy.checkpoint", "t": 1.0, "total_j": 1.0, "power_w": 0.5},
        {"type": "rrc.transition", "t": 1.5, "from": "idle", "to": "promoting", "dwell_s": 1.5},
        {"type": "rrc.transition", "t": 2.0, "from": "promoting", "to": "active", "dwell_s": 0.5},
        {"type": "subflow.suspend", "t": 2.5, "subflow": "sf-lte", "interface": "lte"},
        {"type": "subflow.resume", "t": 3.0, "subflow": "sf-lte", "interface": "lte"},
        {"type": "subflow.suspend", "t": 3.5, "subflow": "sf-lte", "interface": "lte"},
        {"type": "rrc.transition", "t": 4.0, "from": "active", "to": "tail", "dwell_s": 2.0},
        {"type": "rrc.transition", "t": 5.0, "from": "tail", "to": "idle", "dwell_s": 1.0},
        {"type": "energy.checkpoint", "t": 5.0, "total_j": 2.5, "power_w": 0.4},
        {"type": "subflow.checkpoint", "t": 6.0, "subflow": "sf-wifi", "interface": "wifi", "delivered_bytes": 750000.0, "conn_bytes": 1000000.0},
        {"type": "subflow.checkpoint", "t": 6.0, "subflow": "sf-lte", "interface": "lte", "delivered_bytes": 250000.0, "conn_bytes": 1000000.0},
    ]
    report = check_events(events)
    assert report.ok, report.format()
    assert report.checked == len(events)


def test_equal_timestamps_are_monotone():
    events = [
        {"type": "predictor.sample", "t": 1.0, "interface": "wifi", "sample_mbps": 1.0, "forecast_mbps": 1.0},
        {"type": "predictor.sample", "t": 1.0, "interface": "wifi", "sample_mbps": 2.0, "forecast_mbps": 1.5},
    ]
    assert check_events(events).ok


def test_sources_have_independent_clocks():
    # Interleaved emitters may step backwards relative to each other.
    events = [
        {"type": "predictor.sample", "t": 5.0, "interface": "wifi", "sample_mbps": 1.0, "forecast_mbps": 1.0},
        {"type": "predictor.sample", "t": 4.0, "interface": "lte", "sample_mbps": 1.0, "forecast_mbps": 1.0},
    ]
    assert check_events(events).ok


# ---------------------------------------------------------------------------
# CHK307 edge cases mirroring the controller's hysteresis semantics


def test_chk307_first_decision_is_never_flagged():
    events = [decision(1.0, 1.9, "both")]
    assert check_events(events).ok


def test_chk307_unswitched_decisions_inside_band_are_legal():
    events = [
        decision(1.0, 3.0, "wifi-only"),
        decision(2.0, 1.9, "wifi-only", switched=False),
    ]
    assert check_events(events).ok


def test_chk307_switch_outside_band_is_legal():
    events = [
        decision(1.0, 3.0, "wifi-only"),
        # 1.7 < 2.0 * (1 - 0.1): a legitimate demotion to BOTH.
        decision(2.0, 1.7, "both"),
    ]
    assert check_events(events).ok


def test_chk307_switch_inside_band_is_flagged():
    events = [
        decision(1.0, 3.0, "wifi-only"),
        decision(2.0, 1.9, "both"),
    ]
    assert rules(check_events(events)) == ["CHK307"]


def test_chk307_sample_guard_demotion_is_exempt():
    # The required-samples guard (raw wifi-only, decision both) can
    # legally land inside the band — hysteresis did not drive it.
    events = [
        decision(1.0, 3.0, "wifi-only"),
        decision(2.0, 1.9, "both", raw="wifi-only"),
    ]
    assert check_events(events).ok


def test_chk307_disabled_hysteresis_skips_the_check():
    events = [
        decision(1.0, 3.0, "wifi-only", sf=0.0),
        decision(2.0, 1.9, "both", sf=0.0),
    ]
    assert check_events(events).ok


# ---------------------------------------------------------------------------
# directory-level entry points


def test_check_traces_on_directory(test_data_dir):
    report = check_traces(test_data_dir)
    assert report.checked == 1  # only *.trace.jsonl files count
    assert not report.ok


def test_check_traces_warns_when_empty(tmp_path):
    report = check_traces(tmp_path)
    assert report.ok  # warning only
    assert rules(report) == ["CHK300"]


def test_malformed_jsonl_is_a_finding(tmp_path):
    bad = tmp_path / "corrupt.trace.jsonl"
    bad.write_text('{"type": "energy.checkpoint"\n')
    report = check_trace_file(bad)
    assert rules(report) == ["CHK301"]


def test_packet_engine_trace_passes_every_invariant():
    """A real packet-engine run satisfies the CHK3xx rules end to end
    (the adapter emits the same standard events as the fluid engine)."""
    from repro import obs
    from repro.experiments.runner import run_scenario
    from repro.experiments.static_bw import static_scenario
    from repro.units import mib

    with obs.capture(trace=True, metrics=False) as session:
        run_scenario(
            "emptcp",
            static_scenario(False, download_bytes=mib(8)),
            seed=0,
            engine="packet",
        )
    events = session.tracer.events()
    types = {e["type"] for e in events}
    # Bad WiFi: the cellular subflow joins, so the full event surface
    # (samples, decisions, checkpoints, RRC activity) is present.
    assert {"predictor.sample", "controller.decision", "delay.trigger",
            "subflow.checkpoint", "energy.checkpoint",
            "rrc.transition"} <= types
    report = check_events(events, path="packet-engine")
    assert report.ok, report.format()


def test_legal_rrc_edges_match_the_machine():
    # The edge set mirrors repro.energy.rrc.RrcMachine; a promotion
    # aborted back to idle is not a legal edge there either.
    assert ("promoting", "idle") not in LEGAL_RRC_TRANSITIONS
    assert ("idle", "promoting") in LEGAL_RRC_TRANSITIONS
