"""Tests for the handover experiment and stall/idle semantics."""

import pytest

from tests.helpers import make_path, rng
from repro.experiments.handover import (
    DEFAULT_OUTAGES,
    run_handover,
    run_handover_comparison,
)
from repro.errors import SimulationError
from repro.net.bandwidth import PiecewiseTraceCapacity
from repro.net.interface import InterfaceKind, NetworkInterface
from repro.net.path import NetworkPath
from repro.sim.engine import Simulator
from repro.tcp.connection import FiniteSource, TcpConnection
from repro.units import mib


class TestStallSemantics:
    def test_stalled_connection_still_counts_as_sending(self):
        """A flow waiting out a zero-capacity path is *trying* to send;
        eMPTCP's idle check must not classify it as idle."""
        sim = Simulator()
        cap = PiecewiseTraceCapacity([(0.0, 500_000.0), (2.0, 0.0)])
        path = NetworkPath(NetworkInterface(InterfaceKind.WIFI), cap, base_rtt=0.05)
        path.attach(sim)
        conn = TcpConnection(sim, path, FiniteSource(mib(8)), rng=rng())
        conn.connect()
        sim.run(until=3.0)
        assert path.total_available_rate() == 0.0
        assert conn.sending  # stalled with a retry pending


class TestHandover:
    def test_all_protocols_survive_outages(self):
        results = run_handover_comparison(download_bytes=mib(16))
        for protocol, result in results.items():
            assert result.download_time is not None, protocol
            assert result.bytes_received == pytest.approx(mib(16))

    def test_emptcp_activates_lte_during_outage(self):
        result = run_handover("emptcp", download_bytes=mib(16))
        assert result.subflows == 2
        assert result.lte_bytes > 0

    def test_wifi_first_fails_over_on_dissociation(self):
        result = run_handover("wifi-first", download_bytes=mib(16))
        assert result.lte_bytes > 0

    def test_single_path_mode_opens_second_subflow(self):
        result = run_handover("single-path-mode", download_bytes=mib(16))
        assert result.subflows == 2
        assert result.lte_bytes > 0

    def test_no_outage_means_no_lte_for_wifi_first(self):
        result = run_handover("wifi-first", download_bytes=mib(8), outages=())
        assert result.lte_bytes == 0.0

    def test_invalid_outage_rejected(self):
        with pytest.raises(SimulationError):
            run_handover("mptcp", outages=((5.0, 5.0),))

    def test_default_outage_script_shape(self):
        assert all(up > down for down, up in DEFAULT_OUTAGES)
