"""The flow tier's analytic physics (repro.flow.models)."""

import math

import numpy as np
import pytest

from repro.core.config import EMPTCPConfig
from repro.core.eib import cached_eib
from repro.core.forecast import HoltWintersForecaster
from repro.energy.device import GALAXY_S3
from repro.energy.power import Direction
from repro.flow.models import (
    INITIAL_WINDOW_BYTES,
    EibTable,
    epoch_rate_bytes_per_sec,
    holt_winters_forecast_mbps,
    holt_winters_update,
    mathis_rate_bytes_per_sec,
    ramp_bytes,
)
from repro.net.interface import InterfaceKind


class TestMathis:
    def test_lossless_is_uncapped(self):
        rate = mathis_rate_bytes_per_sec(np.array([0.05]), np.array([0.0]))
        assert np.isinf(rate[0])

    def test_known_value(self):
        # rate = (MSS / RTT) * sqrt(3/2 / p)
        rtt, p, mss = 0.1, 0.01, 1448.0
        rate = mathis_rate_bytes_per_sec(
            np.array([rtt]), np.array([p]), mss_bytes=mss
        )
        assert rate[0] == pytest.approx((mss / rtt) * math.sqrt(1.5 / p))

    def test_more_loss_is_slower(self):
        rtt = np.array([0.05, 0.05])
        loss = np.array([0.001, 0.01])
        rates = mathis_rate_bytes_per_sec(rtt, loss)
        assert rates[0] > rates[1]


class TestRamp:
    def test_before_origin_is_zero(self):
        got = ramp_bytes(
            np.array([0.0]), np.array([0.25]), np.array([1.0]),
            np.array([0.05]), np.array([1e6]),
        )
        assert got[0] == 0.0

    def test_unstarted_lane_is_zero(self):
        got = ramp_bytes(
            np.array([0.0]), np.array([0.25]), np.array([np.inf]),
            np.array([0.05]), np.array([1e6]),
        )
        assert got[0] == 0.0

    def test_long_window_approaches_capacity(self):
        # Far past the ramp, an epoch transfers ~capacity * dt.
        cap = 1.5e6
        got = ramp_bytes(
            np.array([100.0]), np.array([100.25]), np.array([0.0]),
            np.array([0.05]), np.array([cap]),
        )
        assert got[0] == pytest.approx(cap * 0.25, rel=1e-6)

    def test_integral_matches_numeric_quadrature(self):
        # During the ramp the analytic integral must match brute force.
        rtt, cap = 0.05, 1e7
        t0, t1 = 0.1, 0.35
        got = ramp_bytes(
            np.array([t0]), np.array([t1]), np.array([0.0]),
            np.array([rtt]), np.array([cap]),
        )
        r0 = INITIAL_WINDOW_BYTES / rtt
        ts = np.linspace(t0, t1, 20001)
        inst = np.minimum(cap, r0 * np.power(2.0, ts / rtt))
        numeric = np.trapezoid(inst, ts)
        assert got[0] == pytest.approx(numeric, rel=1e-3)


class TestEpochRate:
    def test_not_sending_is_zero(self):
        rate = epoch_rate_bytes_per_sec(
            0.0, 0.25, np.array([0.0]), np.array([0.05]),
            np.array([0.0]), np.array([1e6]), np.array([False]),
        )
        assert rate[0] == 0.0

    def test_loss_caps_below_capacity(self):
        lossy = epoch_rate_bytes_per_sec(
            100.0, 100.25, np.array([0.0]), np.array([0.1]),
            np.array([0.05]), np.array([1e9]), np.array([True]),
        )
        mathis = mathis_rate_bytes_per_sec(np.array([0.1]), np.array([0.05]))
        assert lossy[0] == pytest.approx(mathis[0], rel=1e-6)


class TestEibTable:
    def test_thresholds_match_scalar_eib(self):
        eib = cached_eib(GALAXY_S3, InterfaceKind.LTE, Direction.DOWN)
        table = EibTable(eib)
        for cell_mbps in (0.5, 1.0, 5.0, 10.0, 25.0):
            cell_only, wifi_only = table.thresholds_mbps(
                np.array([cell_mbps])
            )
            expected_cell, expected_wifi = eib.thresholds(cell_mbps)
            assert cell_only[0] == pytest.approx(
                expected_cell, rel=1e-6, abs=1e-6
            )
            if math.isinf(expected_wifi):
                assert wifi_only[0] >= 1e8
            else:
                assert wifi_only[0] == pytest.approx(
                    expected_wifi, rel=1e-6, abs=1e-6
                )


class TestHoltWinters:
    def test_matches_scalar_forecaster(self):
        cfg = EMPTCPConfig()
        scalar = HoltWintersForecaster(alpha=cfg.hw_alpha, beta=cfg.hw_beta)
        n = 1
        level = np.zeros(n)
        trend = np.zeros(n)
        ready = np.zeros(n, dtype=bool)
        mask = np.ones(n, dtype=bool)
        samples = [4.0, 6.0, 5.0, 8.0, 7.5]
        for x in samples:
            scalar.observe(x)
            holt_winters_update(
                np.array([x]), level, trend, ready, mask,
                cfg.hw_alpha, cfg.hw_beta,
            )
        got = holt_winters_forecast_mbps(
            level, trend, ready, cfg.initial_bandwidth_mbps
        )
        assert got[0] == pytest.approx(scalar.forecast(), rel=1e-9)

    def test_pre_sample_fallback(self):
        cfg = EMPTCPConfig()
        got = holt_winters_forecast_mbps(
            np.zeros(1), np.zeros(1), np.zeros(1, dtype=bool),
            cfg.initial_bandwidth_mbps,
        )
        assert got[0] == cfg.initial_bandwidth_mbps

    def test_update_respects_mask(self):
        level = np.array([1.0, 1.0])
        trend = np.array([0.0, 0.0])
        ready = np.array([True, True])
        mask = np.array([True, False])
        holt_winters_update(
            np.array([10.0, 10.0]), level, trend, ready, mask, 0.5, 0.5
        )
        assert level[0] != 1.0
        assert level[1] == 1.0
