"""The distributed-trace identity layer (repro.obs.dist): deterministic
ID derivation, context propagation, the lifecycle-span recorder with
its truncate-on-rerun semantics, and the flight-recorder ring.
"""

import json

import pytest

from repro.obs import dist

pytestmark = pytest.mark.runtime

HASHES = ["aaa111", "bbb222", "ccc333"]


def _span(trace_id, span_id, parent="", name="job", start=0.0, end=1.0,
          **attrs):
    return dist.LifecycleSpan(
        trace_id=trace_id, span_id=span_id, parent_span_id=parent,
        name=name, start_t=start, end_t=end, attrs=attrs,
    )


class TestIdentifiers:
    def test_trace_id_is_deterministic_and_salted(self):
        assert dist.derive_trace_id(HASHES) == dist.derive_trace_id(HASHES)
        assert dist.derive_trace_id(HASHES) != dist.derive_trace_id(
            HASHES, salt="b00001"
        )
        # Order matters: a reordered batch is a different batch.
        assert dist.derive_trace_id(HASHES) != dist.derive_trace_id(
            list(reversed(HASHES))
        )
        assert len(dist.derive_trace_id(HASHES)) == 16
        int(dist.derive_trace_id(HASHES), 16)  # hex

    def test_span_ids_depend_on_coordinates(self):
        tid = dist.derive_trace_id(HASHES)
        a = dist.span_id_for(tid, dist.SPAN_EXEC, HASHES[0], 1)
        assert a == dist.span_id_for(tid, dist.SPAN_EXEC, HASHES[0], 1)
        assert a != dist.span_id_for(tid, dist.SPAN_EXEC, HASHES[0], 2)
        assert a != dist.span_id_for(tid, dist.SPAN_EXEC, HASHES[1], 1)
        assert a != dist.span_id_for("other", dist.SPAN_EXEC, HASHES[0], 1)

    def test_root_context_and_children(self):
        root = dist.root_context(HASHES)
        assert root.parent_span_id == ""
        assert root.span_id == dist.span_id_for(root.trace_id, dist.SPAN_BATCH)
        job = root.child(dist.SPAN_JOB, HASHES[0])
        assert job.trace_id == root.trace_id
        assert job.parent_span_id == root.span_id
        execute = job.child(dist.SPAN_EXEC, HASHES[0], 1)
        assert execute.parent_span_id == job.span_id

    def test_context_survives_the_wire(self):
        ctx = dist.root_context(HASHES).child(dist.SPAN_JOB, HASHES[0])
        assert dist.TraceContext.from_dict(ctx.to_dict()) == ctx
        stamp = ctx.stamp()
        assert set(stamp) == {"trace_id", "span_id"}
        assert stamp["span_id"] == ctx.span_id


class TestLifecycleSpan:
    def test_roundtrip_and_duration(self):
        span = _span("t1", "s1", name="queue.wait", start=2.0, end=3.5,
                     hash="aaa111")
        assert span.duration_s == pytest.approx(1.5)
        again = dist.LifecycleSpan.from_dict(span.to_dict())
        assert again == span

    def test_from_dict_tolerates_junk(self):
        span = dist.LifecycleSpan.from_dict({"span_id": "x", "attrs": "nope"})
        assert span.attrs == {}
        assert span.status == "ok"


class TestSpanRecorder:
    def test_rerun_truncates_instead_of_accumulating(self, tmp_path):
        path = tmp_path / "t1.lifecycle.jsonl"
        first = dist.SpanRecorder(sink_dir=tmp_path)
        first.record(_span("t1", "s1"))
        first.record(_span("t1", "s2", parent="s1"))
        assert len(dist.read_lifecycle(path)) == 2
        # A new recorder instance (a re-run of the same deterministic
        # batch) replaces the file rather than appending duplicates.
        second = dist.SpanRecorder(sink_dir=tmp_path)
        second.record(_span("t1", "s1"))
        assert len(dist.read_lifecycle(path)) == 1
        assert second.recorded == 1

    def test_traces_get_separate_files(self, tmp_path):
        recorder = dist.SpanRecorder(sink_dir=tmp_path)
        recorder.record(_span("t1", "s1"))
        recorder.record(_span("t2", "s1"))
        assert sorted(p.name for p in dist.iter_lifecycle_files(tmp_path)) == [
            "t1.lifecycle.jsonl", "t2.lifecycle.jsonl",
        ]
        spans = dist.load_spans(tmp_path)
        assert set(spans) == {"t1", "t2"}

    def test_sinkless_recorder_keeps_the_ring_only(self, tmp_path):
        recorder = dist.SpanRecorder(sink_dir=None, ring_size=2)
        for index in range(5):
            recorder.record(_span("t1", f"s{index}"))
        assert [s.span_id for s in recorder.tail()] == ["s3", "s4"]
        assert recorder.recorded == 5
        assert list(tmp_path.iterdir()) == []

    def test_disk_errors_are_counted_not_raised(self, tmp_path):
        blocker = tmp_path / "obs"
        blocker.write_text("not a directory")
        recorder = dist.SpanRecorder(sink_dir=blocker)
        recorder.record(_span("t1", "s1"))
        assert recorder.dropped_writes == 1
        assert recorder.recorded == 1

    def test_flight_dump(self, tmp_path):
        recorder = dist.SpanRecorder(sink_dir=None)
        recorder.record(_span("t1", "s1"))
        recorder.record(_span("t1", "s2", parent="s1"))
        path = recorder.dump_flight(tmp_path / "flight", "timeout-abc/123",
                                    t=42.0)
        assert path is not None and path.name == "flight-timeout-abc-123.jsonl"
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0] == {"reason": "timeout-abc/123", "t": 42.0, "spans": 2}
        assert [doc["span_id"] for doc in lines[1:]] == ["s1", "s2"]


class TestReadLifecycle:
    def test_dedupes_by_span_id_last_wins(self, tmp_path):
        path = tmp_path / "t1.lifecycle.jsonl"
        with open(path, "w") as fh:
            fh.write(json.dumps(_span("t1", "s1", end=1.0).to_dict()) + "\n")
            fh.write("this line is torn{{{\n")
            fh.write(json.dumps(_span("t1", "s1", end=9.0).to_dict()) + "\n")
        spans = dist.read_lifecycle(path)
        assert len(spans) == 1
        assert spans[0].end_t == 9.0

    def test_iter_handles_files_and_missing_dirs(self, tmp_path):
        path = tmp_path / "t1.lifecycle.jsonl"
        path.write_text("")
        assert dist.iter_lifecycle_files(path) == [path]
        assert dist.iter_lifecycle_files(tmp_path / "nope") == []
