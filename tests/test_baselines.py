"""Tests for the §4.6 comparison strategies."""

import pytest

from tests.helpers import make_path, rng
from repro.baselines.mdp import (
    EPOCH,
    MdpAction,
    MdpPolicy,
    MdpScheduledConnection,
    uniform_level_transitions,
)
from repro.baselines.single_path import SinglePathTcp
from repro.baselines.wifi_first import WiFiFirstConnection
from repro.energy.device import GALAXY_S3
from repro.errors import ConfigurationError
from repro.net.interface import InterfaceKind
from repro.sim.engine import Simulator
from repro.tcp.connection import FiniteSource
from repro.units import mib


class TestSinglePathTcp:
    def test_download_completes(self):
        sim = Simulator()
        path = make_path(sim, mbps=8.0)
        conn = SinglePathTcp(sim, path, FiniteSource(mib(1)), rng=rng())
        seen = []
        conn.on_complete(lambda c: seen.append(sim.now))
        conn.open()
        sim.run(until=60.0)
        assert conn.completed_at is not None
        assert seen == [conn.completed_at]
        assert conn.bytes_received == pytest.approx(mib(1))


class TestWiFiFirst:
    def _build(self, sim, size=mib(8)):
        wifi = make_path(sim, InterfaceKind.WIFI, mbps=4.0)
        lte = make_path(sim, InterfaceKind.LTE, mbps=10.0)
        conn = WiFiFirstConnection(sim, wifi, lte, FiniteSource(size), rng=rng())
        return conn, wifi, lte

    def test_lte_backup_established_but_unused(self):
        """The paper's criticism: the backup activates the cellular
        radio at establishment but carries nothing while WiFi lives."""
        sim = Simulator()
        conn, _wifi, _lte = self._build(sim)
        conn.open()
        sim.run(until=60.0)
        assert conn.completed_at is not None
        lte_sf = conn.mptcp.subflow_for(InterfaceKind.LTE)
        assert lte_sf is not None and lte_sf.established
        assert lte_sf.bytes_delivered == 0.0
        assert conn.failovers == 0

    def test_low_wifi_bandwidth_does_not_trigger_failover(self):
        """Bandwidth collapse without disassociation is ignored — the
        strategy degenerates into TCP over WiFi (§4.6)."""
        sim = Simulator()
        from repro.net.bandwidth import PiecewiseTraceCapacity
        from repro.net.interface import NetworkInterface
        from repro.net.path import NetworkPath

        cap = PiecewiseTraceCapacity([(0.0, 500_000.0), (5.0, 5_000.0)])
        wifi = NetworkPath(NetworkInterface(InterfaceKind.WIFI), cap, base_rtt=0.05)
        wifi.attach(sim)
        lte = make_path(sim, InterfaceKind.LTE, mbps=10.0)
        conn = WiFiFirstConnection(sim, wifi, lte, FiniteSource(mib(4)), rng=rng())
        conn.open()
        sim.run(until=60.0)
        assert conn.failovers == 0
        lte_sf = conn.mptcp.subflow_for(InterfaceKind.LTE)
        assert lte_sf.bytes_delivered == 0.0

    def test_disassociation_triggers_failover_and_recovery(self):
        sim = Simulator()
        conn, wifi, _lte = self._build(sim, size=mib(16))
        conn.open()
        sim.run(until=5.0)
        wifi.interface.up = False
        sim.run(until=15.0)
        assert conn.failovers == 1
        lte_sf = conn.mptcp.subflow_for(InterfaceKind.LTE)
        assert lte_sf.bytes_delivered > 0
        wifi.interface.up = True
        sim.run(until=16.0)
        assert lte_sf.suspended  # back on WiFi


class TestMdpPolicy:
    def test_policy_chooses_wifi_only_under_our_energy_model(self):
        """§4.6's observation: LTE per-second power never dips below
        WiFi's, so the MDP collapses to WiFi-only in every state."""
        policy = MdpPolicy(GALAXY_S3, [1.0, 4.0, 8.0], [1.0, 4.0, 8.0])
        assert policy.chosen_actions() == [MdpAction.WIFI]

    def test_zero_wifi_state_forces_cellular(self):
        """If WiFi offers nothing the stall penalty forces cellular."""
        policy = MdpPolicy(GALAXY_S3, [0.0], [8.0])
        action = policy.action_for(0.0, 8.0)
        assert action in (MdpAction.CELLULAR, MdpAction.BOTH)

    def test_state_discretisation_nearest(self):
        policy = MdpPolicy(GALAXY_S3, [1.0, 8.0], [1.0, 8.0])
        assert policy.state_for(2.0, 7.0) == (0, 1)

    def test_transitions_are_probabilities(self):
        trans = uniform_level_transitions(3, 3, stay_prob=0.8)
        for wi in range(3):
            for ci in range(3):
                total = sum(p for _s, p in trans((wi, ci)))
                assert total == pytest.approx(1.0)

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            MdpPolicy(GALAXY_S3, [], [1.0])
        with pytest.raises(ConfigurationError):
            MdpPolicy(GALAXY_S3, [1.0], [1.0], discount=1.0)
        with pytest.raises(ConfigurationError):
            uniform_level_transitions(2, 2, stay_prob=0.0)


class TestMdpScheduledConnection:
    def test_behaves_like_tcp_over_wifi(self):
        """With a WiFi-only policy, the cellular subflow is never even
        established."""
        sim = Simulator()
        wifi = make_path(sim, InterfaceKind.WIFI, mbps=8.0)
        lte = make_path(sim, InterfaceKind.LTE, mbps=10.0)
        policy = MdpPolicy(GALAXY_S3, [1.0, 8.0], [1.0, 8.0])
        conn = MdpScheduledConnection(
            sim, wifi, lte, FiniteSource(mib(4)), policy, rng=rng()
        )
        conn.open()
        sim.run(until=60.0)
        assert conn.completed_at is not None
        assert conn.mptcp.subflow_for(InterfaceKind.LTE) is None
        assert conn.epochs >= 1

    def test_epoch_cadence_is_one_second(self):
        assert EPOCH == 1.0
