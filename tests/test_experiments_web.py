"""Tests for the web-browsing experiment (§5.4)."""

import pytest

from repro.experiments.web import (
    PROTOCOLS,
    WebPageFetch,
    run_web,
)
from repro.workloads.web import WebPage, cnn_like_page


@pytest.fixture(scope="module")
def small_page():
    # 20 objects keeps per-test wall time low while exercising the
    # dispatcher fully.
    full = cnn_like_page()
    return WebPage(full.object_sizes[:20])


class TestRunWeb:
    def test_all_protocols_fetch_the_page(self, small_page):
        for protocol in PROTOCOLS:
            result = run_web(protocol, page=small_page, seed=1)
            assert result.latency > 0
            assert result.energy_j > 0
            assert result.objects == 20

    def test_emptcp_never_uses_lte_for_small_objects(self, small_page):
        """§5.4: all objects < 256 KB -> eMPTCP stays on WiFi."""
        result = run_web("emptcp", page=small_page, seed=1)
        assert result.lte_bytes == 0.0

    def test_mptcp_pays_lte_energy(self, small_page):
        """MPTCP opens 2 subflows per connection; even with little LTE
        payload the promotion/tail cost shows up (Figure 17)."""
        mptcp = run_web("mptcp", page=small_page, seed=1)
        emptcp = run_web("emptcp", page=small_page, seed=1)
        assert mptcp.energy_j > emptcp.energy_j * 1.3

    def test_emptcp_latency_close_to_mptcp(self, small_page):
        """Figure 17(b): similar latency despite far less energy."""
        mptcp = run_web("mptcp", page=small_page, seed=1)
        emptcp = run_web("emptcp", page=small_page, seed=1)
        assert emptcp.latency <= mptcp.latency * 1.4

    def test_tcp_wifi_similar_to_emptcp(self, small_page):
        tcp = run_web("tcp-wifi", page=small_page, seed=1)
        emptcp = run_web("emptcp", page=small_page, seed=1)
        assert emptcp.energy_j == pytest.approx(tcp.energy_j, rel=0.3)

    def test_connection_count_respected(self, small_page):
        result = run_web("tcp-wifi", page=small_page, seed=1, n_connections=3)
        assert result.connections == 3


class TestDispatcher:
    def test_all_objects_dispatched_across_connections(self, small_page):
        """More objects than connections: every connection pulls from
        the shared queue until the page drains."""
        from repro.sim.engine import Simulator
        from repro.experiments.web import WebPageFetch
        from tests.helpers import make_path, rng
        from repro.baselines.single_path import SinglePathTcp
        from repro.net.interface import InterfaceKind

        sim = Simulator()
        path = make_path(sim, InterfaceKind.WIFI, mbps=20.0)

        def make_connection(source, _i):
            return SinglePathTcp(sim, path, source, rng=rng())

        fetch = WebPageFetch(sim, small_page, make_connection, n_connections=4)
        fetch.start()
        sim.run(until=120.0)
        assert fetch.done
        assert fetch.objects_done == len(small_page)
        per_conn = [w.objects_done for w in fetch.workers]
        assert sum(per_conn) == len(small_page)
        assert all(n > 0 for n in per_conn)

    def test_fewer_objects_than_connections(self):
        from repro.sim.engine import Simulator
        from tests.helpers import make_path, rng
        from repro.baselines.single_path import SinglePathTcp
        from repro.net.interface import InterfaceKind

        page = WebPage([10_000.0, 20_000.0])
        sim = Simulator()
        path = make_path(sim, InterfaceKind.WIFI, mbps=20.0)

        def make_connection(source, _i):
            return SinglePathTcp(sim, path, source, rng=rng())

        fetch = WebPageFetch(sim, page, make_connection, n_connections=6)
        fetch.start()
        sim.run(until=60.0)
        assert fetch.done
