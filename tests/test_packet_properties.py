"""Property-based tests for the packet engine (hypothesis).

The invariants here are the ones that make a transport *correct* no
matter what the network does: every byte is delivered to the
application exactly once and in order, regardless of loss pattern,
buffer size, or path mix.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.bandwidth import ConstantCapacity
from repro.net.interface import InterfaceKind
from repro.packet.link import PacketLink
from repro.packet.mptcp import DsnReassembly, PacketMptcpConnection, single_path_connection
from repro.packet.tcp import MSS, SubflowReceiver, Segment
from repro.check.packet import PathSpec, packet_mptcp_time
from repro.sim.engine import Simulator
from repro.tcp.connection import FiniteSource
from repro.units import mbps_to_bytes_per_sec


@settings(max_examples=20, deadline=None)
@given(
    loss=st.floats(min_value=0.0, max_value=0.05),
    mbps=st.floats(min_value=1.0, max_value=20.0),
    size_kb=st.integers(min_value=50, max_value=1000),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_exactly_once_in_order_delivery(loss, mbps, size_kb, seed):
    """Any loss rate, any rate, any size: the app receives exactly the
    transfer size, in order, and the connection completes."""
    sim = Simulator()
    link = PacketLink(
        sim,
        ConstantCapacity(mbps_to_bytes_per_sec(mbps)),
        one_way_delay=0.02,
        loss_rate=loss,
        rng=random.Random(seed),
    )
    size = size_kb * 1000.0
    conn = single_path_connection(sim, link, FiniteSource(size))
    conn.open()
    sim.run(until=3_000.0, max_events=30_000_000)
    assert conn.completed_at is not None
    assert conn.bytes_received == pytest.approx(size)
    # DSN ledger fully consumed: nothing outstanding, nothing buffered.
    assert conn.reassembly_buffered == 0.0


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    rcv_kb=st.integers(min_value=64, max_value=2000),
    loss=st.floats(min_value=0.0, max_value=0.02),
)
def test_property_mptcp_delivers_everything(seed, rcv_kb, loss):
    """Two asymmetric subflows, any receive-buffer size, mild loss:
    exactly-once delivery still holds."""
    sim = Simulator()
    links = [
        PacketLink(
            sim,
            ConstantCapacity(mbps_to_bytes_per_sec(8.0)),
            one_way_delay=0.02,
            loss_rate=loss,
            rng=random.Random(seed),
        ),
        PacketLink(
            sim,
            ConstantCapacity(mbps_to_bytes_per_sec(3.0)),
            one_way_delay=0.06,
            loss_rate=loss,
            rng=random.Random(seed + 1),
        ),
    ]
    size = 500_000.0
    conn = PacketMptcpConnection(
        sim, links, FiniteSource(size), rcv_buffer=rcv_kb * 1000.0
    )
    conn.open()
    sim.run(until=3_000.0, max_events=30_000_000)
    assert conn.completed_at is not None
    assert conn.bytes_received == pytest.approx(size)


@settings(max_examples=30, deadline=None)
@given(
    order=st.permutations(list(range(8))),
)
def test_property_receiver_order_insensitive(order):
    """The receiver delivers the same in-order stream no matter the
    arrival permutation, and the final ACK covers everything."""
    delivered = []
    rx = SubflowReceiver(lambda dsn, size: delivered.append(dsn))
    ack = 0.0
    for i in order:
        ack, _sacks = rx.on_segment(
            Segment(seq=i * MSS, size=MSS, dsn=i * MSS, sent_at=0.0)
        )
    assert ack == 8 * MSS
    assert delivered == [i * MSS for i in range(8)]
    assert rx.sack_blocks() == ()


@settings(max_examples=30, deadline=None)
@given(
    chunks=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=1, max_value=3),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_property_dsn_reassembly_monotone(chunks):
    """dsn_next only advances, buffered bytes never go negative, and
    duplicates never double-deliver."""
    r = DsnReassembly()
    total_in_order = 0.0
    prev = 0.0
    for slot, length in chunks:
        delivered = r.on_data(slot * 100.0, length * 100.0)
        total_in_order += delivered
        assert r.dsn_next >= prev
        assert r.buffered_bytes >= 0.0
        prev = r.dsn_next
    assert total_in_order == r.dsn_next
