"""The dedup job queue: coalescing, priorities, dependency edges, and
journal crash recovery (repro.runtime.queue).

Everything runs at tiny download sizes; the queue semantics under test
(one execution per spec hash, scheduling-edge release, byte-identical
replay) do not depend on scale.
"""

import json

import pytest

from repro.runtime import RunManifest, RunSpec, run_many, summarize
from repro.runtime.queue import JobQueue
from repro.runtime.scheduler import BatchSink, Scheduler
from repro.sim.engine import dispatch_stats
from repro.units import mib

pytestmark = pytest.mark.runtime

SMALL = mib(1)


def small_spec(seed=0, **overrides):
    kwargs = {"good_wifi": True, "download_bytes": SMALL, "lte_mbps": 10.0}
    kwargs.update(overrides)
    return RunSpec(protocol="emptcp", builder="static", kwargs=kwargs, seed=seed)


class TestDedup:
    def test_identical_hashes_coalesce_into_one_job(self):
        queue = JobQueue()
        job0, fresh0 = queue.submit(small_spec())
        job1, fresh1 = queue.submit(small_spec())
        assert job0 is job1
        assert fresh0 and not fresh1
        assert job0.waiters == 2
        stats = queue.stats
        assert stats.submitted == 1 and stats.deduped == 1
        assert queue.open_jobs() == 1  # one distinct execution owed

    def test_callback_fires_once_per_subscription_even_when_terminal(self):
        queue = JobQueue()
        job, _ = queue.submit(small_spec())
        assert queue.pop() is job and job.attempts == 1
        queue.mark_done(job, "executed", 42)
        seen = []
        _, fresh = queue.submit(small_spec(), on_done=seen.append)
        assert not fresh
        assert seen == [job]  # terminal job fires before submit returns
        # subscribe() refuses terminal jobs so the caller fires itself.
        assert not queue.subscribe(job, seen.append)

    def test_n_waiters_observe_exactly_one_execution(self, tmp_path):
        """ISSUE acceptance: N submissions of one spec hash -> one
        engine dispatch, asserted via DispatchStats and the manifest."""
        specs = [small_spec(seed=7) for _ in range(5)]
        single = small_spec(seed=7)
        events_single0, _ = dispatch_stats().snapshot()
        expected = single.execute()
        events_single1, _ = dispatch_stats().snapshot()
        per_run = events_single1 - events_single0
        assert per_run > 0

        manifest_path = tmp_path / "run.jsonl"
        events0, _ = dispatch_stats().snapshot()
        with RunManifest(manifest_path) as manifest:
            results = run_many(specs, manifest=manifest)
        events1, _ = dispatch_stats().snapshot()
        assert events1 - events0 == per_run  # exactly one execution
        counts = summarize(RunManifest.read(manifest_path))
        assert counts["executed"] == 1
        assert counts["deduped"] == 4
        # Every waiter gets the one result.
        for result in results:
            assert result.to_dict() == expected.to_dict()


class TestPriorityAndDependencies:
    def test_higher_priority_pops_first_fifo_within(self):
        queue = JobQueue()
        low1, _ = queue.submit(small_spec(seed=1), priority=0)
        high, _ = queue.submit(small_spec(seed=2), priority=5)
        low2, _ = queue.submit(small_spec(seed=3), priority=0)
        assert queue.pop() is high
        assert queue.pop() is low1
        assert queue.pop() is low2
        assert queue.pop() is None

    def test_dependent_ready_only_after_dependency_terminal(self):
        queue = JobQueue()
        warm, _ = queue.submit(small_spec(seed=0))
        variant, _ = queue.submit(
            small_spec(seed=1), after=(warm.spec_hash,)
        )
        assert queue.pop() is warm
        assert queue.pop() is None  # variant still blocked
        queue.mark_done(warm, "executed")
        assert queue.pop() is variant

    def test_failed_dependency_releases_dependents(self):
        """``after`` edges are scheduling edges (warm-up ordering), not
        data edges: a failed warm-up must not cascade."""
        queue = JobQueue()
        warm, _ = queue.submit(small_spec(seed=0))
        variant, _ = queue.submit(
            small_spec(seed=1), after=(warm.spec_hash,)
        )
        assert queue.pop() is warm
        queue.mark_failed(warm, RuntimeError("warm-up exploded"))
        assert queue.pop() is variant

    def test_unknown_dependency_counts_as_satisfied(self):
        queue = JobQueue()
        job, _ = queue.submit(small_spec(), after=("never-submitted",))
        assert queue.pop() is job


class TestJournalRecovery:
    def test_killed_run_replays_to_completion_byte_identical(self, tmp_path):
        """ISSUE acceptance: a journal written by a killed run replays
        to completion with byte-identical results."""
        journal = tmp_path / "journal.jsonl"
        specs = [small_spec(seed=s) for s in range(3)]
        queue = JobQueue(journal=journal)
        for spec in specs:
            queue.submit(spec)
        finished = queue.pop()
        queue.mark_done(finished, "executed", finished.spec.execute())
        in_flight = queue.pop()  # started, never finished: killed here
        assert in_flight is not None
        del queue  # no close(): the journal is fsynced line by line

        recovered = JobQueue.recover(journal)
        assert recovered.stats.recovered == 2
        hashes = {job.spec_hash for job in recovered.jobs()}
        assert in_flight.spec_hash in hashes  # in-flight work runs again
        assert finished.spec_hash not in hashes

        remaining = [job.spec for job in recovered.jobs()]
        sink = BatchSink(remaining)
        for index, job in enumerate(recovered.jobs()):
            assert recovered.subscribe(job, sink.on_terminal)
            sink.register(index, job)
        Scheduler(jobs=1).run_batch(recovered, sink)
        assert not sink.failures
        for spec, result in zip(remaining, sink.results):
            assert (
                json.dumps(result.to_dict(), sort_keys=True)
                == json.dumps(spec.execute().to_dict(), sort_keys=True)
            )

    def test_torn_tail_and_blank_lines_tolerated(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        queue = JobQueue(journal=journal)
        queue.submit(small_spec())
        queue.close()
        with open(journal, "a") as fh:
            fh.write('\n{"event": "done", "hash": "torn-mid-app')
        recovered = JobQueue.recover(journal)
        assert recovered.stats.recovered == 1
        assert recovered.open_jobs() == 1

    def test_run_many_journal_records_full_lifecycle(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        specs = [small_spec(seed=s) for s in range(2)]
        run_many(specs, journal=journal)
        kinds = [e["event"] for e in JobQueue.read_journal(journal)]
        assert kinds.count("submit") == 2
        assert kinds.count("done") == 2
        # Everything terminal: recovery finds no pending work.
        assert JobQueue.recover(journal).open_jobs() == 0
