"""The parallel execution runtime: specs, cache, manifest, executor.

Everything here runs at tiny download sizes so the suite stays
CI-sized; the runtime semantics (hash stability, cache equivalence,
retry/failure bookkeeping) do not depend on scale.
"""

import io
import json
import signal
import time

import pytest

from repro.errors import ConfigurationError, ExecutionError, SimulationError
from repro.experiments.runner import run_scenario
from repro.experiments.sensitivity import sweep_config
from repro.experiments.static_bw import static_scenario
from repro.runtime import (
    ProgressReporter,
    ResultCache,
    RunManifest,
    RunSpec,
    ScenarioRef,
    build_scenario,
    current_context,
    format_summary,
    group_results,
    register_builder,
    registered_builders,
    run_many,
    run_specs,
    summarize,
    use_runtime,
)
from repro.runtime import spec as spec_mod
from repro.units import mib

pytestmark = pytest.mark.runtime

SMALL = mib(1)


def small_spec(protocol="emptcp", seed=0, **overrides):
    kwargs = {"good_wifi": True, "download_bytes": SMALL, "lte_mbps": 10.0}
    kwargs.update(overrides)
    return RunSpec(protocol=protocol, builder="static", kwargs=kwargs, seed=seed)


@pytest.fixture
def scratch_builder():
    """Register throwaway builders; unregister them afterwards."""
    names = []

    def _register(name, execute, **kw):
        names.append(name)
        return register_builder(name, execute, **kw)

    yield _register
    for name in names:
        spec_mod._REGISTRY.pop(name, None)


class TestRunSpec:
    def test_content_hash_is_stable_and_kwarg_order_insensitive(self):
        a = RunSpec("emptcp", "static", {"good_wifi": True, "lte_mbps": 10.0})
        b = RunSpec("emptcp", "static", {"lte_mbps": 10.0, "good_wifi": True})
        assert a.content_hash() == b.content_hash()
        assert a.content_hash() == a.content_hash()

    def test_content_hash_sees_every_field(self):
        base = small_spec()
        assert small_spec(protocol="mptcp").content_hash() != base.content_hash()
        assert small_spec(seed=1).content_hash() != base.content_hash()
        assert small_spec(lte_mbps=9.0).content_hash() != base.content_hash()
        cfg = RunSpec(
            "emptcp", "static", dict(base.kwargs), config={"tau_seconds": 6.0}
        )
        assert cfg.content_hash() != base.content_hash()

    def test_non_json_kwargs_are_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            RunSpec("emptcp", "static", {"capacity": object()})
        with pytest.raises(ConfigurationError):
            RunSpec("emptcp", "static", {}, config={"fn": lambda: None})

    def test_round_trip_through_dict(self):
        spec = small_spec(seed=3)
        again = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec
        assert again.content_hash() == spec.content_hash()

    def test_default_registry_covers_every_experiment_family(self):
        names = set(registered_builders())
        assert {
            "static", "random-bw", "background", "mobility", "upload",
            "wild", "web",
        } <= names

    def test_unknown_builder_raises_with_suggestions(self):
        spec = RunSpec("emptcp", "no-such-builder")
        with pytest.raises(ConfigurationError, match="static"):
            spec.execute()

    def test_scenario_ref_builds_the_same_scenario(self):
        ref = ScenarioRef("static", {"good_wifi": True, "download_bytes": SMALL})
        scenario = ref.build()
        assert scenario.name == static_scenario(True, SMALL).name
        assert scenario.download_bytes == SMALL
        spec = ref.spec("emptcp", seed=2, config={"tau_seconds": 6.0})
        assert spec.builder == "static"
        assert spec.seed == 2
        assert spec.config == {"tau_seconds": 6.0}

    def test_build_scenario_rejects_non_scenario_builders(self):
        with pytest.raises(ConfigurationError):
            build_scenario("web")


class TestResultCache:
    def test_round_trip_preserves_every_field(self, tmp_path):
        """Satellite: a cached result equals a fresh one field-for-field."""
        cache = ResultCache(tmp_path / "cache")
        spec = small_spec()
        fresh = spec.execute()
        cache.put(spec, fresh)
        cached = cache.get(spec)
        assert cached is not None
        assert cached.to_dict() == fresh.to_dict()
        assert cached.energy_j == fresh.energy_j
        assert cached.download_time == fresh.download_time
        assert cached.bytes_received == fresh.bytes_received
        assert cached.diagnostics == fresh.diagnostics
        assert cached.energy_series == fresh.energy_series

    def test_miss_on_unknown_spec_and_corrupt_entry(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = small_spec()
        assert cache.get(spec) is None
        cache.put(spec, spec.execute())
        # Scribble over the segment holding the entry: an unreadable
        # entry is a miss, never an error.
        for segment in cache.store.segment_paths():
            segment.write_text("{not json\n")
        assert cache.get(spec) is None
        # A corrupt legacy-generation blob is equally just a miss.
        legacy = ResultCache(tmp_path / "legacy")
        legacy.results_dir.mkdir(parents=True)
        legacy.path_for(spec).write_text("{not json")
        assert legacy.get(spec) is None

    def test_salt_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = small_spec()
        cache.put(spec, spec.execute())
        payload = cache.store.get(spec.content_hash())
        payload["salt"] = "repro-0.0.0/runtime-0"
        cache.store.put(spec.content_hash(), payload)  # newest entry wins
        assert cache.get(spec) is None
        # Legacy generation: a stale-salt blob is a miss and must NOT
        # be migrated into the segment store.
        legacy = ResultCache(tmp_path / "legacy")
        legacy.results_dir.mkdir(parents=True)
        legacy.path_for(spec).write_text(json.dumps(payload))
        assert legacy.get(spec) is None
        assert legacy.path_for(spec).exists()
        assert legacy.store.entry_count() == 0

    def test_stats_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.stats().entries == 0
        result = small_spec().execute()
        cache.put(small_spec(), result)
        cache.put(small_spec(seed=1), result)
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.total_bytes > 0
        assert cache.clear() == 2
        assert cache.stats().entries == 0


class TestManifest:
    def test_write_read_summarize(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunManifest(path) as manifest:
            manifest.record(small_spec(), "executed", wall_time_s=1.5)
            manifest.record(small_spec(seed=1), "cached", worker="cache")
            manifest.record(small_spec(seed=2), "retried", attempt=1)
            manifest.record(small_spec(seed=2), "failed", attempt=2)
        entries = RunManifest.read(path)
        assert [e.outcome for e in entries] == [
            "executed", "cached", "retried", "failed",
        ]
        assert entries[0].wall_time_s == 1.5
        assert entries[0].spec_hash == small_spec().content_hash()
        counts = summarize(entries)
        assert counts["total"] == 3  # retried is not terminal
        assert "1 executed, 1 cached, 1 failed" in format_summary(counts)

    def test_rejects_unknown_outcomes(self, tmp_path):
        manifest = RunManifest(tmp_path / "run.jsonl")
        with pytest.raises(ConfigurationError):
            manifest.record(small_spec(), "exploded")
        # Nothing recorded: the file is never created.
        assert not (tmp_path / "run.jsonl").exists()


class TestProgressReporter:
    def test_counters_rate_and_eta_with_fake_clock(self):
        now = [100.0]
        stream = io.StringIO()
        reporter = ProgressReporter(
            stream=stream, min_interval_s=0.0, clock=lambda: now[0]
        )
        reporter.start(4)
        now[0] += 2.0
        reporter.update("executed")
        reporter.update("cached")
        reporter.update("retried")  # intermediate: not counted
        snap = reporter.snapshot()
        assert (snap.done, snap.executed, snap.cached, snap.failed) == (2, 1, 1, 0)
        assert snap.remaining == 2
        assert snap.runs_per_sec == pytest.approx(1.0)
        assert snap.eta_s == pytest.approx(2.0)
        reporter.update("failed")
        reporter.update("executed")
        final = reporter.finish()
        assert final.done == 4
        assert final.eta_s == 0.0
        assert "runs 4/4" in stream.getvalue()


class TestRunMany:
    def test_serial_matches_direct_run_scenario(self):
        spec = small_spec(seed=7)
        [via_runtime] = run_many([spec])
        direct = run_scenario(
            "emptcp", static_scenario(True, download_bytes=SMALL), seed=7
        )
        assert via_runtime.to_dict() == direct.to_dict()

    def test_second_invocation_is_all_cached(self, tmp_path):
        """The acceptance property at unit scale: warm cache, 0 executed."""
        cache = ResultCache(tmp_path / "cache")
        specs = [small_spec(protocol=p, seed=s)
                 for p in ("emptcp", "tcp-wifi") for s in range(2)]
        m1, m2 = tmp_path / "cold.jsonl", tmp_path / "warm.jsonl"
        with RunManifest(m1) as manifest:
            cold = run_many(specs, cache=cache, manifest=manifest)
        with RunManifest(m2) as manifest:
            warm = run_many(specs, cache=cache, manifest=manifest)
        cold_counts = summarize(RunManifest.read(m1))
        warm_counts = summarize(RunManifest.read(m2))
        assert cold_counts["executed"] == len(specs)
        assert warm_counts["executed"] == 0
        assert warm_counts["cached"] == len(specs)
        for a, b in zip(cold, warm):
            assert a.to_dict() == b.to_dict()

    def test_group_results_preserves_order_within_protocol(self):
        specs = [small_spec(protocol=p, seed=s)
                 for p in ("emptcp", "tcp-wifi") for s in range(2)]
        grouped = group_results(specs, list(range(len(specs))))
        assert grouped == {"emptcp": [0, 1], "tcp-wifi": [2, 3]}

    def test_run_specs_inherits_ambient_context(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert current_context().cache is None
        with use_runtime(cache=cache, jobs=1):
            assert current_context().cache is cache
            run_specs([small_spec()])
        assert current_context().cache is None
        assert cache.stats().entries == 1

    def test_failure_raises_execution_error_and_is_recorded(
        self, tmp_path, scratch_builder
    ):
        def boom(spec):
            raise SimulationError("deliberate failure")

        scratch_builder("boom-test", boom)
        specs = [small_spec(), RunSpec("emptcp", "boom-test")]
        manifest_path = tmp_path / "run.jsonl"
        with RunManifest(manifest_path) as manifest:
            with pytest.raises(ExecutionError, match="deliberate failure"):
                run_many(specs, manifest=manifest)
        counts = summarize(RunManifest.read(manifest_path))
        # The healthy run still executed (and would be cached for resume).
        assert counts["executed"] == 1
        assert counts["failed"] == 1
        assert counts["retried"] == 0  # deterministic errors never retry

    @pytest.mark.skipif(
        not hasattr(signal, "SIGALRM"), reason="needs SIGALRM timeouts"
    )
    def test_timeout_is_retried_then_failed(self, tmp_path, scratch_builder):
        def sleepy(spec):
            time.sleep(5.0)

        scratch_builder("sleepy-test", sleepy)
        manifest_path = tmp_path / "run.jsonl"
        with RunManifest(manifest_path) as manifest:
            with pytest.raises(ExecutionError, match="timeout"):
                run_many(
                    [RunSpec("emptcp", "sleepy-test")],
                    manifest=manifest,
                    timeout_s=0.05,
                    retries=1,
                    backoff_s=0.0,
                )
        outcomes = [e.outcome for e in RunManifest.read(manifest_path)]
        assert outcomes == ["retried", "failed"]

    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            run_many([small_spec()], jobs=0)


class TestWallClockTimeoutFallback:
    """``--timeout`` must hold even where ``SIGALRM`` cannot be armed
    (Windows, or a caller driving the runtime from a worker thread).
    There the deadline degrades to a post-hoc wall-clock check: the
    run completes but an overshoot is still reported as a timeout."""

    def test_timeout_enforced_without_sigalrm(
        self, tmp_path, scratch_builder, monkeypatch
    ):
        from repro.runtime import scheduler as scheduler_mod

        monkeypatch.setattr(scheduler_mod, "_sigalrm_usable", lambda: False)

        def sleepy(spec):
            time.sleep(0.2)

        scratch_builder("sleepy-wall-test", sleepy)
        manifest_path = tmp_path / "run.jsonl"
        with RunManifest(manifest_path) as manifest:
            with pytest.raises(ExecutionError, match="timeout"):
                run_many(
                    [RunSpec("emptcp", "sleepy-wall-test")],
                    manifest=manifest,
                    timeout_s=0.05,
                    retries=1,
                    backoff_s=0.0,
                )
        outcomes = [e.outcome for e in RunManifest.read(manifest_path)]
        assert outcomes == ["retried", "failed"]

    def test_timeout_enforced_off_main_thread(self, scratch_builder):
        import threading

        def sleepy(spec):
            time.sleep(0.2)

        scratch_builder("sleepy-thread-test", sleepy)
        caught = []

        def body():
            try:
                run_many(
                    [RunSpec("emptcp", "sleepy-thread-test")],
                    timeout_s=0.05,
                    retries=0,
                    backoff_s=0.0,
                )
            except ExecutionError as exc:
                caught.append(exc)

        thread = threading.Thread(target=body)
        thread.start()
        thread.join()
        assert caught and "timeout" in str(caught[0])

    def test_fast_run_passes_wallclock_check(
        self, scratch_builder, monkeypatch
    ):
        from repro.runtime import scheduler as scheduler_mod

        monkeypatch.setattr(scheduler_mod, "_sigalrm_usable", lambda: False)
        scratch_builder("quick-wall-test", lambda spec: 42)
        results = run_many(
            [RunSpec("emptcp", "quick-wall-test")], timeout_s=30.0
        )
        assert results == [42]


class TestSweepThroughRuntime:
    def test_scenario_ref_sweep_matches_legacy_scenario_sweep(self):
        values = (3.0, 6.0)
        legacy = sweep_config(
            "tau_seconds", values,
            static_scenario(True, download_bytes=SMALL), runs=1,
        )
        via_ref = sweep_config(
            "tau_seconds", values,
            ScenarioRef("static", {"good_wifi": True, "download_bytes": SMALL}),
            runs=1,
        )
        assert [(p.value, p.energy_j, p.download_time) for p in legacy] == [
            (p.value, p.energy_j, p.download_time) for p in via_ref
        ]


class TestRetryBackoff:
    """Decorrelated-jitter retry delays (repro.runtime.scheduler;
    re-exported through the executor facade)."""

    def _rng(self, seed=7):
        import random

        return random.Random(seed)

    def test_delay_stays_within_base_and_cap(self):
        from repro.runtime.executor import retry_delay_s

        rng = self._rng()
        prev = 0.5
        for _ in range(200):
            delay = retry_delay_s(0.5, 30.0, prev, rng)
            assert 0.5 <= delay <= 30.0
            prev = delay

    def test_single_step_growth_bounded_by_3x_previous(self):
        from repro.runtime.executor import retry_delay_s

        rng = self._rng(9)
        for _ in range(100):
            delay = retry_delay_s(1.0, 100.0, 4.0, rng)
            assert 1.0 <= delay <= 12.0

    def test_cap_binds(self):
        from repro.runtime.executor import retry_delay_s

        assert retry_delay_s(5.0, 2.0, 100.0, self._rng()) == 2.0

    def test_zero_base_means_no_sleep(self):
        from repro.runtime.executor import retry_delay_s

        assert retry_delay_s(0.0, 30.0, 10.0, self._rng()) == 0.0

    def test_delays_are_jittered_not_lockstep(self):
        from repro.runtime.executor import retry_delay_s

        rng = self._rng(3)
        delays = [retry_delay_s(0.5, 30.0, 5.0, rng) for _ in range(50)]
        assert len(set(delays)) > 10

    def test_retry_policy_chains_delays_and_bounds_attempts(self):
        from repro.runtime.scheduler import RetryPolicy

        policy = RetryPolicy(retries=2, backoff_s=0.5, max_backoff_s=4.0)
        rng = self._rng(11)
        prev = 0.0
        for _ in range(20):
            prev = policy.delay_s(prev, rng)
            assert 0.5 <= prev <= 4.0
        # A job's first retry starts fresh from the base.
        assert 0.5 <= policy.delay_s(0.0, rng) <= 1.5
        assert policy.should_retry(1)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)

    def test_context_exposes_max_backoff(self):
        assert current_context().max_backoff_s == 30.0


class TestFacadeEquivalence:
    def test_run_many_byte_identical_to_direct_execution(self, tmp_path):
        """The facade promise: routing the fig5/fig6 suite through the
        queue + scheduler + store pipeline changes nothing about the
        results — byte-identical to calling ``spec.execute()``."""
        from repro.runtime.bench import bench_specs

        specs = [
            spec for _, spec in bench_specs(size_mb=0.5, engines=("fluid",))
        ]
        direct = [
            json.dumps(spec.execute().to_dict(), sort_keys=True)
            for spec in specs
        ]
        via_facade = run_many(
            specs, jobs=2, cache=ResultCache(tmp_path / "cache")
        )
        assert [
            json.dumps(result.to_dict(), sort_keys=True)
            for result in via_facade
        ] == direct
        # And a warm re-run (all cache hits) is byte-identical too.
        warm = run_many(specs, cache=ResultCache(tmp_path / "cache"))
        assert [
            json.dumps(result.to_dict(), sort_keys=True) for result in warm
        ] == direct
