"""Validation and error-path tests across configuration surfaces."""

import pytest

from repro.core.config import EMPTCPConfig
from repro.errors import (
    ConfigurationError,
    EnergyModelError,
    ReproError,
    SimulationError,
    WorkloadError,
)


class TestEMPTCPConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kappa_bytes": 0.0},
            {"kappa_bytes": -1.0},
            {"tau_seconds": 0.0},
            {"safety_factor": -0.1},
            {"safety_factor": 1.0},
            {"initial_bandwidth_mbps": 0.0},
            {"required_samples": 0},
            {"hw_alpha": 0.0},
            {"hw_alpha": 1.5},
            {"hw_beta": -0.1},
            {"delta_min": 0.0},
            {"delta_min": 2.0, "delta_max": 1.0},
            {"decision_interval": 0.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            EMPTCPConfig(**kwargs)

    def test_defaults_match_paper(self):
        config = EMPTCPConfig()
        assert config.kappa_bytes == 1_000_000.0  # κ = 1 MB (§4.1)
        assert config.tau_seconds == 3.0  # τ = 3 s (§4.1)
        assert config.safety_factor == 0.10  # 10% (§3.4)
        assert config.initial_bandwidth_mbps == 5.0  # §3.2
        assert config.required_samples == 10  # φ (§4.1)
        assert config.reuse_reset_rtt  # §3.6
        assert config.disable_rfc2861_reset  # §3.6

    def test_sampling_interval_clamps(self):
        config = EMPTCPConfig()
        assert config.sampling_interval(1e-6) == config.delta_min
        assert config.sampling_interval(100.0) == config.delta_max
        with pytest.raises(ConfigurationError):
            config.sampling_interval(0.0)


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for exc in (
            ConfigurationError,
            SimulationError,
            EnergyModelError,
            WorkloadError,
        ):
            assert issubclass(exc, ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            EMPTCPConfig(kappa_bytes=-1.0)


class TestEmptcpCellularOnlyPath:
    def test_cellular_only_suspends_wifi_end_to_end(self):
        """With the §3.4 veto disabled and WiFi deep inside the
        LTE-only region, the controller suspends the *WiFi* subflow."""
        from tests.helpers import make_path, rng
        from repro.core.emptcp import EMPTCPConnection
        from repro.energy.device import GALAXY_S3
        from repro.net.interface import InterfaceKind
        from repro.sim.engine import Simulator
        from repro.tcp.connection import FiniteSource
        from repro.units import mib

        sim = Simulator()
        wifi = make_path(sim, InterfaceKind.WIFI, mbps=0.1, rtt=0.05)
        lte = make_path(sim, InterfaceKind.LTE, mbps=10.0, rtt=0.07)
        config = EMPTCPConfig(allow_cellular_only=True)
        conn = EMPTCPConnection(
            sim, wifi, lte, FiniteSource(mib(16)), profile=GALAXY_S3,
            config=config, rng=rng(),
        )
        conn.open()
        sim.run(until=120.0)
        assert conn.completed_at is not None
        wifi_sf = conn.mptcp.subflow_for(InterfaceKind.WIFI)
        from repro.core.controller import PathDecision

        assert PathDecision.CELLULAR_ONLY in [
            d for _t, d in conn.controller.decision_log
        ]
        assert wifi_sf.suspend_count >= 1


class TestEquationOneHelper:
    def test_tau_check_matches_paper_setting(self):
        """§4.1: with their setting the bound was ~2.67 s, so τ = 3 s
        satisfies equation (1)."""
        from repro.units import mbps_to_bytes_per_sec

        config = EMPTCPConfig()
        assert config.tau_satisfies_equation_one(
            mbps_to_bytes_per_sec(10.0), 0.2
        )

    def test_tau_check_fails_for_huge_rtt(self):
        from repro.units import mbps_to_bytes_per_sec

        config = EMPTCPConfig(tau_seconds=1.0)
        assert not config.tau_satisfies_equation_one(
            mbps_to_bytes_per_sec(10.0), 0.5
        )
