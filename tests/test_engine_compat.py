"""Property-style sweep over Scenario feature combinations (seeded,
no hypothesis dependency).

For every randomly generated feature combination and every registered
engine, exactly one of two things must happen: the engine *compiles*
the scenario (its registered lowering succeeds), or the pairing is
*rejected at verify time* with the compiler's canonical
ConfigurationError — and the two calls agree.  No combination may
ever escape the gate and then blow up inside an engine, which is the
drift mode this seam exists to kill.
"""

import random

import pytest

from repro import engines
from repro.energy.power import Direction
from repro.errors import ConfigurationError
from repro.experiments.scenario import Scenario
from repro.net.bandwidth import ConstantCapacity
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.units import mbps_to_bytes_per_sec, mib

N_TRIALS = 30


def make_scenario(rng: random.Random, index: int) -> Scenario:
    """One random feature combination (network shape varies too, so
    the lowerings are exercised on non-default parameters)."""
    wifi_mbps = rng.choice((0.5, 2.0, 8.0, 20.0))
    cell_mbps = rng.choice((1.0, 6.0, 12.0))
    finite = rng.random() < 0.5
    kwargs = {}
    if finite:
        kwargs["download_bytes"] = mib(rng.choice((1, 4, 16)))
    else:
        kwargs["duration"] = rng.choice((10.0, 60.0))
    if rng.random() < 0.4:
        kwargs["interferers"] = lambda sim, channel, _rng: []
    if rng.random() < 0.3:
        kwargs["direction"] = Direction.UP
    return Scenario(
        name=f"combo-{index}",
        wifi_capacity=lambda r, m=wifi_mbps: ConstantCapacity(
            mbps_to_bytes_per_sec(m)
        ),
        cell_capacity=lambda r, m=cell_mbps: ConstantCapacity(
            mbps_to_bytes_per_sec(m)
        ),
        wifi_rtt=rng.choice((0.02, 0.05, 0.12)),
        cell_rtt=rng.choice((0.05, 0.09)),
        **kwargs,
    )


class TestEveryEngineCompilesOrRejects:
    def test_sweep(self):
        rng = random.Random(0xE7C)
        rejections = 0
        compilations = 0
        for index in range(N_TRIALS):
            scenario = make_scenario(rng, index)
            for name in engines.engine_names():
                expected = engines.capability_error(name, scenario)
                if expected is None:
                    # Must lower cleanly — a rejection the gate did not
                    # predict, or any crash, fails the property.
                    lowered = engines.compile_scenario(
                        name, scenario, Simulator(), RandomStreams(0)
                    )
                    assert lowered is not None, (name, scenario.name)
                    compilations += 1
                else:
                    with pytest.raises(ConfigurationError) as exc:
                        engines.compile_scenario(
                            name, scenario, Simulator(), RandomStreams(0)
                        )
                    assert str(exc.value) == expected, (name, scenario.name)
                    rejections += 1
        # The seed must actually exercise both outcomes.
        assert compilations > 0 and rejections > 0

    def test_validate_run_adds_protocol_gate(self):
        rng = random.Random(0xE7C + 1)
        all_protocols = sorted(
            {
                p
                for eng in engines.registered_engines().values()
                for p in eng.protocols
            }
        ) + ["not-a-protocol"]
        for index in range(N_TRIALS):
            scenario = make_scenario(rng, index)
            protocol = rng.choice(all_protocols)
            for name in engines.engine_names():
                eng = engines.get_engine(name)
                expected = engines.protocol_error(
                    eng, protocol
                ) or engines.capability_error(eng, scenario)
                if expected is None:
                    assert engines.validate_run(eng, protocol, scenario) is eng
                else:
                    with pytest.raises(ConfigurationError) as exc:
                        engines.validate_run(eng, protocol, scenario)
                    assert str(exc.value) == expected
