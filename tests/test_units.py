"""Unit-conversion sanity tests — a factor-of-8 bug here would silently
skew every figure."""

import pytest

from repro import units


def test_mbps_round_trip():
    assert units.bytes_per_sec_to_mbps(units.mbps_to_bytes_per_sec(7.3)) == pytest.approx(7.3)


def test_one_mbps_is_125000_bytes_per_sec():
    assert units.mbps_to_bytes_per_sec(1.0) == pytest.approx(125_000.0)


def test_kbps():
    assert units.kbps_to_bytes_per_sec(1000.0) == pytest.approx(
        units.mbps_to_bytes_per_sec(1.0)
    )


def test_milliwatts():
    assert units.milliwatts_to_watts(1500.0) == pytest.approx(1.5)
    assert units.watts_to_milliwatts(1.5) == pytest.approx(1500.0)


def test_mib_and_kib():
    assert units.mib(1) == 1024 * 1024
    assert units.kib(256) == 256 * 1024


def test_joules_per_bit():
    assert units.joules_per_byte_to_joules_per_bit(8.0) == pytest.approx(1.0)
