"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(3.0, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_equal_time_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for tag in range(5):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]
    assert sim.now == 1.5


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-0.1, lambda: None)


def test_nan_and_inf_delays_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(float("inf"), lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []


def test_cancel_twice_is_noop():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_pending_property():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    assert handle.pending
    sim.run()
    assert not handle.pending


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(10.0, fired.append, "late")
    sim.run(until=5.0)
    assert fired == ["early"]
    assert sim.now == 5.0
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_with_empty_queue():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_callbacks_can_schedule_more_events():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, fired.append, 3)
    sim.run()
    assert fired == [1]
    sim.run()
    assert fired == [1, 3]


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.schedule(0.0, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_run_is_not_reentrant():
    sim = Simulator()

    def nested():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(0.0, nested)
    sim.run()


def test_peek_skips_cancelled():
    sim = Simulator()
    h1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h1.cancel()
    assert sim.peek() == 2.0


def test_pending_events_counts_live_events():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    h = sim.schedule(2.0, lambda: None)
    h.cancel()
    assert sim.pending_events() == 1


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_property_events_fire_in_nondecreasing_time(delays):
    sim = Simulator()
    times = []
    for d in delays:
        sim.schedule(d, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)
    assert len(times) == len(delays)
