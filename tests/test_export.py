"""Tests for result export (CSV/JSON)."""

import csv
import io
import json

import pytest

from repro.analysis.export import (
    results_to_csv,
    results_to_json,
    run_result_to_dict,
    timeseries_to_csv,
)
from repro.errors import ConfigurationError
from repro.experiments.runner import run_scenario
from repro.experiments.static_bw import static_scenario
from repro.sim.trace import TimeSeries
from repro.units import mib


@pytest.fixture(scope="module")
def result():
    return run_scenario("emptcp", static_scenario(True, download_bytes=mib(2)))


class TestTimeseriesCsv:
    def test_merges_on_union_of_times(self):
        a = TimeSeries("a")
        a.record(0.0, 1.0)
        a.record(2.0, 2.0)
        b = TimeSeries("b")
        b.record(1.0, 10.0)
        out = timeseries_to_csv([a, b])
        rows = list(csv.reader(io.StringIO(out)))
        assert rows[0] == ["time_s", "a", "b"]
        assert len(rows) == 4  # header + t=0,1,2
        # b has no sample at t=0 -> empty cell.
        assert rows[1][2] == ""

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            timeseries_to_csv([])


class TestRunResultExport:
    def test_dict_summary_fields(self, result):
        d = run_result_to_dict(result)
        assert d["protocol"] == "emptcp"
        assert d["energy_j"] == pytest.approx(result.energy_j)
        assert "energy_series" not in d

    def test_dict_with_series(self, result):
        d = run_result_to_dict(result, include_series=True)
        assert len(d["energy_series"]) == len(result.energy_series)

    def test_json_round_trip(self, result):
        text = results_to_json([result, result])
        parsed = json.loads(text)
        assert len(parsed) == 2
        assert parsed[0]["scenario"] == "static-good-wifi"

    def test_csv_has_one_row_per_result(self, result):
        out = results_to_csv([result, result, result])
        rows = list(csv.reader(io.StringIO(out)))
        assert len(rows) == 4
        assert "energy_j" in rows[0]

    def test_csv_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            results_to_csv([])
