"""The engine capability seam (``repro.engines``).

The headline acceptance test registers a *dummy fourth engine* and
shows it picked up — without any further edits — by CLI ``--engine``
validation, RunSpec cache-key labelling, the CHK243 verify gate, and
the CHK5xx agreement-spec enumeration.  The rest covers the registry
itself, the canonical capability/protocol errors that replaced the
three drifting interferer guards, and the registry-derived legacy
views in ``repro.experiments.protocols``.
"""

import dataclasses

import pytest

from repro import engines
from repro.check.config import check_run_spec
from repro.check.packet import all_engine_agreement_specs
from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiments.background import background_scenario
from repro.experiments.protocols import build_protocol
from repro.experiments.runner import run_fluid_scenario, run_scenario
from repro.experiments.static_bw import static_scenario
from repro.runtime.executor import run_many
from repro.runtime.spec import RunSpec
from repro.units import mib


def interferer_scenario():
    return background_scenario(2, 0.05, download_bytes=mib(1))


@pytest.fixture
def dummy_engine():
    """A fourth engine: fluid semantics under a new name."""
    eng = engines.register_engine(
        engines.Engine(
            name="dummy",
            protocols=("emptcp", "tcp-wifi"),
            features=frozenset(
                {
                    engines.FEATURE_BYTES,
                    engines.FEATURE_DURATION,
                    engines.FEATURE_UPLOAD,
                }
            ),
            run=lambda protocol, scenario, seed: run_fluid_scenario(
                protocol, scenario, seed
            ),
            compile=lambda scenario, sim, streams: ("dummy", scenario.name),
            obs_fidelity="sampled",
            agreement_protocols=("emptcp",),
        )
    )
    try:
        yield eng
    finally:
        engines.unregister_engine("dummy")


class TestRegistry:
    def test_builtins_registered(self):
        assert engines.engine_names() == ("fluid", "flow", "packet")
        assert engines.get_engine("fluid").protocols[0] == "mptcp"

    def test_default_engine_listed_first(self):
        assert engines.engine_names()[0] == engines.DEFAULT_ENGINE

    def test_unknown_engine_canonical_error(self):
        with pytest.raises(ConfigurationError, match="unknown engine 'ns3'"):
            engines.get_engine("ns3")

    def test_duplicate_registration_refused(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            engines.register_engine(
                dataclasses.replace(engines.get_engine("packet"))
            )

    def test_engine_validates_features(self):
        with pytest.raises(ConfigurationError, match="unknown features"):
            engines.Engine(
                name="bad",
                protocols=("emptcp",),
                features=frozenset({"quantum-tunnelling"}),
                run=lambda *a: None,
                compile=lambda *a: None,
            )

    def test_engine_validates_agreement_subset(self):
        with pytest.raises(ConfigurationError, match="agreement protocols"):
            engines.Engine(
                name="bad",
                protocols=("emptcp",),
                features=frozenset(),
                run=lambda *a: None,
                compile=lambda *a: None,
                agreement_protocols=("mdp",),
            )


class TestCanonicalGuards:
    def test_capability_error_is_shared_by_all_layers(self):
        scenario = interferer_scenario()
        message = engines.capability_error("packet", scenario)
        assert "interferers" in message and "'packet'" in message
        # run_scenario, the compiler, and the backend's own lowering
        # all surface the one canonical message.
        with pytest.raises(ConfigurationError, match="interferers"):
            run_scenario("emptcp", scenario, engine="packet")
        with pytest.raises(ConfigurationError) as exc:
            engines.compile_scenario("packet", scenario, None, None)
        assert str(exc.value) == message

    def test_flow_engine_same_guard(self):
        scenario = interferer_scenario()
        with pytest.raises(ConfigurationError, match="interferers"):
            run_scenario("emptcp", scenario, engine="flow")

    def test_fluid_models_interferers(self):
        assert engines.capability_error("fluid", interferer_scenario()) is None

    def test_run_many_rejects_interferers_pre_dispatch(self):
        # Regression for the old behaviour, where the guard only fired
        # inside a pool worker at run time: the batch must be refused
        # by Tier-2 verification before any dispatch happens.
        spec = RunSpec(
            protocol="emptcp",
            builder="background",
            kwargs={"n_interferers": 2, "lambda_off": 0.05,
                    "download_bytes": mib(1)},
            engine="flow",
        )
        with pytest.raises(ConfigurationError) as exc:
            run_many([spec], jobs=2)
        assert "pre-dispatch verification failed" in str(exc.value)
        assert "interferers" in str(exc.value)

    def test_required_features_derivation(self):
        from repro.energy.power import Direction

        scenario = static_scenario(True, download_bytes=mib(1))
        assert engines.required_features(scenario) == {engines.FEATURE_BYTES}
        scenario.direction = Direction.UP
        assert engines.FEATURE_UPLOAD in engines.required_features(scenario)
        assert engines.FEATURE_INTERFERERS in engines.required_features(
            interferer_scenario()
        )


class TestBuildProtocolErrors:
    def test_unknown_protocol_cites_the_actual_engine(self):
        # The old error cited PACKET_PROTOCOLS regardless of engine.
        with pytest.raises(ConfigurationError) as exc:
            build_protocol(
                "mdp", None, None, None, None, None, engine="packet"
            )
        assert "'packet'" in str(exc.value)
        assert "emptcp, mptcp, tcp-wifi" in str(exc.value)
        assert "wifi-first" not in str(exc.value)

    def test_fluid_error_cites_fluid_set(self):
        with pytest.raises(ConfigurationError) as exc:
            build_protocol(
                "quic", None, None, None, None, None, engine="fluid"
            )
        assert "'fluid'" in str(exc.value)
        assert "wifi-first" in str(exc.value)

    def test_flow_has_no_per_connection_objects(self):
        with pytest.raises(ConfigurationError, match="flow"):
            build_protocol(
                "emptcp", None, None, None, None, None, engine="flow"
            )


class TestDerivedLegacyViews:
    def test_views_derive_from_registrations(self):
        from repro.experiments import protocols as mod

        assert mod.PACKET_PROTOCOLS == engines.get_engine("packet").protocols
        assert mod.FLOW_PROTOCOLS == engines.get_engine("flow").protocols
        assert set(mod.ENGINES) == set(engines.engine_names())
        assert mod.ENGINE_PROTOCOLS == {
            name: eng.protocols
            for name, eng in engines.registered_engines().items()
        }

    def test_views_are_live(self, dummy_engine):
        from repro.experiments import protocols as mod

        assert "dummy" in mod.ENGINES
        assert mod.ENGINE_PROTOCOLS["dummy"] == ("emptcp", "tcp-wifi")


class TestDummyEngineForFree:
    """One registration buys the whole seam."""

    def test_cli_engine_validation(self, dummy_engine, capsys):
        code = main(["run", "emptcp", "good", "--engine", "dummy",
                     "--runs", "1", "--size-mb", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "dummy engine" in out

    def test_cli_rejects_unregistered_engine(self, capsys):
        code = main(["run", "emptcp", "good", "--engine", "dummy"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown engine 'dummy'" in err

    def test_cache_key_label(self, dummy_engine):
        spec = RunSpec(protocol="emptcp", builder="static", engine="dummy")
        fluid = RunSpec(protocol="emptcp", builder="static")
        assert spec.label.endswith("@dummy")
        assert spec.content_hash() != fluid.content_hash()

    def test_chk243_passes_supported_spec(self, dummy_engine):
        spec = RunSpec(protocol="emptcp", builder="static", engine="dummy")
        assert check_run_spec(spec) == []

    def test_chk243_rejects_unsupported_protocol(self, dummy_engine):
        spec = RunSpec(protocol="mptcp", builder="static", engine="dummy")
        findings = check_run_spec(spec)
        assert [f.rule for f in findings] == ["CHK243"]
        assert "'dummy'" in findings[0].message

    def test_chk243_rejects_unsupported_feature(self, dummy_engine):
        spec = RunSpec(
            protocol="emptcp",
            builder="background",
            kwargs={"n_interferers": 1, "lambda_off": 0.05,
                    "download_bytes": mib(1)},
            engine="dummy",
        )
        findings = check_run_spec(spec)
        assert [f.rule for f in findings] == ["CHK243"]
        assert "interferers" in findings[0].message

    def test_agreement_spec_enumeration(self, dummy_engine):
        by_engine = all_engine_agreement_specs()
        assert set(by_engine) == {"packet", "flow", "dummy"}
        labels = {label for label, _f, _d in by_engine["dummy"]}
        assert labels == {
            "emptcp on good-wifi seed 0", "emptcp on bad-wifi seed 0"
        }
        for _label, fluid_spec, dummy_spec in by_engine["dummy"]:
            assert fluid_spec.engine == "fluid"
            assert dummy_spec.engine == "dummy"
            assert fluid_spec.kwargs == dummy_spec.kwargs

    def test_run_scenario_dispatches_to_registration(self, dummy_engine):
        result = run_scenario(
            "emptcp", static_scenario(True, download_bytes=mib(1)),
            engine="dummy",
        )
        assert result.download_time is not None

    def test_compile_scenario_uses_registered_hook(self, dummy_engine):
        scenario = static_scenario(True, download_bytes=mib(1))
        assert engines.compile_scenario("dummy", scenario, None, None) == (
            "dummy", scenario.name
        )
