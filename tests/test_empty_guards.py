"""Empty-input guards: aggregation over nothing is an absent value.

A histogram with no observations has no percentile and an empty time
series has no mean — both used to pretend otherwise (0.0, or an
exception deep inside a summary path).  These tests pin the contract:
``None`` out, never a crash, and the call sites that fold the result
into reports degrade gracefully.
"""

import pytest

from repro.obs.metrics import Histogram
from repro.sim.trace import TimeSeries


class TestHistogramEmpty:
    def test_percentile_of_empty_is_none(self):
        hist = Histogram("h")
        for p in (0, 50, 90, 99, 100):
            assert hist.percentile(p) is None

    def test_percentile_range_still_validated_when_empty(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(-1)
        with pytest.raises(ValueError):
            Histogram("h").percentile(100.5)

    def test_summary_of_empty_is_all_zero(self):
        assert Histogram("h").summary() == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
            "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0,
        }

    def test_one_observation_restores_percentiles(self):
        hist = Histogram("h")
        hist.observe(7.0)
        assert hist.percentile(0) == 7.0
        assert hist.percentile(100) == 7.0


class TestTimeSeriesEmpty:
    def test_time_weighted_mean_of_empty_is_none(self):
        assert TimeSeries("s").time_weighted_mean() is None

    def test_single_sample_is_its_own_mean(self):
        series = TimeSeries("s")
        series.record(1.0, 42.0)
        assert series.time_weighted_mean() == 42.0

    def test_zero_span_is_last_value(self):
        series = TimeSeries("s")
        series.record(1.0, 10.0)
        series.record(1.0, 30.0)
        assert series.time_weighted_mean() == 30.0

    def test_weighted_mean_weights_by_dwell(self):
        series = TimeSeries("s")
        series.record(0.0, 10.0)   # holds 1 s
        series.record(1.0, 20.0)   # holds 3 s
        series.record(4.0, 99.0)   # final sample spans no time
        assert series.time_weighted_mean() == pytest.approx((10 + 3 * 20) / 4)


class TestAggregationCallSites:
    def test_runner_mean_mbps_handles_empty(self):
        from repro.experiments.runner import _mean_mbps

        assert _mean_mbps(TimeSeries("empty")) == 0.0

    def test_flow_mean_mbps_handles_empty(self):
        from repro.flow.single import _mean_mbps

        assert _mean_mbps(TimeSeries("empty")) == 0.0
