"""The batched segment store and the two cache generations
(repro.runtime.store, repro.runtime.cache).

Covers the ISSUE satellites: legacy per-run JSON entries stay readable
(and migrate transparently), eviction leaves the index consistent, and
``stats`` is metadata-only across both generations.
"""

import json

import pytest

from repro.runtime import ResultCache, RunSpec, run_many
from repro.runtime.perf import PerfStore
from repro.runtime.store import SegmentStore
from repro.units import mib

pytestmark = pytest.mark.runtime

SMALL = mib(1)


def small_spec(seed=0, **overrides):
    kwargs = {"good_wifi": True, "download_bytes": SMALL, "lte_mbps": 10.0}
    kwargs.update(overrides)
    return RunSpec(protocol="emptcp", builder="static", kwargs=kwargs, seed=seed)


class TestSegmentStore:
    def test_round_trip_contains_and_telemetry(self, tmp_path):
        store = SegmentStore(tmp_path / "store")
        assert store.get("h1") is None
        store.put("h1", {"value": 1})
        store.put("h2", {"value": 2})
        assert store.get("h1") == {"value": 1}
        assert "h2" in store and "h3" not in store
        assert store.entry_count() == 2
        assert store.total_bytes() > 0
        assert len(store.segment_paths()) == 1  # batched, not per-entry
        assert store.telemetry.hits == 1
        assert store.telemetry.misses == 1
        assert store.telemetry.appends == 2

    def test_rewriting_a_hash_newest_entry_wins(self, tmp_path):
        store = SegmentStore(tmp_path / "store")
        store.put("h", {"v": 1})
        store.put("h", {"v": 2})
        assert store.get("h") == {"v": 2}

    def test_second_instance_reads_the_same_index(self, tmp_path):
        store = SegmentStore(tmp_path / "store")
        store.put("h", {"v": 1})
        store.close()
        assert SegmentStore(tmp_path / "store").get("h") == {"v": 1}

    def test_eviction_drops_oldest_segment_and_keeps_index_consistent(
        self, tmp_path
    ):
        old = SegmentStore(tmp_path / "store")
        old.put("h1", {"blob": "x" * 1000})
        old.close()
        store = SegmentStore(tmp_path / "store")
        store.put("h2", {"blob": "y" * 1000})
        assert len(store.segment_paths()) == 2
        evicted = store.evict(max_bytes=1100, max_age_s=None)
        assert evicted == 1
        assert store.get("h1") is None
        assert store.get("h2") == {"blob": "y" * 1000}
        assert store.telemetry.evictions == 1
        # The compacted index is what a fresh instance sees too.
        fresh = SegmentStore(tmp_path / "store")
        assert fresh.entry_count() == 1
        assert fresh.get("h2") == {"blob": "y" * 1000}

    def test_current_open_segment_is_never_evicted(self, tmp_path):
        store = SegmentStore(tmp_path / "store")
        store.put("h", {"blob": "x" * 1000})
        assert store.evict(max_bytes=0, max_age_s=None) == 0
        assert store.get("h") == {"blob": "x" * 1000}


class TestLegacyGeneration:
    def _legacy_payload(self, tmp_path, spec, result):
        donor = ResultCache(tmp_path / "donor")
        donor.put(spec, result)
        return donor.store.get(spec.content_hash())

    def test_legacy_blob_hits_and_migrates_transparently(self, tmp_path):
        spec = small_spec()
        result = spec.execute()
        payload = self._legacy_payload(tmp_path, spec, result)

        cache = ResultCache(tmp_path / "cache")
        cache.results_dir.mkdir(parents=True)
        cache.path_for(spec).write_text(json.dumps(payload))
        stats = cache.stats()
        assert stats.entries == 1 and stats.legacy_entries == 1

        hit = cache.get(spec)
        assert hit is not None and hit.to_dict() == result.to_dict()
        # Migrated on first read: blob gone, entry now in a segment.
        assert not cache.path_for(spec).exists()
        assert cache.store.entry_count() == 1
        assert cache.telemetry.migrated == 1
        stats = cache.stats()
        assert stats.entries == 1 and stats.legacy_entries == 0
        # The migrated copy keeps hitting.
        assert cache.get(spec).to_dict() == result.to_dict()

    def test_migration_can_be_disabled(self, tmp_path):
        spec = small_spec()
        result = spec.execute()
        payload = self._legacy_payload(tmp_path, spec, result)

        cache = ResultCache(tmp_path / "cache", migrate_legacy=False)
        cache.results_dir.mkdir(parents=True)
        cache.path_for(spec).write_text(json.dumps(payload))
        assert cache.get(spec).to_dict() == result.to_dict()
        assert cache.path_for(spec).exists()  # blob left in place
        assert cache.store.entry_count() == 0

    def test_clear_removes_both_generations(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(small_spec(), small_spec().execute())
        cache.results_dir.mkdir(parents=True)
        cache.path_for(small_spec(seed=1)).write_text("{}")
        assert cache.clear() == 2
        stats = cache.stats()
        assert stats.entries == 0 and stats.legacy_entries == 0


class TestCacheBudgets:
    def test_put_auto_evicts_when_budgeted(self, tmp_path):
        spec = small_spec()
        result = spec.execute()
        old = ResultCache(tmp_path / "cache")
        old.put(spec, result)
        old.store.close()
        # A byte budget far below one entry: the old segment goes as
        # soon as a new one opens.
        cache = ResultCache(tmp_path / "cache", max_bytes=64)
        cache.put(small_spec(seed=1), result)
        assert cache.get(spec) is None
        assert cache.get(small_spec(seed=1)) is not None


class TestTelemetryFlow:
    def test_batches_flush_cache_telemetry_into_perf_store(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        perf = PerfStore(tmp_path / "perf")
        specs = [small_spec(seed=s) for s in range(2)]
        run_many(specs, cache=cache, perf_store=perf)
        run_many(specs, cache=cache, perf_store=perf)
        lines = perf.cache_telemetry()
        assert len(lines) == 2  # one snapshot per batch
        assert lines[0]["misses"] == 2 and lines[0]["appends"] == 2
        assert lines[1]["hits"] == 2  # warm batch
        assert lines[1]["queue"]["submitted"] == 2
        # The telemetry file never pollutes the per-spec hash listing.
        assert perf.cache_telemetry_path().exists()
        assert all(
            "cache-telemetry" not in h for h in perf.spec_hashes()
        )
