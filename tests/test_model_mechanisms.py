"""Targeted tests for the calibration-driven model mechanisms listed in
DESIGN.md §5 ("Model decisions made during calibration")."""

import pytest

from tests.helpers import make_path, rng
from repro.core.config import EMPTCPConfig
from repro.core.predictor import BandwidthPredictor
from repro.mptcp.connection import MPTCPConnection
from repro.net.bandwidth import ConstantCapacity
from repro.net.interface import InterfaceKind, NetworkInterface
from repro.net.path import NetworkPath
from repro.sim.engine import Simulator
from repro.tcp.connection import FiniteSource, TcpConnection
from repro.units import mbps_to_bytes_per_sec, mib


class TestRateShaper:
    def test_shaper_caps_round_rate(self):
        sim = Simulator()
        path = make_path(sim, mbps=8.0)
        conn = TcpConnection(sim, path, FiniteSource(mib(8)), rng=rng())
        conn.rate_shaper = lambda cap: cap * 0.5
        conn.connect()
        sim.run(until=10.0)
        # Steady state delivers at half the path rate.
        assert conn.current_rate <= mbps_to_bytes_per_sec(8.0) * 0.55

    def test_no_shaper_uses_full_rate(self):
        sim = Simulator()
        path = make_path(sim, mbps=8.0)
        conn = TcpConnection(sim, path, FiniteSource(mib(8)), rng=rng())
        conn.connect()
        sim.run(until=6.0)  # mid-transfer
        assert conn.current_rate > mbps_to_bytes_per_sec(8.0) * 0.9


class TestSchedulerUtilization:
    def _conn(self, sim, hol=True):
        wifi = make_path(sim, InterfaceKind.WIFI, mbps=12.0, rtt=0.04)
        lte = make_path(sim, InterfaceKind.LTE, mbps=10.0, rtt=0.07)
        return MPTCPConnection(
            sim,
            wifi,
            FiniteSource(mib(64)),
            secondary_paths=[lte],
            rng=rng(),
            scheduler_hol_penalty=hol,
        )

    def test_secondary_subflow_is_shaped(self):
        sim = Simulator()
        conn = self._conn(sim)
        conn.open()
        sim.run(until=10.0)
        lte_sf = conn.subflow_for(InterfaceKind.LTE)
        # cap/(cap + preferred_rate) with 12 Mbps preferred and 10 Mbps
        # capacity -> ~45% utilization.
        assert lte_sf.current_rate < mbps_to_bytes_per_sec(10.0) * 0.7

    def test_penalty_can_be_disabled(self):
        sim = Simulator()
        conn = self._conn(sim, hol=False)
        conn.open()
        sim.run(until=10.0)
        lte_sf = conn.subflow_for(InterfaceKind.LTE)
        assert lte_sf.current_rate > mbps_to_bytes_per_sec(10.0) * 0.9

    def test_preferred_subflow_unshaped(self):
        sim = Simulator()
        conn = self._conn(sim)
        conn.open()
        sim.run(until=10.0)
        wifi_sf = conn.subflow_for(InterfaceKind.WIFI)
        assert wifi_sf.current_rate > mbps_to_bytes_per_sec(12.0) * 0.9

    def test_collapsed_preferred_path_releases_secondary(self):
        """When WiFi offers almost nothing, LTE runs near-full rate."""
        sim = Simulator()
        wifi = make_path(sim, InterfaceKind.WIFI, mbps=0.3, rtt=0.04)
        lte = make_path(sim, InterfaceKind.LTE, mbps=10.0, rtt=0.07)
        conn = MPTCPConnection(
            sim, wifi, FiniteSource(mib(32)), secondary_paths=[lte], rng=rng()
        )
        conn.open()
        sim.run(until=10.0)
        lte_sf = conn.subflow_for(InterfaceKind.LTE)
        assert lte_sf.current_rate > mbps_to_bytes_per_sec(10.0) * 0.85


class TestPredictionStaleness:
    def test_stale_low_forecast_is_retained(self):
        """Regression: §3.2 keeps old observations for a *deactivated*
        interface until new samples mix in after reactivation.  A stale
        low forecast must NOT be floored up to the initial-bandwidth
        probing assumption — that floor is reserved for interfaces that
        never produced a sample."""
        sim = Simulator()
        config = EMPTCPConfig()
        predictor = BandwidthPredictor(sim, config)
        # Observe a low rate, then go silent for a long time (the
        # subflow was suspended by the path controller).
        predictor.observe(InterfaceKind.LTE, mbps_to_bytes_per_sec(0.5))
        assert predictor.predict_mbps(InterfaceKind.LTE) == pytest.approx(0.5)
        sim.run(until=60.0)
        assert predictor.predict_mbps(InterfaceKind.LTE) == pytest.approx(0.5)
        assert predictor.predict_mbps(InterfaceKind.LTE) < (
            config.initial_bandwidth_mbps
        )

    def test_never_activated_interface_uses_initial_bandwidth(self):
        """An interface with no samples at all gets the probing
        assumption (default 5 Mbps), no matter how much time passed."""
        sim = Simulator()
        config = EMPTCPConfig()
        predictor = BandwidthPredictor(sim, config)
        assert predictor.predict_mbps(InterfaceKind.LTE) == pytest.approx(
            config.initial_bandwidth_mbps
        )
        sim.run(until=60.0)
        assert predictor.predict_mbps(InterfaceKind.LTE) == pytest.approx(
            config.initial_bandwidth_mbps
        )

    def test_fresh_high_prediction_not_floored_down(self):
        """A stale *high* estimate is likewise kept as-is."""
        sim = Simulator()
        predictor = BandwidthPredictor(sim, EMPTCPConfig())
        for _ in range(5):
            predictor.observe(InterfaceKind.LTE, mbps_to_bytes_per_sec(15.0))
        sim.run(until=60.0)
        assert predictor.predict_mbps(InterfaceKind.LTE) == pytest.approx(
            15.0, rel=0.05
        )

    def test_sample_age(self):
        sim = Simulator()
        predictor = BandwidthPredictor(sim)
        assert predictor.sample_age(InterfaceKind.LTE) is None
        predictor.observe(InterfaceKind.LTE, 100.0)
        sim.run(until=4.0)
        assert predictor.sample_age(InterfaceKind.LTE) == pytest.approx(4.0)


class TestEffectiveBuffer:
    def test_buffer_bounded_in_time(self):
        path = make_path(Simulator(), mbps=8.0)
        fast = path.effective_buffer(mbps_to_bytes_per_sec(8.0))
        slow = path.effective_buffer(6_250.0)  # 50 kbit/s
        assert slow == pytest.approx(6_250.0 * path.max_queue_delay)
        assert fast == pytest.approx(min(path.buffer_bytes, 1e6 * path.max_queue_delay))

    def test_zero_rate_returns_byte_buffer(self):
        path = make_path(Simulator())
        assert path.effective_buffer(0.0) == path.buffer_bytes

    def test_rtt_bounded_by_max_queue_delay(self):
        """Even on a crawling path, round RTTs stay near base + cap."""
        sim = Simulator()
        path = NetworkPath(
            NetworkInterface(InterfaceKind.WIFI),
            ConstantCapacity(6_250.0),
            base_rtt=0.05,
            max_queue_delay=1.0,
        )
        path.attach(sim)
        conn = TcpConnection(sim, path, FiniteSource(mib(1)), rng=rng())
        conn.connect()
        sim.run(until=30.0)
        assert conn.rtt_estimator.srtt <= 0.05 + 1.0 + 1e-9


class TestProbeGates:
    def test_fresh_cellular_not_suspended_before_phi_samples(self):
        """EMPTCPConnection keeps a just-established LTE subflow in BOTH
        until the predictor holds phi samples, even if the EIB verdict
        is WiFi-only."""
        from repro.core.emptcp import EMPTCPConnection
        from repro.energy.device import GALAXY_S3

        sim = Simulator()
        # Fast WiFi but an even faster... no: slow-ish wifi so LTE joins,
        # then wifi "recovers" instantly: use wifi at exactly the veto
        # boundary so establishment happens and a naive controller would
        # immediately suspend.
        wifi = make_path(sim, InterfaceKind.WIFI, mbps=1.0, rtt=0.05)
        lte = make_path(sim, InterfaceKind.LTE, mbps=10.0, rtt=0.07)
        conn = EMPTCPConnection(
            sim, wifi, lte, FiniteSource(mib(24)), profile=GALAXY_S3, rng=rng()
        )
        conn.open()
        sim.run(until=60.0)
        lte_sf = conn.mptcp.subflow_for(InterfaceKind.LTE)
        assert lte_sf is not None
        # Bad WiFi at 1 Mbps with good LTE: no suspension at all.
        assert lte_sf.suspend_count == 0
