"""Tests for parameter sweeps and power-model fitting."""

import random

import pytest

from tests.helpers import rng
from repro.energy.device import GALAXY_S3
from repro.energy.fitting import (
    AffineFit,
    PowerSample,
    fit_affine,
    fit_profile_interface,
    simulate_measurement_campaign,
)
from repro.energy.power import Direction
from repro.errors import ConfigurationError, EnergyModelError
from repro.experiments.sensitivity import (
    format_sweep,
    sweep_config,
    sweep_kappa,
    sweep_safety_factor,
)
from repro.experiments.wild import environment_scenario
from repro.net.host import WILD_SERVERS
from repro.net.interface import InterfaceKind
from repro.units import kib, mib
from repro.workloads.wild import CLIENT_SITES, WildEnvironment


def small_scenario(size, wifi=10.0, lte=10.0):
    env = WildEnvironment(
        site=CLIENT_SITES["campus"],
        server=WILD_SERVERS["WDC"],
        wifi_mbps=wifi,
        lte_mbps=lte,
    )
    return environment_scenario(env, size, fluctuating=False)


class TestSweeps:
    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_config("bogus_knob", [1.0], small_scenario(mib(1)))

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_config("kappa_bytes", [], small_scenario(mib(1)))

    def test_kappa_gates_establishment_with_tau_disabled(self):
        """Isolating κ (τ pushed out of the way, slow WiFi so the
        efficiency veto passes): a small κ lets LTE join mid-transfer,
        a κ above the transfer size never does."""
        import dataclasses

        from repro.core.config import EMPTCPConfig

        scenario = small_scenario(mib(4), wifi=2.0, lte=10.0)
        scenario = dataclasses.replace(
            scenario, emptcp_config=EMPTCPConfig(tau_seconds=300.0)
        )
        points = sweep_config(
            "kappa_bytes", [256e3, 16e6], scenario, runs=1
        )
        small_kappa, huge_kappa = points
        assert small_kappa.cell_established_frac == 1.0
        assert huge_kappa.cell_established_frac == 0.0
        # Establishing LTE on slow WiFi finishes the transfer sooner.
        assert small_kappa.download_time < huge_kappa.download_time

    def test_kappa_sweep_shape(self):
        points = sweep_kappa(
            small_scenario(mib(2), wifi=2.0), values=(256e3, 4e6), runs=1
        )
        assert [p.value for p in points] == [256e3, 4e6]
        assert all(p.parameter == "kappa_bytes" for p in points)

    def test_safety_factor_zero_switches_at_least_as_much(self):
        from repro.experiments.random_bw import random_bw_scenario

        scenario = random_bw_scenario(download_bytes=mib(32))
        points = sweep_safety_factor(scenario, values=(0.0, 0.10), runs=2)
        zero, default = points
        assert zero.decision_switches >= default.decision_switches

    def test_format_sweep_is_tabular(self):
        points = sweep_kappa(small_scenario(mib(1)), values=(1e6,), runs=1)
        text = format_sweep(points)
        assert "energy (J)" in text
        assert len(text.splitlines()) == 2


class TestAffineFit:
    def test_exact_fit_recovers_parameters(self):
        samples = [PowerSample(r, 0.5 + 0.1 * r) for r in (0.0, 2.0, 4.0, 8.0)]
        fit = fit_affine(samples)
        assert fit.base_w == pytest.approx(0.5, abs=1e-9)
        assert fit.per_mbps_w == pytest.approx(0.1, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_too_few_samples_rejected(self):
        with pytest.raises(EnergyModelError):
            fit_affine([PowerSample(1.0, 1.0)])

    def test_degenerate_rates_rejected(self):
        with pytest.raises(EnergyModelError):
            fit_affine([PowerSample(1.0, 1.0), PowerSample(1.0, 1.1)])

    def test_noisy_campaign_recovers_profile_within_tolerance(self):
        fit, samples = fit_profile_interface(
            GALAXY_S3, InterfaceKind.LTE, rng(42), samples_per_rate=40
        )
        truth = GALAXY_S3.interfaces[InterfaceKind.LTE]
        assert fit.base_w == pytest.approx(truth.base_w, rel=0.05)
        assert fit.per_mbps_w == pytest.approx(truth.per_mbps_w, rel=0.15)
        assert fit.r_squared > 0.95
        assert len(samples) == 7 * 40

    def test_upload_campaign_uses_upload_slope(self):
        fit, _ = fit_profile_interface(
            GALAXY_S3,
            InterfaceKind.LTE,
            rng(7),
            direction=Direction.UP,
            samples_per_rate=40,
        )
        truth = GALAXY_S3.interfaces[InterfaceKind.LTE]
        assert fit.per_mbps_w == pytest.approx(truth.per_mbps_up_w, rel=0.15)

    def test_fit_materialises_as_interface_power(self):
        fit = AffineFit(base_w=0.5, per_mbps_w=0.1, r_squared=1.0, n_samples=10)
        params = fit.to_interface_power(idle_w=0.01)
        assert params.base_w == 0.5
        assert params.idle_w == 0.01

    def test_fitted_model_builds_a_working_eib(self):
        """End-to-end: measure -> fit -> profile -> EIB, as §3.3 allows."""
        import dataclasses

        from repro.core.eib import EnergyInformationBase

        fits = {}
        for kind in (InterfaceKind.WIFI, InterfaceKind.LTE):
            fit, _ = fit_profile_interface(
                GALAXY_S3, kind, rng(11), samples_per_rate=40
            )
            fits[kind] = fit.to_interface_power(
                idle_w=GALAXY_S3.interfaces[kind].idle_w
            )
        fitted_profile = dataclasses.replace(
            GALAXY_S3,
            interfaces={**dict(GALAXY_S3.interfaces), **fits},
        )
        eib = EnergyInformationBase(
            fitted_profile, InterfaceKind.LTE, cell_grid_mbps=[1.0, 2.0]
        )
        truth = EnergyInformationBase(
            GALAXY_S3, InterfaceKind.LTE, cell_grid_mbps=[1.0, 2.0]
        )
        for cell in (1.0, 2.0):
            fitted_thr = eib.thresholds(cell)
            true_thr = truth.thresholds(cell)
            assert fitted_thr[1] == pytest.approx(true_thr[1], rel=0.15)

    def test_negative_noise_rejected(self):
        with pytest.raises(EnergyModelError):
            simulate_measurement_campaign(
                GALAXY_S3, InterfaceKind.WIFI, [1.0], random.Random(0), noise_w=-1.0
            )
