"""End-to-end distributed tracing through the execution runtime:
run_many batches emit one reassemblable span tree, run exports are
stamped, manifests carry the trace identity, the inline jobs<=1 fast
path emits the same topology as the asyncio drain, and the scheduler's
metrics/flight-recorder planes populate.
"""

import json

import pytest

from repro.check.disttrace import check_trace_topology
from repro.obs import ObsOptions, dist
from repro.obs.tree import load_trace_forest
from repro.runtime import (
    RunManifest,
    RunSpec,
    register_builder,
    run_many,
)
from repro.runtime import clock
from repro.runtime import spec as spec_mod
from repro.runtime.manifest import ManifestEntry
from repro.runtime.queue import JobQueue
from repro.runtime.scheduler import (
    BatchSink,
    RetryPolicy,
    Scheduler,
    TimeoutPolicy,
)
from repro.units import mib

pytestmark = pytest.mark.runtime

SMALL = mib(1)


def small_spec(seed=0, **overrides):
    kwargs = {"good_wifi": True, "download_bytes": SMALL, "lte_mbps": 10.0}
    kwargs.update(overrides)
    return RunSpec(protocol="emptcp", builder="static", kwargs=kwargs,
                   seed=seed)


@pytest.fixture
def scratch_builder():
    names = []

    def _register(name, execute, **kw):
        names.append(name)
        return register_builder(name, execute, **kw)

    yield _register
    for name in names:
        spec_mod._REGISTRY.pop(name, None)


def _span_names(obs_dir):
    spans = []
    for trace in dist.load_spans(obs_dir).values():
        spans.extend(trace.values())
    return sorted(span.name for span in spans)


class TestRunManyTracing:
    def test_batch_yields_one_stamped_correlated_tree(self, tmp_path):
        obs_dir = tmp_path / "obs"
        specs = [small_spec(seed=s) for s in range(2)]
        manifest_path = tmp_path / "run.jsonl"
        with RunManifest(manifest_path) as manifest:
            run_many(specs, manifest=manifest,
                     obs=ObsOptions(dir=str(obs_dir)))

        trees = load_trace_forest(obs_dir)
        assert len(trees) == 1
        tree = trees[0]
        assert len(tree.roots) == 1 and not tree.orphans
        root = tree.roots[0]
        assert root.span.name == "batch"
        assert root.span.attrs["jobs"] == 2
        assert [n.span.name for n in root.children] == ["job", "job"]
        for job in root.children:
            kinds = sorted(n.span.name for n in job.children)
            assert kinds == ["job.exec", "queue.wait"]

        # Every run export carries the batch's trace id.
        trace_files = sorted(obs_dir.glob("*.trace.jsonl"))
        assert len(trace_files) == 2
        for path in trace_files:
            for line in path.read_text().splitlines():
                doc = json.loads(line)
                assert doc["trace_id"] == tree.trace_id

        # Manifest lines tie back to the same trace.
        entries = RunManifest.read(manifest_path)
        assert all(e.trace_id == tree.trace_id for e in entries)
        assert all(e.span_id for e in entries)

        report = check_trace_topology(obs_dir)
        assert report.ok, report.format()

    def test_rerun_replaces_rather_than_duplicates(self, tmp_path):
        obs_dir = tmp_path / "obs"
        specs = [small_spec()]
        for _ in range(2):
            run_many(specs, obs=ObsOptions(dir=str(obs_dir)))
        files = dist.iter_lifecycle_files(obs_dir)
        assert len(files) == 1  # deterministic id -> same file
        tree = load_trace_forest(obs_dir)[0]
        assert len(tree.roots) == 1
        assert check_trace_topology(obs_dir).ok

    def test_tracing_off_writes_no_lifecycle_files(self, tmp_path):
        run_many([small_spec()])
        assert dist.iter_lifecycle_files(tmp_path) == []

    def test_manifest_entry_defaults_stay_compatible(self):
        # Pre-tracing manifests must still parse.
        entry = ManifestEntry(
            spec_hash="x", label="l", protocol="p", builder="b", seed=0,
            outcome="executed", wall_time_s=0.0, worker="w", attempt=1,
            timestamp=0.0,
        )
        assert entry.trace_id == "" and entry.span_id == ""


def _drive_batch(tmp_path, name, offload_inline, specs):
    """One batch through Scheduler.run_batch with tracing attached."""
    obs_dir = tmp_path / name / "obs"
    manifest_path = tmp_path / name / "run.jsonl"
    hashes = [spec.content_hash() for spec in specs]
    root_ctx = dist.root_context(hashes)
    scheduler = Scheduler(
        jobs=1,
        retry=RetryPolicy(retries=0),
        timeout=TimeoutPolicy(None),
        offload_inline=offload_inline,
    )
    scheduler.recorder = dist.SpanRecorder(sink_dir=obs_dir)
    scheduler.flight_dir = tmp_path / name / "flight"
    batch_start = clock.now()
    with RunManifest(manifest_path) as manifest:
        sink = BatchSink(specs, manifest=manifest)
        queue = JobQueue()
        for index, spec in enumerate(specs):
            job, _ = queue.submit(
                spec, on_done=sink.on_terminal,
                ctx=root_ctx.child(dist.SPAN_JOB, hashes[index]),
            )
            sink.register(index, job)
        scheduler.run_batch(queue, sink)
        # Close the batch root the way run_many's finally block does.
        scheduler.recorder.record(dist.LifecycleSpan(
            trace_id=root_ctx.trace_id,
            span_id=root_ctx.span_id,
            parent_span_id="",
            name=dist.SPAN_BATCH,
            start_t=batch_start,
            end_t=clock.now(),
            status="failed" if sink.failures else "ok",
            attrs={"jobs": len(specs)},
        ))
        queue.close()
    return scheduler, obs_dir, manifest_path


class TestInlineAsyncParity:
    """The jobs<=1 inline fast path must emit the same lifecycle spans
    and manifest trace fields as the asyncio drain (satellite: span
    parity between scheduler paths)."""

    def test_span_topology_is_identical(self, tmp_path):
        specs = [small_spec(seed=s) for s in range(2)]
        _, inline_dir, inline_manifest = _drive_batch(
            tmp_path, "inline", False, specs)
        _, async_dir, async_manifest = _drive_batch(
            tmp_path, "async", True, specs)

        inline_spans = dist.load_spans(inline_dir)
        async_spans = dist.load_spans(async_dir)
        # Deterministic IDs: same specs -> same trace, same span ids,
        # regardless of which drain executed them.
        assert set(inline_spans) == set(async_spans)
        for trace_id in inline_spans:
            inline_trace = inline_spans[trace_id]
            async_trace = async_spans[trace_id]
            assert set(inline_trace) == set(async_trace)
            for span_id, span in inline_trace.items():
                other = async_trace[span_id]
                assert span.name == other.name
                assert span.parent_span_id == other.parent_span_id
                assert span.status == other.status

        inline_entries = RunManifest.read(inline_manifest)
        async_entries = RunManifest.read(async_manifest)
        assert (
            sorted((e.spec_hash, e.trace_id, e.span_id, e.outcome)
                   for e in inline_entries)
            == sorted((e.spec_hash, e.trace_id, e.span_id, e.outcome)
                      for e in async_entries)
        )

    def test_both_paths_pass_chk7xx(self, tmp_path):
        specs = [small_spec()]
        for name, offload in (("inline", False), ("async", True)):
            _, obs_dir, _ = _drive_batch(tmp_path, name, offload, specs)
            report = check_trace_topology(obs_dir)
            assert report.ok, f"{name}: {report.format()}"

    def test_both_paths_count_metrics(self, tmp_path):
        specs = [small_spec(seed=9)]
        for name, offload in (("inline2", False), ("async2", True)):
            scheduler, _, _ = _drive_batch(tmp_path, name, offload, specs)
            counters = scheduler.metrics.to_dict()["counters"]
            assert counters["scheduler.jobs_done"] == 1
            assert counters["scheduler.jobs_failed"] == 0
            assert scheduler.inflight == {} or all(
                v == 0 for v in scheduler.inflight.values())


class TestFailurePlane:
    def test_failed_job_records_span_and_flight_dump(
        self, tmp_path, scratch_builder
    ):
        def boom(spec):
            raise RuntimeError("deliberate failure")

        scratch_builder("trace-boom", boom)
        specs = [RunSpec("emptcp", "trace-boom")]
        scheduler, obs_dir, _ = _drive_batch(tmp_path, "fail", False, specs)

        trace = next(iter(dist.load_spans(obs_dir).values()))
        job_spans = [s for s in trace.values() if s.name == "job"]
        assert len(job_spans) == 1
        assert job_spans[0].status == "failed"
        assert job_spans[0].attrs["outcome"] == "failed"
        exec_spans = [s for s in trace.values() if s.name == "job.exec"]
        assert exec_spans and all(s.status == "error" for s in exec_spans)

        flights = list((tmp_path / "fail" / "flight").glob("flight-*.jsonl"))
        assert len(flights) == 1
        header = json.loads(flights[0].read_text().splitlines()[0])
        assert header["reason"].startswith("error-")
        assert scheduler.metrics.to_dict()["counters"][
            "scheduler.jobs_failed"] == 1

    def test_ewma_tracks_events_per_sec(self, tmp_path):
        scheduler, _, _ = _drive_batch(
            tmp_path, "ewma", False, [small_spec()])
        assert scheduler.events_ewma is None or scheduler.events_ewma > 0
