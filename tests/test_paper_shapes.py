"""End-to-end assertions of the paper's headline result *shapes*.

Absolute joules/seconds differ from the testbed, but who wins, roughly
by how much, and where the crossovers fall must match the paper (see
DESIGN.md §4).  Sizes are scaled down to keep the suite fast; the
benchmarks regenerate the full-scale numbers.
"""

import pytest

from repro.analysis.stats import mean
from repro.experiments.mobility import run_mobility
from repro.experiments.random_bw import run_random_bw
from repro.experiments.runner import run_scenario
from repro.experiments.static_bw import static_scenario
from repro.experiments.web import run_web
from repro.experiments.wild import (
    LARGE_BYTES,
    SMALL_BYTES,
    collect_traces,
    environment_scenario,
)
from repro.units import mib
from repro.workloads.web import WebPage, cnn_like_page
from repro.workloads.wild import WildEnvironment, WildSampler
from repro.workloads.wild import CLIENT_SITES
from repro.net.host import WILD_SERVERS


def run_set(scenario, seeds=(0,), protocols=("mptcp", "emptcp", "tcp-wifi")):
    return {
        p: [run_scenario(p, scenario, seed=s) for s in seeds] for p in protocols
    }


def mean_energy(results, protocol):
    return mean([r.energy_j for r in results[protocol]])


def mean_time(results, protocol):
    return mean([r.download_time for r in results[protocol]])


class TestFigure5GoodWiFi:
    """eMPTCP == TCP/WiFi; both clearly below MPTCP's energy."""

    @pytest.fixture(scope="class")
    def results(self):
        return run_set(static_scenario(good_wifi=True, download_bytes=mib(32)))

    def test_emptcp_matches_tcp_wifi(self, results):
        assert mean_energy(results, "emptcp") == pytest.approx(
            mean_energy(results, "tcp-wifi"), rel=0.05
        )
        assert mean_time(results, "emptcp") == pytest.approx(
            mean_time(results, "tcp-wifi"), rel=0.05
        )

    def test_mptcp_burns_more_energy(self, results):
        assert mean_energy(results, "mptcp") > 1.2 * mean_energy(results, "emptcp")

    def test_mptcp_is_faster(self, results):
        assert mean_time(results, "mptcp") < mean_time(results, "emptcp")


class TestFigure6BadWiFi:
    """eMPTCP ~= MPTCP (energy and time); TCP/WiFi ~an order of
    magnitude slower."""

    @pytest.fixture(scope="class")
    def results(self):
        return run_set(static_scenario(good_wifi=False, download_bytes=mib(32)))

    def test_emptcp_tracks_mptcp(self, results):
        assert mean_energy(results, "emptcp") == pytest.approx(
            mean_energy(results, "mptcp"), rel=0.25
        )
        assert mean_time(results, "emptcp") == pytest.approx(
            mean_time(results, "mptcp"), rel=0.35
        )

    def test_tcp_wifi_is_many_times_slower(self, results):
        assert mean_time(results, "tcp-wifi") > 5 * mean_time(results, "mptcp")

    def test_lte_startup_delay_visible(self, results):
        emptcp_run = results["emptcp"][0]
        assert emptcp_run.diagnostics["cell_established_at"] >= 2.5  # τ = 3 s


class TestFigure8RandomBandwidth:
    """eMPTCP saves energy vs both; slower than MPTCP, much faster than
    TCP/WiFi."""

    @pytest.fixture(scope="class")
    def results(self):
        # Paper scale (256 MB): the energy relationships only emerge
        # once per-switch fixed costs amortise over a long transfer.
        return run_random_bw(runs=4, download_bytes=mib(256))

    def test_emptcp_saves_energy_vs_mptcp(self, results):
        assert mean_energy(results, "emptcp") < mean_energy(results, "mptcp")

    def test_emptcp_energy_at_or_below_tcp_wifi(self, results):
        # Paper reports ~6% savings vs TCP over WiFi; our model lands
        # at parity (within a few percent) — see EXPERIMENTS.md.
        assert mean_energy(results, "emptcp") <= 1.05 * mean_energy(
            results, "tcp-wifi"
        )

    def test_emptcp_slower_than_mptcp_but_faster_than_wifi(self, results):
        t_mptcp = mean_time(results, "mptcp")
        t_emptcp = mean_time(results, "emptcp")
        t_wifi = mean_time(results, "tcp-wifi")
        assert t_mptcp < t_emptcp < t_wifi
        # Paper: ~22% slower than MPTCP, ~2x faster than TCP over WiFi.
        assert t_emptcp < 2.0 * t_mptcp
        assert t_wifi > 1.3 * t_emptcp

    def test_emptcp_actually_switches(self, results):
        diag = results["emptcp"][0].diagnostics
        assert diag["mp_prio_events"] >= 1


class TestFigure13Mobility:
    """Per-byte: TCP/WiFi < eMPTCP < MPTCP; download amount:
    TCP/WiFi < eMPTCP < MPTCP."""

    @pytest.fixture(scope="class")
    def results(self):
        return run_mobility(runs=2)

    def test_per_byte_ordering(self, results):
        jpb = {
            p: mean([r.joules_per_byte for r in runs])
            for p, runs in results.items()
        }
        assert jpb["tcp-wifi"] < jpb["emptcp"] < jpb["mptcp"]

    def test_download_amount_ordering(self, results):
        data = {
            p: mean([r.bytes_received for r in runs]) for p, runs in results.items()
        }
        assert data["tcp-wifi"] < data["emptcp"] < data["mptcp"]

    def test_emptcp_downloads_at_least_15pct_more_than_wifi(self, results):
        data = {
            p: mean([r.bytes_received for r in runs]) for p, runs in results.items()
        }
        assert data["emptcp"] > 1.15 * data["tcp-wifi"]


class TestFigure15SmallTransfers:
    """256 KB: eMPTCP == TCP/WiFi, 75-90% below MPTCP."""

    @pytest.fixture(scope="class")
    def results(self):
        env = WildEnvironment(
            site=CLIENT_SITES["campus"],
            server=WILD_SERVERS["WDC"],
            wifi_mbps=12.0,
            lte_mbps=12.0,
        )
        return run_set(environment_scenario(env, SMALL_BYTES))

    def test_massive_energy_savings(self, results):
        saving = 1 - mean_energy(results, "emptcp") / mean_energy(results, "mptcp")
        assert saving > 0.70

    def test_no_lte_subflow(self, results):
        diag = results["emptcp"][0].diagnostics
        assert diag["cell_established"] == 0.0

    def test_download_time_not_hurt(self, results):
        assert mean_time(results, "emptcp") <= mean_time(results, "mptcp") * 1.1


class TestFigure16LargeTransfers:
    """16 MB across the four categories."""

    def _env(self, wifi, lte):
        return WildEnvironment(
            site=CLIENT_SITES["campus"],
            server=WILD_SERVERS["WDC"],
            wifi_mbps=wifi,
            lte_mbps=lte,
        )

    def test_good_wifi_bad_lte_half_the_energy(self):
        results = run_set(environment_scenario(self._env(14.0, 3.0), LARGE_BYTES))
        assert mean_energy(results, "emptcp") < 0.7 * mean_energy(results, "mptcp")
        assert mean_energy(results, "emptcp") == pytest.approx(
            mean_energy(results, "tcp-wifi"), rel=0.05
        )

    def test_bad_wifi_good_lte_tracks_mptcp(self):
        results = run_set(environment_scenario(self._env(2.0, 16.0), LARGE_BYTES))
        assert mean_energy(results, "emptcp") == pytest.approx(
            mean_energy(results, "mptcp"), rel=0.35
        )
        # Delayed establishment -> slightly larger download times.
        assert mean_time(results, "emptcp") >= mean_time(results, "mptcp")
        assert mean_time(results, "tcp-wifi") > 2 * mean_time(results, "mptcp")

    def test_bad_bad_emptcp_tracks_the_best(self):
        # Paper: eMPTCP is the most efficient in Bad/Bad (~33% below
        # MPTCP).  Our linear whole-device power model reproduces this
        # as parity-with-the-best rather than a clear win (the win
        # requires path pathologies the fluid model smooths over) —
        # recorded as a deviation in EXPERIMENTS.md.
        results = run_set(
            environment_scenario(self._env(2.0, 5.0), LARGE_BYTES),
            seeds=(0, 1, 2),
        )
        assert mean_energy(results, "emptcp") <= mean_energy(results, "mptcp") * 1.10
        assert mean_energy(results, "emptcp") <= mean_energy(results, "tcp-wifi") * 1.15
        # TCP over WiFi pays with far larger download times (paper: ~6x).
        assert mean_time(results, "tcp-wifi") > 2.0 * mean_time(results, "mptcp")


class TestFigure17Web:
    """Web page: MPTCP pays substantially more energy at similar
    latency; eMPTCP never touches LTE."""

    @pytest.fixture(scope="class")
    def page(self):
        return WebPage(cnn_like_page().object_sizes[:30])

    def test_energy_and_latency(self, page):
        mptcp = run_web("mptcp", page=page, seed=0)
        emptcp = run_web("emptcp", page=page, seed=0)
        tcp = run_web("tcp-wifi", page=page, seed=0)
        assert mptcp.energy_j > 1.4 * emptcp.energy_j
        assert emptcp.energy_j == pytest.approx(tcp.energy_j, rel=0.25)
        assert emptcp.latency <= mptcp.latency * 1.35
        assert emptcp.lte_bytes == 0.0


class TestFigure14Categories:
    def test_wild_sampling_covers_all_categories(self):
        from repro.analysis.categorize import Category

        traces = collect_traces(
            SMALL_BYTES, n_environments=12, protocols=("tcp-wifi",)
        )
        assert len(traces) == 12
        cats = {t.category for t in traces}
        assert len(cats) >= 2  # small sample still spreads out
