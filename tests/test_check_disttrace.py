"""The CHK7xx distributed-trace topology tier (repro.check.disttrace):
root-count, reachability, time-containment, and stamped-export
reference invariants over lifecycle JSONL exports.
"""

import json

import pytest

from repro.check.disttrace import check_trace_topology
from repro.obs import dist

pytestmark = pytest.mark.runtime


def _record(obs_dir, spans):
    recorder = dist.SpanRecorder(sink_dir=obs_dir)
    for span in spans:
        recorder.record(span)


def _healthy(trace_id="t1"):
    root = dist.span_id_for(trace_id, "batch")
    job = dist.span_id_for(trace_id, "job", "aaa111")
    return [
        dist.LifecycleSpan(trace_id, dist.span_id_for(trace_id, "queue.wait",
                                                      "aaa111"),
                           job, "queue.wait", 1.0, 1.1),
        dist.LifecycleSpan(trace_id, dist.span_id_for(trace_id, "job.exec",
                                                      "aaa111", 1),
                           job, "job.exec", 1.1, 1.9,
                           attrs={"attempt": 1}),
        dist.LifecycleSpan(trace_id, job, root, "job", 1.0, 1.9,
                           attrs={"hash": "aaa111"}),
        dist.LifecycleSpan(trace_id, root, "", "batch", 0.9, 2.0),
    ]


def _rules(report):
    return sorted({f.rule for f in report.findings})


class TestTopology:
    def test_healthy_trace_is_clean(self, tmp_path):
        _record(tmp_path, _healthy())
        report = check_trace_topology(tmp_path)
        assert report.ok and not report.findings
        assert report.checked == 1

    def test_no_lifecycle_files_is_ok_not_suspicious(self, tmp_path):
        report = check_trace_topology(tmp_path)
        assert report.ok and report.checked == 0

    def test_chk700_empty_file_warns(self, tmp_path):
        (tmp_path / "t1.lifecycle.jsonl").write_text("torn{{{\n")
        report = check_trace_topology(tmp_path)
        assert _rules(report) == ["CHK700"]
        assert report.ok  # warning severity

    def test_chk701_orphan_parent(self, tmp_path):
        spans = _healthy()
        spans[0] = dist.LifecycleSpan(
            "t1", spans[0].span_id, "no-such-span", "queue.wait", 1.0, 1.1)
        _record(tmp_path, spans)
        report = check_trace_topology(tmp_path)
        assert "CHK701" in _rules(report)
        assert not report.ok

    def test_chk702_root_count(self, tmp_path):
        spans = _healthy()
        spans.append(dist.LifecycleSpan("t1", "extra-root", "", "batch",
                                        0.0, 5.0))
        _record(tmp_path, spans)
        assert "CHK702" in _rules(check_trace_topology(tmp_path))

    def test_chk703_child_escapes_parent_window(self, tmp_path):
        spans = _healthy()
        job = spans[2].span_id
        spans[1] = dist.LifecycleSpan("t1", spans[1].span_id, job,
                                      "job.exec", 1.1, 9.0)
        _record(tmp_path, spans)
        assert "CHK703" in _rules(check_trace_topology(tmp_path))

    def test_chk703_wait_plus_exec_exceeds_batch_wall(self, tmp_path):
        trace_id = "t1"
        root = dist.span_id_for(trace_id, "batch")
        job = dist.span_id_for(trace_id, "job", "aaa111")
        # Every span nests correctly, but the job's children sum to
        # more time than the batch wall — a broken-clock signature the
        # per-window check alone cannot see.
        _record(tmp_path, [
            dist.LifecycleSpan(trace_id,
                               dist.span_id_for(trace_id, "queue.wait",
                                                "aaa111"),
                               job, "queue.wait", 1.0, 1.9),
            dist.LifecycleSpan(trace_id,
                               dist.span_id_for(trace_id, "job.exec",
                                                "aaa111", 1),
                               job, "job.exec", 1.0, 1.9),
            dist.LifecycleSpan(trace_id, job, root, "job", 1.0, 1.9),
            dist.LifecycleSpan(trace_id, root, "", "batch", 1.0, 2.0),
        ])
        assert "CHK703" in _rules(check_trace_topology(tmp_path))

    def test_chk704_negative_duration(self, tmp_path):
        spans = _healthy()
        spans[1] = dist.LifecycleSpan("t1", spans[1].span_id,
                                      spans[2].span_id, "job.exec", 5.0, 1.0)
        _record(tmp_path, spans)
        assert "CHK704" in _rules(check_trace_topology(tmp_path))


class TestStampedReferences:
    def test_chk705_unknown_trace_is_an_error(self, tmp_path):
        _record(tmp_path, _healthy())
        with open(tmp_path / "aaa111.trace.jsonl", "w") as fh:
            fh.write(json.dumps({"type": "tick", "t": 0.0,
                                 "trace_id": "ffff000011112222",
                                 "span_id": "s1"}) + "\n")
        report = check_trace_topology(tmp_path)
        assert "CHK705" in _rules(report)
        assert not report.ok

    def test_chk705_stale_span_is_a_warning(self, tmp_path):
        _record(tmp_path, _healthy())
        (tmp_path / "aaa111.spans.json").write_text(json.dumps({
            "trace_id": "t1", "span_id": "gone-span", "spans": []}))
        report = check_trace_topology(tmp_path)
        assert "CHK705" in _rules(report)
        assert report.ok  # stale exports survive cached re-runs

    def test_unstamped_exports_are_ignored(self, tmp_path):
        _record(tmp_path, _healthy())
        with open(tmp_path / "aaa111.trace.jsonl", "w") as fh:
            fh.write(json.dumps({"type": "tick", "t": 0.0}) + "\n")
        assert check_trace_topology(tmp_path).ok
