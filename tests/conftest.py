"""Shared pytest fixtures."""

from pathlib import Path

import pytest


@pytest.fixture(scope="session")
def repo_root() -> Path:
    """The repository checkout root (parent of tests/)."""
    return Path(__file__).resolve().parent.parent


@pytest.fixture(scope="session")
def test_data_dir() -> Path:
    """Committed fixture files (golden traces etc.)."""
    return Path(__file__).resolve().parent / "data"
