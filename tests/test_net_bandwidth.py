"""Tests for capacity processes."""

import random

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.net.bandwidth import (
    ConstantCapacity,
    PiecewiseTraceCapacity,
    TwoStateMarkovCapacity,
)
from repro.sim.engine import Simulator


class TestConstantCapacity:
    def test_rate_is_constant(self):
        sim = Simulator()
        cap = ConstantCapacity(1000.0)
        cap.attach(sim)
        sim.run(until=100.0)
        assert cap.rate == 1000.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantCapacity(-1.0)

    def test_double_attach_rejected(self):
        sim = Simulator()
        cap = ConstantCapacity(1.0)
        cap.attach(sim)
        with pytest.raises(SimulationError):
            cap.attach(sim)


class TestTwoStateMarkov:
    def _make(self, start_high=True, seed=1):
        sim = Simulator()
        cap = TwoStateMarkovCapacity(
            high_rate=10.0,
            low_rate=1.0,
            mean_high=40.0,
            mean_low=40.0,
            rng=random.Random(seed),
            start_high=start_high,
        )
        cap.attach(sim)
        return sim, cap

    def test_initial_state(self):
        _sim, cap = self._make(start_high=True)
        assert cap.rate == 10.0
        _sim, cap = self._make(start_high=False)
        assert cap.rate == 1.0

    def test_alternates_between_two_rates(self):
        sim, cap = self._make()
        seen = set()
        cap.on_change(lambda _t, rate: seen.add(rate))
        sim.run(until=1000.0)
        assert seen == {1.0, 10.0}

    def test_mean_dwell_roughly_matches(self):
        sim, cap = self._make(seed=7)
        changes = []
        cap.on_change(lambda t, _r: changes.append(t))
        sim.run(until=100_000.0)
        dwells = [b - a for a, b in zip(changes, changes[1:])]
        mean_dwell = sum(dwells) / len(dwells)
        assert 30.0 < mean_dwell < 50.0  # exponential mean 40

    def test_deterministic_given_seed(self):
        sim1, cap1 = self._make(seed=5)
        changes1 = []
        cap1.on_change(lambda t, r: changes1.append((t, r)))
        sim1.run(until=500.0)
        sim2, cap2 = self._make(seed=5)
        changes2 = []
        cap2.on_change(lambda t, r: changes2.append((t, r)))
        sim2.run(until=500.0)
        assert changes1 == changes2

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            TwoStateMarkovCapacity(1.0, 10.0, 40.0, 40.0, random.Random(0))
        with pytest.raises(ConfigurationError):
            TwoStateMarkovCapacity(10.0, 1.0, 0.0, 40.0, random.Random(0))


class TestPiecewiseTrace:
    def test_follows_trace(self):
        sim = Simulator()
        cap = PiecewiseTraceCapacity([(0.0, 5.0), (10.0, 2.0), (20.0, 8.0)])
        cap.attach(sim)
        assert cap.rate == 5.0
        sim.run(until=10.0)
        assert cap.rate == 2.0
        sim.run(until=25.0)
        assert cap.rate == 8.0

    def test_change_notifications(self):
        sim = Simulator()
        cap = PiecewiseTraceCapacity([(0.0, 5.0), (1.0, 2.0)])
        cap.attach(sim)
        events = []
        cap.on_change(lambda t, r: events.append((t, r)))
        sim.run()
        assert events == [(1.0, 2.0)]

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            PiecewiseTraceCapacity([])

    def test_non_increasing_times_rejected(self):
        with pytest.raises(ConfigurationError):
            PiecewiseTraceCapacity([(0.0, 1.0), (0.0, 2.0)])

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            PiecewiseTraceCapacity([(0.0, -1.0)])

    def test_negative_start_time_rejected(self):
        with pytest.raises(ConfigurationError):
            PiecewiseTraceCapacity([(-1.0, 1.0)])
