"""Tests for the MPTCP connection: modes, joins, MP_PRIO, completion."""

import pytest

from tests.helpers import make_path, rng
from repro.errors import ProtocolError
from repro.mptcp.connection import MptcpMode, MPTCPConnection
from repro.mptcp.options import MpCapable, MpJoin, MpPrio
from repro.net.interface import InterfaceKind
from repro.sim.engine import Simulator
from repro.tcp.connection import FiniteSource


def make_mptcp(sim, size=4_000_000.0, wifi_mbps=8.0, lte_mbps=8.0, **kwargs):
    wifi = make_path(sim, InterfaceKind.WIFI, mbps=wifi_mbps, rtt=0.04)
    lte = make_path(sim, InterfaceKind.LTE, mbps=lte_mbps, rtt=0.07)
    source = FiniteSource(size)
    conn = MPTCPConnection(
        sim, wifi, source, secondary_paths=[lte], rng=rng(), **kwargs
    )
    return conn, source, wifi, lte


class TestFullMode:
    def test_uses_both_subflows(self):
        sim = Simulator()
        conn, source, _w, _l = make_mptcp(sim)
        conn.open()
        sim.run(until=30.0)
        assert source.exhausted
        assert len(conn.subflows) == 2
        assert all(sf.bytes_delivered > 0 for sf in conn.subflows)

    def test_aggregate_faster_than_single_path(self):
        size = 8_000_000.0
        sim1 = Simulator()
        conn1, _, _, _ = make_mptcp(sim1, size=size)
        conn1.open()
        sim1.run(until=60.0)

        sim2 = Simulator()
        wifi = make_path(sim2, InterfaceKind.WIFI, mbps=8.0, rtt=0.04)
        from repro.baselines.single_path import SinglePathTcp

        single = SinglePathTcp(sim2, wifi, FiniteSource(size), rng=rng())
        single.open()
        sim2.run(until=60.0)
        assert conn1.completed_at < single.completed_at

    def test_option_log_records_capable_and_join(self):
        sim = Simulator()
        conn, _, _, _ = make_mptcp(sim)
        conn.open()
        sim.run(until=5.0)
        kinds = [type(o) for o in conn.option_log]
        assert kinds[0] is MpCapable
        assert MpJoin in kinds

    def test_completion_fires_once_with_time(self):
        sim = Simulator()
        conn, _, _, _ = make_mptcp(sim, size=500_000.0)
        seen = []
        conn.on_complete(lambda c: seen.append(sim.now))
        conn.open()
        sim.run(until=30.0)
        assert len(seen) == 1
        assert conn.completed_at == seen[0]

    def test_bytes_received_matches_size(self):
        sim = Simulator()
        conn, _, _, _ = make_mptcp(sim, size=1_000_000.0)
        conn.open()
        sim.run(until=30.0)
        assert conn.bytes_received == pytest.approx(1_000_000.0)

    def test_double_open_rejected(self):
        sim = Simulator()
        conn, _, _, _ = make_mptcp(sim)
        conn.open()
        with pytest.raises(ProtocolError):
            conn.open()

    def test_duplicate_path_join_rejected(self):
        sim = Simulator()
        conn, _, _w, lte = make_mptcp(sim, auto_join=False)
        conn.open()
        sim.run(until=1.0)
        conn.add_subflow(lte)
        with pytest.raises(ProtocolError):
            conn.add_subflow(lte)

    def test_subflow_for_lookup(self):
        sim = Simulator()
        conn, _, _, _ = make_mptcp(sim)
        conn.open()
        sim.run(until=1.0)
        assert conn.subflow_for(InterfaceKind.WIFI).interface_kind.is_wifi
        assert conn.subflow_for(InterfaceKind.LTE).interface_kind.is_cellular
        assert conn.subflow_for(InterfaceKind.THREEG) is None


class TestDeferredJoin:
    def test_no_auto_join(self):
        sim = Simulator()
        conn, _, _, _ = make_mptcp(sim, auto_join=False)
        conn.open()
        sim.run(until=2.0)
        assert len(conn.subflows) == 1

    def test_manual_join_later(self):
        sim = Simulator()
        conn, source, _w, lte = make_mptcp(sim, auto_join=False, size=20_000_000.0)
        conn.open()
        sim.run(until=2.0)
        conn.add_subflow(lte)
        sim.run(until=60.0)
        assert source.exhausted
        assert conn.subflow_for(InterfaceKind.LTE).bytes_delivered > 0


class TestMpPrio:
    def test_suspend_and_resume_via_mp_prio(self):
        sim = Simulator()
        conn, _, _, _ = make_mptcp(sim, size=50_000_000.0)
        conn.open()
        sim.run(until=2.0)
        lte_sf = conn.subflow_for(InterfaceKind.LTE)
        conn.set_low_priority(lte_sf, low=True)
        assert lte_sf.suspended
        prio_events = [o for o in conn.option_log if isinstance(o, MpPrio)]
        assert prio_events[-1].low is True
        conn.set_low_priority(lte_sf, low=False)
        assert not lte_sf.suspended
        prio_events = [o for o in conn.option_log if isinstance(o, MpPrio)]
        assert prio_events[-1].low is False

    def test_unknown_subflow_rejected(self):
        sim = Simulator()
        conn, _, _, _ = make_mptcp(sim)
        conn.open()
        sim.run(until=1.0)
        other_sim = Simulator()
        other, _, _, _ = make_mptcp(other_sim)
        other.open()
        other_sim.run(until=1.0)
        with pytest.raises(ProtocolError):
            conn.set_low_priority(other.subflows[0], low=True)

    def test_reuse_reset_rtt_flag(self):
        sim = Simulator()
        conn, _, _, _ = make_mptcp(sim, size=50_000_000.0, reuse_reset_rtt=True)
        conn.open()
        sim.run(until=2.0)
        lte_sf = conn.subflow_for(InterfaceKind.LTE)
        conn.set_low_priority(lte_sf, low=True)
        sim.run(until=3.0)
        conn.set_low_priority(lte_sf, low=False)
        assert lte_sf.effective_rtt == 0.0


class TestBackupMode:
    def test_backup_subflow_idle_until_activated(self):
        sim = Simulator()
        conn, _, _, _ = make_mptcp(sim, mode=MptcpMode.BACKUP, size=20_000_000.0)
        conn.open()
        sim.run(until=5.0)
        lte_sf = conn.subflow_for(InterfaceKind.LTE)
        assert lte_sf.established
        assert lte_sf.suspended
        assert lte_sf.bytes_delivered == 0.0
        conn.set_low_priority(lte_sf, low=False)
        sim.run(until=10.0)
        assert lte_sf.bytes_delivered > 0


class TestSinglePathMode:
    def test_only_primary_initially(self):
        sim = Simulator()
        conn, _, _, _ = make_mptcp(sim, mode=MptcpMode.SINGLE_PATH, size=2e7)
        conn.open()
        sim.run(until=3.0)
        assert len(conn.subflows) == 1

    def test_failover_when_wifi_goes_down(self):
        sim = Simulator()
        conn, source, wifi, _lte = make_mptcp(
            sim, mode=MptcpMode.SINGLE_PATH, size=20_000_000.0
        )
        conn.open()
        sim.run(until=3.0)
        wifi.interface.up = False  # AP disassociation
        sim.run(until=40.0)
        assert len(conn.subflows) == 2
        assert source.exhausted
        assert conn.subflow_for(InterfaceKind.LTE).bytes_delivered > 0


class TestIdleDetection:
    def test_idle_after_transfer_completes(self):
        sim = Simulator()
        conn, _, _, _ = make_mptcp(sim, size=300_000.0)
        conn.open()
        sim.run(until=30.0)
        assert conn.is_idle

    def test_not_idle_mid_transfer(self):
        sim = Simulator()
        conn, _, _, _ = make_mptcp(sim, size=50_000_000.0)
        conn.open()
        sim.run(until=5.0)
        assert not conn.is_idle
