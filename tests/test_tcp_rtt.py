"""Tests for the RTT estimator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.tcp.rtt import RttEstimator


def test_first_sample_initializes():
    est = RttEstimator()
    est.observe(0.1)
    assert est.srtt == pytest.approx(0.1)
    assert est.rttvar == pytest.approx(0.05)
    assert est.initialized


def test_smoothing_follows_rfc6298():
    est = RttEstimator()
    est.observe(0.1)
    est.observe(0.2)
    assert est.rttvar == pytest.approx(0.75 * 0.05 + 0.25 * 0.1)
    assert est.srtt == pytest.approx(0.875 * 0.1 + 0.125 * 0.2)


def test_rto_before_initialization_is_one_second():
    assert RttEstimator().rto == 1.0


def test_rto_clamped_to_min():
    est = RttEstimator(min_rto=0.2)
    for _ in range(100):
        est.observe(0.01)
    assert est.rto == 0.2


def test_rto_clamped_to_max():
    est = RttEstimator(max_rto=60.0)
    est.observe(100.0)
    assert est.rto == 60.0


def test_reset_to_zero_for_reuse():
    est = RttEstimator()
    est.observe(0.3)
    est.reset_to_zero()
    assert est.srtt == 0.0
    assert not est.initialized
    est.observe(0.2)
    assert est.srtt == pytest.approx(0.2)


def test_invalid_sample_rejected():
    with pytest.raises(ConfigurationError):
        RttEstimator().observe(0.0)


def test_invalid_bounds_rejected():
    with pytest.raises(ConfigurationError):
        RttEstimator(min_rto=0.0)
    with pytest.raises(ConfigurationError):
        RttEstimator(min_rto=1.0, max_rto=0.5)


@given(st.lists(st.floats(min_value=1e-4, max_value=10.0), min_size=1, max_size=100))
def test_property_srtt_stays_within_sample_range(samples):
    est = RttEstimator()
    for s in samples:
        est.observe(s)
    assert min(samples) <= est.srtt <= max(samples) + 1e-12


@given(st.floats(min_value=1e-3, max_value=5.0))
def test_property_constant_samples_converge_exactly(value):
    est = RttEstimator()
    for _ in range(50):
        est.observe(value)
    assert est.srtt == pytest.approx(value)
    assert est.rttvar == pytest.approx(0.0, abs=value)
