"""Tests for scenarios, the protocol factory, and the runner."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.experiments.protocols import PROTOCOLS, build_protocol, mdp_policy_for
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import RunResult, Scenario, summarize_runs
from repro.energy.device import GALAXY_S3, NEXUS_5
from repro.net.bandwidth import ConstantCapacity
from repro.net.interface import InterfaceKind
from repro.units import mbps_to_bytes_per_sec, mib


def simple_scenario(wifi=8.0, lte=10.0, size=mib(2), **kwargs):
    return Scenario(
        name="test",
        wifi_capacity=lambda _rng: ConstantCapacity(mbps_to_bytes_per_sec(wifi)),
        cell_capacity=lambda _rng: ConstantCapacity(mbps_to_bytes_per_sec(lte)),
        download_bytes=size,
        **kwargs,
    )


class TestScenario:
    def test_requires_exactly_one_of_size_or_duration(self):
        with pytest.raises(ConfigurationError):
            Scenario(
                name="x",
                wifi_capacity=lambda r: ConstantCapacity(1.0),
                cell_capacity=lambda r: ConstantCapacity(1.0),
            )
        with pytest.raises(ConfigurationError):
            Scenario(
                name="x",
                wifi_capacity=lambda r: ConstantCapacity(1.0),
                cell_capacity=lambda r: ConstantCapacity(1.0),
                download_bytes=1.0,
                duration=1.0,
            )

    def test_cell_kind_must_be_cellular(self):
        with pytest.raises(ConfigurationError):
            simple_scenario(cell_kind=InterfaceKind.WIFI)

    def test_summarize_runs(self):
        r = run_scenario("tcp-wifi", simple_scenario(size=mib(1)))
        summary = summarize_runs([r, r])
        assert summary["n"] == 2
        assert summary["energy_j"] == pytest.approx(r.energy_j)

    def test_summarize_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_runs([])


class TestRunScenario:
    def test_all_protocols_complete(self):
        scenario = simple_scenario()
        for protocol in PROTOCOLS:
            result = run_scenario(protocol, scenario, seed=1)
            assert result.download_time is not None
            assert result.bytes_received == pytest.approx(mib(2))
            assert result.energy_j > 0
            assert result.protocol == protocol

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            run_scenario("carrier-pigeon", simple_scenario())

    def test_deterministic_given_seed(self):
        scenario = simple_scenario()
        a = run_scenario("emptcp", scenario, seed=3)
        b = run_scenario("emptcp", scenario, seed=3)
        assert a.energy_j == b.energy_j
        assert a.download_time == b.download_time

    def test_different_seeds_can_differ(self):
        # On a lossy path the loss draws differ by seed.
        scenario = simple_scenario(wifi_loss=0.01, size=mib(4))
        a = run_scenario("tcp-wifi", scenario, seed=1)
        b = run_scenario("tcp-wifi", scenario, seed=2)
        assert a.download_time != b.download_time

    def test_energy_total_exceeds_energy_at_completion_when_lte_used(self):
        """The drained tail is charged after completion for MPTCP."""
        result = run_scenario("mptcp", simple_scenario(size=mib(2)))
        assert result.energy_j > result.energy_at_completion_j

    def test_energy_series_monotone(self):
        result = run_scenario("mptcp", simple_scenario())
        values = result.energy_series.values
        assert values == sorted(values)

    def test_measured_throughputs_reflect_capacities(self):
        result = run_scenario("mptcp", simple_scenario(wifi=8.0, lte=10.0))
        assert result.measured_wifi_mbps == pytest.approx(8.0, rel=0.05)
        assert result.measured_cell_mbps == pytest.approx(10.0, rel=0.05)

    def test_duration_mode_reports_no_download_time(self):
        scenario = Scenario(
            name="window",
            wifi_capacity=lambda _r: ConstantCapacity(mbps_to_bytes_per_sec(8.0)),
            cell_capacity=lambda _r: ConstantCapacity(mbps_to_bytes_per_sec(8.0)),
            duration=20.0,
        )
        result = run_scenario("mptcp", scenario)
        assert result.download_time is None
        assert result.bytes_received > 0

    def test_timeout_raises(self):
        scenario = simple_scenario(wifi=0.1, lte=0.1, size=mib(64))
        scenario.max_sim_time = 5.0
        with pytest.raises(SimulationError):
            run_scenario("tcp-wifi", scenario)

    def test_nexus5_profile_supported(self):
        result = run_scenario(
            "emptcp", simple_scenario(profile=NEXUS_5, size=mib(1))
        )
        assert result.energy_j > 0

    def test_threeg_scenario_supported(self):
        result = run_scenario(
            "mptcp", simple_scenario(cell_kind=InterfaceKind.THREEG, size=mib(1))
        )
        assert result.energy_j > 0

    def test_per_byte_metrics(self):
        result = run_scenario("tcp-wifi", simple_scenario(size=mib(1)))
        assert result.joules_per_byte == pytest.approx(
            result.energy_j / result.bytes_received
        )
        assert result.joules_per_bit == pytest.approx(result.joules_per_byte / 8)


class TestProtocolFactory:
    def test_mdp_policy_cached(self):
        a = mdp_policy_for(GALAXY_S3, InterfaceKind.LTE)
        b = mdp_policy_for(GALAXY_S3, InterfaceKind.LTE)
        assert a is b

    def test_build_protocol_rejects_unknown(self):
        from repro.sim.engine import Simulator
        from tests.helpers import make_path
        from repro.tcp.connection import FiniteSource

        sim = Simulator()
        wifi = make_path(sim, InterfaceKind.WIFI)
        lte = make_path(sim, InterfaceKind.LTE)
        with pytest.raises(ConfigurationError):
            build_protocol(
                "nope", sim, wifi, lte, FiniteSource(1.0), profile=GALAXY_S3
            )
