"""The extracted control plane across both data planes.

Covers the refactor's cross-cutting guarantees: direction threading
into the EIB (the upload regression), the MDP direction guard, the
engine field on RunSpec, the CHK243 engine gate, and — the headline —
fluid/packet parity: the same control-plane decision sequence on the
same scenario, whichever engine carries the bytes.
"""

import dataclasses
import random

import pytest

from repro import obs
from repro.check.config import check_run_spec
from repro.check.findings import Severity
from repro.core.eib import cached_eib
from repro.core.emptcp import EMPTCPConnection
from repro.energy.device import GALAXY_S3
from repro.energy.power import Direction
from repro.errors import ConfigurationError
from repro.experiments.protocols import mdp_policy_for
from repro.experiments.regions import table2_rows
from repro.experiments.runner import run_scenario
from repro.experiments.static_bw import static_scenario
from repro.net.bandwidth import ConstantCapacity
from repro.net.interface import InterfaceKind
from repro.packet.emptcp import PacketEmptcp
from repro.packet.link import PacketLink
from repro.runtime.spec import RunSpec, _REGISTRY, register_builder
from repro.sim.engine import Simulator
from repro.tcp.connection import FiniteSource
from repro.units import mbps_to_bytes_per_sec, mib

from tests.helpers import make_path, rng


def make_packet_emptcp(sim, direction=Direction.DOWN):
    wifi = PacketLink(
        sim,
        ConstantCapacity(mbps_to_bytes_per_sec(12.0)),
        one_way_delay=0.02,
        rng=random.Random(1),
        name="wifi",
    )
    lte = PacketLink(
        sim,
        ConstantCapacity(mbps_to_bytes_per_sec(10.0)),
        one_way_delay=0.035,
        rng=random.Random(2),
        name="lte",
    )
    return PacketEmptcp(sim, wifi, lte, FiniteSource(mib(1)), direction=direction)


# ---------------------------------------------------------------------------
# direction threading (the upload-EIB regression)


class TestDirectionThreading:
    def test_fluid_upload_consults_the_upload_eib(self):
        sim = Simulator()
        wifi = make_path(sim, InterfaceKind.WIFI)
        lte = make_path(sim, InterfaceKind.LTE)
        conn = EMPTCPConnection(
            sim, wifi, lte, FiniteSource(mib(1)), GALAXY_S3,
            rng=rng(), direction=Direction.UP,
        )
        assert conn.eib is cached_eib(GALAXY_S3, InterfaceKind.LTE, Direction.UP)
        assert conn.eib is not cached_eib(
            GALAXY_S3, InterfaceKind.LTE, Direction.DOWN
        )

    def test_packet_upload_consults_the_upload_eib(self):
        sim = Simulator()
        conn = make_packet_emptcp(sim, direction=Direction.UP)
        assert conn.eib is cached_eib(GALAXY_S3, InterfaceKind.LTE, Direction.UP)
        assert conn.meter.direction is Direction.UP
        assert conn.control.direction is Direction.UP

    def test_upload_and_download_thresholds_differ(self):
        # The transmit power slope is steeper, so the upload EIB cannot
        # share the download table (the bug this guards against).
        down = table2_rows(GALAXY_S3, lte_rows=(10.0,))
        up = table2_rows(GALAXY_S3, lte_rows=(10.0,), direction=Direction.UP)
        assert down[0] != up[0]


class TestMdpDirectionGuard:
    def test_upload_policy_is_refused(self):
        with pytest.raises(ConfigurationError):
            mdp_policy_for(GALAXY_S3, InterfaceKind.LTE, direction=Direction.UP)


# ---------------------------------------------------------------------------
# RunSpec.engine


class TestRunSpecEngine:
    def test_defaults_to_fluid_with_plain_label(self):
        spec = RunSpec(protocol="emptcp", builder="static")
        assert spec.engine == "fluid"
        assert "@" not in spec.label

    def test_packet_label_and_roundtrip(self):
        spec = RunSpec(protocol="emptcp", builder="static", engine="packet")
        assert spec.label.endswith("@packet")
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_legacy_dicts_decode_as_fluid(self):
        data = RunSpec(protocol="emptcp", builder="static").to_dict()
        del data["engine"]
        assert RunSpec.from_dict(data).engine == "fluid"

    def test_engine_is_part_of_the_cache_key(self):
        fluid = RunSpec(protocol="emptcp", builder="static")
        packet = RunSpec(protocol="emptcp", builder="static", engine="packet")
        assert fluid.content_hash() != packet.content_hash()


# ---------------------------------------------------------------------------
# CHK243: the engine gate


def chk_rules(findings):
    return sorted(f.rule for f in findings)


class TestChk243:
    def test_supported_packet_spec_passes(self):
        spec = RunSpec(protocol="emptcp", builder="static", engine="packet")
        assert check_run_spec(spec) == []

    def test_unknown_engine_is_an_error(self):
        spec = RunSpec(protocol="emptcp", builder="static", engine="ns3")
        findings = check_run_spec(spec)
        assert chk_rules(findings) == ["CHK243"]
        assert findings[0].severity is Severity.ERROR

    def test_protocol_without_packet_support_is_an_error(self):
        spec = RunSpec(protocol="mdp", builder="static", engine="packet")
        assert chk_rules(check_run_spec(spec)) == ["CHK243"]

    def test_custom_builder_only_warns(self):
        register_builder("ctl-test-custom", lambda spec: None, replace=True)
        try:
            spec = RunSpec(
                protocol="emptcp", builder="ctl-test-custom", engine="packet"
            )
            findings = check_run_spec(spec)
            assert chk_rules(findings) == ["CHK243"]
            assert findings[0].severity is Severity.WARNING
        finally:
            _REGISTRY.pop("ctl-test-custom", None)

    def test_interferer_scenario_rejected_by_cheap_gate(self):
        # The capability check derives required features from the built
        # scenario, so the cheap pre-dispatch gate already sees the
        # interferers — no pool worker ever starts.
        spec = RunSpec(
            protocol="emptcp",
            builder="background",
            kwargs={"n_interferers": 2, "lambda_off": 0.05,
                    "download_bytes": mib(1)},
            engine="packet",
        )
        findings = check_run_spec(spec)
        assert "CHK243" in chk_rules(findings)
        assert "interferers" in findings[0].message
        assert check_run_spec(dataclasses.replace(spec, engine="fluid")) == []


# ---------------------------------------------------------------------------
# fluid/packet parity: one control plane, identical decisions


def traced_run(engine, good_wifi, size=mib(2)):
    scenario = static_scenario(good_wifi, download_bytes=size)
    with obs.capture(trace=True, metrics=False) as session:
        result = run_scenario("emptcp", scenario, seed=0, engine=engine)
    return result, session.tracer


def dedup(values):
    return [v for i, v in enumerate(values) if i == 0 or values[i - 1] != v]


class TestEngineParity:
    def test_bad_wifi_same_decision_sequence(self):
        # 8 MiB: long enough past the τ=3 s join for φ cellular samples
        # to accumulate, so §3.4 decide() actually runs on both engines.
        runs = {
            engine: traced_run(engine, good_wifi=False, size=mib(8))
            for engine in ("fluid", "packet")
        }
        sequences = {}
        for engine, (result, tracer) in runs.items():
            established = [
                e for e in tracer.events("delay.trigger")
                if e["action"] == "established"
            ]
            # Bad WiFi moves < κ bytes in τ seconds: the τ timer fires
            # at exactly 3 s on either engine.
            assert len(established) == 1, engine
            assert established[0]["trigger"] == "tau", engine
            assert established[0]["t"] == pytest.approx(3.0, abs=0.3), engine
            sequences[engine] = dedup(
                [e["decision"] for e in tracer.events("controller.decision")]
            )
            assert result.download_time is not None, engine
        assert sequences["fluid"], "decision loop never ran"
        assert sequences["fluid"] == sequences["packet"]

    def test_good_wifi_neither_engine_establishes(self):
        for engine in ("fluid", "packet"):
            result, tracer = traced_run(engine, good_wifi=True)
            assert result.download_time is not None, engine
            assert not [
                e for e in tracer.events("delay.trigger")
                if e["action"] == "established"
            ], engine
            # No cellular subflow, no decision loop: §3.4 never ran.
            assert tracer.events("controller.decision") == [], engine
