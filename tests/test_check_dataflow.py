"""The REP2xx dataflow tier (repro.check.dataflow): unit algebra,
interprocedural inference on in-memory snippets, the golden fixture
trees, the incremental cache, and the self-check on the real tree."""

import textwrap
import time
from pathlib import Path

import pytest

from repro.check.cache import CheckCache, closure_digests, combine_hashes
from repro.check.dataflow import (
    DETERMINISTIC_PACKAGES,
    analyze_paths,
    analyze_sources,
)
from repro.check.dataflow.unitalg import (
    DIMENSIONLESS,
    SCALAR,
    additive_conflict,
    div_units,
    mul_units,
    unit_of_name,
)
from repro.check.lint import lint_source

FIXTURES = Path("tests/data/dataflow_fixtures")

#: A path inside a deterministic package (REP202 applies).
DET = "src/repro/sim/fixture.py"
#: A path outside the deterministic packages (it does not).
FREE = "src/repro/analysis/fixture.py"


def rules(report):
    return sorted(f.rule for f in report.findings)


def analyze(source, path=FREE):
    return analyze_sources({path: textwrap.dedent(source)})


def analyze_two(det_source, free_source):
    return analyze_sources(
        {
            DET: textwrap.dedent(det_source),
            FREE: textwrap.dedent(free_source),
        }
    )


# ---------------------------------------------------------------------------
# the unit algebra


def test_unit_of_name_suffixes():
    assert unit_of_name("wifi_mbps") == "mbps"
    assert unit_of_name("rate_bytes_per_sec") == "bytes_per_sec"
    assert unit_of_name("power_mw") == "mw"
    assert unit_of_name("energy_j") == "j"
    assert unit_of_name("joules_per_bit") == "j_per_bit"
    assert unit_of_name("count") is None


def test_unit_of_name_dimensionless_family():
    assert unit_of_name("loss_pct") == DIMENSIONLESS
    assert unit_of_name("energy_ratio") == DIMENSIONLESS
    assert unit_of_name("safety_factor") == DIMENSIONLESS


def test_mul_algebra_watts_and_milliwatts():
    assert mul_units("w", "s") == "j"
    assert mul_units("mw", "s") == "mj"  # the Figure-13 bug class
    assert mul_units("mbps", "s") == "mbit"
    assert mul_units(SCALAR, "j") == "j"
    assert mul_units("j", "mbps") is None  # outside the algebra: unknown


def test_div_algebra():
    assert div_units("bytes", "s") == "bytes_per_sec"
    assert div_units("j", "bytes") == "j_per_byte"
    assert div_units("j", "j") == DIMENSIONLESS
    assert div_units("j", SCALAR) == "j"


def test_additive_conflict():
    assert additive_conflict("s", "ms")
    assert additive_conflict("mbps", "bytes_per_sec")
    assert not additive_conflict("s", SCALAR)  # t + 1.0 is idiomatic
    assert not additive_conflict("s", None)
    assert additive_conflict("j", DIMENSIONLESS)


# ---------------------------------------------------------------------------
# REP201: unit inference through assignments, arithmetic, and calls


def test_rep201_mixed_addition():
    src = """
        def total(elapsed_s: float, gap_ms: float) -> float:
            return elapsed_s + gap_ms
    """
    assert rules(analyze(src)) == ["REP201"]


def test_rep201_product_into_wrong_name():
    src = """
        def moved(rate_mbps: float, dt_s: float) -> float:
            total_bytes = rate_mbps * dt_s
            return total_bytes
    """
    assert rules(analyze(src)) == ["REP201"]


def test_rep201_conversion_through_units_module_is_clean():
    src = """
        from repro.units import mbps_to_bytes_per_sec

        def moved(rate_mbps: float, dt_s: float) -> float:
            rate_bytes_per_sec = mbps_to_bytes_per_sec(rate_mbps)
            total_bytes = rate_bytes_per_sec * dt_s
            return total_bytes
    """
    assert rules(analyze(src)) == []


def test_rep201_wrong_argument_unit_at_call():
    src = """
        from repro.units import mbps_to_bytes_per_sec

        def convert(duration_s: float) -> float:
            return mbps_to_bytes_per_sec(duration_s)
    """
    assert rules(analyze(src)) == ["REP201"]


def test_rep201_interprocedural_return_unit():
    src = """
        def rate_mbps(raw: float) -> float:
            return raw

        def use(dt_s: float, raw: float) -> float:
            return rate_mbps(raw) + dt_s
    """
    assert rules(analyze(src)) == ["REP201"]


def test_rep201_physical_value_into_dimensionless_name():
    # `ratio`/`fraction` names satisfy REP105, but the dataflow tier
    # cross-checks the claim: a value with a propagated physical
    # dimension assigned to one is a finding.
    src = """
        def spread(wifi_j: float, cell_j: float) -> float:
            energy_ratio = wifi_j - cell_j
            return energy_ratio
    """
    assert rules(analyze(src)) == ["REP201"]
    assert not lint_source(textwrap.dedent(src), FREE)  # invisible to REP105


def test_rep201_true_ratio_is_clean():
    src = """
        def spread(wifi_j: float, cell_j: float) -> float:
            energy_ratio = wifi_j / cell_j
            return energy_ratio
    """
    assert rules(analyze(src)) == []


def test_rep201_branch_join_keeps_agreeing_unit():
    src = """
        def pick(fast_mbps: float, slow_mbps: float, fast: bool, dt_s: float) -> float:
            if fast:
                rate_mbps = fast_mbps
            else:
                rate_mbps = slow_mbps
            return rate_mbps + dt_s
    """
    assert rules(analyze(src)) == ["REP201"]


def test_rep201_noqa_suppresses():
    src = """
        def total(elapsed_s: float, gap_ms: float) -> float:
            return elapsed_s + gap_ms  # repro: noqa[REP201]
    """
    assert rules(analyze(src)) == []


# ---------------------------------------------------------------------------
# REP202: taint through helpers into the deterministic packages


def test_rep202_wallclock_through_helper():
    free = """
        import time

        def wall_stamp() -> float:
            return time.time()
    """
    det = """
        from repro.analysis.fixture import wall_stamp

        def schedule() -> float:
            return wall_stamp() + 1.0
    """
    report = analyze_two(det, free)
    assert rules(report) == ["REP202"]
    assert report.findings[0].path == DET


def test_rep202_unseeded_rng_through_helper():
    free = """
        import random

        def jitter() -> float:
            return random.random()
    """
    det = """
        from repro.analysis.fixture import jitter

        def perturb(dt: float) -> float:
            return dt * jitter()
    """
    assert rules(analyze_two(det, free)) == ["REP202"]


def test_rep202_seeded_rng_is_clean():
    free = """
        import random

        def jitter(rng: random.Random) -> float:
            return rng.random()
    """
    det = """
        from repro.analysis.fixture import jitter

        def perturb(dt: float, rng) -> float:
            return dt * jitter(rng)
    """
    assert rules(analyze_two(det, free)) == []


def test_rep202_sorted_launders_set_order():
    src = """
        def stable(items: set) -> list:
            return [x for x in sorted(items)]
    """
    assert rules(analyze(src, path=DET)) == []


def test_rep202_outside_det_packages_is_clean():
    # The same laundered wall-clock read is fine in analysis code.
    free = """
        import time

        def wall_stamp() -> float:
            return time.time()

        def elapsed() -> float:
            return wall_stamp() - 0.0
    """
    assert rules(analyze(free)) == []


def test_dataflow_det_packages_superset_of_lint():
    from repro.check.lint import DETERMINISTIC_PACKAGES as LINT_PACKAGES

    assert set(LINT_PACKAGES) <= set(DETERMINISTIC_PACKAGES)


# ---------------------------------------------------------------------------
# REP203: emit payloads REP104 cannot see


def test_rep203_incremental_payload_missing_field():
    src = """
        def report(tracer, t: float, total_j: float) -> None:
            payload = {"total_j": total_j}
            tracer.emit("energy.checkpoint", t, **payload)
    """
    assert rules(analyze(src)) == ["REP203"]


def test_rep203_helper_returned_payload():
    src = """
        def payload(total_j: float) -> dict:
            return {"total_j": total_j}

        def report(tracer, t: float, total_j: float) -> None:
            tracer.emit("energy.checkpoint", t, **payload(total_j))
    """
    assert rules(analyze(src)) == ["REP203"]


def test_rep203_complete_incremental_payload_is_clean():
    src = """
        def report(tracer, t: float, total_j: float, power_w: float) -> None:
            payload = {"total_j": total_j}
            payload["power_w"] = power_w
            tracer.emit("energy.checkpoint", t, **payload)
    """
    assert rules(analyze(src)) == []


def test_rep203_opaque_payload_stays_silent():
    # A dict the analysis cannot resolve must not guess.
    src = """
        def report(tracer, t: float, fields: dict) -> None:
            tracer.emit("energy.checkpoint", t, **fields)
    """
    assert rules(analyze(src)) == []


# ---------------------------------------------------------------------------
# golden fixtures: exact rule, file, line


FIXTURE_CASES = [
    (
        "rep201_violation",
        [("REP201", "repro/energy/drain.py", 6)],
    ),
    ("rep201_clean", []),
    (
        "rep202_violation",
        [("REP202", "repro/sim/driver.py", 9)],
    ),
    ("rep202_clean", []),
    (
        "rep203_violation",
        [("REP203", "repro/obs/report.py", 12)],
    ),
    ("rep203_clean", []),
]


@pytest.mark.parametrize("case,expected", FIXTURE_CASES)
def test_golden_fixture(case, expected):
    root = FIXTURES / case
    report = analyze_paths([root])
    got = [
        (f.rule, Path(f.path).relative_to(root).as_posix(), f.line)
        for f in report.sorted_findings()
    ]
    assert got == expected


def test_every_seeded_violation_is_flagged():
    # The acceptance bar: 100% of seeded fixture violations fire.
    for case, expected in FIXTURE_CASES:
        if not expected:
            continue
        report = analyze_paths([FIXTURES / case])
        assert report.findings, f"{case} produced no findings"


# ---------------------------------------------------------------------------
# the incremental cache


def test_cache_round_trip_and_invalidation(tmp_path):
    src_dir = tmp_path / "repro" / "energy"
    src_dir.mkdir(parents=True)
    mod = src_dir / "drain.py"
    mod.write_text(
        (FIXTURES / "rep201_violation/repro/energy/drain.py").read_text()
    )

    cache = CheckCache("dataflow", root=tmp_path / "cache")
    first = analyze_paths([tmp_path], rel_to=tmp_path, cache=cache)
    assert rules(first) == ["REP201"]
    assert cache.misses == 1 and cache.hits == 0

    second = analyze_paths([tmp_path], rel_to=tmp_path, cache=cache)
    assert rules(second) == ["REP201"]
    assert cache.hits == 1
    assert [f.fingerprint for f in first.findings] == [
        f.fingerprint for f in second.findings
    ]

    # Editing the file invalidates its entry: the fixed source must
    # re-analyze to zero findings, not replay the stale ones.
    mod.write_text(
        (FIXTURES / "rep201_clean/repro/energy/drain.py").read_text()
    )
    third = analyze_paths([tmp_path], rel_to=tmp_path, cache=cache)
    assert rules(third) == []


def test_cache_invalidated_by_import_closure(tmp_path):
    helper = tmp_path / "repro" / "analysis"
    sim = tmp_path / "repro" / "sim"
    helper.mkdir(parents=True)
    sim.mkdir(parents=True)
    fixtures = FIXTURES / "rep202_clean"
    (helper / "stamp.py").write_text(
        (fixtures / "repro/analysis/stamp.py").read_text()
    )
    (sim / "driver.py").write_text(
        (fixtures / "repro/sim/driver.py").read_text()
    )

    cache = CheckCache("dataflow", root=tmp_path / "cache")
    assert rules(analyze_paths([tmp_path], rel_to=tmp_path, cache=cache)) == []

    # Turning the *helper* tainted must invalidate the unchanged
    # consumer in repro.sim: its cache key folds in the helper's hash.
    (helper / "stamp.py").write_text(
        "import time\n\n\ndef logical_stamp(now: float) -> float:\n"
        "    return time.time()\n"
    )
    report = analyze_paths([tmp_path], rel_to=tmp_path, cache=cache)
    assert rules(report) == ["REP202"]
    assert "driver.py" in report.findings[0].path


def test_disabled_cache_never_touches_disk(tmp_path):
    cache = CheckCache("dataflow", root=tmp_path / "cache", enabled=False)
    analyze_paths([FIXTURES / "rep201_violation"], cache=cache)
    assert not (tmp_path / "cache").exists()


def test_closure_digest_handles_cycles():
    deps = {"a": ["b"], "b": ["a"], "c": []}
    hashes = {"a": "1", "b": "2", "c": "3"}
    keys = closure_digests(deps, hashes, "salt")
    assert keys["a"] != keys["c"]
    # A change to either member of the cycle shifts both keys.
    keys2 = closure_digests(deps, {"a": "1", "b": "9", "c": "3"}, "salt")
    assert keys2["a"] != keys["a"] and keys2["b"] != keys["b"]
    assert keys2["c"] == keys["c"]


def test_lint_cache_round_trip(tmp_path):
    from repro.check.lint import lint_paths

    mod = tmp_path / "repro" / "sim" / "mod.py"
    mod.parent.mkdir(parents=True)
    mod.write_text("import time\n\n\ndef stamp():\n    return time.time()\n")
    cache = CheckCache("lint", root=tmp_path / "cache")
    first = lint_paths([tmp_path], rel_to=tmp_path, cache=cache)
    assert rules(first) == ["REP101"]
    second = lint_paths([tmp_path], rel_to=tmp_path, cache=cache)
    assert rules(second) == ["REP101"]
    assert cache.hits == 1 and cache.misses == 1
    mod.write_text("def stamp(now: float) -> float:\n    return now\n")
    assert rules(lint_paths([tmp_path], rel_to=tmp_path, cache=cache)) == []


# ---------------------------------------------------------------------------
# the tree itself


def test_src_repro_is_dataflow_clean_and_fast():
    start = time.monotonic()
    report = analyze_paths(["src/repro"])
    elapsed = time.monotonic() - start
    assert report.checked > 100
    assert not report.findings, [f.format() for f in report.findings]
    # CI asserts < 10 s wall for the CLI run; leave headroom locally.
    assert elapsed < 10.0


def test_committed_dataflow_baseline_is_empty():
    import json

    entries = json.loads(Path(".repro-dataflow-baseline.json").read_text())
    assert entries == {}
