"""Tests for the Holt-Winters forecaster."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.forecast import HoltWintersForecaster
from repro.errors import ConfigurationError


def test_no_forecast_before_samples():
    assert HoltWintersForecaster().forecast() is None
    assert not HoltWintersForecaster().initialized


def test_first_sample_sets_level():
    f = HoltWintersForecaster()
    f.observe(5.0)
    assert f.forecast() == pytest.approx(5.0)
    assert f.trend == 0.0


def test_constant_series_forecasts_constant():
    f = HoltWintersForecaster()
    for _ in range(50):
        f.observe(7.0)
    assert f.forecast() == pytest.approx(7.0)
    assert f.trend == pytest.approx(0.0, abs=1e-9)


def test_linear_trend_is_learned():
    f = HoltWintersForecaster(alpha=0.5, beta=0.3)
    for i in range(100):
        f.observe(float(i))
    # One-step-ahead forecast of a perfect ramp is the next value.
    assert f.forecast(1) == pytest.approx(100.0, rel=0.05)


def test_multi_horizon_extrapolates_trend():
    f = HoltWintersForecaster()
    for i in range(100):
        f.observe(float(i))
    one = f.forecast(1)
    five = f.forecast(5)
    assert five > one
    assert five - one == pytest.approx(4 * f.trend)


def test_forecast_floored_at_zero():
    f = HoltWintersForecaster()
    # Steeply decreasing series drives level + trend negative.
    for v in [100.0, 50.0, 10.0, 1.0, 0.0, 0.0]:
        f.observe(v)
    assert f.forecast(10) == 0.0


def test_step_change_tracked():
    f = HoltWintersForecaster(alpha=0.5, beta=0.3)
    for _ in range(20):
        f.observe(1.0)
    for _ in range(20):
        f.observe(10.0)
    assert f.forecast() == pytest.approx(10.0, rel=0.1)


def test_reset():
    f = HoltWintersForecaster()
    f.observe(3.0)
    f.reset()
    assert not f.initialized
    assert f.n_samples == 0


def test_negative_sample_rejected():
    with pytest.raises(ConfigurationError):
        HoltWintersForecaster().observe(-1.0)


def test_invalid_params_rejected():
    with pytest.raises(ConfigurationError):
        HoltWintersForecaster(alpha=0.0)
    with pytest.raises(ConfigurationError):
        HoltWintersForecaster(beta=1.5)
    with pytest.raises(ConfigurationError):
        HoltWintersForecaster().forecast(0)


@given(st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=1, max_size=200))
def test_property_forecast_never_negative(samples):
    f = HoltWintersForecaster()
    for s in samples:
        f.observe(s)
        assert f.forecast(1) >= 0.0
        assert f.forecast(3) >= 0.0


@given(st.floats(min_value=0.0, max_value=1e3), st.integers(min_value=1, max_value=100))
def test_property_constant_input_is_fixed_point(value, n):
    f = HoltWintersForecaster()
    for _ in range(n):
        f.observe(value)
    assert f.forecast() == pytest.approx(value, abs=1e-6 + value * 1e-9)
