"""Tests for the throughput sampler and the bandwidth predictor."""

import pytest

from tests.helpers import make_path, rng
from repro.core.config import EMPTCPConfig
from repro.core.predictor import BandwidthPredictor
from repro.core.sampler import ThroughputSampler
from repro.errors import ProtocolError
from repro.mptcp.subflow import Subflow
from repro.net.interface import InterfaceKind
from repro.sim.engine import Simulator
from repro.tcp.connection import FiniteSource
from repro.units import mbps_to_bytes_per_sec


def established_subflow(sim, kind=InterfaceKind.WIFI, mbps=8.0, size=1e8):
    path = make_path(sim, kind=kind, mbps=mbps, rtt=0.05)
    sf = Subflow(sim, path, FiniteSource(size), rng=rng())
    sf.establish()
    sim.run(until=0.1)
    assert sf.established
    return sf


class TestSampler:
    def test_delta_derived_from_handshake_rtt(self):
        sim = Simulator()
        sf = established_subflow(sim)
        config = EMPTCPConfig(delta_rtt_multiplier=2.0, delta_min=0.01, delta_max=1.0)
        sampler = ThroughputSampler(sim, sf, config, lambda k, r: None)
        assert sampler.delta == pytest.approx(2.0 * 0.05)

    def test_delta_clamped(self):
        sim = Simulator()
        sf = established_subflow(sim)
        config = EMPTCPConfig(delta_min=0.5, delta_max=1.0)
        sampler = ThroughputSampler(sim, sf, config, lambda k, r: None)
        assert sampler.delta == 0.5

    def test_unestablished_subflow_rejected(self):
        sim = Simulator()
        path = make_path(sim)
        sf = Subflow(sim, path, FiniteSource(1e6), rng=rng())
        with pytest.raises(ProtocolError):
            ThroughputSampler(sim, sf, EMPTCPConfig(), lambda k, r: None)

    def test_samples_reflect_transfer_rate(self):
        sim = Simulator()
        sf = established_subflow(sim, mbps=8.0)
        samples = []
        sampler = ThroughputSampler(
            sim, sf, EMPTCPConfig(), lambda _k, r: samples.append(r)
        )
        sampler.start()
        sim.run(until=10.0)
        assert samples
        # Steady-state samples approach 8 Mbps.
        steady = samples[len(samples) // 2 :]
        mean_rate = sum(steady) / len(steady)
        assert mean_rate == pytest.approx(mbps_to_bytes_per_sec(8.0), rel=0.2)

    def test_suspended_subflow_not_sampled(self):
        sim = Simulator()
        sf = established_subflow(sim)
        samples = []
        sampler = ThroughputSampler(
            sim, sf, EMPTCPConfig(), lambda _k, r: samples.append(r)
        )
        sampler.start()
        sim.run(until=2.0)
        n_before = len(samples)
        sf.suspend()
        sim.run(until=4.0)
        assert len(samples) == n_before

    def test_no_zero_smear_after_resume(self):
        """The first sample after resumption must not average the idle
        gap into the rate."""
        sim = Simulator()
        sf = established_subflow(sim, mbps=8.0)
        samples = []
        sampler = ThroughputSampler(
            sim, sf, EMPTCPConfig(), lambda _k, r: samples.append(r)
        )
        sampler.start()
        sim.run(until=2.0)
        sf.suspend()
        sim.run(until=10.0)
        sf.resume()
        samples.clear()
        sim.run(until=12.0)
        assert samples
        assert max(samples) < mbps_to_bytes_per_sec(8.0) * 1.5

    def test_stop(self):
        sim = Simulator()
        sf = established_subflow(sim)
        samples = []
        sampler = ThroughputSampler(
            sim, sf, EMPTCPConfig(), lambda _k, r: samples.append(r)
        )
        sampler.start()
        sim.run(until=1.0)
        sampler.stop()
        n = len(samples)
        sim.run(until=5.0)
        assert len(samples) == n


class TestPredictor:
    def test_never_activated_interface_uses_initial_bandwidth(self):
        sim = Simulator()
        predictor = BandwidthPredictor(sim, EMPTCPConfig(initial_bandwidth_mbps=5.0))
        assert predictor.predict_mbps(InterfaceKind.LTE) == 5.0
        assert not predictor.has_history(InterfaceKind.LTE)

    def test_observation_overrides_initial(self):
        sim = Simulator()
        predictor = BandwidthPredictor(sim)
        predictor.observe(InterfaceKind.WIFI, mbps_to_bytes_per_sec(2.0))
        assert predictor.predict_mbps(InterfaceKind.WIFI) == pytest.approx(2.0)
        assert predictor.has_history(InterfaceKind.WIFI)

    def test_interfaces_tracked_independently(self):
        sim = Simulator()
        predictor = BandwidthPredictor(sim)
        predictor.observe(InterfaceKind.WIFI, mbps_to_bytes_per_sec(2.0))
        predictor.observe(InterfaceKind.LTE, mbps_to_bytes_per_sec(9.0))
        assert predictor.predict_mbps(InterfaceKind.WIFI) == pytest.approx(2.0)
        assert predictor.predict_mbps(InterfaceKind.LTE) == pytest.approx(9.0)

    def test_deactivated_interface_keeps_old_prediction(self):
        """§3.2: a deactivated interface is predicted from old samples."""
        sim = Simulator()
        predictor = BandwidthPredictor(sim)
        for _ in range(10):
            predictor.observe(InterfaceKind.LTE, mbps_to_bytes_per_sec(9.0))
        # No further samples (suspended); prediction should persist.
        assert predictor.predict_mbps(InterfaceKind.LTE) == pytest.approx(9.0)

    def test_attach_subflow_feeds_predictions(self):
        sim = Simulator()
        predictor = BandwidthPredictor(sim)
        sf = established_subflow(sim, mbps=8.0)
        predictor.attach_subflow(sf)
        sim.run(until=10.0)
        assert predictor.sample_count(InterfaceKind.WIFI) > 5
        assert predictor.predict_mbps(InterfaceKind.WIFI) == pytest.approx(8.0, rel=0.3)

    def test_predict_bytes_per_sec(self):
        sim = Simulator()
        predictor = BandwidthPredictor(sim)
        predictor.observe(InterfaceKind.WIFI, 1000.0)
        assert predictor.predict_bytes_per_sec(InterfaceKind.WIFI) == pytest.approx(
            1000.0
        )

    def test_stop_halts_sampling(self):
        sim = Simulator()
        predictor = BandwidthPredictor(sim)
        sf = established_subflow(sim, mbps=8.0)
        predictor.attach_subflow(sf)
        sim.run(until=2.0)
        predictor.stop()
        n = predictor.sample_count(InterfaceKind.WIFI)
        sim.run(until=5.0)
        assert predictor.sample_count(InterfaceKind.WIFI) == n
