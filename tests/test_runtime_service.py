"""The experiment service: sweep planner DAG, batch streaming, dedup
across concurrent batches, and the stdlib HTTP/JSONL front-end
(repro.runtime.service).
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import ConfigurationError
from repro.runtime import RunSpec
from repro.runtime.service import ExperimentService, plan_sweep, serve_http
from repro.units import mib

pytestmark = pytest.mark.runtime

SMALL = mib(1)


def small_spec(seed=0, **overrides):
    kwargs = {"good_wifi": True, "download_bytes": SMALL, "lte_mbps": 10.0}
    kwargs.update(overrides)
    return RunSpec(protocol="emptcp", builder="static", kwargs=kwargs, seed=seed)


def fetch(method, url, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=60) as resp:
        return json.loads(resp.read().decode())


def stream(url):
    events = []
    with urllib.request.urlopen(url, timeout=120) as resp:
        for raw in resp:
            raw = raw.strip()
            if raw:
                events.append(json.loads(raw.decode()))
    return events


@pytest.fixture
def service(tmp_path):
    with ExperimentService(tmp_path / "cache", jobs=1) as svc:
        yield svc


class TestSweepPlanner:
    def test_plan_shares_one_warmup_per_seed(self):
        plan = plan_sweep({
            "builder": "static",
            "parameter": "tau_seconds",
            "values": [3.0, 6.0],
            "kwargs": {"good_wifi": True, "download_bytes": SMALL},
            "runs": 2,
        })
        assert plan.warmups == 2 and plan.variants == 4
        warm_hashes = {
            job.spec.content_hash()
            for job in plan.jobs
            if job.role == "warmup"
        }
        assert len(warm_hashes) == 2  # one distinct warm-up per seed
        for job in plan.jobs:
            if job.role == "variant":
                assert len(job.after) == 1
                assert set(job.after) <= warm_hashes
                assert job.spec.config["tau_seconds"] in (3.0, 6.0)

    def test_missing_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_sweep({"builder": "static"})


class TestServiceInProcess:
    def test_within_batch_dedup_executes_once(self, service):
        spec = small_spec().to_dict()
        summary = service.submit_batch([spec, spec, spec])
        assert summary["submitted"] == 3 and summary["fresh"] == 1
        tail = list(service.stream_batch(summary["batch"]))[-1]
        assert tail["event"] == "summary" and tail["done"]
        assert tail["outcomes"] == {"executed": 1, "deduped": 2}
        assert service.queue.stats.submitted == 1

    def test_concurrent_batches_execute_shared_spec_once(self, service):
        """ISSUE acceptance: the same spec hash submitted from
        concurrent batches executes exactly once."""
        spec = small_spec(seed=9).to_dict()
        summaries = []
        lock = threading.Lock()

        def submit():
            summary = service.submit_batch([spec])
            with lock:
                summaries.append(summary)

        threads = [threading.Thread(target=submit) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        tails = [
            list(service.stream_batch(s["batch"]))[-1] for s in summaries
        ]
        executed = sum(t["outcomes"].get("executed", 0) for t in tails)
        settled = sum(sum(t["outcomes"].values()) for t in tails)
        assert executed == 1
        assert settled == 4  # every batch's waiter observed the outcome
        assert service.queue.stats.submitted == 1
        assert service.queue.stats.deduped == 3


class TestHTTPService:
    def test_submit_stream_status_sweep_shutdown(self, tmp_path):
        with ExperimentService(tmp_path / "cache", jobs=1) as svc:
            server = serve_http(svc)
            base = f"http://127.0.0.1:{server.server_address[1]}"
            specs = [small_spec(seed=s).to_dict() for s in range(2)]

            summary = fetch("POST", f"{base}/v1/submit", {"specs": specs})
            assert summary["submitted"] == 2 and summary["fresh"] == 2
            events = stream(f"{base}/v1/stream/{summary['batch']}")
            assert [e["event"] for e in events] == ["job", "job", "summary"]
            assert events[-1]["done"]
            assert all(e["result"] for e in events[:-1])

            # Resubmitting the same batch must be all cache/dedup hits.
            again = fetch("POST", f"{base}/v1/submit", {"specs": specs})
            tail = stream(f"{base}/v1/stream/{again['batch']}")[-1]
            assert tail["outcomes"].get("executed", 0) == 0
            assert sum(tail["outcomes"].values()) == 2

            status = fetch("GET", f"{base}/v1/status")
            assert status["open_jobs"] == 0
            assert status["queue"]["submitted"] == 2
            assert status["cache"]["entries"] == 2

            # A sweep lowers into a DAG: shared warm-up plus variants.
            sweep = fetch("POST", f"{base}/v1/sweep", {
                "builder": "static",
                "parameter": "tau_seconds",
                "values": [3.0, 6.0],
                "kwargs": {"good_wifi": True, "download_bytes": SMALL},
            })
            assert sweep["plan"] == {"warmups": 1, "variants": 2}
            tail = stream(f"{base}/v1/stream/{sweep['batch']}")[-1]
            assert tail["done"] and sum(tail["outcomes"].values()) == 3

            # Verification gates submission: bad parameter -> 400.
            with pytest.raises(urllib.error.HTTPError) as err:
                fetch("POST", f"{base}/v1/sweep", {
                    "builder": "static",
                    "parameter": "not_a_config_field",
                    "values": [1.0],
                })
            assert err.value.code == 400
            with pytest.raises(urllib.error.HTTPError) as err:
                fetch("GET", f"{base}/v1/no-such-route")
            assert err.value.code == 404

            fetch("POST", f"{base}/v1/shutdown")
            server.serve_thread.join(timeout=30)
            assert not server.serve_thread.is_alive()

    def test_journal_lands_under_the_cache_dir(self, tmp_path):
        with ExperimentService(tmp_path / "cache", jobs=1) as svc:
            svc.submit_batch([small_spec().to_dict()])
            batch = svc.status()["batches"]
            assert batch  # bookkeeping exists
        journal = tmp_path / "cache" / "queue" / "journal.jsonl"
        assert journal.exists()
        events = [json.loads(line) for line in journal.read_text().splitlines()]
        assert any(e["event"] == "submit" for e in events)
        assert any(e["event"] == "done" for e in events)


class TestObservabilityPlane:
    """The live metrics plane and trace propagation across the service
    boundary: /v1/metrics Prometheus output, /v1/status telemetry, and
    batch-salted lifecycle traces reassembling into one tree."""

    def _scrape(self, base):
        with urllib.request.urlopen(f"{base}/v1/metrics", timeout=60) as resp:
            assert resp.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4")
            return resp.read().decode()

    def test_metrics_series_change_across_a_batch(self, tmp_path):
        from repro.obs.prom import parse_prometheus

        with ExperimentService(tmp_path / "cache", jobs=1) as svc:
            server = serve_http(svc)
            base = f"http://127.0.0.1:{server.server_address[1]}"
            cold = parse_prometheus(self._scrape(base))
            # Pre-registered series exist before any work arrives.
            for name in ("repro_queue_submitted_total",
                         "repro_scheduler_jobs_done_total",
                         "repro_scheduler_retries_total",
                         "repro_scheduler_cache_hits_total",
                         "repro_queue_open_jobs",
                         "repro_store_entries"):
                assert name in cold, f"missing series {name}"
            assert cold["repro_queue_submitted_total"][0][1] == 0.0

            summary = fetch("POST", f"{base}/v1/submit",
                            {"specs": [small_spec(seed=s).to_dict()
                                       for s in range(2)]})
            stream(f"{base}/v1/stream/{summary['batch']}")
            warm = parse_prometheus(self._scrape(base))
            assert warm["repro_queue_submitted_total"][0][1] == 2.0
            assert warm["repro_scheduler_jobs_done_total"][0][1] == 2.0
            assert warm["repro_batches_total"][0][1] == 1.0
            assert warm["repro_spans_recorded_total"][0][1] > 0.0
            assert warm["repro_store_entries"][0][1] == 2.0

            # A same-process resubmission coalesces in the queue, not
            # the store: the dedup counter moves, cache hits don't.
            again = fetch("POST", f"{base}/v1/submit",
                          {"specs": [small_spec(seed=s).to_dict()
                                     for s in range(2)]})
            stream(f"{base}/v1/stream/{again['batch']}")
            final = parse_prometheus(self._scrape(base))
            assert final["repro_queue_deduped_total"][0][1] == 2.0
            assert final["repro_batches_total"][0][1] == 2.0
            fetch("POST", f"{base}/v1/shutdown")
            server.serve_thread.join(timeout=30)

    def test_cache_hits_count_on_a_fresh_queue(self, tmp_path):
        from repro.obs.prom import parse_prometheus

        specs = [small_spec(seed=s).to_dict() for s in range(2)]
        with ExperimentService(tmp_path / "cache", jobs=1) as svc:
            list(svc.stream_batch(svc.submit_batch(specs)["batch"]))
        # A new service over the warm store (fresh queue, no journal
        # replay): the scheduler satisfies every job from the cache.
        with ExperimentService(tmp_path / "cache", jobs=1,
                               journal=False) as svc:
            server = serve_http(svc)
            base = f"http://127.0.0.1:{server.server_address[1]}"
            summary = fetch("POST", f"{base}/v1/submit", {"specs": specs})
            tail = stream(f"{base}/v1/stream/{summary['batch']}")[-1]
            assert tail["outcomes"] == {"cached": 2}
            doc = parse_prometheus(self._scrape(base))
            assert doc["repro_scheduler_cache_hits_total"][0][1] == 2.0
            assert doc["repro_cache_hit_ratio"][0][1] > 0.0
            fetch("POST", f"{base}/v1/shutdown")
            server.serve_thread.join(timeout=30)

    def test_status_surfaces_telemetry_and_trace_ids(self, tmp_path):
        with ExperimentService(tmp_path / "cache", jobs=1) as svc:
            summary = svc.submit_batch([small_spec().to_dict()])
            list(svc.stream_batch(summary["batch"]))
            status = svc.status()
            assert status["spans_recorded"] > 0
            assert "inflight" in status and "scheduler" in status
            assert status["scheduler"]["scheduler.jobs_done"] == 1
            # One durable cache-telemetry snapshot per finished batch.
            assert status["cache_telemetry"]["snapshots"] == 1
            assert status["cache_telemetry"]["last"]["appends"] == 1
            batch_doc = status["batches"][summary["batch"]]
            assert batch_doc["trace_id"] == summary["trace_id"]
            assert len(batch_doc["trace_id"]) == 16

    def test_batch_salting_gives_fresh_traces_per_submission(self, tmp_path):
        from repro.check.disttrace import check_trace_topology
        from repro.obs.tree import load_trace_forest

        with ExperimentService(tmp_path / "cache", jobs=1) as svc:
            first = svc.submit_batch([small_spec().to_dict()])
            list(svc.stream_batch(first["batch"]))
            second = svc.submit_batch([small_spec().to_dict()])
            list(svc.stream_batch(second["batch"]))
            assert first["trace_id"] != second["trace_id"]
        obs_dir = tmp_path / "cache" / "obs"
        trees = {t.trace_id: t for t in load_trace_forest(obs_dir)}
        assert set(trees) == {first["trace_id"], second["trace_id"]}
        for tree in trees.values():
            assert len(tree.roots) == 1 and not tree.orphans
            assert tree.roots[0].span.name == "batch"
        report = check_trace_topology(obs_dir)
        assert report.ok, report.format()
