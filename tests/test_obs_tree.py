"""Cross-process span-tree reassembly (repro.obs.tree): lifecycle
spans, stamped run traces, and profiler docs from one obs directory
merge into a single batch tree.
"""

import json

import pytest

from repro.obs import dist
from repro.obs.tree import format_trace_forest, load_trace_forest

pytestmark = pytest.mark.runtime


def _write_batch(obs_dir, trace_id="t1", with_exports=True):
    """One 2-job batch: root -> job -> (queue.wait, job.exec#1)."""
    recorder = dist.SpanRecorder(sink_dir=obs_dir)
    root = dist.span_id_for(trace_id, "batch")
    for index, spec_hash in enumerate(["aaa111", "bbb222"]):
        job = dist.span_id_for(trace_id, "job", spec_hash)
        wait = dist.span_id_for(trace_id, "queue.wait", spec_hash)
        execute = dist.span_id_for(trace_id, "job.exec", spec_hash, 1)
        t0 = 1.0 + index
        recorder.record(dist.LifecycleSpan(
            trace_id, wait, job, "queue.wait", t0, t0 + 0.1,
            attrs={"hash": spec_hash}))
        recorder.record(dist.LifecycleSpan(
            trace_id, execute, job, "job.exec", t0 + 0.1, t0 + 0.9,
            attrs={"hash": spec_hash, "attempt": 1, "worker": "pid-1",
                   "shard": "pool-0"}))
        recorder.record(dist.LifecycleSpan(
            trace_id, job, root, "job", t0, t0 + 0.9,
            attrs={"hash": spec_hash, "label": f"run-{index}",
                   "outcome": "executed"}))
        if with_exports:
            stamp = {"trace_id": trace_id, "span_id": execute}
            with open(obs_dir / f"{spec_hash}.trace.jsonl", "w") as fh:
                for t in (0.0, 1.0, 2.0):
                    fh.write(json.dumps(
                        {"type": "tick", "t": t, **stamp}) + "\n")
            (obs_dir / f"{spec_hash}.spans.json").write_text(json.dumps({
                **stamp,
                "spans": [
                    {"path": "engine/step", "wall_s": 0.7},
                    {"path": "engine/export", "wall_s": 0.1},
                ],
            }))
    recorder.record(dist.LifecycleSpan(
        trace_id, root, "", "batch", 1.0, 3.0,
        attrs={"batch": "b1", "jobs": 2}))
    return trace_id


class TestLoadForest:
    def test_reassembles_one_root_tree(self, tmp_path):
        _write_batch(tmp_path)
        trees = load_trace_forest(tmp_path)
        assert len(trees) == 1
        tree = trees[0]
        assert tree.span_count == 7 and not tree.orphans
        assert [n.span.name for n in tree.roots] == ["batch"]
        jobs = tree.roots[0].children
        assert [n.span.name for n in jobs] == ["job", "job"]
        # Children are start-time ordered: wait before exec.
        assert [n.span.name for n in jobs[0].children] == [
            "queue.wait", "job.exec"]

    def test_run_exports_attach_to_their_exec_span(self, tmp_path):
        _write_batch(tmp_path)
        tree = load_trace_forest(tmp_path)[0]
        execute = tree.roots[0].children[0].children[1]
        note = execute.annotation
        assert note is not None
        assert note.events == 3
        assert note.profile_top[0] == ("engine/step", 0.7)

    def test_trace_id_prefix_filter(self, tmp_path):
        _write_batch(tmp_path, trace_id="aa11", with_exports=False)
        _write_batch(tmp_path, trace_id="bb22", with_exports=False)
        assert len(load_trace_forest(tmp_path)) == 2
        only = load_trace_forest(tmp_path, trace_id="bb")
        assert [t.trace_id for t in only] == ["bb22"]

    def test_orphans_are_collected_not_dropped(self, tmp_path):
        recorder = dist.SpanRecorder(sink_dir=tmp_path)
        recorder.record(dist.LifecycleSpan("t1", "root", "", "batch", 0, 1))
        recorder.record(dist.LifecycleSpan(
            "t1", "lost", "no-such-parent", "job", 0, 1))
        tree = load_trace_forest(tmp_path)[0]
        assert [n.span.span_id for n in tree.orphans] == ["lost"]


class TestFormat:
    def test_tree_rendering(self, tmp_path):
        _write_batch(tmp_path)
        text = format_trace_forest(load_trace_forest(tmp_path))
        assert text.startswith("trace t1 · 7 spans")
        assert "`-- batch 2.000s b1 jobs=2" in text
        assert "job.exec#1" in text and "worker=pid-1" in text
        assert "· 3 events" in text
        assert "· hot: engine/step 0.700s" in text

    def test_empty_directory(self, tmp_path):
        assert "no lifecycle traces" in format_trace_forest(
            load_trace_forest(tmp_path))
