"""Tests for the video-streaming workload and experiment."""

import pytest

from repro.errors import WorkloadError
from repro.experiments.streaming import run_streaming
from repro.sim.engine import Simulator
from repro.workloads.streaming import VideoSession
from repro.workloads.web import ObjectQueueSource


class InstantNetwork:
    """Delivers pushed bytes after a fixed delay — a fake connection."""

    def __init__(self, sim, source, session_ref, delay=0.5):
        self.sim = sim
        self.source = source
        self.session_ref = session_ref
        self.delay = delay

    def notify(self):
        pending = self.source.remaining
        if pending > 0:
            taken = self.source.take(pending)
            self.sim.schedule(self.delay, self._deliver, taken)

    def _deliver(self, nbytes):
        self.session_ref[0].on_delivery(nbytes)


def make_session(sim, delay=0.5, **kwargs):
    source = ObjectQueueSource()
    holder = [None]
    net = InstantNetwork(sim, source, holder, delay=delay)
    session = VideoSession(sim, source, notify_data=net.notify, **kwargs)
    holder[0] = session
    return session


class TestVideoSession:
    def test_plays_through_with_fast_network(self):
        sim = Simulator()
        session = make_session(sim, delay=0.2, media_seconds=40.0)
        session.start()
        sim.run(until=120.0)
        assert session.done
        assert session.rebuffer_events == 0
        assert session.media_played == pytest.approx(40.0, abs=0.5)
        assert session.started_at is not None

    def test_startup_requires_buffer(self):
        sim = Simulator()
        session = make_session(sim, delay=1.0, media_seconds=40.0)
        session.start()
        sim.run(until=0.9)
        assert not session.playing
        sim.run(until=5.0)
        assert session.playing

    def test_slow_network_rebuffers(self):
        sim = Simulator()
        # Each 4 s chunk takes 6 s to arrive: the player must stall.
        session = make_session(sim, delay=6.0, media_seconds=60.0)
        session.start()
        sim.run(until=300.0)
        assert session.rebuffer_events > 0
        assert session.rebuffer_time > 0

    def test_fetch_pauses_at_target_buffer(self):
        sim = Simulator()
        session = make_session(sim, delay=0.05, media_seconds=400.0)
        session.start()
        sim.run(until=30.0)
        # Buffer must hover near the target, not grow unboundedly.
        assert session.buffer_seconds <= session.target_buffer + session.chunk_seconds

    def test_invalid_params_rejected(self):
        sim = Simulator()
        source = ObjectQueueSource()
        with pytest.raises(WorkloadError):
            VideoSession(sim, source, lambda: None, media_seconds=0.0)
        with pytest.raises(WorkloadError):
            VideoSession(
                sim, source, lambda: None, startup_buffer=20.0, target_buffer=10.0
            )


class TestStreamingExperiment:
    def test_good_wifi_stream_never_stalls(self):
        for protocol in ("mptcp", "emptcp", "tcp-wifi"):
            result = run_streaming(
                protocol, media_seconds=40.0, seed=0, steady_wifi=10.0
            )
            assert result.finished, protocol
            assert result.rebuffer_events == 0, protocol

    def test_emptcp_stays_on_wifi_when_it_sustains_the_bitrate(self):
        emptcp = run_streaming("emptcp", media_seconds=40.0, seed=0, steady_wifi=10.0)
        tcp = run_streaming("tcp-wifi", media_seconds=40.0, seed=0, steady_wifi=10.0)
        assert emptcp.energy_j == pytest.approx(tcp.energy_j, rel=0.1)

    def test_mptcp_pays_tail_for_bursty_chunks(self):
        mptcp = run_streaming("mptcp", media_seconds=40.0, seed=0, steady_wifi=10.0)
        emptcp = run_streaming("emptcp", media_seconds=40.0, seed=0, steady_wifi=10.0)
        assert mptcp.energy_j > 1.3 * emptcp.energy_j

    def test_below_bitrate_wifi_forces_lte_help(self):
        """WiFi pinned below the media bitrate: single-path streaming
        stalls; eMPTCP brings LTE up and stalls less."""
        tcp = run_streaming("tcp-wifi", media_seconds=60.0, seed=0, steady_wifi=1.2)
        emptcp = run_streaming("emptcp", media_seconds=60.0, seed=0, steady_wifi=1.2)
        assert tcp.rebuffer_time > 0
        assert emptcp.rebuffer_time < tcp.rebuffer_time
