"""Tests for the packet-level transport engine."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.net.bandwidth import ConstantCapacity, PiecewiseTraceCapacity
from repro.net.interface import InterfaceKind
from repro.packet.link import PacketLink, Segment
from repro.packet.mptcp import DsnReassembly, PacketMptcpConnection, single_path_connection
from repro.packet.tcp import MSS, SubflowReceiver
from repro.check.packet import PathSpec, packet_mptcp_time, packet_single_path_time
from repro.sim.engine import Simulator
from repro.tcp.connection import FiniteSource
from repro.units import mbps_to_bytes_per_sec, mib


def seg(seq, size=MSS, dsn=None, t=0.0):
    return Segment(seq=seq, size=size, dsn=seq if dsn is None else dsn, sent_at=t)


class TestPacketLink:
    def _link(self, sim, mbps=8.0, **kwargs):
        return PacketLink(
            sim,
            ConstantCapacity(mbps_to_bytes_per_sec(mbps)),
            one_way_delay=0.01,
            rng=random.Random(0),
            **kwargs,
        )

    def test_delivery_after_service_and_propagation(self):
        sim = Simulator()
        link = self._link(sim, mbps=8.0)
        link.attach(sim)
        got = []
        link.send(seg(0.0, size=1000.0), lambda s: got.append(sim.now))
        sim.run()
        assert got == [pytest.approx(1000.0 / 1e6 + 0.01)]

    def test_fifo_serialisation(self):
        sim = Simulator()
        link = self._link(sim)
        link.attach(sim)
        times = []
        link.send(seg(0.0), lambda s: times.append(sim.now))
        link.send(seg(MSS), lambda s: times.append(sim.now))
        sim.run()
        assert times[1] - times[0] == pytest.approx(MSS / 1e6)

    def test_drop_tail_overflow(self):
        sim = Simulator()
        link = self._link(sim, buffer_bytes=3 * MSS)
        link.attach(sim)
        accepted = [link.send(seg(i * MSS), lambda s: None) for i in range(5)]
        assert accepted == [True, True, True, False, False]
        assert link.dropped_overflow == 2

    def test_random_loss(self):
        sim = Simulator()
        link = self._link(sim, loss_rate=0.5, buffer_bytes=1e9)
        link.attach(sim)
        results = [link.send(seg(i * MSS), lambda s: None) for i in range(200)]
        dropped = results.count(False)
        assert 50 < dropped < 150
        assert link.dropped_random == dropped

    def test_dead_link_drops(self):
        sim = Simulator()
        link = PacketLink(
            sim, ConstantCapacity(0.0), one_way_delay=0.01, rng=random.Random(0)
        )
        link.attach(sim)
        assert not link.send(seg(0.0), lambda s: None)

    def test_invalid_params_rejected(self):
        sim = Simulator()
        cap = ConstantCapacity(1.0)
        with pytest.raises(ConfigurationError):
            PacketLink(sim, cap, one_way_delay=-1.0)
        with pytest.raises(ConfigurationError):
            PacketLink(sim, cap, one_way_delay=0.1, buffer_bytes=0.0)
        with pytest.raises(ConfigurationError):
            PacketLink(sim, cap, one_way_delay=0.1, loss_rate=1.0)


class TestSubflowReceiver:
    def test_in_order_advances_and_delivers(self):
        delivered = []
        rx = SubflowReceiver(lambda dsn, size: delivered.append((dsn, size)))
        ack, sacks = rx.on_segment(seg(0.0))
        assert ack == MSS
        assert sacks == ()
        assert delivered == [(0.0, MSS)]

    def test_gap_buffers_and_sacks(self):
        rx = SubflowReceiver(lambda d, s: None)
        ack, sacks = rx.on_segment(seg(2 * MSS))
        assert ack == 0.0
        assert sacks == ((2 * MSS, 3 * MSS),)

    def test_hole_fill_releases_buffered(self):
        delivered = []
        rx = SubflowReceiver(lambda d, s: delivered.append(d))
        rx.on_segment(seg(MSS))
        rx.on_segment(seg(2 * MSS))
        ack, sacks = rx.on_segment(seg(0.0))
        assert ack == 3 * MSS
        assert sacks == ()
        # Delivery happens in subflow-sequence order once the hole fills.
        assert delivered == [0.0, MSS, 2 * MSS]

    def test_duplicates_counted(self):
        rx = SubflowReceiver(lambda d, s: None)
        rx.on_segment(seg(0.0))
        rx.on_segment(seg(0.0))
        assert rx.duplicate_segments == 1

    def test_sack_blocks_merge_contiguous(self):
        rx = SubflowReceiver(lambda d, s: None)
        rx.on_segment(seg(2 * MSS))
        rx.on_segment(seg(3 * MSS))
        rx.on_segment(seg(6 * MSS))
        _ack, sacks = rx.on_segment(seg(7 * MSS))
        assert set(sacks) == {(2 * MSS, 4 * MSS), (6 * MSS, 8 * MSS)}

    def test_most_recent_block_first(self):
        rx = SubflowReceiver(lambda d, s: None)
        rx.on_segment(seg(2 * MSS))
        _ack, sacks = rx.on_segment(seg(6 * MSS))
        assert sacks[0] == (6 * MSS, 7 * MSS)


class TestDsnReassembly:
    def test_in_order(self):
        r = DsnReassembly()
        assert r.on_data(0.0, 100.0) == 100.0
        assert r.dsn_next == 100.0

    def test_out_of_order_buffers(self):
        r = DsnReassembly()
        assert r.on_data(100.0, 50.0) == 0.0
        assert r.buffered_bytes == 50.0
        assert r.on_data(0.0, 100.0) == 150.0
        assert r.buffered_bytes == 0.0

    def test_duplicates_ignored(self):
        r = DsnReassembly()
        r.on_data(0.0, 100.0)
        assert r.on_data(0.0, 100.0) == 0.0


class TestEndToEnd:
    def test_single_path_completes_near_ideal(self):
        for mbps, size in [(8.0, mib(4)), (2.0, mib(2))]:
            t = packet_single_path_time(PathSpec(mbps, 0.05), size, seed=1)
            ideal = size / mbps_to_bytes_per_sec(mbps)
            assert ideal <= t < 1.2 * ideal, (mbps, size)

    def test_loss_free_run_has_no_timeouts(self):
        sim = Simulator()
        link = PacketLink(
            sim,
            ConstantCapacity(mbps_to_bytes_per_sec(8.0)),
            one_way_delay=0.02,
            rng=random.Random(1),
        )
        conn = single_path_connection(sim, link, FiniteSource(mib(4)))
        conn.open()
        sim.run(until=120.0, max_events=20_000_000)
        assert conn.completed_at is not None
        assert conn.subflows[0].timeouts == 0

    def test_all_bytes_delivered_exactly_once(self):
        sim = Simulator()
        link = PacketLink(
            sim,
            ConstantCapacity(mbps_to_bytes_per_sec(4.0)),
            one_way_delay=0.03,
            loss_rate=0.01,
            rng=random.Random(3),
        )
        conn = single_path_connection(sim, link, FiniteSource(mib(2)))
        conn.open()
        sim.run(until=300.0, max_events=20_000_000)
        assert conn.completed_at is not None
        assert conn.bytes_received == pytest.approx(mib(2))

    def test_recovers_through_an_outage(self):
        sim = Simulator()
        cap = PiecewiseTraceCapacity(
            [
                (0.0, mbps_to_bytes_per_sec(4.0)),
                (2.0, 0.0),
                (5.0, mbps_to_bytes_per_sec(4.0)),
            ]
        )
        link = PacketLink(sim, cap, one_way_delay=0.02, rng=random.Random(1))
        conn = single_path_connection(sim, link, FiniteSource(mib(2)))
        conn.open()
        sim.run(until=300.0, max_events=20_000_000)
        assert conn.completed_at is not None
        assert conn.subflows[0].timeouts >= 1

    def test_mptcp_aggregates_capacity(self):
        specs = [
            PathSpec(8.0, 0.04),
            PathSpec(6.0, 0.07, kind=InterfaceKind.LTE),
        ]
        t, split = packet_mptcp_time(specs, mib(8), seed=2)
        ideal = mib(8) / mbps_to_bytes_per_sec(14.0)
        alone = mib(8) / mbps_to_bytes_per_sec(8.0)
        assert t < 0.75 * alone  # clearly better than the best single path
        assert t < 1.3 * ideal
        # Split roughly follows capacity share (8:6).
        assert split[0] > split[1] > 0

    def test_small_receive_buffer_starves_secondary(self):
        specs = [
            PathSpec(8.0, 0.04),
            PathSpec(6.0, 0.07, kind=InterfaceKind.LTE),
        ]
        _t, split = packet_mptcp_time(specs, mib(8), seed=2, rcv_buffer=96_000.0)
        assert split[1] < 0.1 * split[0]

    def test_invalid_construction_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            PacketMptcpConnection(sim, [], FiniteSource(1.0))
        link = PacketLink(
            sim, ConstantCapacity(1.0), one_way_delay=0.01, rng=random.Random(0)
        )
        with pytest.raises(ConfigurationError):
            PacketMptcpConnection(sim, [link], FiniteSource(1.0), rcv_buffer=0.0)
