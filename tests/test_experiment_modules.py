"""Tests for the per-figure experiment modules (construction, helpers,
normalisation) — the heavy end-to-end shapes live in
test_paper_shapes.py."""

import math

import pytest

from repro.experiments import background as bg
from repro.experiments import comparisons, mobility, overheads, random_bw, regions
from repro.experiments import static_bw, wild
from repro.experiments.runner import run_scenario
from repro.units import bytes_per_sec_to_mbps, mib
from repro.workloads.wild import WildSampler


class TestStaticBw:
    def test_scenario_rates(self):
        good = static_bw.static_scenario(True)
        bad = static_bw.static_scenario(False)
        assert good.name == "static-good-wifi"
        assert bad.name == "static-bad-wifi"
        import random

        assert bytes_per_sec_to_mbps(
            good.wifi_capacity(random.Random(0)).rate
        ) == pytest.approx(static_bw.GOOD_WIFI_MBPS)
        assert bytes_per_sec_to_mbps(
            bad.wifi_capacity(random.Random(0)).rate
        ) == pytest.approx(static_bw.BAD_WIFI_MBPS)

    def test_run_static_shape(self):
        results = static_bw.run_static(
            True, runs=2, download_bytes=mib(2), protocols=("tcp-wifi",)
        )
        assert set(results) == {"tcp-wifi"}
        assert len(results["tcp-wifi"]) == 2


class TestRandomBw:
    def test_paired_seeds_share_bandwidth_path(self):
        """Two instantiations with the same seed see the same on/off
        sample path (the bandwidth stream is keyed independently of the
        protocol), so protocol comparisons are paired."""
        from repro.sim.engine import Simulator
        from repro.sim.rng import RandomStreams

        scenario = random_bw.random_bw_scenario(download_bytes=mib(4))

        def flips():
            sim = Simulator()
            cap = scenario.wifi_capacity(RandomStreams(5).stream("wifi-capacity"))
            events = []
            cap.attach(sim)
            cap.on_change(lambda t, r: events.append((t, r)))
            sim.run(until=500.0)
            return events

        assert flips() == flips()

    def test_example_trace_covers_protocols(self):
        traces = random_bw.example_trace(download_bytes=mib(4))
        assert set(traces) == set(random_bw.PROTOCOLS)


class TestBackground:
    def test_normalize_to_mptcp(self):
        results = bg.run_background(
            configs=((0.05, 2),), runs=1, download_bytes=mib(4)
        )
        rows = bg.normalize_to_mptcp(results)
        protocols = {r.protocol for r in rows}
        assert "mptcp" not in protocols  # baseline omitted
        assert all(r.energy_pct > 0 for r in rows)

    def test_interferers_attached(self):
        scenario = bg.background_scenario(3, 0.025, download_bytes=mib(2))
        result = run_scenario("tcp-wifi", scenario, seed=0)
        # Contention must slow things down vs a clean channel.
        clean = run_scenario(
            "tcp-wifi",
            bg.background_scenario(0, 0.025, download_bytes=mib(2)),
            seed=0,
        )
        assert result.download_time >= clean.download_time


class TestMobility:
    def test_capacity_trace_shape(self):
        trace = mobility.mobility_capacity_trace()
        assert trace[0][0] == 0.0
        rates = [r for _t, r in trace]
        assert max(rates) > 0
        assert min(rates) >= 0

    def test_fixed_duration_run(self):
        scenario = mobility.mobility_scenario(duration=30.0)
        result = run_scenario("tcp-wifi", scenario, seed=0)
        assert result.download_time is None
        assert result.bytes_received > 0


class TestWild:
    def test_collect_traces_categorises(self):
        traces = wild.collect_traces(
            wild.SMALL_BYTES, n_environments=4, protocols=("tcp-wifi",)
        )
        assert len(traces) == 4
        for trace in traces:
            assert trace.category is not None
            assert "tcp-wifi" in trace.results

    def test_whiskers_by_category_structure(self):
        traces = wild.collect_traces(
            wild.SMALL_BYTES, n_environments=6, protocols=("tcp-wifi",)
        )
        summaries = wild.whiskers_by_category(traces, "energy_j")
        for by_protocol in summaries.values():
            assert set(by_protocol) == {"tcp-wifi"}

    def test_environment_scenario_non_fluctuating_is_constant(self):
        env = WildSampler(seed=9).sample()
        scenario = wild.environment_scenario(env, mib(1), fluctuating=False)
        import random

        cap = scenario.wifi_capacity(random.Random(0))
        assert bytes_per_sec_to_mbps(cap.rate) == pytest.approx(env.wifi_mbps)

    def test_scatter_points_fields(self):
        traces = wild.collect_traces(
            wild.SMALL_BYTES, n_environments=3, protocols=("tcp-wifi",)
        )
        for point in wild.scatter_points(traces):
            assert {"wifi_mbps", "lte_mbps", "category"} <= set(point)


class TestRegions:
    def test_table2_rows_order(self):
        rows = regions.table2_rows()
        assert [r.cell_mbps for r in rows] == list(regions.TABLE2_LTE_ROWS)

    def test_figure3_heatmap_dimensions(self):
        wifi, lte, grid = regions.figure3_heatmap(step=1.0, max_mbps=5.0)
        assert len(wifi) == 5
        assert len(grid) == 5 and len(grid[0]) == 5
        assert all(all(v > 0 or math.isinf(v) for v in row) for row in grid)

    def test_figure4_regions_keys(self):
        out = regions.figure4_regions(step=0.5, max_wifi=4.0, max_lte=8.0)
        assert set(out) == {"1MB", "4MB", "16MB"}


class TestOverheads:
    def test_fixed_overheads_cover_both_devices(self):
        rows = overheads.fixed_overheads()
        devices = {d for d, _i, _j in rows}
        assert devices == {"Samsung Galaxy S3", "LG Nexus 5"}
        # wifi + 3g + lte per device
        assert len(rows) == 6

    def test_measured_matches_closed_form(self):
        from repro.energy.device import GALAXY_S3
        from repro.net.interface import InterfaceKind

        measured = overheads.measured_fixed_overhead(GALAXY_S3, InterfaceKind.LTE)
        assert measured == pytest.approx(
            GALAXY_S3.fixed_overhead(InterfaceKind.LTE), rel=0.01
        )


class TestComparisons:
    def test_mdp_policy_actions_wifi_only(self):
        from repro.baselines.mdp import MdpAction

        assert comparisons.mdp_policy_actions() == [MdpAction.WIFI]


class TestWildGrid:
    def test_grid_covers_all_site_server_combinations(self):
        from repro.experiments import wild
        from repro.net.host import WILD_SERVERS
        from repro.workloads.wild import CLIENT_SITES

        traces = wild.collect_traces_grid(
            wild.SMALL_BYTES, iterations=1, protocols=("tcp-wifi",)
        )
        combos = {(t.environment.site.name, t.environment.server.name) for t in traces}
        assert len(traces) == len(CLIENT_SITES) * len(WILD_SERVERS)
        assert len(combos) == len(traces)

    def test_grid_iterations_multiply(self):
        from repro.experiments import wild

        traces = wild.collect_traces_grid(
            wild.SMALL_BYTES, iterations=2, protocols=("tcp-wifi",)
        )
        assert len(traces) == 9 * 2

    def test_grid_deterministic(self):
        from repro.experiments import wild

        a = wild.collect_traces_grid(
            wild.SMALL_BYTES, iterations=1, protocols=("tcp-wifi",)
        )
        b = wild.collect_traces_grid(
            wild.SMALL_BYTES, iterations=1, protocols=("tcp-wifi",)
        )
        assert [t.environment.wifi_mbps for t in a] == [
            t.environment.wifi_mbps for t in b
        ]
