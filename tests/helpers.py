"""Shared fixtures/builders for the test suite."""

from __future__ import annotations

import random

from repro.net.bandwidth import ConstantCapacity
from repro.net.interface import InterfaceKind, NetworkInterface
from repro.net.path import NetworkPath
from repro.sim.engine import Simulator
from repro.units import mbps_to_bytes_per_sec


def make_path(
    sim: Simulator,
    kind: InterfaceKind = InterfaceKind.WIFI,
    mbps: float = 10.0,
    rtt: float = 0.05,
    loss: float = 0.0,
    buffer_bytes: float = 126_000.0,
) -> NetworkPath:
    """A constant-capacity path attached to ``sim``."""
    path = NetworkPath(
        NetworkInterface(kind),
        ConstantCapacity(mbps_to_bytes_per_sec(mbps)),
        base_rtt=rtt,
        loss_rate=loss,
        buffer_bytes=buffer_bytes,
    )
    path.attach(sim)
    return path


def rng(seed: int = 0) -> random.Random:
    """A seeded random stream."""
    return random.Random(seed)
