"""Property-style fluid-vs-flow agreement sweep (CHK504 tolerance).

Satellite of the flow-tier PR: every static single-user scenario the
paper's §4.2 analysis rests on must produce the same completion time
and energy-at-completion on the analytic tier as on the fluid
reference, within the CHK5xx agreement band — and ``engine="flow"``
must be a first-class citizen of the runtime (distinct cache keys,
labelled results).
"""

import pytest

from repro.check.packet import AGREEMENT_TOLERANCE
from repro.experiments.runner import run_scenario
from repro.experiments.static_bw import static_scenario
from repro.runtime.spec import RunSpec
from repro.units import mib

# (label, good_wifi, protocol, lte_mbps, seed) — 6 static scenarios
# spanning both WiFi qualities and every flow-tier protocol.
SWEEP = [
    ("good/tcp-wifi", True, "tcp-wifi", 10.0, 0),
    ("good/mptcp", True, "mptcp", 10.0, 0),
    ("good/emptcp", True, "emptcp", 10.0, 0),
    ("bad/tcp-wifi", False, "tcp-wifi", 10.0, 0),
    ("bad/mptcp", False, "mptcp", 10.0, 1),
    ("bad/emptcp", False, "emptcp", 10.0, 2),
]


class TestFlowFluidAgreement:
    @pytest.mark.parametrize(
        "label,good,protocol,lte,seed",
        SWEEP,
        ids=[row[0] for row in SWEEP],
    )
    def test_static_scenario_within_band(self, label, good, protocol,
                                         lte, seed):
        scenario = static_scenario(
            good, download_bytes=mib(2), lte_mbps=lte
        )
        fluid = run_scenario(protocol, scenario, seed=seed, engine="fluid")
        flow = run_scenario(protocol, scenario, seed=seed, engine="flow")
        assert fluid.download_time is not None
        assert flow.download_time is not None
        lo, hi = 1 - AGREEMENT_TOLERANCE, 1 + AGREEMENT_TOLERANCE
        t_ratio = flow.download_time / fluid.download_time
        assert lo <= t_ratio <= hi, f"{label}: time ratio {t_ratio:.2f}"
        e_ratio = (
            flow.energy_at_completion_j / fluid.energy_at_completion_j
        )
        assert lo <= e_ratio <= hi, f"{label}: energy ratio {e_ratio:.2f}"

    def test_emptcp_good_wifi_skips_cell_on_both_engines(self):
        scenario = static_scenario(True, download_bytes=mib(2))
        flow = run_scenario("emptcp", scenario, seed=0, engine="flow")
        assert flow.diagnostics.get("cell_established") == 0.0


class TestEngineIdentity:
    def _spec(self, engine):
        return RunSpec(
            protocol="emptcp",
            builder="static",
            kwargs={"good_wifi": True, "download_bytes": mib(2)},
            seed=0,
            engine=engine,
        )

    def test_flow_engine_has_distinct_cache_key(self):
        hashes = {self._spec(e).content_hash()
                  for e in ("fluid", "packet", "flow")}
        assert len(hashes) == 3

    def test_flow_engine_label_suffix(self):
        assert self._spec("flow").label.endswith("@flow")
        assert "@" not in self._spec("fluid").label

    def test_flow_spec_passes_pre_dispatch_checks(self):
        from repro.check.config import check_run_spec

        assert check_run_spec(self._spec("flow")) == []

    def test_unsupported_protocol_flagged_chk243(self):
        from repro.check.config import check_run_spec

        spec = RunSpec(
            protocol="mdp",
            builder="static",
            kwargs={"good_wifi": True},
            seed=0,
            engine="flow",
        )
        findings = check_run_spec(spec)
        assert any(f.rule == "CHK243" for f in findings)
