"""Clean twin of the REP203 fixture: the payload is still built
incrementally (a subscript store REP104 cannot follow), but the
resolved shape covers every declared ``energy.checkpoint`` field."""


class Reporter:
    def __init__(self, tracer):
        self.tracer = tracer

    def checkpoint(self, t: float, total_j: float, power_w: float) -> None:
        payload = {"total_j": total_j}
        payload["power_w"] = power_w
        self.tracer.emit("energy.checkpoint", t, **payload)
