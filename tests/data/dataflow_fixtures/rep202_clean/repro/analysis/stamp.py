"""Clean twin of the REP202 helper: a pure function of its input."""


def logical_stamp(now: float) -> float:
    return now
