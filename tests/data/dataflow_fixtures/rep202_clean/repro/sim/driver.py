"""Clean twin of the REP202 fixture: the deterministic package works
from simulated time passed in by its caller."""

from repro.analysis.stamp import logical_stamp


def schedule_next(now: float) -> float:
    deadline = logical_stamp(now) + 1.0
    return deadline
