"""Seeded REP203 violation: an emit payload built as a dict variable
and splatted — opaque to the literal-only REP104 rule — missing the
``power_w`` field ``energy.checkpoint`` declares."""


class Reporter:
    def __init__(self, tracer):
        self.tracer = tracer

    def checkpoint(self, t: float, total_j: float, power_w: float) -> None:
        payload = {"total_j": total_j}
        self.tracer.emit("energy.checkpoint", t, **payload)
