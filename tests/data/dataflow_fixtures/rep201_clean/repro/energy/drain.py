"""Clean twin of the REP201 fixture: the mW -> W conversion routed
through :mod:`repro.units`, so watts times seconds is joules."""

from repro.units import milliwatts_to_watts


def drained_energy(power_mw: float, dt_s: float) -> float:
    power_w = milliwatts_to_watts(power_mw)
    energy_j = power_w * dt_s
    return energy_j
