"""Helper outside the deterministic packages whose return value is
wall-clock tainted — legal here, a REP202 finding wherever a
deterministic package consumes it."""

import time


def wall_stamp() -> float:
    return time.time()
