"""Seeded REP202 violation: a deterministic package consuming a
wall-clock read laundered through a helper function — invisible to the
local REP101 rule, which only sees direct ``time.time()`` calls."""

from repro.analysis.stamp import wall_stamp


def schedule_next() -> float:
    deadline = wall_stamp() + 1.0
    return deadline
