"""Seeded REP201 violation: milliwatt power times seconds is
millijoules, landing in a ``_j`` name without a conversion."""


def drained_energy(power_mw: float, dt_s: float) -> float:
    energy_j = power_mw * dt_s
    return energy_j
