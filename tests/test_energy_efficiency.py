"""Tests for per-byte efficiency math (Figures 3 and 4 inputs)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.energy.device import GALAXY_S3
from repro.energy.efficiency import (
    Strategy,
    best_strategy,
    download_energy,
    efficiency_heatmap,
    operating_region,
    per_byte_energy,
    region_boundaries,
    strategy_power,
)
from repro.errors import EnergyModelError
from repro.net.interface import InterfaceKind
from repro.units import mib


class TestStrategyPower:
    def test_single_path_ignores_other_interface(self):
        p1 = strategy_power(GALAXY_S3, Strategy.WIFI_ONLY, 5.0, 0.0)
        p2 = strategy_power(GALAXY_S3, Strategy.WIFI_ONLY, 5.0, 100.0)
        assert p1 == p2

    def test_both_subtracts_overlap(self):
        both = strategy_power(GALAXY_S3, Strategy.BOTH, 5.0, 5.0)
        wifi = strategy_power(GALAXY_S3, Strategy.WIFI_ONLY, 5.0, 5.0)
        lte = strategy_power(GALAXY_S3, Strategy.CELLULAR_ONLY, 5.0, 5.0)
        assert both == pytest.approx(wifi + lte - GALAXY_S3.overlap_saving_w)

    def test_threeg_supported(self):
        p = strategy_power(
            GALAXY_S3, Strategy.CELLULAR_ONLY, 0.0, 4.0, InterfaceKind.THREEG
        )
        assert p == pytest.approx(0.8 + 4 * 0.12)

    def test_negative_rate_rejected(self):
        with pytest.raises(EnergyModelError):
            strategy_power(GALAXY_S3, Strategy.BOTH, -1.0, 5.0)


class TestPerByteEnergy:
    def test_zero_rate_is_infinite(self):
        assert per_byte_energy(GALAXY_S3, Strategy.WIFI_ONLY, 0.0, 5.0) == math.inf

    def test_faster_wifi_is_cheaper_per_byte(self):
        slow = per_byte_energy(GALAXY_S3, Strategy.WIFI_ONLY, 1.0, 0.0)
        fast = per_byte_energy(GALAXY_S3, Strategy.WIFI_ONLY, 10.0, 0.0)
        assert fast < slow

    def test_best_strategy_fast_wifi_slowish_lte(self):
        # WiFi 10 Mbps vs LTE 2: right of the "V" -> WiFi only.
        assert best_strategy(GALAXY_S3, 10.0, 2.0) is Strategy.WIFI_ONLY

    def test_best_strategy_tiny_wifi(self):
        # WiFi 0.05 vs LTE 8: left of the "V" -> cellular only.
        assert best_strategy(GALAXY_S3, 0.05, 8.0) is Strategy.CELLULAR_ONLY

    def test_best_strategy_inside_v(self):
        # Table 2 row: LTE 1.0, WiFi between 0.134 and 0.502 -> both.
        assert best_strategy(GALAXY_S3, 0.3, 1.0) is Strategy.BOTH

    @given(
        st.floats(min_value=0.1, max_value=25.0),
        st.floats(min_value=0.1, max_value=25.0),
    )
    def test_property_best_strategy_is_minimal(self, wifi, lte):
        best = best_strategy(GALAXY_S3, wifi, lte)
        best_cost = per_byte_energy(GALAXY_S3, best, wifi, lte)
        for strategy in Strategy:
            assert best_cost <= per_byte_energy(GALAXY_S3, strategy, wifi, lte) + 1e-15


class TestDownloadEnergy:
    def test_fixed_overheads_charged(self):
        with_fixed = download_energy(
            GALAXY_S3, Strategy.CELLULAR_ONLY, mib(1), 0.0, 8.0
        )
        without = download_energy(
            GALAXY_S3, Strategy.CELLULAR_ONLY, mib(1), 0.0, 8.0, include_fixed=False
        )
        assert with_fixed - without == pytest.approx(
            GALAXY_S3.fixed_overhead(InterfaceKind.LTE)
        )

    def test_small_download_prefers_wifi_only(self):
        """The κ = 1 MB design point: at 1 MB, paying LTE's 12.6 J fixed
        cost is rarely worth it."""
        wifi, lte = 4.0, 8.0
        e_wifi = download_energy(GALAXY_S3, Strategy.WIFI_ONLY, mib(1), wifi, lte)
        e_both = download_energy(GALAXY_S3, Strategy.BOTH, mib(1), wifi, lte)
        assert e_wifi < e_both

    def test_invalid_size_rejected(self):
        with pytest.raises(EnergyModelError):
            download_energy(GALAXY_S3, Strategy.BOTH, 0.0, 1.0, 1.0)

    def test_energy_scales_roughly_linearly_with_size(self):
        e1 = download_energy(
            GALAXY_S3, Strategy.WIFI_ONLY, mib(4), 8.0, 8.0, include_fixed=False
        )
        e2 = download_energy(
            GALAXY_S3, Strategy.WIFI_ONLY, mib(8), 8.0, 8.0, include_fixed=False
        )
        assert e2 == pytest.approx(2 * e1)


class TestRegions:
    def test_heatmap_shape_and_v_region(self):
        wifi_grid = [0.25 * i for i in range(1, 41)]
        lte_grid = [0.25 * i for i in range(1, 41)]
        grid = efficiency_heatmap(GALAXY_S3, wifi_grid, lte_grid)
        assert len(grid) == len(lte_grid)
        assert len(grid[0]) == len(wifi_grid)
        flat = [v for row in grid for v in row]
        # The dark V exists: somewhere MPTCP beats the best single path.
        assert min(flat) < 1.0
        # And somewhere (fast WiFi, slow LTE) it clearly loses.
        assert max(flat) > 1.0

    def test_heatmap_wifi_only_wins_on_right_side(self):
        grid = efficiency_heatmap(GALAXY_S3, [10.0], [1.0])
        assert grid[0][0] > 1.0

    def test_operating_region_grows_with_download_size(self):
        """Figure 4: the MPTCP-best region is nested by size."""
        wifi_grid = [0.2 * i for i in range(1, 31)]
        lte_grid = [0.5 * i for i in range(1, 25)]
        small = set(operating_region(GALAXY_S3, mib(1), wifi_grid, lte_grid))
        medium = set(operating_region(GALAXY_S3, mib(4), wifi_grid, lte_grid))
        large = set(operating_region(GALAXY_S3, mib(16), wifi_grid, lte_grid))
        assert small <= medium <= large
        assert len(large) > len(small)

    def test_region_boundaries_match_region(self):
        wifi_grid = [0.2 * i for i in range(1, 31)]
        lte_grid = [1.0, 4.0, 8.0]
        bounds = region_boundaries(GALAXY_S3, mib(16), wifi_grid, lte_grid)
        region = operating_region(GALAXY_S3, mib(16), wifi_grid, lte_grid)
        for wifi, lte in region:
            lo, hi = bounds[lte]
            assert lo <= wifi <= hi
