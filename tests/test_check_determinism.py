"""Tier-3b determinism detector (repro.check.determinism): a clean
deterministic spec passes; seeded nondeterminism (an unseeded global
RNG, exactly what lint rule REP102 forbids textually) is caught
empirically."""

import random

import pytest

from repro.check.determinism import check_determinism, replay
from repro.errors import SimulationError
from repro.runtime.spec import RunSpec, _REGISTRY, register_builder
from repro.units import mib

from repro import obs


def small_spec():
    return RunSpec(
        protocol="emptcp",
        builder="static",
        kwargs={"good_wifi": True, "download_bytes": mib(1)},
        seed=0,
    )


@pytest.fixture
def custom_builder():
    """Register a throwaway builder; always unregister afterwards."""
    registered = []

    def _register(name, execute):
        register_builder(
            name,
            execute=execute,
            encode=lambda result: result,
            decode=lambda payload: payload,
            replace=True,
        )
        registered.append(name)
        return name

    yield _register
    for name in registered:
        _REGISTRY.pop(name, None)


def test_runs_below_two_is_an_error():
    with pytest.raises(ValueError):
        check_determinism(small_spec(), runs=1)


def test_default_spec_is_deterministic():
    report = check_determinism(small_spec())
    assert report.ok, report.format()
    assert report.tier == "determinism"
    assert report.checked == 2


def test_replay_captures_events_and_result():
    events, encoded = replay(small_spec())
    assert events, "a traced run must emit events"
    assert isinstance(encoded, dict) and encoded


def test_unseeded_rng_is_caught(custom_builder):
    """The empirical complement of lint rule REP102: a builder drawing
    from the global random module diverges between replays in both the
    result and the event stream."""

    def execute(spec):
        noise = random.random()
        tracer = obs.tracer_or_none()
        assert tracer is not None
        tracer.emit(
            "predictor.sample",
            t=0.0,
            interface="wifi",
            sample_mbps=noise,
            forecast_mbps=noise,
        )
        return {"noise": noise}

    name = custom_builder("test-check-det-unseeded", execute)
    spec = RunSpec(protocol="emptcp", builder=name)
    report = check_determinism(spec)
    assert not report.ok
    found = set(f.rule for f in report.findings)
    assert found == {"CHK402", "CHK403"}
    # The first divergent event is named with its differing fields.
    diverge = [f for f in report.findings if f.rule == "CHK403"]
    assert any("predictor.sample" in f.message for f in diverge)


def test_event_count_divergence_is_reported(custom_builder):
    calls = []

    def execute(spec):
        calls.append(None)
        tracer = obs.tracer_or_none()
        for i in range(len(calls)):
            tracer.emit(
                "delay.trigger",
                t=float(i),
                trigger="tau",
                action="postponed",
                wifi_bytes=0.0,
            )
        return {"ok": True}

    name = custom_builder("test-check-det-growing", execute)
    report = check_determinism(RunSpec(protocol="emptcp", builder=name))
    counts = [f for f in report.findings if "event count differs" in f.message]
    assert len(counts) == 1


def test_crashing_run_is_chk401(custom_builder):
    def execute(spec):
        raise SimulationError("boom")

    name = custom_builder("test-check-det-crash", execute)
    report = check_determinism(RunSpec(protocol="emptcp", builder=name))
    assert [f.rule for f in report.findings] == ["CHK401"]
    assert not report.ok
