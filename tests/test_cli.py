"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_list_names_all_experiments(capsys):
    code, out = run_cli(capsys, "list")
    assert code == 0
    for name in ("table2", "fig1", "fig5", "fig8", "fig17", "sec46"):
        assert name in out


def test_table1(capsys):
    code, out = run_cli(capsys, "table1")
    assert code == 0
    assert "Samsung Galaxy S3" in out
    assert "Broadcom BCM4339" in out


def test_table2(capsys):
    code, out = run_cli(capsys, "table2")
    assert code == 0
    assert "0.502" in out  # the paper column is shown for comparison


def test_fig1(capsys):
    code, out = run_cli(capsys, "fig1")
    assert code == 0
    assert "lte" in out and "wifi" in out


def test_fig3(capsys):
    code, out = run_cli(capsys, "fig3")
    assert code == 0
    assert "LTE\\WiFi" in out


def test_fig4(capsys):
    code, out = run_cli(capsys, "fig4")
    assert code == 0
    assert "16MB" in out


def test_fig5_scaled_down(capsys):
    code, out = run_cli(capsys, "fig5", "--runs", "1", "--size-mb", "4")
    assert code == 0
    assert "emptcp" in out and "tcp-wifi" in out


def test_fig13_scaled_down(capsys):
    code, out = run_cli(capsys, "fig13", "--runs", "1")
    assert code == 0
    assert "uJ/bit" in out


def test_fig17_scaled_down(capsys):
    code, out = run_cli(capsys, "fig17", "--runs", "1")
    assert code == 0
    assert "latency" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["figNaN"])


SMALL = ["--runs", "1", "--size-mb", "4", "--envs", "6"]


@pytest.mark.parametrize(
    "command",
    [
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig12",
        "fig14",
        "sec46",
        "handover",
        "upload",
        "streaming",
        "validate",
    ],
)
def test_every_simulation_command_runs_at_small_scale(capsys, command):
    code, out = run_cli(capsys, command, *SMALL)
    assert code == 0
    assert out.strip()


def test_fig15_small_scale(capsys):
    code, out = run_cli(capsys, "fig15", "--envs", "6")
    assert code == 0
    assert "median" in out


def test_report_smoke_to_stdout(capsys):
    code, out = run_cli(capsys, "report", "--scale", "smoke")
    assert code == 0
    assert "# Reproduction report" in out
