"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_list_names_all_experiments(capsys):
    code, out = run_cli(capsys, "list")
    assert code == 0
    for name in ("table2", "fig1", "fig5", "fig8", "fig17", "sec46"):
        assert name in out


def test_table1(capsys):
    code, out = run_cli(capsys, "table1")
    assert code == 0
    assert "Samsung Galaxy S3" in out
    assert "Broadcom BCM4339" in out


def test_table2(capsys):
    code, out = run_cli(capsys, "table2")
    assert code == 0
    assert "0.502" in out  # the paper column is shown for comparison


def test_fig1(capsys):
    code, out = run_cli(capsys, "fig1")
    assert code == 0
    assert "lte" in out and "wifi" in out


def test_fig3(capsys):
    code, out = run_cli(capsys, "fig3")
    assert code == 0
    assert "LTE\\WiFi" in out


def test_fig4(capsys):
    code, out = run_cli(capsys, "fig4")
    assert code == 0
    assert "16MB" in out


def test_fig5_scaled_down(capsys):
    code, out = run_cli(capsys, "fig5", "--runs", "1", "--size-mb", "4")
    assert code == 0
    assert "emptcp" in out and "tcp-wifi" in out


def test_fig13_scaled_down(capsys):
    code, out = run_cli(capsys, "fig13", "--runs", "1")
    assert code == 0
    assert "uJ/bit" in out


def test_fig17_scaled_down(capsys):
    code, out = run_cli(capsys, "fig17", "--runs", "1")
    assert code == 0
    assert "latency" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["figNaN"])


SMALL = ["--runs", "1", "--size-mb", "4", "--envs", "6"]


@pytest.mark.parametrize(
    "command",
    [
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig12",
        "fig14",
        "sec46",
        "handover",
        "upload",
        "streaming",
        "validate",
    ],
)
def test_every_simulation_command_runs_at_small_scale(capsys, command):
    code, out = run_cli(capsys, command, *SMALL)
    assert code == 0
    assert out.strip()


def test_fig15_small_scale(capsys):
    code, out = run_cli(capsys, "fig15", "--envs", "6")
    assert code == 0
    assert "median" in out


def test_report_smoke_to_stdout(capsys):
    code, out = run_cli(capsys, "report", "--scale", "smoke")
    assert code == 0
    assert "# Reproduction report" in out


class TestCacheDirOption:
    """``cache stats``/``cache clear`` must operate on a non-default
    ``--cache-dir``, not silently fall back to the default root."""

    def test_stats_and_clear_respect_cache_dir(self, tmp_path, capsys):
        from repro.runtime.cache import ResultCache

        cache_dir = tmp_path / "custom-cache"
        code, _ = run_cli(
            capsys, "fig5", "--runs", "1", "--size-mb", "1",
            "--cache", "--cache-dir", str(cache_dir),
        )
        assert code == 0
        # Entries land in the segment store, not per-run JSON blobs.
        assert (cache_dir / "store").is_dir()
        entries = ResultCache(cache_dir).stats().entries
        assert entries == 3  # one per protocol

        code, out = run_cli(capsys, "cache", "stats", "--cache-dir", str(cache_dir))
        assert code == 0
        assert str(cache_dir) in out
        assert f"entries:    {entries}" in out
        assert "segments:   " in out

        code, out = run_cli(capsys, "cache", "clear", "--cache-dir", str(cache_dir))
        assert code == 0
        assert f"removed {entries} cached result(s)" in out
        assert str(cache_dir) in out
        assert ResultCache(cache_dir).stats().entries == 0

        code, out = run_cli(capsys, "cache", "stats", "--cache-dir", str(cache_dir))
        assert code == 0
        assert "entries:    0" in out

    def test_clear_on_missing_dir_is_a_noop(self, tmp_path, capsys):
        code, out = run_cli(
            capsys, "cache", "clear", "--cache-dir", str(tmp_path / "nope")
        )
        assert code == 0
        assert "removed 0" in out

    def test_unknown_cache_subcommand_rejected(self, tmp_path, capsys):
        code = main(["cache", "frobnicate", "--cache-dir", str(tmp_path)])
        assert code == 2


class TestTraceCommand:
    def test_trace_flags_export_and_summarize(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        code, _ = run_cli(
            capsys, "fig6", "--runs", "1", "--size-mb", "2",
            "--trace", "--metrics", "--cache-dir", str(cache_dir),
        )
        assert code == 0
        obs_dir = cache_dir / "obs"
        assert len(list(obs_dir.glob("*.trace.jsonl"))) == 3
        assert len(list(obs_dir.glob("*.metrics.json"))) == 3

        # explicit target
        code, out = run_cli(capsys, "trace", "summarize", str(obs_dir))
        assert code == 0
        assert "events across 3 trace file(s)" in out
        assert "predictor[" in out

        # default target is <cache-dir>/obs
        code, out = run_cli(capsys, "trace", "--cache-dir", str(cache_dir))
        assert code == 0
        assert "events across 3 trace file(s)" in out

        code, out = run_cli(capsys, "trace", "validate", str(obs_dir))
        assert code == 0
        assert "3 trace file(s) validate" in out

    def test_trace_obs_dir_override(self, tmp_path, capsys):
        obs_dir = tmp_path / "elsewhere"
        code, _ = run_cli(
            capsys, "fig5", "--runs", "1", "--size-mb", "1",
            "--trace", "--obs-dir", str(obs_dir),
            "--cache-dir", str(tmp_path / "cache"),
        )
        assert code == 0
        assert list(obs_dir.glob("*.trace.jsonl"))

    def test_trace_validate_flags_schema_problems(self, tmp_path, capsys):
        bad = tmp_path / "bad.trace.jsonl"
        bad.write_text('{"t": 1.0, "type": "not.a.known.type"}\n')
        code = main(["trace", "validate", str(bad)])
        assert code == 1

    def test_trace_missing_target_errors(self, tmp_path, capsys):
        code = main(["trace", "summarize", str(tmp_path / "nope")])
        assert code == 2

    def test_unknown_trace_subcommand_rejected(self, tmp_path, capsys):
        code = main(["trace", "frobnicate", str(tmp_path)])
        assert code == 2


class TestCheckCommand:
    def test_check_config_is_clean(self, capsys):
        code, out = run_cli(capsys, "check", "config")
        assert code == 0
        assert "config: OK" in out

    def test_check_lint_clean_file(self, capsys, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("def f(energy_j: float):\n    return energy_j\n")
        code, out = run_cli(
            capsys, "check", "lint", str(target), "--no-baseline"
        )
        assert code == 0
        assert "lint: OK" in out

    def test_check_lint_flags_violations(self, capsys, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        init = pkg / "__init__.py"
        init.write_text("__all__ = ['ghost']\n")
        code, out = run_cli(
            capsys, "check", "lint", str(init), "--no-baseline"
        )
        assert code == 1
        assert "REP107" in out

    def test_check_trace_reports_bad_trace(self, capsys):
        code, out = run_cli(
            capsys, "check", "trace", "tests/data/bad.trace.jsonl"
        )
        assert code == 1
        assert "CHK304" in out and "CHK307" in out

    def test_check_trace_missing_target_is_usage_error(self, capsys):
        code, _ = run_cli(capsys, "check", "trace", "/nonexistent/traces")
        assert code == 2

    def test_check_unknown_subcommand(self, capsys):
        code, _ = run_cli(capsys, "check", "bogus")
        assert code == 2

    def test_check_determinism_small(self, capsys):
        code, out = run_cli(capsys, "check", "determinism", "--size-mb", "1")
        assert code == 0
        assert "determinism: OK" in out
