"""Tests for the Energy Information Base (Table 2)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.eib import EnergyInformationBase, cached_eib
from repro.energy.device import GALAXY_S3, NEXUS_5
from repro.energy.efficiency import Strategy, per_byte_energy
from repro.errors import EnergyModelError
from repro.net.interface import InterfaceKind


@pytest.fixture(scope="module")
def eib():
    return cached_eib(GALAXY_S3, InterfaceKind.LTE)


class TestThresholds:
    def test_ordering_cellular_below_wifi_threshold(self, eib):
        for cell in (0.5, 1.0, 2.0, 5.0, 10.0):
            cell_only, wifi_only = eib.thresholds(cell)
            assert 0 < cell_only < wifi_only

    def test_table2_rows_match_paper_within_30pct(self, eib):
        """Calibration target: the published Table 2 rows."""
        paper = {
            0.5: (0.043, 0.234),
            1.0: (0.134, 0.502),
            1.5: (0.209, 0.803),
            2.0: (0.304, 1.070),
        }
        for cell, (paper_cell_only, paper_wifi_only) in paper.items():
            cell_only, wifi_only = eib.thresholds(cell)
            assert wifi_only == pytest.approx(paper_wifi_only, rel=0.30)
            # The 0.5 row's tiny cellular-only threshold gets a looser
            # absolute tolerance.
            assert cell_only == pytest.approx(paper_cell_only, rel=0.30, abs=0.03)

    def test_thresholds_consistent_with_raw_energy_model(self, eib):
        """At the WiFi-only threshold the two per-byte costs cross."""
        cell = 1.0
        _cell_only, wifi_only = eib.thresholds(cell)
        below = per_byte_energy(GALAXY_S3, Strategy.WIFI_ONLY, wifi_only * 0.9, cell)
        both_below = per_byte_energy(GALAXY_S3, Strategy.BOTH, wifi_only * 0.9, cell)
        assert both_below < below
        above = per_byte_energy(GALAXY_S3, Strategy.WIFI_ONLY, wifi_only * 1.1, cell)
        both_above = per_byte_energy(GALAXY_S3, Strategy.BOTH, wifi_only * 1.1, cell)
        assert above < both_above

    def test_interpolation_between_grid_rows(self, eib):
        lo = eib.thresholds(1.0)
        hi = eib.thresholds(1.1)
        mid = eib.thresholds(1.05)
        assert min(lo[1], hi[1]) <= mid[1] <= max(lo[1], hi[1])

    def test_clamping_at_grid_edges(self, eib):
        tiny = eib.thresholds(0.001)
        assert tiny == eib.thresholds(0.1)
        huge = eib.thresholds(1e6)
        assert huge == eib.thresholds(30.0)

    def test_negative_rate_rejected(self, eib):
        with pytest.raises(EnergyModelError):
            eib.thresholds(-1.0)

    @given(st.floats(min_value=0.1, max_value=29.9))
    def test_property_thresholds_monotone_in_cell_rate(self, cell):
        eib = cached_eib(GALAXY_S3, InterfaceKind.LTE)
        lo = eib.thresholds(cell)
        hi = eib.thresholds(cell + 0.1)
        # Faster LTE raises both transition points (WiFi must be better
        # to justify WiFi-only; LTE-only region widens).
        assert hi[0] >= lo[0] - 1e-9
        assert hi[1] >= lo[1] - 1e-9


class TestDecide:
    def test_three_regions(self, eib):
        cell = 2.0
        cell_only, wifi_only = eib.thresholds(cell)
        assert eib.decide(cell_only * 0.5, cell) is Strategy.CELLULAR_ONLY
        assert eib.decide((cell_only + wifi_only) / 2, cell) is Strategy.BOTH
        assert eib.decide(wifi_only * 1.5, cell) is Strategy.WIFI_ONLY

    def test_decide_agrees_with_best_strategy_away_from_boundaries(self, eib):
        from repro.energy.efficiency import best_strategy

        for wifi, cell in [(0.05, 4.0), (0.6, 2.0), (9.0, 2.0), (3.0, 8.0)]:
            assert eib.decide(wifi, cell) is best_strategy(GALAXY_S3, wifi, cell)


class TestConstruction:
    def test_non_cellular_kind_rejected(self):
        with pytest.raises(EnergyModelError):
            EnergyInformationBase(GALAXY_S3, InterfaceKind.WIFI)

    def test_empty_grid_rejected(self):
        with pytest.raises(EnergyModelError):
            EnergyInformationBase(GALAXY_S3, cell_grid_mbps=[])

    def test_nonpositive_grid_rejected(self):
        with pytest.raises(EnergyModelError):
            EnergyInformationBase(GALAXY_S3, cell_grid_mbps=[0.0, 1.0])

    def test_cache_returns_same_object(self):
        a = cached_eib(GALAXY_S3)
        b = cached_eib(GALAXY_S3)
        assert a is b
        c = cached_eib(NEXUS_5)
        assert c is not a

    def test_threeg_eib_buildable(self):
        eib = EnergyInformationBase(
            GALAXY_S3, InterfaceKind.THREEG, cell_grid_mbps=[0.5, 1.0, 2.0]
        )
        cell_only, wifi_only = eib.thresholds(1.0)
        assert 0 < cell_only < wifi_only

    def test_table_rows(self, eib):
        rows = eib.table_rows([0.5, 1.0, 1.5, 2.0])
        assert [r.cell_mbps for r in rows] == [0.5, 1.0, 1.5, 2.0]
        for row in rows:
            assert row.cellular_only_below < row.wifi_only_above
