"""Tier-2 config/scenario verification (repro.check.config): one
passing and one failing fixture per rule, plus the executor's
pre-dispatch gate."""

import dataclasses
from types import SimpleNamespace

import pytest

from repro.check.config import (
    check_config_dict,
    check_defaults,
    check_device_profile,
    check_eib,
    check_eib_entries,
    check_emptcp_config,
    check_run_spec,
    check_scenario,
    check_tau_bound,
    verify_specs,
)
from repro.check.findings import Severity
from repro.core.config import EMPTCPConfig
from repro.core.eib import EibEntry, cached_eib
from repro.energy.device import GALAXY_S3
from repro.errors import ConfigurationError
from repro.experiments.static_bw import static_scenario
from repro.runtime.spec import RunSpec, _REGISTRY, register_builder
from repro.units import mbps_to_bytes_per_sec, mib


def rules(findings):
    return sorted(f.rule for f in findings)


# ---------------------------------------------------------------------------
# CHK201: hysteresis safety factor


def test_chk201_default_config_passes():
    assert check_emptcp_config(EMPTCPConfig()) == []


def test_chk201_safety_factor_out_of_range():
    cfg = SimpleNamespace(safety_factor=1.2, delta_min=1.0, delta_max=2.0)
    findings = check_emptcp_config(cfg)
    assert rules(findings) == ["CHK201"]
    assert findings[0].severity is Severity.ERROR


def test_chk201_disabled_hysteresis_is_a_warning():
    cfg = SimpleNamespace(safety_factor=0.0, delta_min=1.0, delta_max=2.0)
    findings = check_emptcp_config(cfg)
    assert rules(findings) == ["CHK201"]
    assert findings[0].severity is Severity.WARNING


# ---------------------------------------------------------------------------
# CHK202/CHK203: override dicts


def test_chk202_valid_override_dict_passes():
    assert check_config_dict({"tau_seconds": 2.0}) == []


def test_chk202_unknown_key():
    findings = check_config_dict({"tau_secondz": 2.0})
    assert rules(findings) == ["CHK202"]
    assert "tau_secondz" in findings[0].message


def test_chk203_invalid_value():
    findings = check_config_dict({"tau_seconds": -1.0})
    assert rules(findings) == ["CHK203"]


def test_chk203_inverted_sampling_bounds():
    cfg = SimpleNamespace(safety_factor=0.1, delta_min=3.0, delta_max=1.0)
    assert rules(check_emptcp_config(cfg)) == ["CHK203"]


# ---------------------------------------------------------------------------
# CHK204: tau against equation (1)


def test_chk204_default_tau_passes_at_paper_operating_point():
    cfg = EMPTCPConfig()
    findings = check_tau_bound(
        cfg, mbps_to_bytes_per_sec(12.0), wifi_rtt=0.040
    )
    assert findings == []


def test_chk204_tiny_tau_fails():
    cfg = EMPTCPConfig(tau_seconds=0.01)
    findings = check_tau_bound(
        cfg, mbps_to_bytes_per_sec(12.0), wifi_rtt=0.040
    )
    assert rules(findings) == ["CHK204"]
    assert "equation (1)" in findings[0].message


def test_chk204_skips_degenerate_operating_points():
    cfg = EMPTCPConfig(tau_seconds=0.01)
    assert check_tau_bound(cfg, 0.0, wifi_rtt=0.040) == []
    assert check_tau_bound(cfg, 1e6, wifi_rtt=0.0) == []


# ---------------------------------------------------------------------------
# CHK211/212/213: EIB tables


def good_eib_rows():
    return [
        EibEntry(cell_mbps=1.0, cellular_only_below=0.2, wifi_only_above=1.5),
        EibEntry(cell_mbps=2.0, cellular_only_below=0.3, wifi_only_above=2.0),
        EibEntry(cell_mbps=4.0, cellular_only_below=0.5, wifi_only_above=3.0),
    ]


def test_eib_good_table_passes():
    assert check_eib_entries(good_eib_rows()) == []


def test_chk211_unsorted_cell_grid():
    rows = good_eib_rows()
    rows[1], rows[2] = rows[2], rows[1]
    assert "CHK211" in rules(check_eib_entries(rows))


def test_chk212_decreasing_threshold():
    rows = good_eib_rows()
    rows[2] = dataclasses.replace(rows[2], wifi_only_above=0.5)
    findings = check_eib_entries(rows)
    assert rules(findings) == ["CHK212"]
    assert "WiFi-only" in findings[0].message


def test_chk213_crossing_thresholds():
    rows = [
        EibEntry(cell_mbps=1.0, cellular_only_below=2.0, wifi_only_above=1.0)
    ]
    findings = check_eib_entries(rows)
    assert rules(findings) == ["CHK213"]
    assert "cross" in findings[0].message


def test_chk213_negative_and_nan_thresholds():
    rows = [
        EibEntry(
            cell_mbps=1.0,
            cellular_only_below=-0.5,
            wifi_only_above=float("nan"),
        )
    ]
    assert rules(check_eib_entries(rows)) == ["CHK213", "CHK213"]


def test_built_default_eib_passes():
    eib = cached_eib(GALAXY_S3, next(iter(GALAXY_S3.rrc)))
    assert check_eib(eib) == []


# ---------------------------------------------------------------------------
# CHK221: device power model


def test_chk221_shipped_profile_passes():
    assert check_device_profile(GALAXY_S3) == []


def test_chk221_negative_coefficient():
    kind = next(iter(GALAXY_S3.interfaces))
    bad_power = SimpleNamespace(
        base_w=-0.5, per_mbps_w=0.01, per_mbps_up_w=0.02, idle_w=0.01
    )
    profile = SimpleNamespace(
        name="broken",
        baseline_w=0.3,
        overlap_saving_w=0.0,
        wifi_activation_j=1.0,
        interfaces={kind: bad_power},
        rrc={},
    )
    findings = check_device_profile(profile)
    assert rules(findings) == ["CHK221"]
    assert "base_w" in findings[0].message


# ---------------------------------------------------------------------------
# CHK231: scenario path parameters


def test_chk231_stock_scenario_passes():
    scenario = static_scenario(good_wifi=True, download_bytes=mib(2))
    assert check_scenario(scenario) == []


def test_chk231_negative_rtt_and_bad_loss():
    scenario = static_scenario(good_wifi=True, download_bytes=mib(2))
    broken = dataclasses.replace(scenario, wifi_rtt=-0.01, cell_loss=1.5)
    assert rules(check_scenario(broken)) == ["CHK231", "CHK231"]


def test_chk204_scenario_with_tiny_tau():
    scenario = static_scenario(good_wifi=True, download_bytes=mib(2))
    broken = dataclasses.replace(
        scenario, emptcp_config=EMPTCPConfig(tau_seconds=0.01)
    )
    assert "CHK204" in rules(check_scenario(broken))


# ---------------------------------------------------------------------------
# CHK234/CHK241/CHK242: RunSpecs


def good_spec(**overrides):
    base = dict(
        protocol="emptcp",
        builder="static",
        kwargs={"good_wifi": True, "download_bytes": mib(2)},
        seed=0,
    )
    base.update(overrides)
    return RunSpec(**base)


def test_run_spec_good_passes_deep_check():
    assert check_run_spec(good_spec(), build=True) == []


def test_chk241_unknown_builder():
    findings = check_run_spec(good_spec(builder="no-such-builder"))
    assert rules(findings) == ["CHK241"]


def test_chk234_missing_trace_file():
    spec = good_spec(
        kwargs={
            "good_wifi": True,
            "download_bytes": mib(2),
            "csv_path": "/nonexistent/bandwidth.csv",
        }
    )
    findings = check_run_spec(spec)
    assert rules(findings) == ["CHK234"]


def test_chk234_existing_file_passes(tmp_path):
    csv = tmp_path / "bw.csv"
    csv.write_text("0,1.0\n")
    spec = good_spec(
        kwargs={
            "good_wifi": True,
            "download_bytes": mib(2),
            "csv_path": str(csv),
        }
    )
    assert check_run_spec(spec) == []


def test_chk242_unbuildable_scenario():
    spec = good_spec(kwargs={"no_such_kwarg": True})
    findings = check_run_spec(spec, build=True)
    assert rules(findings) == ["CHK242"]


def test_config_findings_on_stock_builders_are_errors():
    spec = good_spec(config={"tau_secondz": 1.0})
    findings = check_run_spec(spec)
    assert rules(findings) == ["CHK202"]
    assert findings[0].severity is Severity.ERROR


def test_config_findings_on_custom_builders_are_warnings():
    name = "test-check-config-custom"
    register_builder(name, execute=lambda spec: {}, replace=True)
    try:
        spec = RunSpec(
            protocol="emptcp", builder=name, config={"whatever": 1}
        )
        findings = check_run_spec(spec)
        assert rules(findings) == ["CHK202"]
        assert findings[0].severity is Severity.WARNING
    finally:
        _REGISTRY.pop(name, None)


def test_verify_specs_counts_and_aggregates():
    report = verify_specs([good_spec(), good_spec(builder="missing")])
    assert report.tier == "config"
    assert report.checked == 2
    assert rules(report.findings) == ["CHK241"]
    assert not report.ok


# ---------------------------------------------------------------------------
# the executor's pre-dispatch gate


def test_run_many_refuses_invalid_spec():
    from repro.runtime.executor import run_many

    with pytest.raises(ConfigurationError, match="pre-dispatch"):
        run_many([good_spec(builder="no-such-builder")], jobs=1)


def test_run_many_verify_can_be_disabled():
    from repro.runtime.executor import run_many

    # With verify off the bad builder surfaces as the builder lookup
    # error instead of the pre-dispatch gate.
    with pytest.raises(Exception) as excinfo:
        run_many(
            [good_spec(builder="no-such-builder")], jobs=1, verify=False
        )
    assert "pre-dispatch" not in str(excinfo.value)


def test_run_many_warnings_do_not_block():
    """A custom builder with a non-EMPTCPConfig config payload is
    advisory only — dispatch must proceed."""
    from repro.runtime.executor import run_many

    name = "test-check-config-warn"
    register_builder(
        name,
        execute=lambda spec: {"ok": True},
        encode=lambda result: result,
        decode=lambda payload: payload,
        replace=True,
    )
    try:
        specs = [
            RunSpec(protocol="emptcp", builder=name, config={"custom": 1})
        ]
        results = run_many(specs, jobs=1)
        assert results == [{"ok": True}]
    finally:
        _REGISTRY.pop(name, None)


# ---------------------------------------------------------------------------
# the deep default sweep


def test_check_defaults_is_clean():
    report = check_defaults()
    assert report.ok, report.format()
    assert report.checked > 0
