"""Seed-robustness of the headline orderings.

The shape assertions elsewhere run at fixed seeds; these tests verify
the *orderings* are not a seed lottery: across many seeds, the claimed
relationships hold in (nearly) every draw.
"""

import json

import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.random_bw import random_bw_scenario
from repro.experiments.static_bw import static_scenario
from repro.runtime import RunSpec, run_many
from repro.units import mib

SEEDS = range(8)


class TestSeedStability:
    def test_fig5_ordering_holds_for_every_seed(self):
        """Good WiFi: MPTCP burns more energy than eMPTCP, always."""
        scenario = static_scenario(True, download_bytes=mib(8))
        for seed in SEEDS:
            mptcp = run_scenario("mptcp", scenario, seed=seed)
            emptcp = run_scenario("emptcp", scenario, seed=seed)
            assert mptcp.energy_j > emptcp.energy_j, seed
            assert mptcp.download_time < emptcp.download_time, seed

    def test_fig6_ordering_holds_for_every_seed(self):
        """Bad WiFi: TCP/WiFi is far slower than MPTCP and eMPTCP."""
        scenario = static_scenario(False, download_bytes=mib(8))
        for seed in SEEDS:
            mptcp = run_scenario("mptcp", scenario, seed=seed)
            emptcp = run_scenario("emptcp", scenario, seed=seed)
            tcp = run_scenario("tcp-wifi", scenario, seed=seed)
            assert tcp.download_time > 3 * mptcp.download_time, seed
            assert emptcp.download_time < 2 * mptcp.download_time, seed

    def test_fig8_paired_ordering_mostly_holds(self):
        """Random bandwidth: per-seed (paired) comparisons — MPTCP is
        fastest and eMPTCP is never slower than TCP/WiFi, in at least
        7 of 8 draws."""
        scenario = random_bw_scenario(download_bytes=mib(32))
        fastest_wins = 0
        emptcp_not_slower = 0
        for seed in SEEDS:
            mptcp = run_scenario("mptcp", scenario, seed=seed)
            emptcp = run_scenario("emptcp", scenario, seed=seed)
            tcp = run_scenario("tcp-wifi", scenario, seed=seed)
            if mptcp.download_time <= emptcp.download_time:
                fastest_wins += 1
            if emptcp.download_time <= tcp.download_time * 1.02:
                emptcp_not_slower += 1
        assert fastest_wins >= 7
        assert emptcp_not_slower >= 7

    def test_determinism_same_seed_same_result(self):
        scenario = random_bw_scenario(download_bytes=mib(8))
        a = run_scenario("emptcp", scenario, seed=5)
        b = run_scenario("emptcp", scenario, seed=5)
        assert a.energy_j == b.energy_j
        assert a.download_time == b.download_time
        assert a.diagnostics == b.diagnostics

    @pytest.mark.runtime
    def test_parallel_execution_is_byte_identical_to_serial(self):
        """jobs=4 through the process pool must not perturb a single
        bit of any result relative to in-process serial execution."""
        specs = [
            RunSpec(
                protocol=protocol,
                builder="static",
                kwargs={"good_wifi": True, "download_bytes": mib(1)},
                seed=seed,
            )
            for protocol in ("emptcp", "tcp-wifi")
            for seed in range(2)
        ]
        serial = run_many(specs, jobs=1)
        parallel = run_many(specs, jobs=4)
        for s, p in zip(serial, parallel):
            assert json.dumps(s.to_dict(), sort_keys=True) == json.dumps(
                p.to_dict(), sort_keys=True
            )
