"""Tests for eMPTCP over the packet engine."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.net.bandwidth import ConstantCapacity
from repro.net.interface import InterfaceKind
from repro.packet.emptcp import PacketEmptcp, run_packet_protocol
from repro.packet.link import PacketLink
from repro.sim.engine import Simulator
from repro.tcp.connection import FiniteSource
from repro.units import mbps_to_bytes_per_sec, mib


def make_emptcp(sim, wifi_mbps=12.0, cell_mbps=10.0, size=mib(8)):
    wifi = PacketLink(
        sim,
        ConstantCapacity(mbps_to_bytes_per_sec(wifi_mbps)),
        one_way_delay=0.02,
        rng=random.Random(1),
        name="wifi",
    )
    lte = PacketLink(
        sim,
        ConstantCapacity(mbps_to_bytes_per_sec(cell_mbps)),
        one_way_delay=0.035,
        rng=random.Random(2),
        name="lte",
    )
    return PacketEmptcp(sim, wifi, lte, FiniteSource(size))


class TestPacketEmptcp:
    def test_good_wifi_never_establishes_lte(self):
        sim = Simulator()
        conn = make_emptcp(sim, wifi_mbps=12.0)
        conn.open()
        sim.run(until=120.0, max_events=30_000_000)
        assert conn.completed_at is not None
        assert conn.cell_subflow is None
        assert conn.bytes_received == pytest.approx(mib(8))

    def test_bad_wifi_establishes_and_uses_lte(self):
        sim = Simulator()
        conn = make_emptcp(sim, wifi_mbps=0.8, size=mib(8))
        conn.open()
        sim.run(until=300.0, max_events=30_000_000)
        assert conn.completed_at is not None
        assert conn.cell_subflow is not None
        assert conn.cell_subflow.bytes_acked_total > mib(4)
        # Far faster than WiFi alone would have been (~84 s).
        assert conn.completed_at < 30.0

    def test_energy_metered(self):
        sim = Simulator()
        conn = make_emptcp(sim, wifi_mbps=8.0, size=mib(2))
        conn.open()
        sim.run(until=60.0, max_events=30_000_000)
        assert conn.meter.checkpoint() > 0

    def test_pause_resume_on_packet_subflow(self):
        sim = Simulator()
        wifi = PacketLink(
            sim,
            ConstantCapacity(mbps_to_bytes_per_sec(8.0)),
            one_way_delay=0.02,
            rng=random.Random(1),
        )
        from repro.packet.mptcp import single_path_connection

        conn = single_path_connection(sim, wifi, FiniteSource(mib(8)))
        conn.open()
        sim.run(until=2.0)
        sf = conn.subflows[0]
        sf.pause()
        sim.run(until=2.5)  # in-flight drains
        delivered = sf.bytes_acked_total
        sim.run(until=4.0)
        assert sf.bytes_acked_total == pytest.approx(delivered, rel=0.01)
        sf.resume()
        sim.run(until=6.0)
        assert sf.bytes_acked_total > delivered

    def test_non_cellular_kind_rejected(self):
        sim = Simulator()
        wifi = PacketLink(
            sim, ConstantCapacity(1.0), one_way_delay=0.01, rng=random.Random(0)
        )
        with pytest.raises(ConfigurationError):
            PacketEmptcp(
                sim, wifi, wifi, FiniteSource(1.0), cell_kind=InterfaceKind.WIFI
            )


class TestRunPacketProtocol:
    def test_figure5_shape_at_packet_level(self):
        results = {
            p: run_packet_protocol(p, 12.0, 10.0, mib(8))
            for p in ("mptcp", "emptcp", "tcp-wifi")
        }
        energy = {p: e for p, (_t, e) in results.items()}
        assert energy["emptcp"] == pytest.approx(energy["tcp-wifi"], rel=0.05)
        assert energy["mptcp"] > 1.25 * energy["emptcp"]

    def test_figure6_shape_at_packet_level(self):
        results = {
            p: run_packet_protocol(p, 0.8, 10.0, mib(8))
            for p in ("mptcp", "emptcp", "tcp-wifi")
        }
        times = {p: t for p, (t, _e) in results.items()}
        energy = {p: e for p, (_t, e) in results.items()}
        assert energy["emptcp"] == pytest.approx(energy["mptcp"], rel=0.25)
        assert times["tcp-wifi"] > 4 * times["mptcp"]

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            run_packet_protocol("bogus", 8.0, 8.0, mib(1))
