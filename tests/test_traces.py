"""Tests for CSV trace loading."""

import pytest

from repro.errors import WorkloadError
from repro.sim.engine import Simulator
from repro.units import mbps_to_bytes_per_sec
from repro.workloads.traces import (
    capacity_from_csv,
    dump_bandwidth_csv,
    parse_bandwidth_csv,
)


class TestParse:
    def test_basic_rows(self):
        rows = parse_bandwidth_csv("0,5\n10,1.5\n20,8\n")
        assert rows == [
            (0.0, mbps_to_bytes_per_sec(5.0)),
            (10.0, mbps_to_bytes_per_sec(1.5)),
            (20.0, mbps_to_bytes_per_sec(8.0)),
        ]

    def test_header_and_comments_skipped(self):
        rows = parse_bandwidth_csv("time_s,mbps\n# note\n\n0,5\n1,6\n")
        assert len(rows) == 2

    def test_non_numeric_body_rejected(self):
        with pytest.raises(WorkloadError):
            parse_bandwidth_csv("0,5\nbad,row\n")

    def test_negative_rate_rejected(self):
        with pytest.raises(WorkloadError):
            parse_bandwidth_csv("0,-1\n")

    def test_non_increasing_times_rejected(self):
        with pytest.raises(WorkloadError):
            parse_bandwidth_csv("0,5\n0,6\n")

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            parse_bandwidth_csv("time_s,mbps\n")

    def test_short_row_rejected(self):
        with pytest.raises(WorkloadError):
            parse_bandwidth_csv("0\n")


class TestRoundTrip:
    def test_dump_then_parse(self):
        trace = [(0.0, mbps_to_bytes_per_sec(5.0)), (7.5, mbps_to_bytes_per_sec(0.8))]
        text = dump_bandwidth_csv(trace)
        rows = parse_bandwidth_csv(text)
        assert rows[0][0] == 0.0
        assert rows[1][1] == pytest.approx(mbps_to_bytes_per_sec(0.8), rel=1e-3)

    def test_capacity_from_csv(self, tmp_path):
        f = tmp_path / "trace.csv"
        f.write_text("time_s,mbps\n0,5\n2,1\n")
        cap = capacity_from_csv(f)
        sim = Simulator()
        cap.attach(sim)
        assert cap.rate == mbps_to_bytes_per_sec(5.0)
        sim.run(until=3.0)
        assert cap.rate == mbps_to_bytes_per_sec(1.0)

    def test_mobility_trace_exports(self):
        from repro.experiments.mobility import mobility_capacity_trace

        text = dump_bandwidth_csv(mobility_capacity_trace())
        rows = parse_bandwidth_csv(text)
        assert len(rows) > 200
