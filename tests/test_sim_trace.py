"""Tests for time-series recording and step-trace integration."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.trace import StepTrace, TimeSeries


class TestTimeSeries:
    def test_record_and_iterate(self):
        ts = TimeSeries("x")
        ts.record(0.0, 1.0)
        ts.record(1.0, 2.0)
        assert list(ts) == [(0.0, 1.0), (1.0, 2.0)]
        assert len(ts) == 2

    def test_non_monotonic_time_rejected(self):
        ts = TimeSeries("x")
        ts.record(1.0, 0.0)
        with pytest.raises(SimulationError):
            ts.record(0.5, 0.0)

    def test_equal_times_allowed(self):
        ts = TimeSeries("x")
        ts.record(1.0, 1.0)
        ts.record(1.0, 2.0)
        assert len(ts) == 2

    def test_value_at_step_semantics(self):
        ts = TimeSeries("x")
        ts.record(0.0, 10.0)
        ts.record(5.0, 20.0)
        assert ts.value_at(0.0) == 10.0
        assert ts.value_at(4.999) == 10.0
        assert ts.value_at(5.0) == 20.0
        assert ts.value_at(100.0) == 20.0

    def test_value_before_first_sample_raises(self):
        ts = TimeSeries("x")
        ts.record(1.0, 10.0)
        with pytest.raises(SimulationError):
            ts.value_at(0.5)

    def test_last(self):
        ts = TimeSeries("x")
        assert ts.last is None
        ts.record(1.0, 2.0)
        assert ts.last == (1.0, 2.0)

    def test_window(self):
        ts = TimeSeries("x")
        for t in range(10):
            ts.record(float(t), float(t))
        win = ts.window(2.0, 5.0)
        assert win.times == [2.0, 3.0, 4.0, 5.0]

    def test_resample(self):
        ts = TimeSeries("x")
        ts.record(0.0, 1.0)
        ts.record(10.0, 2.0)
        res = ts.resample([0.0, 5.0, 10.0])
        assert res.values == [1.0, 1.0, 2.0]


class TestStepTrace:
    def test_integral_of_constant(self):
        trace = StepTrace("p", initial=2.0)
        assert trace.integral(0.0, 5.0) == pytest.approx(10.0)

    def test_integral_across_steps(self):
        trace = StepTrace("p", initial=1.0)
        trace.set(2.0, 3.0)
        # 2s at 1 + 3s at 3 = 11
        assert trace.integral(0.0, 5.0) == pytest.approx(11.0)

    def test_integral_partial_segment(self):
        trace = StepTrace("p", initial=1.0)
        trace.set(2.0, 3.0)
        assert trace.integral(1.0, 3.0) == pytest.approx(1.0 + 3.0)

    def test_same_time_set_overwrites(self):
        trace = StepTrace("p", initial=1.0)
        trace.set(2.0, 5.0)
        trace.set(2.0, 3.0)
        assert trace.value_at(2.0) == 3.0
        assert trace.integral(0.0, 4.0) == pytest.approx(2.0 + 6.0)

    def test_empty_interval_is_zero(self):
        trace = StepTrace("p", initial=9.0)
        assert trace.integral(3.0, 3.0) == 0.0

    def test_reversed_interval_raises(self):
        trace = StepTrace("p")
        with pytest.raises(SimulationError):
            trace.integral(5.0, 1.0)

    def test_value_at(self):
        trace = StepTrace("p", initial=1.0)
        trace.set(1.0, 2.0)
        trace.set(2.0, 4.0)
        assert trace.value_at(0.5) == 1.0
        assert trace.value_at(1.5) == 2.0
        assert trace.value_at(2.0) == 4.0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.001, max_value=100.0),
                st.floats(min_value=0.0, max_value=10.0),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_property_integral_additivity(self, increments):
        """integral(a, c) == integral(a, b) + integral(b, c)."""
        trace = StepTrace("p", initial=1.0)
        t = 0.0
        for dt, value in increments:
            t += dt
            trace.set(t, value)
        end = t + 1.0
        mid = end / 2
        whole = trace.integral(0.0, end)
        split = trace.integral(0.0, mid) + trace.integral(mid, end)
        assert whole == pytest.approx(split, rel=1e-9, abs=1e-9)
