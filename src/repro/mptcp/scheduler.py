"""MPTCP packet schedulers.

The Linux MPTCP scheduler the paper runs on [29] selects, among
subflows with window space, the one with the lowest smoothed RTT.  In
the fluid model every unsuspended subflow transfers at its achievable
rate concurrently (which is what min-RTT scheduling converges to for a
backlogged transfer), so the scheduler's observable role here is the
*preference order*: which subflow gets new data first when the stream
is nearly drained, and which one is reported as primary.

eMPTCP's trick of zeroing a re-used subflow's RTT (§3.6) works through
exactly this ranking: a zero RTT sorts first, so the renewed subflow is
probed immediately.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mptcp.subflow import Subflow


class MinRttScheduler:
    """Prefer the lowest-srtt established, unsuspended subflow."""

    name = "min-rtt"

    def rank(self, subflows: Sequence["Subflow"]) -> List["Subflow"]:
        """Usable subflows, most preferred first."""
        usable = [sf for sf in subflows if sf.usable]
        return sorted(usable, key=lambda sf: (sf.effective_rtt, sf.name))

    def select(self, subflows: Sequence["Subflow"]):
        """The subflow that would receive the next packet, or None."""
        ranked = self.rank(subflows)
        return ranked[0] if ranked else None


class RoundRobinScheduler:
    """Cycle through usable subflows; kept for tests and ablations."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def rank(self, subflows: Sequence["Subflow"]) -> List["Subflow"]:
        usable = [sf for sf in subflows if sf.usable]
        if not usable:
            return []
        pivot = self._next % len(usable)
        return usable[pivot:] + usable[:pivot]

    def select(self, subflows: Sequence["Subflow"]):
        ranked = self.rank(subflows)
        if not ranked:
            return None
        self._next += 1
        return ranked[0]
