"""Linked-Increases coupled congestion control (RFC 6356).

MPTCP couples the congestion-avoidance growth of its subflows so the
aggregate is no more aggressive than a single TCP on the best path.
The per-connection aggressiveness factor is::

    alpha = cwnd_total * max_i(cwnd_i / rtt_i^2) / (sum_i cwnd_i / rtt_i)^2

and each subflow's window grows per acked byte by
``min(alpha * mss / cwnd_total, mss / cwnd_i)`` instead of
``mss / cwnd_i``.  The fluid congestion controller
(:class:`repro.tcp.congestion.RenoCongestionControl`) accepts exactly
that ratio as its ``coupling`` argument.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mptcp.subflow import Subflow


class LiaCoupling:
    """Computes the LIA coupling factor for one subflow per round."""

    def __init__(self, subflows_provider):
        """``subflows_provider`` is a zero-argument callable returning
        the connection's currently *sending* subflows."""
        self._subflows = subflows_provider

    @staticmethod
    def alpha(subflows: Iterable["Subflow"]) -> float:
        """The RFC 6356 alpha over the given subflows."""
        flows = [sf for sf in subflows if sf.established]
        if not flows:
            return 1.0
        total_cwnd = sum(sf.cwnd for sf in flows)
        if total_cwnd <= 0:
            return 1.0
        best = 0.0
        denom = 0.0
        for sf in flows:
            rtt = sf.effective_rtt
            if rtt <= 0:
                # A zeroed-RTT (freshly re-probed) subflow is treated as
                # the best path; fall back to its base RTT for the sums.
                rtt = sf.path.base_rtt
            best = max(best, sf.cwnd / (rtt * rtt))
            denom += sf.cwnd / rtt
        if denom <= 0:
            return 1.0
        return total_cwnd * best / (denom * denom)

    def factor_for(self, subflow: "Subflow") -> float:
        """Coupling factor passed to the subflow's Reno controller.

        Equals ``min(alpha * cwnd_i / cwnd_total, 1)`` so the resulting
        growth is ``min(alpha * mss / cwnd_total, mss / cwnd_i)``.
        """
        flows = [sf for sf in self._subflows() if sf.established]
        if len(flows) <= 1:
            return 1.0
        total_cwnd = sum(sf.cwnd for sf in flows)
        if total_cwnd <= 0 or subflow.cwnd <= 0:
            return 1.0
        a = self.alpha(flows)
        return min(a * subflow.cwnd / total_cwnd, 1.0)
