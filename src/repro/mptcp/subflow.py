"""An MPTCP subflow: one TCP connection bound to a path/interface.

Subflows add to the plain TCP connection the concepts MPTCP (and
eMPTCP) manipulate: a priority (normal / low / backup, driven by the
MP_PRIO option), suspension and resumption with eMPTCP's re-use tweaks,
and per-subflow delivery accounting.
"""

from __future__ import annotations

import enum
import random as _random
from typing import Callable, List, Optional

from repro import obs as _obs
from repro.errors import ProtocolError
from repro.net.interface import InterfaceKind
from repro.net.path import NetworkPath
from repro.sim.engine import Simulator
from repro.sim.trace import TimeSeries
from repro.tcp.connection import ByteSource, TcpConnection, TcpState


class SubflowPriority(enum.Enum):
    """MP_PRIO-controllable priority."""

    NORMAL = "normal"
    #: Suspended by the path-usage controller (MP_PRIO low).
    LOW = "low"
    #: Backup-mode subflow (established but unused until activated).
    BACKUP = "backup"


class Subflow:
    """One subflow of an MPTCP connection."""

    def __init__(
        self,
        sim: Simulator,
        path: NetworkPath,
        source: ByteSource,
        rng: Optional[_random.Random] = None,
        rfc2861_idle_reset: bool = True,
        coupling: Optional[Callable[[], float]] = None,
        name: str = "",
    ):
        self.sim = sim
        self.path = path
        self.name = name or f"subflow-{path.interface.kind.value}"
        self.priority = SubflowPriority.NORMAL
        self.bytes_delivered = 0.0
        #: Per-round delivery log: (time, delivered bytes).  Feeds the
        #: throughput traces of Figure 9 and the bandwidth sampler.
        self.delivery_series = TimeSeries(f"{self.name}-bytes")
        self._conn = TcpConnection(
            sim,
            path,
            source,
            rng=rng,
            rfc2861_idle_reset=rfc2861_idle_reset,
            coupling=coupling,
            name=self.name,
        )
        self._conn.on_delivery(self._on_delivery)
        self._delivery_listeners: List[Callable[["Subflow", float], None]] = []
        self.suspend_count = 0
        self.resume_count = 0
        self._trace = _obs.tracer_or_none()
        metrics = _obs.metrics_or_none()
        self._bytes_counter = (
            metrics.counter(f"subflow.bytes.{self.interface_kind.value}")
            if metrics is not None
            else None
        )

    def on_delivery(self, listener: Callable[["Subflow", float], None]) -> None:
        """Subscribe to per-round delivered bytes on this subflow."""
        self._delivery_listeners.append(listener)

    # ------------------------------------------------------------------
    # lifecycle

    def establish(self, extra_delay: float = 0.0) -> None:
        """Start the subflow handshake (MP_CAPABLE / MP_JOIN)."""
        self._conn.connect(extra_delay)
        if self.priority is SubflowPriority.BACKUP:
            # Backup subflows complete the handshake but do not send.
            self._conn.on_established(lambda conn: conn.pause())

    def close(self) -> None:
        """Tear the subflow down."""
        self._conn.close()

    def suspend(self) -> None:
        """Stop using the subflow (eMPTCP path controller via MP_PRIO)."""
        if not self.established:
            raise ProtocolError(f"cannot suspend unestablished {self.name}")
        if self.priority is SubflowPriority.LOW:
            return
        self.priority = SubflowPriority.LOW
        self.suspend_count += 1
        if self._trace is not None:
            self._trace.emit(
                "subflow.suspend",
                t=self.sim.now,
                subflow=self.name,
                interface=self.interface_kind.value,
            )
        self._conn.pause()

    def resume(self, reset_rtt: bool = False) -> None:
        """Re-use a suspended/backup subflow.

        ``reset_rtt=True`` applies eMPTCP's §3.6 tweak: the RTT
        estimate is zeroed so the min-RTT scheduler probes the renewed
        subflow immediately.  Whether the congestion window collapsed
        during the idle period is governed by the connection's RFC 2861
        flag (eMPTCP disables the reset, standard TCP keeps it).
        """
        if not self.established:
            raise ProtocolError(f"cannot resume unestablished {self.name}")
        if self.priority is SubflowPriority.NORMAL and not self._conn.paused:
            return
        self.priority = SubflowPriority.NORMAL
        self.resume_count += 1
        if self._trace is not None:
            self._trace.emit(
                "subflow.resume",
                t=self.sim.now,
                subflow=self.name,
                interface=self.interface_kind.value,
            )
        self._conn.resume(reset_rtt=reset_rtt)

    # ------------------------------------------------------------------
    # accounting

    def _on_delivery(self, conn: TcpConnection, delivered: float) -> None:
        self.bytes_delivered += delivered
        self.delivery_series.record(self.sim.now, delivered)
        if self._bytes_counter is not None:
            self._bytes_counter.inc(delivered)
        for listener in list(self._delivery_listeners):
            listener(self, delivered)

    # ------------------------------------------------------------------
    # views

    @property
    def interface_kind(self) -> InterfaceKind:
        """The device interface this subflow runs over."""
        return self.path.interface.kind

    @property
    def established(self) -> bool:
        """True once the handshake completed (even if suspended)."""
        return self._conn.established

    @property
    def pending(self) -> bool:
        """True while the handshake is in flight."""
        return self._conn.state is TcpState.CONNECTING

    @property
    def closed(self) -> bool:
        """True after close()."""
        return self._conn.state is TcpState.CLOSED

    @property
    def suspended(self) -> bool:
        """True while the path controller has the subflow paused."""
        return self.priority in (SubflowPriority.LOW, SubflowPriority.BACKUP)

    @property
    def usable(self) -> bool:
        """True when the scheduler may place data on the subflow."""
        return self.established and not self.suspended and self.path.is_up

    @property
    def sending(self) -> bool:
        """True while transferring or stalled-with-retry."""
        return self._conn.sending

    @property
    def in_flight(self) -> bool:
        """True while data is actually in flight (stall retries do not
        count — used for completion detection)."""
        return self._conn.in_flight

    @property
    def current_rate(self) -> float:
        """Instantaneous delivery rate, bytes/s."""
        return self._conn.current_rate

    @property
    def cwnd(self) -> float:
        """Congestion window, bytes."""
        return self._conn.cc.cwnd

    @property
    def effective_rtt(self) -> float:
        """Smoothed RTT used by the min-RTT scheduler (0 right after an
        eMPTCP re-use reset)."""
        return self._conn.rtt_estimator.srtt

    @property
    def handshake_rtt(self) -> Optional[float]:
        """RTT measured during establishment (sets the sampler's δ)."""
        return self._conn.handshake_rtt

    @property
    def connection(self) -> TcpConnection:
        """The underlying fluid TCP connection (for wiring/energy)."""
        return self._conn

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Subflow {self.name} prio={self.priority.value} "
            f"delivered={self.bytes_delivered:.0f}B>"
        )
