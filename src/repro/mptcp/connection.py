"""The MPTCP connection: one logical TCP stream over many subflows.

Implements the protocol surface the paper relies on:

* **Modes** (§2.1): Full-MPTCP (all interfaces), Single-Path (one
  subflow at a time, a new one only after the active interface goes
  down), and Backup (subflows established everywhere but a subset kept
  idle until activated).
* **MP_PRIO** (§3.6): the priority change eMPTCP uses to suspend and
  resume subflows at run time; every option event is logged.
* **Coupled congestion control** (RFC 6356) via
  :class:`~repro.mptcp.coupled.LiaCoupling`.
* **Deferred joins**: eMPTCP needs full control over *when* the
  cellular subflow is established (§3.5), so automatic joining of
  secondary paths can be disabled and driven externally.
"""

from __future__ import annotations

import enum
import random as _random
from typing import Callable, List, Optional, Sequence, Union

from repro import obs as _obs
from repro.errors import ProtocolError
from repro.mptcp.coupled import LiaCoupling
from repro.mptcp.olia import OliaCoupling
from repro.mptcp.options import MpCapable, MpJoin, MpPrio
from repro.mptcp.scheduler import MinRttScheduler
from repro.mptcp.subflow import Subflow, SubflowPriority
from repro.net.interface import InterfaceKind
from repro.net.path import NetworkPath
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.tcp.connection import ByteSource

OptionRecord = Union[MpCapable, MpJoin, MpPrio]


class MptcpMode(enum.Enum):
    """Subflow-usage modes (§2.1)."""

    FULL = "full"
    SINGLE_PATH = "single-path"
    BACKUP = "backup"


class MPTCPConnection:
    """A multipath connection over a primary path plus secondaries.

    Parameters
    ----------
    primary_path:
        The default interface's path; the paper (and eMPTCP) use WiFi
        as the primary because its fixed costs are negligible (§3.6).
    secondary_paths:
        Remaining paths (cellular).  When/whether subflows are joined
        over them depends on ``mode`` and ``auto_join``.
    auto_join:
        In FULL/BACKUP mode, join secondaries automatically one RTT
        after the first subflow establishes (standard MPTCP).  eMPTCP
        passes ``False`` and drives joins itself.
    reuse_reset_rtt / rfc2861_idle_reset:
        eMPTCP's §3.6 subflow re-use tweaks; standard MPTCP keeps the
        defaults (no RTT reset, RFC 2861 reset enabled).
    """

    def __init__(
        self,
        sim: Simulator,
        primary_path: NetworkPath,
        source: ByteSource,
        secondary_paths: Sequence[NetworkPath] = (),
        mode: MptcpMode = MptcpMode.FULL,
        rng: Optional[_random.Random] = None,
        coupled: bool = True,
        coupling_algorithm: str = "lia",
        auto_join: bool = True,
        rfc2861_idle_reset: bool = True,
        reuse_reset_rtt: bool = False,
        scheduler_hol_penalty: bool = True,
        name: str = "mptcp",
    ):
        self.sim = sim
        self.primary_path = primary_path
        self.secondary_paths = list(secondary_paths)
        self.source = source
        self.mode = mode
        self.rng = rng or _random.Random(0)
        self.coupled = coupled
        self.auto_join = auto_join
        self.rfc2861_idle_reset = rfc2861_idle_reset
        self.reuse_reset_rtt = reuse_reset_rtt
        self.scheduler_hol_penalty = scheduler_hol_penalty
        self.name = name

        self.scheduler = MinRttScheduler()
        self.subflows: List[Subflow] = []
        self.option_log: List[OptionRecord] = []
        self.opened = False
        self.completed_at: Optional[float] = None
        if coupling_algorithm == "lia":
            self._coupling = LiaCoupling(self._active_subflows)
        elif coupling_algorithm == "olia":
            self._coupling = OliaCoupling(self._active_subflows)
        else:
            raise ProtocolError(
                f"unknown coupling algorithm {coupling_algorithm!r}; "
                "choose 'lia' or 'olia'"
            )
        self.coupling_algorithm = coupling_algorithm
        self._complete_listeners: List[Callable[["MPTCPConnection"], None]] = []
        self._delivery_listeners: List[Callable[[Subflow, float], None]] = []
        self._established_listeners: List[Callable[[Subflow], None]] = []
        self._single_path_monitor: Optional[PeriodicProcess] = None
        self._single_path_cursor = 0
        self._trace = _obs.tracer_or_none()
        metrics = _obs.metrics_or_none()
        self._prio_counter = (
            metrics.counter("mptcp.mp_prio") if metrics is not None else None
        )

    # ------------------------------------------------------------------
    # listeners

    def on_complete(self, listener: Callable[["MPTCPConnection"], None]) -> None:
        """Subscribe to transfer completion (finite sources only)."""
        self._complete_listeners.append(listener)

    def on_delivery(self, listener: Callable[[Subflow, float], None]) -> None:
        """Subscribe to per-round deliveries on any subflow."""
        self._delivery_listeners.append(listener)

    def on_subflow_established(self, listener: Callable[[Subflow], None]) -> None:
        """Subscribe to subflow handshake completions."""
        self._established_listeners.append(listener)

    # ------------------------------------------------------------------
    # lifecycle

    def open(self) -> Subflow:
        """Establish the connection over the primary path."""
        if self.opened:
            raise ProtocolError("connection already opened")
        self.opened = True
        primary = self._make_subflow(self.primary_path, initial=True)
        self.option_log.append(MpCapable(self.sim.now, primary.name))
        primary.connection.on_established(lambda _c: self._primary_up(primary))
        primary.establish()
        if self.mode is MptcpMode.SINGLE_PATH:
            self._single_path_monitor = PeriodicProcess(
                self.sim, 1.0, self._check_single_path
            )
            self._single_path_monitor.start()
        return primary

    def _primary_up(self, primary: Subflow) -> None:
        self._notify_established(primary)
        if self.auto_join and self.mode in (MptcpMode.FULL, MptcpMode.BACKUP):
            backup = self.mode is MptcpMode.BACKUP
            for path in self.secondary_paths:
                self.add_subflow(path, backup=backup)

    def add_subflow(
        self, path: NetworkPath, backup: bool = False, extra_delay: float = 0.0
    ) -> Subflow:
        """Join an additional subflow over ``path`` (MP_JOIN)."""
        if not self.opened:
            raise ProtocolError("open() the connection before joining subflows")
        if any(sf.path is path and not sf.closed for sf in self.subflows):
            raise ProtocolError(f"path {path.name} already carries a subflow")
        subflow = self._make_subflow(path)
        if backup:
            subflow.priority = SubflowPriority.BACKUP
        self.option_log.append(MpJoin(self.sim.now, subflow.name, backup=backup))
        subflow.connection.on_established(
            lambda _c: self._notify_established(subflow)
        )
        subflow.establish(extra_delay=extra_delay)
        return subflow

    def _make_subflow(self, path: NetworkPath, initial: bool = False) -> Subflow:
        index = len(self.subflows)
        subflow = Subflow(
            self.sim,
            path,
            self.source,
            rng=_random.Random(self.rng.getrandbits(64)),
            rfc2861_idle_reset=self.rfc2861_idle_reset,
            coupling=None,
            name=f"{self.name}/sf{index}-{path.interface.kind.value}",
        )
        if self.coupled:
            subflow.connection.coupling = (
                lambda sf=subflow: self._coupling.factor_for(sf)
            )
        if self.scheduler_hol_penalty:
            subflow.connection.rate_shaper = (
                lambda cap, sf=subflow: cap * self._scheduler_utilization(sf, cap)
            )
        subflow.on_delivery(self._on_delivery)
        self.subflows.append(subflow)
        return subflow

    def _scheduler_utilization(self, subflow: Subflow, cap: float) -> float:
        """Utilization the min-RTT scheduler grants a subflow.

        The preferred (lowest-RTT) subflow is filled first; a
        higher-RTT subflow only carries what receive-window space and
        head-of-line blocking allow, which shrinks as the preferred
        subflow's rate covers more of the demand (the paper observes
        exactly this: "standard MPTCP avoids aggressive use of the LTE
        subflow when the WiFi subflow provides high bandwidth", §4.4).

        Modelled as ``cap / (cap + preferred_rate)``: with WiFi at
        12 Mbps an LTE subflow capable of 10 Mbps gets ~45% of it; with
        WiFi collapsed to 0.5 Mbps it gets ~95%.

        Preference uses the paths' base RTTs: ranking by the live
        smoothed RTT creates a starvation trap (a queue-inflated RTT
        demotes the subflow, whose shaped-down capacity keeps its RTT
        inflated), which real TCP escapes because losses drain the
        queue.
        """
        active = self._active_subflows()
        if not active:
            return 1.0
        preferred = min(active, key=lambda sf: (sf.path.base_rtt, sf.name))
        if preferred is subflow:
            return 1.0
        preferred_rate = preferred.current_rate
        if preferred_rate <= 0 or cap <= 0:
            return 1.0
        return max(0.05, cap / (cap + preferred_rate))

    def close(self) -> None:
        """Close every subflow."""
        if self._single_path_monitor is not None:
            self._single_path_monitor.stop()
        for subflow in self.subflows:
            subflow.close()

    # ------------------------------------------------------------------
    # MP_PRIO control (used by the eMPTCP path controller)

    def set_low_priority(self, subflow: Subflow, low: bool) -> None:
        """Suspend (``low=True``) or resume a subflow via MP_PRIO."""
        if subflow not in self.subflows:
            raise ProtocolError(f"unknown subflow {subflow.name}")
        self.option_log.append(MpPrio(self.sim.now, subflow.name, low=low))
        if self._trace is not None:
            self._trace.emit(
                "mptcp.mp_prio", t=self.sim.now, subflow=subflow.name, low=low
            )
        if self._prio_counter is not None:
            self._prio_counter.inc()
        if low:
            subflow.suspend()
        else:
            subflow.resume(reset_rtt=self.reuse_reset_rtt)
            subflow.connection.notify_data()

    # ------------------------------------------------------------------
    # single-path mode

    def _check_single_path(self) -> None:
        """Single-Path mode (§2.1): open a new subflow only after the
        interface of the current one goes down."""
        active = [sf for sf in self.subflows if sf.established and sf.path.is_up]
        if active or self.source.exhausted:
            return
        remaining = [
            p
            for p in self.secondary_paths[self._single_path_cursor :]
            if p.is_up
        ]
        if not remaining:
            return
        self._single_path_cursor = self.secondary_paths.index(remaining[0]) + 1
        self.add_subflow(remaining[0])

    # ------------------------------------------------------------------
    # accounting

    def _on_delivery(self, subflow: Subflow, delivered: float) -> None:
        for listener in list(self._delivery_listeners):
            listener(subflow, delivered)
        self._maybe_complete()

    def _notify_established(self, subflow: Subflow) -> None:
        for listener in list(self._established_listeners):
            listener(subflow)

    def _maybe_complete(self) -> None:
        if self.completed_at is not None:
            return
        # Queue-style sources (web objects) drain and refill; only a
        # final source's exhaustion ends the transfer.
        if not getattr(self.source, "final", True):
            return
        if not self.source.exhausted:
            return
        if any(sf.in_flight for sf in self.subflows):
            return
        self.completed_at = self.sim.now
        for listener in list(self._complete_listeners):
            listener(self)

    def _active_subflows(self) -> List[Subflow]:
        return [sf for sf in self.subflows if sf.usable]

    # ------------------------------------------------------------------
    # views

    @property
    def bytes_received(self) -> float:
        """Total bytes delivered across all subflows."""
        return sum(sf.bytes_delivered for sf in self.subflows)

    @property
    def aggregate_rate(self) -> float:
        """Instantaneous aggregate delivery rate, bytes/s."""
        return sum(sf.current_rate for sf in self.subflows)

    def subflow_for(self, kind: InterfaceKind) -> Optional[Subflow]:
        """The (non-closed) subflow over the given interface kind."""
        for sf in self.subflows:
            if sf.interface_kind is kind and not sf.closed:
                return sf
        return None

    def notify_data(self) -> None:
        """Wake idle subflows after new application data was queued."""
        for sf in self.subflows:
            if sf.usable:
                sf.connection.notify_data()

    @property
    def is_idle(self) -> bool:
        """True when no subflow has transferred anything for at least
        one smoothed RTT — the paper's idle-connection criterion used
        to veto delayed cellular establishment (§3.5)."""
        now = self.sim.now
        for sf in self.subflows:
            if sf.sending:
                return False
            conn = sf.connection
            if conn.last_activity is None:
                continue
            rtt = conn.rtt_estimator.srtt or sf.path.base_rtt
            if now - conn.last_activity <= max(rtt, 1e-3):
                return False
        return True
