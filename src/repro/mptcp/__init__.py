"""Multi-Path TCP substrate.

Implements the MPTCP machinery the paper builds on (§2.1): subflows
over interface pairs exposed as one logical connection, the three modes
of operation (Full-MPTCP / Single-Path / Backup), the default min-RTT
scheduler, Linked-Increases coupled congestion control (RFC 6356), and
the MP_PRIO option eMPTCP uses to suspend and resume subflows.
"""

from repro.mptcp.connection import MptcpMode, MPTCPConnection
from repro.mptcp.coupled import LiaCoupling
from repro.mptcp.options import MpCapable, MpJoin, MpPrio
from repro.mptcp.scheduler import MinRttScheduler, RoundRobinScheduler
from repro.mptcp.subflow import Subflow, SubflowPriority

__all__ = [
    "LiaCoupling",
    "MPTCPConnection",
    "MinRttScheduler",
    "MpCapable",
    "MpJoin",
    "MpPrio",
    "MptcpMode",
    "RoundRobinScheduler",
    "Subflow",
    "SubflowPriority",
]
