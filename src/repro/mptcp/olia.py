"""OLIA — the Opportunistic Linked-Increases Algorithm.

Khalili et al. ("MPTCP is not Pareto-optimal", CoNEXT 2012) showed that
LIA can be simultaneously unfriendly and suboptimal, and proposed OLIA.
Per ACK, the window of path ``r`` grows by

    ( w_r/rtt_r^2 / (sum_p w_p/rtt_p)^2  +  alpha_r / w_r ) x MSS x acked

The first term caps the aggregate at roughly one TCP on the best path;
the ``alpha_r`` term *re-forwards* traffic: paths that currently offer
the best quality but hold small windows get a positive boost, paid for
by the maximum-window paths.

This implementation uses the current delivery rate (``cwnd/rtt``) as
the path-quality proxy in place of OLIA's inter-loss byte counts — a
documented simplification; the re-forwarding property it exists for is
preserved (see the unit tests).  It plugs into the same
congestion-controller coupling hook as LIA: the factor returned here
multiplies the Reno increase ``MSS x acked / cwnd``, so it equals
``w_r^2/rtt_r^2 / (sum_p w_p/rtt_p)^2 + alpha_r``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mptcp.subflow import Subflow


class OliaCoupling:
    """Computes the OLIA coupling factor for one subflow per round."""

    def __init__(self, subflows_provider):
        """``subflows_provider`` is a zero-argument callable returning
        the connection's currently usable subflows."""
        self._subflows = subflows_provider

    @staticmethod
    def _rtt(subflow: "Subflow") -> float:
        rtt = subflow.effective_rtt
        return rtt if rtt > 0 else subflow.path.base_rtt

    def _alpha(self, flows: List["Subflow"], subflow: "Subflow") -> float:
        n = len(flows)
        rates = {sf: sf.cwnd / self._rtt(sf) for sf in flows}
        best_rate = max(rates.values())
        max_cwnd = max(sf.cwnd for sf in flows)
        # Best-quality paths whose window is not already maximal get the
        # boost ("collected" paths); maximum-window paths pay for it.
        collected = [
            sf
            for sf in flows
            if rates[sf] >= 0.99 * best_rate and sf.cwnd < 0.99 * max_cwnd
        ]
        max_paths = [sf for sf in flows if sf.cwnd >= 0.99 * max_cwnd]
        if not collected:
            return 0.0
        if subflow in collected:
            return 1.0 / (n * len(collected))
        if subflow in max_paths:
            return -1.0 / (n * len(max_paths))
        return 0.0

    def factor_for(self, subflow: "Subflow") -> float:
        """Coupling factor for the subflow's Reno controller."""
        flows = [sf for sf in self._subflows() if sf.established]
        if len(flows) <= 1 or subflow not in flows:
            return 1.0
        denom = sum(sf.cwnd / self._rtt(sf) for sf in flows)
        if denom <= 0 or subflow.cwnd <= 0:
            return 1.0
        rtt = self._rtt(subflow)
        basis = (subflow.cwnd / rtt) ** 2 / denom**2
        factor = basis + self._alpha(flows, subflow)
        return max(0.0, min(factor, 1.0))
