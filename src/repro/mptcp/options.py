"""MPTCP option records (RFC 6824).

The simulator does not serialise real TCP options, but the *control
events* they represent matter to the reproduction: eMPTCP suspends a
subflow by adding an MP_PRIO option to the next transmitted packet
(§3.6).  Connections keep a log of these records so tests and
experiments can assert on the exact control sequence.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MpCapable:
    """MP_CAPABLE: initial handshake of the first subflow."""

    time: float
    subflow: str


@dataclass(frozen=True)
class MpJoin:
    """MP_JOIN: an additional subflow joining the connection.

    ``backup`` mirrors the B-flag: the subflow starts in backup mode.
    """

    time: float
    subflow: str
    backup: bool = False


@dataclass(frozen=True)
class MpPrio:
    """MP_PRIO: a priority change for an existing subflow.

    ``low=True`` asks the peer to stop using the subflow (how eMPTCP
    suspends LTE); ``low=False`` restores it.
    """

    time: float
    subflow: str
    low: bool
