"""Command-line entry point: regenerate any of the paper's experiments.

Usage::

    emptcp-repro list
    emptcp-repro table2
    emptcp-repro fig5 --runs 3 --size-mb 64
    emptcp-repro fig17 --runs 3

Every command prints the same rows/series the corresponding figure or
table in the paper reports.  Sizes and run counts default to scaled-down
values so the CLI stays interactive; pass paper-scale values to match
§4/§5 exactly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.report import format_table, print_protocol_summary, relative_to
from repro.analysis.stats import mean
from repro.errors import ConfigurationError, ExecutionError
from repro.experiments import background as bg
from repro.experiments import comparisons, mobility, random_bw, regions, static_bw
from repro.experiments import overheads as ovh
from repro.experiments import handover as handover_exp
from repro.check import packet as pv
from repro.experiments import streaming as stream_exp
from repro.experiments import upload as upload_exp
from repro.experiments import web as web_exp
from repro.experiments import wild as wild_exp
from repro.obs import ObsOptions, iter_trace_files, validate_trace_files
from repro.obs.summarize import (
    build_timeline,
    format_timeline,
    format_trace_summary,
    summarize_target,
)
from repro.runtime.cache import ResultCache
from repro.runtime.executor import use_runtime
from repro.runtime.manifest import RunManifest, format_summary, summarize
from repro.runtime.perf import PerfStore
from repro.runtime.progress import auto_reporter
from repro.units import mib


def _cmd_list(_args) -> int:
    for name, doc in sorted(_COMMANDS.items()):
        print(f"{name:10s} {doc[1]}")
    return 0


def _cmd_table1(_args) -> int:
    rows = ovh.table1_rows()
    headers = list(rows[0].keys())
    print(format_table(headers, [[r[h] for h in headers] for r in rows]))
    return 0


def _cmd_table2(_args) -> int:
    rows = regions.table2_rows()
    print(
        format_table(
            ["LTE Mbps", "LTE-only below (ours)", "WiFi-only above (ours)",
             "LTE-only (paper)", "WiFi-only (paper)"],
            [
                [
                    f"{e.cell_mbps:.1f}",
                    f"{e.cellular_only_below:.3f}",
                    f"{e.wifi_only_above:.3f}",
                    f"{regions.TABLE2_PAPER[e.cell_mbps][0]:.3f}",
                    f"{regions.TABLE2_PAPER[e.cell_mbps][1]:.3f}",
                ]
                for e in rows
            ],
        )
    )
    return 0


def _cmd_fig1(_args) -> int:
    print(
        format_table(
            ["device", "interface", "fixed overhead (J)", "paper (J)"],
            [
                [dev, iface, f"{joules:.2f}",
                 f"{ovh.FIGURE1_PAPER.get((dev, iface), float('nan')):.2f}"]
                for dev, iface, joules in ovh.fixed_overheads()
            ],
        )
    )
    return 0


def _cmd_fig3(_args) -> int:
    wifi, lte, grid = regions.figure3_heatmap(step=1.0)
    header = ["LTE\\WiFi"] + [f"{w:.0f}" for w in wifi]
    rows = [
        [f"{lte[i]:.0f}"] + [f"{grid[i][j]:.2f}" for j in range(len(wifi))]
        for i in range(len(lte))
    ]
    print("Per-byte energy of MPTCP / best single path (values < 1: MPTCP wins)")
    print(format_table(header, rows))
    return 0


def _cmd_fig4(_args) -> int:
    for label, bounds in regions.figure4_regions().items():
        print(f"-- {label}: LTE Mbps -> [WiFi lo, WiFi hi] where MPTCP wins")
        for lte_rate, (lo, hi) in sorted(bounds.items()):
            print(f"   {lte_rate:5.2f} -> [{lo:.2f}, {hi:.2f}]")
    return 0


def _run_static(args, good: bool, fig: str) -> int:
    results = static_bw.run_static(
        good, runs=args.runs, download_bytes=mib(args.size_mb),
        engine=args.engine,
    )
    print(print_protocol_summary(f"Figure {fig} ({'good' if good else 'bad'} WiFi, "
                                 f"{args.size_mb} MiB x {args.runs} runs)", results))
    return 0


def _cmd_run(args) -> int:
    """One protocol on the §4.2 static scenario, on any engine."""
    from repro.engines import get_engine
    from repro.runtime.executor import group_results, run_specs

    protocol = args.subcommand or "emptcp"
    wifi = args.target or "good"
    if wifi not in ("good", "bad"):
        print(f"unknown WiFi quality {wifi!r}; choose good or bad",
              file=sys.stderr)
        return 2
    known = get_engine(args.engine).protocols
    if protocol not in known:
        print(f"unknown protocol {protocol!r} for engine {args.engine!r}; "
              f"choose one of {', '.join(known)}", file=sys.stderr)
        return 2
    specs = static_bw.static_specs(
        wifi == "good",
        runs=args.runs,
        download_bytes=mib(args.size_mb),
        protocols=(protocol,),
        engine=args.engine,
    )
    results = group_results(specs, run_specs(specs))
    print(print_protocol_summary(
        f"{protocol} on {wifi} WiFi ({args.engine} engine, "
        f"{args.size_mb} MiB x {args.runs} runs)", results))
    return 0


def _cmd_fig5(args) -> int:
    return _run_static(args, good=True, fig="5")


def _cmd_fig6(args) -> int:
    return _run_static(args, good=False, fig="6")


def _cmd_fig7(args) -> int:
    traces = random_bw.example_trace(download_bytes=mib(args.size_mb))
    for protocol, result in traces.items():
        last = result.energy_series.last
        print(
            f"{protocol:10s} completed t={result.download_time:7.1f}s  "
            f"energy={result.energy_j:7.1f}J  final series point={last}"
        )
    return 0


def _cmd_fig8(args) -> int:
    results = random_bw.run_random_bw(runs=args.runs, download_bytes=mib(args.size_mb))
    print(print_protocol_summary(
        f"Figure 8 (random WiFi bandwidth, {args.size_mb} MiB x {args.runs})", results))
    rel_e = relative_to(results, "mptcp", "energy_j")
    print("relative energy vs MPTCP: "
          + ", ".join(f"{p}={v:.2f}" for p, v in rel_e.items()))
    return 0


def _cmd_fig9(args) -> int:
    traces = bg.example_traces(download_bytes=mib(args.size_mb))
    for protocol, result in traces.items():
        wifi_mb = result.diagnostics.get("wifi_bytes", 0.0) / 1e6
        lte_mb = result.diagnostics.get("lte_bytes", 0.0) / 1e6
        print(f"{protocol:8s} wifi={wifi_mb:7.1f}MB lte={lte_mb:7.1f}MB "
              f"time={result.download_time:6.1f}s energy={result.energy_j:6.1f}J")
    return 0


def _cmd_fig10(args) -> int:
    results = bg.run_background(runs=args.runs, download_bytes=mib(args.size_mb))
    rows = bg.normalize_to_mptcp(results)
    print(format_table(
        ["lambda_off", "n", "protocol", "energy %MPTCP", "time %MPTCP"],
        [[r.lambda_off, r.n, r.protocol, f"{r.energy_pct:6.1f}%", f"{r.time_pct:6.1f}%"]
         for r in rows],
    ))
    return 0


def _cmd_fig12(_args) -> int:
    traces = mobility.example_traces()
    for protocol, result in traces.items():
        print(f"{protocol:10s} energy={result.energy_j:7.1f}J "
              f"downloaded={result.bytes_received / 1e6:7.1f}MB in 250s")
    return 0


def _cmd_fig13(args) -> int:
    results = mobility.run_mobility(runs=args.runs)
    rows = []
    for protocol, runs in results.items():
        jpb = mean([r.joules_per_bit for r in runs]) * 1e6
        data = mean([r.bytes_received for r in runs]) / 1e6
        rows.append([protocol, f"{jpb:8.3f} uJ/bit", f"{data:8.1f} MB"])
    print(format_table(["protocol", "energy per bit", "downloaded (250s)"], rows))
    return 0


def _cmd_fig14(args) -> int:
    traces = wild_exp.collect_traces(
        wild_exp.LARGE_BYTES, n_environments=args.envs
    )
    counts: Dict[str, int] = {}
    for point in wild_exp.scatter_points(traces):
        counts[point["category"]] = counts.get(point["category"], 0) + 1
    print(format_table(["category", "traces"], sorted(counts.items())))
    return 0


def _run_wild(args, size: float, fig: str) -> int:
    traces = wild_exp.collect_traces(size, n_environments=args.envs)
    for metric, unit in (("energy_j", "J"), ("download_time", "s")):
        print(f"Figure {fig} — {metric}")
        summaries = wild_exp.whiskers_by_category(traces, metric)
        rows = []
        for category, by_proto in summaries.items():
            for protocol, w in by_proto.items():
                rows.append([
                    category.value, protocol,
                    f"{w.q1:8.2f}", f"{w.median:8.2f}", f"{w.q3:8.2f}",
                    len(w.outliers),
                ])
        print(format_table(
            ["category", "protocol", f"Q1 ({unit})", f"median ({unit})",
             f"Q3 ({unit})", "outliers"], rows))
    return 0


def _cmd_fig15(args) -> int:
    return _run_wild(args, wild_exp.SMALL_BYTES, "15")


def _cmd_fig16(args) -> int:
    return _run_wild(args, wild_exp.LARGE_BYTES, "16")


def _cmd_fig17(args) -> int:
    results = web_exp.run_web_comparison(runs=args.runs)
    rows = []
    for protocol, web_runs in results.items():
        rows.append([
            protocol,
            f"{mean([r.energy_j for r in web_runs]):7.2f} J",
            f"{mean([r.latency for r in web_runs]):7.2f} s",
            f"{mean([r.lte_bytes for r in web_runs]) / 1e3:8.1f} KB over LTE",
        ])
    print(format_table(["protocol", "energy", "latency", "LTE usage"], rows))
    return 0


def _cmd_sec46(args) -> int:
    print("MDP policy actions chosen:",
          [a.value for a in comparisons.mdp_policy_actions()])
    results = comparisons.run_mobility_comparison(runs=args.runs)
    rows = []
    for protocol, runs in results.items():
        rows.append([
            protocol,
            f"{mean([r.energy_j for r in runs]):7.1f} J",
            f"{mean([r.bytes_received for r in runs]) / 1e6:7.1f} MB",
        ])
    print(format_table(["protocol", "energy (250s walk)", "downloaded"], rows))
    return 0


def _cmd_upload(args) -> int:
    rows = upload_exp.upload_eib_rows()
    print("Upload-direction EIB thresholds (Galaxy S3, LTE):")
    for entry in rows:
        print(f"  LTE {entry.cell_mbps:4.1f}: LTE-only < {entry.cellular_only_below:.3f}, "
              f"WiFi-only >= {entry.wifi_only_above:.3f} Mbps")
    for good, label in ((True, "good"), (False, "bad")):
        results = upload_exp.run_upload(
            good, runs=args.runs, upload_bytes=mib(args.size_mb)
        )
        print(print_protocol_summary(
            f"Upload, {label} WiFi ({args.size_mb} MiB x {args.runs})", results))
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.report_all import generate_report

    text = generate_report(args.scale)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_cache(args) -> int:
    cache = ResultCache(args.cache_dir)
    sub = args.subcommand or "stats"
    if sub == "stats":
        stats = cache.stats()
        print(f"cache root: {stats.root}")
        print(f"entries:    {stats.entries}")
        print(f"size:       {stats.total_bytes / 1e6:.2f} MB")
        print(f"segments:   {stats.segments}")
        if stats.legacy_entries:
            print(f"legacy:     {stats.legacy_entries} per-run JSON blob(s) "
                  f"(migrated to segments on next read)")
        # Durable per-batch store telemetry (one snapshot per batch,
        # appended to <cache>/perf/cache-telemetry.jsonl by the
        # scheduler); the live counters die with each process, so this
        # is the only place cache behaviour over time is visible.
        snapshots = PerfStore(Path(args.cache_dir) / "perf").cache_telemetry()
        if snapshots:
            last = snapshots[-1]
            hits = int(last.get("hits", 0))
            misses = int(last.get("misses", 0))
            lookups = hits + misses
            ratio = hits / lookups if lookups else 0.0
            print(f"telemetry:  {len(snapshots)} batch snapshot(s); latest: "
                  f"{hits} hit(s) / {misses} miss(es) "
                  f"(ratio {ratio:.2f}), "
                  f"{int(last.get('appends', 0))} append(s), "
                  f"{int(last.get('evictions', 0))} eviction(s), "
                  f"{int(last.get('migrated', 0))} migrated")
        else:
            print("telemetry:  no batch snapshots yet "
                  "(each batch appends one to perf/cache-telemetry.jsonl)")
        return 0
    if sub == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.root}")
        return 0
    print(f"unknown cache subcommand {sub!r}; choose stats or clear",
          file=sys.stderr)
    return 2


def _cmd_service(args) -> int:
    sub = args.subcommand or "serve"
    if sub == "serve":
        return _service_serve(args)
    if sub == "smoke":
        return _service_smoke(args)
    if sub == "top":
        return _service_top(args)
    if sub == "obs-smoke":
        return _service_obs_smoke(args)
    print(f"unknown service subcommand {sub!r}; choose serve, smoke, top, "
          f"or obs-smoke", file=sys.stderr)
    return 2


def _service_obs_options(args) -> Optional[ObsOptions]:
    """Per-run obs capture for the service, from the shared CLI flags.

    Lifecycle spans and ``/v1/metrics`` are always on; this only governs
    whether each executed run additionally exports trace/metrics/profile
    files into the obs dir."""
    if not (args.trace or args.metrics or args.profile):
        return None
    return ObsOptions(dir=args.obs_dir, trace=args.trace,
                      metrics=args.metrics, profile=args.profile)


def _service_serve(args) -> int:
    from repro.runtime.service import ExperimentService, serve_http

    port = int(args.target) if args.target else 0
    with ExperimentService(
        Path(args.cache_dir), jobs=args.jobs, timeout_s=args.timeout,
        obs=_service_obs_options(args),
    ) as service:
        server = serve_http(service, port=port)
        host, bound = server.server_address[0], server.server_address[1]
        print(f"experiment service on http://{host}:{bound} "
              f"(jobs={args.jobs}, cache {args.cache_dir})")
        print("routes: POST /v1/submit, /v1/sweep, /v1/shutdown; "
              "GET /v1/status, /v1/metrics, /v1/stream/<batch>")
        try:
            server.serve_thread.join()
        except KeyboardInterrupt:
            print("\nshutting down", file=sys.stderr)
            server.shutdown()
    return 0


def _service_smoke(args) -> int:
    """End-to-end service check: real HTTP on an ephemeral port.

    Submits the same 3-spec batch twice; the second submission must be
    satisfied entirely from the cache / queue dedup (zero executions).
    Streams both batches as JSONL and asserts a clean shutdown.
    """
    import urllib.request

    from repro.runtime.service import ExperimentService, serve_http
    from repro.runtime.spec import RunSpec

    def fetch(method: str, url: str, payload=None) -> dict:
        data = json.dumps(payload).encode() if payload is not None else None
        req = urllib.request.Request(
            url, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=60) as resp:
            return json.loads(resp.read().decode())

    def stream(url: str) -> list:
        events = []
        with urllib.request.urlopen(url, timeout=120) as resp:
            for raw in resp:
                raw = raw.strip()
                if raw:
                    events.append(json.loads(raw.decode()))
        return events

    specs = [
        RunSpec(
            protocol="emptcp",
            builder="static",
            kwargs={"good_wifi": True, "download_bytes": mib(args.size_mb)},
            seed=seed,
            engine="fluid",
        ).to_dict()
        for seed in range(3)
    ]
    failures: List[str] = []
    with ExperimentService(
        Path(args.cache_dir), jobs=args.jobs, timeout_s=args.timeout
    ) as service:
        server = serve_http(service)
        base = f"http://127.0.0.1:{server.server_address[1]}"
        for phase in ("cold", "warm"):
            summary = fetch("POST", f"{base}/v1/submit", {"specs": specs})
            events = stream(f"{base}/v1/stream/{summary['batch']}")
            jobs = [e for e in events if e.get("event") == "job"]
            tail = events[-1] if events else {}
            outcomes = tail.get("outcomes", {})
            print(f"{phase}: batch {summary['batch']} outcomes {outcomes}")
            if len(jobs) != len(specs):
                failures.append(
                    f"{phase}: streamed {len(jobs)} job events, "
                    f"expected {len(specs)}"
                )
            if tail.get("event") != "summary" or not tail.get("done"):
                failures.append(
                    f"{phase}: stream did not end in a finished summary"
                )
            if any(e.get("result") is None for e in jobs):
                failures.append(f"{phase}: a job event carried no result")
            if phase == "warm":
                executed = outcomes.get("executed", 0)
                hits = outcomes.get("cached", 0) + outcomes.get("deduped", 0)
                if executed:
                    failures.append(
                        f"warm resubmit executed {executed} run(s); "
                        f"expected every run cache/dedup-satisfied"
                    )
                if hits != len(specs):
                    failures.append(
                        f"warm resubmit had {hits} cache/dedup hits, "
                        f"expected {len(specs)}"
                    )
        status = fetch("GET", f"{base}/v1/status")
        if status.get("open_jobs") != 0:
            failures.append(
                f"{status.get('open_jobs')} job(s) still open after "
                f"both batches drained"
            )
        fetch("POST", f"{base}/v1/shutdown")
        server.serve_thread.join(timeout=30)
        if server.serve_thread.is_alive():
            failures.append("HTTP thread still alive after /v1/shutdown")
    if failures:
        for failure in failures:
            print(f"service smoke FAIL: {failure}", file=sys.stderr)
        return 1
    print("service smoke OK: cold batch executed, warm batch fully "
          "cache/dedup-satisfied, stream and shutdown clean")
    return 0


def _top_value(series: Dict[str, list], name: str) -> float:
    """The first sample of one Prometheus series (0.0 when absent)."""
    samples = series.get(name, [])
    return samples[0][1] if samples else 0.0


def _format_top(series: Dict[str, list], status: dict) -> str:
    """One refresh of the ``service top`` dashboard."""
    lines = []
    uptime = _top_value(series, "repro_uptime_seconds")
    batches = int(_top_value(series, "repro_batches_total"))
    spans = int(_top_value(series, "repro_spans_recorded_total"))
    lines.append(f"-- experiment service · up {uptime:.1f}s · "
                 f"{batches} batch(es) · {spans} span(s) --")
    queue = status.get("queue", {})
    lines.append(
        f"queue: open {status.get('open_jobs', 0)}  "
        f"submitted {queue.get('submitted', 0)}  "
        f"done {queue.get('done', 0)}  "
        f"failed {queue.get('failed', 0)}  "
        f"deduped {queue.get('deduped', 0)}"
    )
    inflight = status.get("inflight", {})
    busy = {k: v for k, v in sorted(inflight.items()) if v}
    shard_bits = " ".join(f"{k}={v}" for k, v in busy.items()) or "idle"
    lines.append(f"shards: {shard_bits} ({sum(inflight.values())} in flight)")
    sched = status.get("scheduler", {})
    lines.append(
        "sched: " + "  ".join(
            f"{key.split('.', 1)[-1]} {int(sched.get(key, 0))}"
            for key in ("scheduler.jobs_done", "scheduler.jobs_failed",
                        "scheduler.retries", "scheduler.steals",
                        "scheduler.timeouts", "scheduler.cache_hits")
        )
    )
    ratio = _top_value(series, "repro_cache_hit_ratio")
    entries = int(_top_value(series, "repro_store_entries"))
    size_mb = _top_value(series, "repro_store_bytes") / 1e6
    lines.append(f"cache: hit ratio {ratio:.2f} · store {entries} "
                 f"entries / {size_mb:.2f} MB")
    ewma = status.get("events_per_sec_ewma")
    if ewma:
        lines.append(f"events/sec EWMA: {ewma:,.0f}")
    return "\n".join(lines)


def _service_top(args) -> int:
    """``service top <host:port|port>`` — poll ``/v1/metrics`` and
    ``/v1/status`` of a running service, ``--runs`` refreshes."""
    import time as _time
    import urllib.request

    from repro.obs.prom import parse_prometheus

    if not args.target:
        print("usage: emptcp-repro service top <host:port | port> [--runs N]",
              file=sys.stderr)
        return 2
    where = args.target if ":" in args.target else f"127.0.0.1:{args.target}"
    base = f"http://{where}"
    for cycle in range(max(1, args.runs)):
        if cycle:
            _time.sleep(1.0)
        try:
            with urllib.request.urlopen(f"{base}/v1/metrics",
                                        timeout=10) as resp:
                series = parse_prometheus(resp.read().decode())
            with urllib.request.urlopen(f"{base}/v1/status",
                                        timeout=10) as resp:
                status = json.loads(resp.read().decode())
        except OSError as exc:
            print(f"error: cannot reach {base}: {exc}", file=sys.stderr)
            return 2
        print(_format_top(series, status))
    return 0


def _service_obs_smoke(args) -> int:
    """End-to-end observability check over real HTTP.

    Serves with tracing on, scrapes ``/v1/metrics`` cold, drives a
    multi-job sweep batch through ``/v1/sweep``, then asserts the
    queue/shard/cache series moved, the lifecycle export reassembles
    into exactly one root span tree, and CHK7xx passes over the obs
    dir.  Exercises the full submit → queue → shard → span → scrape →
    reassemble loop the tracing layer exists for.
    """
    import urllib.request

    from repro import check as chk
    from repro.obs.dist import SPAN_BATCH
    from repro.obs.prom import parse_prometheus
    from repro.obs.tree import format_trace_forest, load_trace_forest
    from repro.runtime.service import ExperimentService, serve_http

    def fetch(method: str, url: str, payload=None) -> dict:
        data = json.dumps(payload).encode() if payload is not None else None
        req = urllib.request.Request(
            url, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=60) as resp:
            return json.loads(resp.read().decode())

    def scrape(url: str) -> Dict[str, list]:
        with urllib.request.urlopen(url, timeout=60) as resp:
            return parse_prometheus(resp.read().decode())

    failures: List[str] = []
    obs_dir = Path(args.obs_dir)
    obs = ObsOptions(dir=str(obs_dir), trace=True, metrics=False,
                     profile=args.profile)
    with ExperimentService(
        Path(args.cache_dir), jobs=args.jobs, timeout_s=args.timeout, obs=obs,
    ) as service:
        server = serve_http(service)
        base = f"http://127.0.0.1:{server.server_address[1]}"
        cold = scrape(f"{base}/v1/metrics")
        sweep = fetch("POST", f"{base}/v1/sweep", {
            "builder": "static",
            "parameter": "tau_seconds",
            "values": [3.0, 6.0],
            "kwargs": {"good_wifi": True,
                       "download_bytes": mib(_perf_size_mb(args))},
        })
        batch = sweep["batch"]
        with urllib.request.urlopen(f"{base}/v1/stream/{batch}",
                                    timeout=120) as resp:
            events = [json.loads(raw) for raw in resp if raw.strip()]
        tail = events[-1] if events else {}
        if not tail.get("done"):
            failures.append("stream did not end in a finished summary")
        warm = scrape(f"{base}/v1/metrics")
        for name in ("repro_queue_submitted_total",
                     "repro_scheduler_jobs_done_total",
                     "repro_batches_total"):
            if not _top_value(warm, name) > _top_value(cold, name):
                failures.append(
                    f"{name} did not increase across the batch "
                    f"({_top_value(cold, name)} -> {_top_value(warm, name)})"
                )
        status = fetch("GET", f"{base}/v1/status")
        trace_id = ""
        for doc in status.get("batches", {}).values():
            if doc.get("batch") == batch:
                trace_id = doc.get("trace_id", "")
        if not trace_id:
            failures.append(f"batch {batch} reported no trace id")
        fetch("POST", f"{base}/v1/shutdown")
        server.serve_thread.join(timeout=30)

    trees = load_trace_forest(obs_dir, trace_id=trace_id or None)
    if len(trees) != 1:
        failures.append(f"expected 1 reassembled trace for {trace_id!r}, "
                        f"got {len(trees)}")
    for tree in trees:
        if len(tree.roots) != 1 or tree.roots[0].span.name != SPAN_BATCH:
            failures.append(
                f"trace {tree.trace_id}: expected exactly one {SPAN_BATCH} "
                f"root, got {[n.span.name for n in tree.roots]}"
            )
        if tree.orphans:
            failures.append(f"trace {tree.trace_id}: {len(tree.orphans)} "
                            f"orphan span(s)")
    print(format_trace_forest(trees), end="")
    report = chk.check_trace_topology(obs_dir)
    print(report.format())
    if not report.ok:
        failures.append("CHK7xx trace-topology check failed")
    if failures:
        for failure in failures:
            print(f"obs smoke FAIL: {failure}", file=sys.stderr)
        return 1
    print("obs smoke OK: metrics moved across the batch, one root span "
          "tree reassembled, trace topology checks pass")
    return 0


def _cmd_trace(args) -> int:
    # Validate the subcommand before touching the filesystem: a typo
    # like `trace summarise` must list the choices, not complain about
    # (or create state under) the default trace directory.
    sub = args.subcommand or "summarize"
    if sub not in ("summarize", "validate", "timeline", "tree"):
        print(f"unknown trace subcommand {sub!r}; choose summarize, "
              f"validate, timeline, or tree", file=sys.stderr)
        return 2
    target = Path(args.target) if args.target else Path(args.cache_dir) / "obs"
    if not target.exists():
        print(f"error: no traces at {target} (run with --trace first, or pass "
              f"a trace file/directory)", file=sys.stderr)
        return 2
    if sub == "tree":
        from repro.obs.tree import format_trace_forest, load_trace_forest

        trace_prefix = args.extra[0] if args.extra else None
        try:
            trees = load_trace_forest(target, trace_id=trace_prefix)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(format_trace_forest(trees), end="")
        return 0 if trees else 1
    if sub == "summarize":
        try:
            summary = summarize_target(target)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(format_trace_summary(summary))
        return 0
    if sub == "timeline":
        if target.is_dir():
            files = list(iter_trace_files(target))
            if len(files) != 1:
                print(f"error: trace timeline needs one trace file; {target} "
                      f"holds {len(files)} (pass the file explicitly)",
                      file=sys.stderr)
                return 2
            target = files[0]
        try:
            entries = build_timeline(target)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(format_timeline(entries))
        return 0
    checked = len(list(iter_trace_files(target)))
    failures = validate_trace_files(target)
    for name in sorted(failures):
        for problem in failures[name]:
            print(f"{name}: {problem}", file=sys.stderr)
    if failures:
        total = sum(len(p) for p in failures.values())
        print(f"{total} schema problem(s) in {len(failures)} of {checked} "
              f"trace file(s)", file=sys.stderr)
        return 1
    print(f"{checked} trace file(s) validate against the event schema")
    return 0


def _perf_size_mb(args) -> float:
    """Benchmarks default to a small transfer; the CLI-wide 32 MiB
    default is sized for figure regeneration."""
    return args.size_mb if args.size_mb != 32.0 else 4.0


def _perf_profile(args) -> int:
    """``repro perf profile <protocol> <scenario>`` — run one static
    download under the span profiler and print the hot-path table."""
    from repro import obs
    from repro.check.perf import check_spans
    from repro.engines import get_engine
    from repro.obs import format_span_table
    from repro.runtime.spec import RunSpec

    protocol = args.target or "emptcp"
    wifi = args.extra[0] if args.extra else "good"
    if wifi not in ("good", "bad"):
        print(f"unknown WiFi quality {wifi!r}; choose good or bad",
              file=sys.stderr)
        return 2
    known = get_engine(args.engine).protocols
    if protocol not in known:
        print(f"unknown protocol {protocol!r} for engine {args.engine!r}; "
              f"choose one of {', '.join(known)}", file=sys.stderr)
        return 2
    spec = RunSpec(
        protocol=protocol,
        builder="static",
        kwargs={"good_wifi": wifi == "good",
                "download_bytes": mib(_perf_size_mb(args))},
        seed=0,
        engine=args.engine,
    )
    with obs.capture(trace=False, metrics=False, profile=True) as session:
        spec.execute()
    profile = session.profiler.to_dict()
    print(f"{spec.label} ({_perf_size_mb(args):g} MiB)")
    print(format_span_table(profile))
    report = check_spans(profile, where=spec.label)
    if not report.ok:
        print(report.format(), file=sys.stderr)
        return 1
    print(f"perf: OK ({report.checked} span path(s) verified)")
    return 0


def _perf_record(args) -> int:
    from repro.check.perf import check_bench_doc
    from repro.runtime import bench as bn

    doc = bn.run_bench(
        size_mb=_perf_size_mb(args),
        repeats=args.runs,
        progress=lambda line: print(line, file=sys.stderr),
    )
    print(bn.format_bench_table(doc))
    report = check_bench_doc(doc)
    if not report.ok:
        print(report.format(), file=sys.stderr)
        return 1
    if args.output:
        path = Path(args.output)
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    else:
        path = bn.write_bench(doc, ".")
    print(f"bench record written to {path}")
    return 0


def _perf_compare(args) -> int:
    from repro.runtime import bench as bn

    if not args.target or not args.extra:
        print("usage: repro perf compare <baseline.json> <current.json>",
              file=sys.stderr)
        return 2
    baseline = bn.read_bench(args.target)
    current = bn.read_bench(args.extra[0])
    comparison = bn.compare_bench(baseline, current, threshold=args.threshold)
    print(bn.format_comparison(comparison))
    return 0 if comparison.ok else 1


def _perf_check(args) -> int:
    """Re-run the bench suite and compare against a baseline record
    (``--baseline``, or the newest ``BENCH_*.json`` at the repo root)."""
    from repro.runtime import bench as bn

    baseline_path = args.baseline or bn.latest_bench(".")
    if baseline_path is None:
        print("error: no baseline bench record; run `repro perf record` "
              "first or pass --baseline", file=sys.stderr)
        return 2
    baseline = bn.read_bench(baseline_path)
    doc = bn.run_bench(
        size_mb=float(baseline.get("size_mb", _perf_size_mb(args))),
        repeats=args.runs,
        progress=lambda line: print(line, file=sys.stderr),
    )
    comparison = bn.compare_bench(baseline, doc, threshold=args.threshold)
    print(f"baseline: {baseline_path}")
    print(bn.format_comparison(comparison))
    return 0 if comparison.ok else 1


def _cmd_perf(args) -> int:
    sub = args.subcommand or "record"
    handlers = {
        "profile": _perf_profile,
        "record": _perf_record,
        "compare": _perf_compare,
        "check": _perf_check,
    }
    if sub not in handlers:
        print(f"unknown perf subcommand {sub!r}; choose profile, record, "
              f"compare, or check", file=sys.stderr)
        return 2
    return handlers[sub](args)


def _check_cache(args, tier: str):
    """The static-analysis findings cache for one tier.

    Unlike the result cache (off unless ``report``-ing), the check
    cache defaults *on*: re-linting an unchanged tree should cost file
    hashing only.  ``--no-cache`` bypasses it.
    """
    from repro.check.cache import CheckCache

    return CheckCache(
        tier,
        root=Path(args.cache_dir) / "check",
        enabled=args.cache is not False,
    )


def _baseline_workflow(args, report, tier: str, default_baseline: str) -> int:
    """The shared new/stale/update baseline protocol for a static tier."""
    from repro.check import baseline as bl

    baseline_path = args.baseline or default_baseline
    if args.update_baseline:
        entries = bl.write_baseline(baseline_path, report.findings)
        print(f"baseline {baseline_path}: recorded {entries} fingerprint(s) "
              f"covering {len(report.findings)} finding(s)")
        return 0
    if args.no_baseline:
        print(report.format())
        return 0 if report.ok else 1
    baseline = bl.load_baseline(baseline_path)
    new, stale = bl.new_findings(report.sorted_findings(), baseline)
    for finding in new:
        print(finding.format())
    if stale:
        print(f"note: {len(stale)} baselined violation(s) no longer occur; "
              f"run `repro check {tier} --update-baseline` to shrink "
              f"{baseline_path}", file=sys.stderr)
    failing = [f for f in new if f.severity.value == "error"]
    if failing:
        print(f"{tier}: {len(failing)} new error(s) not in baseline "
              f"({len(report.findings)} total, "
              f"{len(report.findings) - len(new)} baselined)")
        return 1
    print(f"{tier}: OK ({report.checked} files checked, "
          f"{len(report.findings)} baselined finding(s))")
    return 0


def _check_lint(args) -> int:
    """``repro check lint`` — Tier 1 with the baseline workflow."""
    from repro.check import baseline as bl
    from repro.check.lint import lint_paths

    target = args.target or "src/repro"
    report = lint_paths([target], cache=_check_cache(args, "lint"))
    return _baseline_workflow(args, report, "lint", bl.DEFAULT_BASELINE)


def _check_dataflow(args) -> int:
    """``repro check dataflow`` — the interprocedural REP2xx tier."""
    from repro.check.dataflow import DEFAULT_DATAFLOW_BASELINE, analyze_paths

    target = args.target or "src/repro"
    report = analyze_paths([target], cache=_check_cache(args, "dataflow"))
    return _baseline_workflow(
        args, report, "dataflow", DEFAULT_DATAFLOW_BASELINE
    )


def _check_determinism_spec(args):
    from repro.runtime.spec import RunSpec

    # The detector replays the run, so default to a small transfer
    # (the CLI-wide 32 MiB default is sized for figure regeneration).
    size_mb = args.size_mb if args.size_mb != 32.0 else 2.0
    return RunSpec(
        protocol="emptcp",
        builder="static",
        kwargs={"good_wifi": True, "download_bytes": mib(size_mb)},
        seed=0,
    )


def _cmd_check(args) -> int:
    from repro import check as chk

    sub = args.subcommand or "all"
    if sub not in ("lint", "dataflow", "config", "trace", "determinism",
                   "perf", "all"):
        print(f"unknown check subcommand {sub!r}; choose lint, dataflow, "
              f"config, trace, determinism, perf, or all", file=sys.stderr)
        return 2
    status = 0
    if sub in ("lint", "all"):
        status = max(status, _check_lint(args))
    if sub in ("dataflow", "all"):
        status = max(status, _check_dataflow(args))
    if sub in ("config", "all"):
        report = chk.check_defaults()
        print(report.format())
        status = max(status, 0 if report.ok else 1)
    if sub in ("trace", "all"):
        target = Path(args.target) if args.target else Path(args.cache_dir) / "obs"
        if not target.exists():
            if sub == "trace":
                print(f"error: no traces at {target} (run with --trace first, "
                      f"or pass a trace file/directory)", file=sys.stderr)
                return 2
        else:
            from repro.check.findings import merge_reports as _merge

            report = _merge("trace", [
                chk.check_traces(target),
                chk.check_trace_topology(target),
            ])
            print(report.format())
            status = max(status, 0 if report.ok else 1)
    if sub == "determinism":
        report = chk.check_determinism(_check_determinism_spec(args))
        print(report.format())
        status = max(status, 0 if report.ok else 1)
    if sub in ("perf", "all"):
        if args.target and sub == "perf":
            targets = [Path(args.target)]
        else:
            # Default sweep: bench records at the repo root plus span
            # exports under the obs dir (skipped silently in `all`
            # when neither exists yet).
            obs_dir = Path(args.cache_dir) / "obs"
            targets = sorted(Path(".").glob("BENCH_*.json"))
            if obs_dir.is_dir():
                targets += sorted(obs_dir.glob("*.spans.json"))
        if not targets and sub == "perf":
            print("error: no BENCH_*.json at the repo root and no "
                  "*.spans.json under the obs dir; run `repro perf record` "
                  "or pass a file/directory", file=sys.stderr)
            return 2
        if targets:
            from repro.check.findings import merge_reports

            report = merge_reports(
                "perf", [chk.check_perf_target(t) for t in targets]
            )
            print(report.format())
            status = max(status, 0 if report.ok else 1)
    return status


def _cmd_validate(args) -> int:
    if args.engine == "flow":
        return _validate_flow(args)
    report, comparisons = pv.run_engine_agreement(size_bytes=mib(args.size_mb))
    rows = []
    for c in comparisons:
        rows.append([c.label, f"{c.fluid_time:7.2f} s", f"{c.packet_time:7.2f} s",
                     f"{c.ratio:5.2f}"])
    print(format_table(["scenario", "fluid", "packet", "ratio"], rows))
    alone, together = pv.hol_goodput_collapse()
    print(f"HoL pathology: fast alone {alone:.2f} s vs MPTCP+slow path "
          f"{together:.2f} s (64 KB receive buffer)")
    report.checked += 1
    if together <= alone:
        report.add(
            "CHK503",
            f"head-of-line collapse not reproduced: MPTCP with a bad second "
            f"path finished in {together:.2f}s, faster than the fast path "
            f"alone ({alone:.2f}s)",
            context="hol-collapse",
        )
    print(report.format())
    return 0 if report.ok else 1


def _validate_flow(args) -> int:
    """``repro validate --engine flow`` — fluid-vs-flow agreement."""
    from repro.check import flow as fv

    report, comparisons = fv.run_flow_agreement(size_bytes=mib(args.size_mb))
    rows = []
    for c in comparisons:
        rows.append([
            c.label,
            f"{c.fluid_time:7.2f} s", f"{c.flow_time:7.2f} s",
            f"{c.time_ratio:5.2f}",
            f"{c.fluid_energy_j:7.2f} J", f"{c.flow_energy_j:7.2f} J",
            f"{c.energy_ratio:5.2f}",
        ])
    print(format_table(
        ["scenario", "fluid t", "flow t", "t ratio",
         "fluid E", "flow E", "E ratio"], rows))
    print(report.format())
    return 0 if report.ok else 1


def _fleet_spec(args, sessions=None):
    from repro.flow.fleet import FleetSpec

    return FleetSpec(
        sessions=int(sessions if sessions is not None else args.sessions),
        duration_s=args.duration_s,
        cells=args.cells,
        cell_capacity_mbps=args.cell_capacity_mbps,
        device=args.device,
        seed=args.seed,
    )


def _print_fleet_result(result, wall_s: float) -> None:
    rate = result.session_steps / wall_s if wall_s > 0 else float("inf")
    print(f"fleet {result.spec_hash}: {result.sessions} sessions, "
          f"sim {result.sim_t_end_s:.1f}s in {result.epochs} epochs")
    print(f"  completed: {result.completed}/{result.sessions}  "
          f"goodput {result.goodput_mbps:.1f} Mbps  "
          f"energy {result.energy_total_j:.0f} J")
    print(f"  wall: {wall_s:.2f}s  "
          f"{result.session_steps} session-steps  "
          f"{rate:,.0f} sessions-stepped/s")
    if result.per_stratum:
        rows = []
        for name, s in sorted(result.per_stratum.items()):
            dt = s["download_time_mean_s"]
            rows.append([
                name, int(s["sessions"]), int(s["completed"]),
                f"{s['bytes_mean'] / 1e6:6.1f} MB",
                f"{s['energy_j_mean']:7.1f} J",
                "-" if dt != dt else f"{dt:6.1f} s",
                f"{s['cell_established_frac'] * 100:5.1f}%",
            ])
        print(format_table(
            ["stratum", "n", "done", "bytes", "energy",
             "time", "cell est."], rows))


def _cmd_fleet(args) -> int:
    """Population-scale runs on the analytic flow tier."""
    import time as _time

    from repro import obs
    from repro.flow.fleet import run_fleet, sweep_fleet

    sub = args.subcommand or "run"
    if sub not in ("run", "sweep"):
        print(f"unknown fleet subcommand {sub!r}; choose run or sweep",
              file=sys.stderr)
        return 2
    if sub == "run":
        spec = _fleet_spec(args)
        if args.trace:
            with obs.capture(trace=True, metrics=False, profile=False) as ses:
                t0 = _time.perf_counter()
                result = run_fleet(spec)
                wall = _time.perf_counter() - t0
            out = Path(args.obs_dir)
            out.mkdir(parents=True, exist_ok=True)
            path = ses.tracer.to_jsonl(
                out / f"fleet-{result.spec_hash}.trace.jsonl"
            )
            print(f"trace written to {path}", file=sys.stderr)
        else:
            t0 = _time.perf_counter()
            result = run_fleet(spec)
            wall = _time.perf_counter() - t0
        _print_fleet_result(result, wall)
        return 0
    counts = [int(c) for c in ([args.target] if args.target else []) + args.extra]
    counts = counts or [100, 1_000, 10_000]
    spec = _fleet_spec(args, sessions=counts[0])
    t0 = _time.perf_counter()
    results = sweep_fleet(spec, counts)
    wall = _time.perf_counter() - t0
    rows = []
    for result in results:
        rows.append([
            result.sessions, result.completed,
            f"{result.goodput_mbps:8.1f}",
            f"{result.energy_total_j:10.0f}",
            result.session_steps,
        ])
    print(format_table(
        ["sessions", "done", "goodput Mbps", "energy J", "session-steps"],
        rows))
    steps = sum(r.session_steps for r in results)
    print(f"sweep wall: {wall:.2f}s, "
          f"{steps / wall if wall > 0 else float('inf'):,.0f} "
          f"sessions-stepped/s")
    return 0


def _cmd_handover(args) -> int:
    results = handover_exp.run_handover_comparison(
        download_bytes=mib(args.size_mb)
    )
    rows = []
    for protocol, r in results.items():
        rows.append([
            protocol,
            f"{r.download_time:7.1f} s",
            f"{r.energy_j:7.1f} J",
            f"{r.lte_bytes / 1e6:6.1f} MB",
            r.subflows,
        ])
    print(format_table(
        ["protocol", "time", "energy", "LTE traffic", "subflows"], rows))
    return 0


def _cmd_streaming(args) -> int:
    results = stream_exp.run_streaming_comparison(runs=args.runs)
    rows = []
    for protocol, runs in results.items():
        rows.append([
            protocol,
            f"{mean([r.energy_j for r in runs]):7.1f} J",
            f"{mean([float(r.rebuffer_events) for r in runs]):5.1f}",
            f"{mean([r.rebuffer_time for r in runs]):6.1f} s",
            f"{mean([r.startup_delay for r in runs]):5.2f} s",
        ])
    print(format_table(
        ["protocol", "energy", "stalls", "stall time", "startup"], rows))
    return 0


_COMMANDS = {
    "list": (_cmd_list, "list available experiments"),
    "cache": (_cmd_cache, "inspect (stats) or empty (clear) the result cache"),
    "trace": (_cmd_trace, "summarize, validate, timeline, or tree exported traces"),
    "check": (_cmd_check, "static lint / config / trace / perf-invariant checks"),
    "perf": (_cmd_perf, "profile hot paths; record/compare perf benchmarks"),
    "run": (_cmd_run, "run one protocol on good|bad WiFi (--engine fluid|packet|flow)"),
    "service": (_cmd_service, "HTTP experiment service "
                              "(serve [port] | smoke | top | obs-smoke)"),
    "fleet": (_cmd_fleet, "population-scale flow-tier runs (fleet run|sweep)"),
    "upload": (_cmd_upload, "Extension: bulk uploads (direction-aware EIB)"),
    "streaming": (_cmd_streaming, "Extension: 2.5 Mbps video streaming"),
    "handover": (_cmd_handover, "Extension: WiFi-dissociation handover"),
    "validate": (_cmd_validate, "Extension: cross-engine model validation "
                                "(--engine packet|flow)"),
    "report": (_cmd_report, "run the full evaluation; render a markdown report"),
    "table1": (_cmd_table1, "Table 1: device specifications"),
    "table2": (_cmd_table2, "Table 2: EIB thresholds vs paper"),
    "fig1": (_cmd_fig1, "Figure 1: fixed energy overheads"),
    "fig3": (_cmd_fig3, "Figure 3: per-byte efficiency heat map"),
    "fig4": (_cmd_fig4, "Figure 4: MPTCP-best operating regions"),
    "fig5": (_cmd_fig5, "Figure 5: static good WiFi"),
    "fig6": (_cmd_fig6, "Figure 6: static bad WiFi"),
    "fig7": (_cmd_fig7, "Figure 7: random-bandwidth energy trace"),
    "fig8": (_cmd_fig8, "Figure 8: random WiFi bandwidth changes"),
    "fig9": (_cmd_fig9, "Figure 9: background-traffic throughput trace"),
    "fig10": (_cmd_fig10, "Figure 10: background-traffic sweep"),
    "fig12": (_cmd_fig12, "Figure 12: mobility energy traces"),
    "fig13": (_cmd_fig13, "Figure 13: mobility per-byte energy"),
    "fig14": (_cmd_fig14, "Figure 14: wild trace categorisation"),
    "fig15": (_cmd_fig15, "Figure 15: wild small transfers"),
    "fig16": (_cmd_fig16, "Figure 16: wild large transfers"),
    "fig17": (_cmd_fig17, "Figure 17: web browsing"),
    "sec46": (_cmd_sec46, "§4.6: WiFi-First and MDP comparisons"),
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="emptcp-repro",
        description="Regenerate tables/figures of the eMPTCP paper (CoNEXT'15).",
    )
    parser.add_argument("command", choices=sorted(_COMMANDS), help="experiment id")
    parser.add_argument(
        "subcommand", nargs="?", default=None,
        help="cache subcommand: stats (default) or clear; "
             "trace subcommand: summarize (default), validate, timeline, "
             "or tree; "
             "check subcommand: lint, dataflow, config, trace, determinism, perf, "
             "or all (default); perf subcommand: profile, record (default), "
             "compare, or check; service subcommand: serve (default), smoke, "
             "top, or obs-smoke; run: the protocol (default emptcp)",
    )
    parser.add_argument(
        "target", nargs="?", default=None,
        help="trace file or directory (trace/check commands; "
             "default: <cache-dir>/obs), the path to lint "
             "(check lint; default: src/repro), the WiFi quality "
             "good|bad (run command; default good), the protocol "
             "(perf profile; default emptcp), the TCP port (service "
             "serve; default: ephemeral), the host:port to poll "
             "(service top), or the baseline bench record (perf compare)",
    )
    parser.add_argument(
        "extra", nargs="*", default=[],
        help="remaining positionals: the WiFi quality good|bad "
             "(perf profile), the current bench record (perf compare), "
             "or a trace-id prefix filter (trace tree)",
    )
    parser.add_argument(
        "--engine", default="fluid",
        help="transport engine for experiment runs (run/fig5/fig6/validate); "
             "one of the registered engines (fluid, packet, flow)",
    )
    parser.add_argument("--runs", type=int, default=3, help="repetitions per point")
    parser.add_argument(
        "--size-mb", type=float, default=32.0, help="download size in MiB"
    )
    parser.add_argument(
        "--envs", type=int, default=24, help="wild environments to sample"
    )
    parser.add_argument(
        "--scale", choices=("smoke", "default", "paper"), default="default",
        help="report scale (report command)",
    )
    parser.add_argument(
        "--output", default="", help="write the report to a file (report command)"
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for experiment runs (1 = in-process serial)",
    )
    cache_group = parser.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--cache", dest="cache", action="store_true", default=None,
        help="reuse/store results in the on-disk cache "
             "(default: on for report, off elsewhere)",
    )
    cache_group.add_argument(
        "--no-cache", dest="cache", action="store_false",
        help="always execute; do not read or write the result cache",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help=f"result cache location (default: {ResultCache().root})",
    )
    parser.add_argument(
        "--manifest", default=None,
        help="write a JSONL run manifest to this path "
             "(default for report: <cache-dir>/last-run.jsonl)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-run wall-clock limit in seconds (parallel runs)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.10,
        help="events/sec drop treated as a regression "
             "(perf compare/check; fraction, default 0.10)",
    )
    parser.add_argument(
        "--trace", action="store_true", default=False,
        help="capture a structured event trace per executed run "
             "(exported as <obs-dir>/<spec-hash>.trace.jsonl)",
    )
    parser.add_argument(
        "--metrics", action="store_true", default=False,
        help="capture counters/gauges/histograms per executed run "
             "(exported as <obs-dir>/<spec-hash>.metrics.json)",
    )
    parser.add_argument(
        "--profile", action="store_true", default=False,
        help="capture a hierarchical span profile per executed run "
             "(exported as <obs-dir>/<spec-hash>.spans.json)",
    )
    parser.add_argument(
        "--obs-dir", default=None,
        help="where per-run trace/metrics exports land "
             "(default: <cache-dir>/obs)",
    )
    baseline_group = parser.add_mutually_exclusive_group()
    baseline_group.add_argument(
        "--baseline", default=None,
        help="static-tier baseline file (check lint/dataflow; defaults: "
             ".repro-check-baseline.json / .repro-dataflow-baseline.json)",
    )
    baseline_group.add_argument(
        "--no-baseline", action="store_true", default=False,
        help="report every lint/dataflow finding, ignoring the baseline",
    )
    parser.add_argument(
        "--update-baseline", action="store_true", default=False,
        help="re-record the current lint/dataflow findings as the baseline",
    )
    progress_group = parser.add_mutually_exclusive_group()
    progress_group.add_argument(
        "--progress", dest="progress", action="store_true", default=None,
        help="live run counters on stderr (default: on for interactive report)",
    )
    progress_group.add_argument(
        "--no-progress", dest="progress", action="store_false",
        help="suppress the live progress line",
    )
    parser.add_argument(
        "--sessions", type=int, default=1_000,
        help="fleet population size (fleet command)",
    )
    parser.add_argument(
        "--duration-s", type=float, default=60.0,
        help="fleet measurement window in simulated seconds (fleet command)",
    )
    parser.add_argument(
        "--cells", type=int, default=25,
        help="shared LTE cells the fleet is spread over; 0 disables "
             "contention (fleet command)",
    )
    parser.add_argument(
        "--cell-capacity-mbps", type=float, default=150.0,
        help="per-cell shared LTE capacity in Mbps (fleet command)",
    )
    parser.add_argument(
        "--device", default="galaxy-s3",
        help="device power profile (fleet command)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="population seed (fleet command)",
    )
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command][0]

    # Validate --engine here, once, against the live registry: a typo
    # must exit with the list of engines, not fail deep inside a runner.
    from repro.engines import engine_names

    if args.engine not in engine_names():
        print(f"error: unknown engine {args.engine!r}; choose one of "
              f"{', '.join(engine_names())}", file=sys.stderr)
        return 2

    cache_dir = args.cache_dir or str(ResultCache().root)
    args.cache_dir = cache_dir
    use_cache = args.cache if args.cache is not None else args.command == "report"
    cache = ResultCache(cache_dir) if use_cache else None
    manifest_path = args.manifest
    if manifest_path is None and args.command == "report":
        manifest_path = str(Path(cache_dir) / "last-run.jsonl")
    show_progress = args.progress
    if show_progress is None:
        show_progress = args.command == "report" and sys.stderr.isatty()

    obs_dir = args.obs_dir or str(Path(cache_dir) / "obs")
    args.obs_dir = obs_dir
    obs_options = (
        ObsOptions(dir=obs_dir, trace=args.trace, metrics=args.metrics,
                   profile=args.profile)
        if (args.trace or args.metrics or args.profile)
        else None
    )

    manifest = RunManifest(manifest_path) if manifest_path else None
    try:
        with use_runtime(
            jobs=args.jobs,
            cache=cache,
            manifest=manifest,
            progress=auto_reporter(show_progress),
            timeout_s=args.timeout,
            obs=obs_options,
            perf_store=PerfStore(Path(cache_dir) / "perf"),
        ):
            status = handler(args)
    except BrokenPipeError:  # piped into `head` etc.
        return 0
    except (ConfigurationError, ExecutionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if manifest is not None:
            manifest.close()
    if manifest_path and args.command == "report":
        try:
            entries = RunManifest.read(manifest_path)
        except ConfigurationError:  # e.g. the report needed no runs
            entries = []
        if entries:
            print(format_summary(summarize(entries)), file=sys.stderr)
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
