"""Cross-model validation: fluid vs analytic flow tier (CHK5xx).

The flow tier replaces discrete transport events with closed-form
throughput (slow-start ramp + Mathis cap) and vectorizes the whole
eMPTCP control plane, so everything the population-scale results rest
on — completion time *and* energy at completion — must agree with the
fluid reference on matched static single-user scenarios.  CHK504 flags
a comparison whose time or energy ratio leaves the agreement band;
CHK505 records a run that crashed outright.

Structure mirrors :mod:`repro.check.packet` (the fluid/packet suite):
matched :class:`~repro.runtime.spec.RunSpec` pairs differing only in
``engine`` ride through the unified runner, so caching and manifests
apply to agreement runs like any other experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.check.findings import Report
from repro.check.packet import AGREEMENT_TOLERANCE
from repro.errors import SimulationError
from repro.units import mib

#: Protocols compared fluid-vs-flow by default.  Unlike the packet
#: suite, plain MPTCP stays *in*: the analytic tier aggregates both
#: paths the way the fluid rate model does, so it sits inside the band.
FLOW_AGREEMENT_PROTOCOLS = ("tcp-wifi", "mptcp", "emptcp")


@dataclass(frozen=True)
class FlowComparison:
    """Completion time and energy of both tiers on one matched scenario."""

    label: str
    size_bytes: float
    fluid_time: float
    flow_time: float
    fluid_energy_j: float
    flow_energy_j: float

    @property
    def time_ratio(self) -> float:
        """flow / fluid completion time (1.0 = perfect agreement)."""
        return self.flow_time / self.fluid_time

    @property
    def energy_ratio(self) -> float:
        """flow / fluid energy at completion (1.0 = perfect agreement)."""
        return self.flow_energy_j / self.fluid_energy_j


def flow_agreement_specs(
    size_bytes: float = mib(2),
    protocols: Sequence[str] = FLOW_AGREEMENT_PROTOCOLS,
    seeds: Sequence[int] = (0,),
) -> List[Tuple[str, "RunSpec", "RunSpec"]]:
    """Matched (label, fluid spec, flow spec) triples — the flow
    instantiation of
    :func:`~repro.check.packet.cross_engine_agreement_specs`.  The
    pair differing only in ``engine="flow"`` is also a live test that
    the engine field reaches the cache key.
    """
    from repro.check.packet import cross_engine_agreement_specs

    return cross_engine_agreement_specs(
        "flow", size_bytes=size_bytes, protocols=protocols, seeds=seeds
    )


def flow_agreement_report(
    comparisons: Sequence[FlowComparison],
    tolerance: float = AGREEMENT_TOLERANCE,
) -> Report:
    """Fold flow comparisons into the shared checker vocabulary.

    CHK504: a matched scenario whose fluid/flow completion-time *or*
    energy ratio leaves the agreement band.
    """
    report = Report(tier="flow")
    lo, hi = 1 - tolerance, 1 + tolerance
    for comparison in comparisons:
        report.checked += 1
        for what, ratio in (
            ("completion time", comparison.time_ratio),
            ("energy", comparison.energy_ratio),
        ):
            if not lo <= ratio <= hi:
                report.add(
                    "CHK504",
                    f"fluid/flow {what} disagreement on {comparison.label}: "
                    f"ratio {ratio:.2f} outside band {lo:.2f}..{hi:.2f}",
                    context=comparison.label,
                )
    return report


def run_flow_agreement(
    size_bytes: float = mib(2),
    protocols: Sequence[str] = FLOW_AGREEMENT_PROTOCOLS,
    seeds: Sequence[int] = (0,),
    tolerance: float = AGREEMENT_TOLERANCE,
) -> Tuple[Report, List[FlowComparison]]:
    """Run matched fluid/flow scenarios through the unified runner.

    Returns the CHK504 report plus the raw comparisons (for the CLI's
    table and the agreement tests).  Raises
    :class:`~repro.errors.ExecutionError` if a run dies outright.
    """
    from repro.runtime.executor import run_specs

    triples = flow_agreement_specs(
        size_bytes=size_bytes, protocols=protocols, seeds=seeds
    )
    specs = [spec for _label, fluid, flow in triples for spec in (fluid, flow)]
    results = run_specs(specs)
    comparisons: List[FlowComparison] = []
    for i, (label, _fluid, _flow) in enumerate(triples):
        fluid_res, flow_res = results[2 * i], results[2 * i + 1]
        if fluid_res.download_time is None or flow_res.download_time is None:
            raise SimulationError(f"agreement run did not complete: {label}")
        comparisons.append(
            FlowComparison(
                label=label,
                size_bytes=size_bytes,
                fluid_time=fluid_res.download_time,
                flow_time=flow_res.download_time,
                fluid_energy_j=fluid_res.energy_at_completion_j,
                flow_energy_j=flow_res.energy_at_completion_j,
            )
        )
    return flow_agreement_report(comparisons, tolerance=tolerance), comparisons


def run_flow_checks(
    size_bytes: float = mib(2),
    seed: int = 0,
    tolerance: float = AGREEMENT_TOLERANCE,
    protocols: Sequence[str] = FLOW_AGREEMENT_PROTOCOLS,
) -> Report:
    """Run the fluid/flow agreement suite as a checker tier.

    Full protocol runs (including eMPTCP's delayed establishment and
    hysteresis) go through the unified experiment runner on both tiers;
    any time/energy ratio outside the band is CHK504, a crashed run is
    CHK505.
    """
    from repro.errors import ExecutionError

    try:
        report, _comparisons = run_flow_agreement(
            size_bytes=size_bytes,
            protocols=protocols,
            seeds=(seed,),
            tolerance=tolerance,
        )
    except (ExecutionError, SimulationError) as exc:
        report = Report(tier="flow")
        report.add("CHK505", f"flow agreement run failed: {exc}")
    return report
