"""Tier 3b: the determinism detector.

Every simulation run is supposed to be a pure function of its
:class:`~repro.runtime.spec.RunSpec` — same builder, kwargs, protocol,
config, and seed must give the same result, byte for byte.  That
property is what makes the result cache sound, sweeps reproducible,
and the paper's figures regenerable.  It silently breaks the moment
somebody reaches for the global ``random`` module or wall-clock time
inside the simulation (the lint rules REP101/REP102 catch the obvious
textual cases; this detector catches the rest empirically).

:func:`check_determinism` replays a spec N times (default twice) under
a fresh trace capture each time and diffs both the encoded result and
the full event streams.  The first divergent event is reported with
its index and differing fields — in practice the earliest divergence
points straight at the non-deterministic component.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from repro import obs
from repro.check.findings import Report
from repro.errors import ReproError


def replay(spec: Any) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    """Execute a spec once under trace capture.

    Returns the captured event list and the encoded (JSON-shaped)
    result, both in the forms the detector diffs.
    """
    from repro.runtime.spec import get_builder

    entry = get_builder(spec.builder)
    with obs.capture(trace=True, metrics=False) as session:
        result = entry.execute(spec)
    assert session.tracer is not None
    return session.tracer.events(), entry.encode(result)


def _first_divergence(
    a: List[Dict[str, Any]], b: List[Dict[str, Any]]
) -> Tuple[int, str]:
    """Index and description of the first differing event pair."""
    for i, (ea, eb) in enumerate(zip(a, b)):
        if ea != eb:
            fields = sorted(
                key
                for key in set(ea) | set(eb)
                if ea.get(key) != eb.get(key)
            )
            detail = ", ".join(
                f"{key}: {ea.get(key)!r} != {eb.get(key)!r}" for key in fields
            )
            return i, f"{ea.get('type', '?')} ({detail})"
    return min(len(a), len(b)), "one stream ended"


def check_determinism(spec: Any, runs: int = 2) -> Report:
    """Replay ``spec`` ``runs`` times and diff every pair against the
    first run.

    CHK401: the run raised (a crash is trivially non-reproducible
    evidence, reported rather than propagated);
    CHK402: encoded results differ;
    CHK403: event streams differ (count, or first divergent event).
    """
    if runs < 2:
        raise ValueError(f"determinism needs at least 2 runs, got {runs}")
    report = Report(tier="determinism")
    reference_events: List[Dict[str, Any]] = []
    reference_result: Dict[str, Any] = {}
    for run in range(runs):
        try:
            events, encoded = replay(spec)
        except ReproError as exc:
            report.add(
                "CHK401",
                f"run {run + 1} failed: {exc}",
                context=spec.label,
            )
            return report
        report.checked += 1
        if run == 0:
            reference_events, reference_result = events, encoded
            continue
        if json.dumps(encoded, sort_keys=True) != json.dumps(
            reference_result, sort_keys=True
        ):
            keys = sorted(
                key
                for key in set(encoded) | set(reference_result)
                if encoded.get(key) != reference_result.get(key)
            )
            report.add(
                "CHK402",
                f"result differs between run 1 and run {run + 1} "
                f"(fields: {', '.join(keys)})",
                context=spec.label,
            )
        if len(events) != len(reference_events):
            report.add(
                "CHK403",
                f"event count differs between run 1 and run {run + 1}: "
                f"{len(reference_events)} vs {len(events)}",
                context=spec.label,
            )
        if events != reference_events:
            index, detail = _first_divergence(reference_events, events)
            report.add(
                "CHK403",
                f"traces diverge at event {index + 1}: {detail}",
                context=spec.label,
                line=index + 1,
            )
    return report
