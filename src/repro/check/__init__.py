"""repro.check — static lint, config verification, and trace analysis.

Three tiers, one vocabulary (:class:`Finding` / :class:`Report`):

* **Tier 1 — lint** (:mod:`repro.check.lint`): AST rules over
  ``src/repro/`` enforcing determinism, unit-suffix discipline, event
  schema agreement, and export hygiene (REP1xx), with ``# repro:
  noqa[RULE]`` escapes and a committed baseline
  (:mod:`repro.check.baseline`).
* **Tier 1.5 — dataflow** (:mod:`repro.check.dataflow`): an
  interprocedural abstract interpretation over ``src/repro/`` —
  unit-dimension inference, determinism taint, and emit-payload
  resolution (REP2xx) — catching the bugs whose cause and symptom
  live in different functions.  Same noqa escapes; its own baseline
  (``.repro-dataflow-baseline.json``).  Per-file findings for both
  static tiers are cached incrementally (:mod:`repro.check.cache`).
* **Tier 2 — config** (:mod:`repro.check.config`): algebraic
  preconditions on configs, EIB tables, device profiles, scenarios,
  and run specs (CHK2xx); the execution runtime applies the cheap
  subset before dispatching any :class:`RunSpec`.
* **Tier 3 — traces** (:mod:`repro.check.traces`,
  :mod:`repro.check.determinism`): physical/protocol invariants over
  exported JSONL traces (CHK3xx) and an empirical determinism detector
  that replays a spec and diffs the traces (CHK4xx).

:mod:`repro.check.packet` (CHK5xx) folds the fluid-vs-packet model
validation into the same vocabulary, :mod:`repro.check.flow` does the
same for the analytic flow tier (CHK504/CHK505), and :mod:`repro.check.perf`
(CHK6xx) verifies perf telemetry — bench/perf record schema and
consistency, span-tree well-formedness, and parent/child time
conservation.  :mod:`repro.check.disttrace` (CHK7xx) validates
distributed-trace topology over the lifecycle-span exports: every run
span reachable from its batch root, exactly one root per trace, time
containment, and stamped run exports resolving to real spans.

CLI: ``repro check <lint|dataflow|config|trace|determinism|perf|all>``;
``make check`` runs the static tiers.  Rule catalog: ``CHECKS.md``.
"""

from __future__ import annotations

from repro.check.baseline import (
    DEFAULT_BASELINE,
    fingerprint_counts,
    load_baseline,
    new_findings,
    write_baseline,
)
from repro.check.config import (
    check_defaults,
    check_device_profile,
    check_eib,
    check_eib_entries,
    check_emptcp_config,
    check_run_spec,
    check_scenario,
    check_tau_bound,
    verify_specs,
)
from repro.check.cache import DEFAULT_CHECK_CACHE, CheckCache
from repro.check.dataflow import (
    DEFAULT_DATAFLOW_BASELINE,
    analyze_paths,
    analyze_sources,
)
from repro.check.determinism import check_determinism
from repro.check.disttrace import check_trace_topology
from repro.check.findings import (
    Finding,
    Report,
    Severity,
    filter_noqa,
    merge_reports,
)
from repro.check.flow import (
    FLOW_AGREEMENT_PROTOCOLS,
    FlowComparison,
    flow_agreement_report,
    flow_agreement_specs,
    run_flow_agreement,
    run_flow_checks,
)
from repro.check.lint import lint_paths, lint_source
from repro.check.perf import (
    check_bench_doc,
    check_perf_record,
    check_perf_target,
    check_spans,
)
from repro.check.traces import check_events, check_trace_file, check_traces

__all__ = [
    "Finding",
    "Report",
    "Severity",
    "filter_noqa",
    "merge_reports",
    "DEFAULT_BASELINE",
    "fingerprint_counts",
    "load_baseline",
    "new_findings",
    "write_baseline",
    "lint_paths",
    "lint_source",
    "DEFAULT_CHECK_CACHE",
    "CheckCache",
    "DEFAULT_DATAFLOW_BASELINE",
    "analyze_paths",
    "analyze_sources",
    "check_defaults",
    "check_device_profile",
    "check_eib",
    "check_eib_entries",
    "check_emptcp_config",
    "check_run_spec",
    "check_scenario",
    "check_tau_bound",
    "verify_specs",
    "check_events",
    "check_trace_file",
    "check_traces",
    "check_trace_topology",
    "check_determinism",
    "FLOW_AGREEMENT_PROTOCOLS",
    "FlowComparison",
    "flow_agreement_report",
    "flow_agreement_specs",
    "run_flow_agreement",
    "run_flow_checks",
    "check_bench_doc",
    "check_perf_record",
    "check_perf_target",
    "check_spans",
]
