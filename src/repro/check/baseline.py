"""The committed lint baseline.

A growing codebase cannot adopt new lint rules atomically: the first
run of a new rule flags pre-existing code that is not worth churning
(public API parameter names, say).  The baseline records those known
violations — keyed by line-number-free fingerprints with a count per
fingerprint — so ``repro check lint`` fails only on *new* violations
while the recorded debt is paid down incrementally.

Workflow::

    repro check lint                      # fails on findings not in baseline
    repro check lint --update-baseline    # re-record current findings
    repro check lint --no-baseline        # show everything, baseline ignored

The file (default ``.repro-check-baseline.json``) is sorted JSON so
diffs stay reviewable; shrinking it is always safe, growing it is a
reviewed decision.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from repro.check.findings import Finding
from repro.errors import ConfigurationError

#: Default baseline location, resolved against the CWD (the repo root
#: for ``make check`` and CI).
DEFAULT_BASELINE = ".repro-check-baseline.json"


def fingerprint_counts(findings: Iterable[Finding]) -> Dict[str, int]:
    """Findings collapsed to ``{fingerprint: count}``."""
    return dict(Counter(f.fingerprint for f in findings))


def load_baseline(path: Union[str, Path]) -> Dict[str, int]:
    """Read a baseline file; an absent file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return {}
    try:
        data = json.loads(path.read_text())
    except ValueError as exc:
        raise ConfigurationError(f"malformed baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or not all(
        isinstance(k, str) and isinstance(v, int) for k, v in data.items()
    ):
        raise ConfigurationError(
            f"baseline {path} must map fingerprint strings to counts"
        )
    return data


def write_baseline(path: Union[str, Path], findings: Iterable[Finding]) -> int:
    """Record the given findings as the new baseline; returns the entry
    count."""
    counts = fingerprint_counts(findings)
    payload = json.dumps(dict(sorted(counts.items())), indent=2, sort_keys=True)
    Path(path).write_text(payload + "\n")
    return len(counts)


def new_findings(
    findings: Iterable[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], List[str]]:
    """Split findings against a baseline.

    Returns ``(new, stale)``: ``new`` are findings beyond the
    baselined count for their fingerprint (these fail the check);
    ``stale`` are baseline fingerprints that no longer occur at their
    recorded count (fixed debt — safe to re-record).
    """
    remaining = dict(baseline)
    new: List[Finding] = []
    for finding in findings:
        left = remaining.get(finding.fingerprint, 0)
        if left > 0:
            remaining[finding.fingerprint] = left - 1
        else:
            new.append(finding)
    stale = sorted(fp for fp, count in remaining.items() if count > 0)
    return new, stale
