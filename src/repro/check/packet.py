"""Cross-model validation: fluid vs packet transport (CHK5xx).

The reproduction's results rest on the fluid model; this module runs
*matched* scenarios through both engines and compares the quantities
the paper's claims depend on:

* single-path completion time across rates/RTTs/loss;
* MPTCP aggregate completion time and per-subflow byte split;
* the head-of-line pathology: with a small connection-level receive
  buffer and a slow+laggy second path, packet-level MPTCP's aggregate
  goodput falls *below* the fast path alone — the effect behind the
  paper's Bad/Bad observations, which the fluid model only
  approximates (see EXPERIMENTS.md).

Historically this lived at ``repro.packet.validate`` with its own
ad-hoc reporting; it now shares the checker's
:class:`~repro.check.findings.Report` vocabulary
(:func:`agreement_report`), and the old import path is a deprecation
shim.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.check.findings import Report
from repro.errors import SimulationError
from repro.net.bandwidth import ConstantCapacity
from repro.net.interface import InterfaceKind, NetworkInterface
from repro.net.path import NetworkPath
from repro.mptcp.connection import MPTCPConnection
from repro.packet.link import PacketLink
from repro.packet.mptcp import PacketMptcpConnection, single_path_connection
from repro.sim.engine import Simulator
from repro.tcp.connection import FiniteSource, TcpConnection
from repro.units import mbps_to_bytes_per_sec, mib

#: Acceptable fluid/packet completion-time ratio band for CHK501.  The
#: engines model loss recovery differently, so ±30% is agreement, not
#: slack — see EXPERIMENTS.md for the measured ratios.
AGREEMENT_TOLERANCE = 0.30


@dataclass(frozen=True)
class PathSpec:
    """One path, engine-independent."""

    mbps: float
    rtt: float
    loss: float = 0.0
    buffer_bytes: float = 126_000.0
    kind: InterfaceKind = InterfaceKind.WIFI


@dataclass(frozen=True)
class ModelComparison:
    """Completion times of both engines on one matched scenario."""

    label: str
    size_bytes: float
    fluid_time: float
    packet_time: float

    @property
    def ratio(self) -> float:
        """fluid / packet completion time (1.0 = perfect agreement)."""
        return self.fluid_time / self.packet_time


def _fluid_path(sim: Simulator, spec: PathSpec) -> NetworkPath:
    path = NetworkPath(
        NetworkInterface(spec.kind),
        ConstantCapacity(mbps_to_bytes_per_sec(spec.mbps)),
        base_rtt=spec.rtt,
        loss_rate=spec.loss,
        buffer_bytes=spec.buffer_bytes,
    )
    path.attach(sim)
    return path


def _packet_link(sim: Simulator, spec: PathSpec, seed: int) -> PacketLink:
    return PacketLink(
        sim,
        ConstantCapacity(mbps_to_bytes_per_sec(spec.mbps)),
        one_way_delay=spec.rtt / 2.0,
        buffer_bytes=spec.buffer_bytes,
        loss_rate=spec.loss,
        rng=_random.Random(seed),
    )


def fluid_single_path_time(
    spec: PathSpec, size_bytes: float, seed: int = 0, max_time: float = 3_000.0
) -> float:
    """Completion time of the fluid TCP engine."""
    sim = Simulator()
    path = _fluid_path(sim, spec)
    source = FiniteSource(size_bytes)
    conn = TcpConnection(sim, path, source, rng=_random.Random(seed))
    done: List[float] = []
    conn.on_delivery(
        lambda _c, _d: done.append(sim.now) if source.exhausted else None
    )
    conn.connect()
    sim.run(until=max_time)
    if not done:
        raise SimulationError("fluid transfer did not complete")
    return done[-1]


def packet_single_path_time(
    spec: PathSpec, size_bytes: float, seed: int = 0, max_time: float = 3_000.0
) -> float:
    """Completion time of the packet TCP engine."""
    sim = Simulator()
    link = _packet_link(sim, spec, seed)
    conn = single_path_connection(sim, link, FiniteSource(size_bytes))
    conn.open()
    sim.run(until=max_time, max_events=50_000_000)
    if conn.completed_at is None:
        raise SimulationError("packet transfer did not complete")
    return conn.completed_at


def compare_single_path(
    specs: Sequence[Tuple[str, PathSpec]],
    size_bytes: float = mib(4),
    seed: int = 0,
) -> List[ModelComparison]:
    """Matched single-path downloads through both engines."""
    out: List[ModelComparison] = []
    for label, spec in specs:
        out.append(
            ModelComparison(
                label=label,
                size_bytes=size_bytes,
                fluid_time=fluid_single_path_time(spec, size_bytes, seed),
                packet_time=packet_single_path_time(spec, size_bytes, seed),
            )
        )
    return out


def fluid_mptcp_time(
    specs: Sequence[PathSpec], size_bytes: float, seed: int = 0,
    max_time: float = 3_000.0,
) -> float:
    """Completion time of the fluid MPTCP engine over the given paths."""
    sim = Simulator()
    paths = [_fluid_path(sim, spec) for spec in specs]
    source = FiniteSource(size_bytes)
    conn = MPTCPConnection(
        sim,
        primary_path=paths[0],
        source=source,
        secondary_paths=paths[1:],
        rng=_random.Random(seed),
    )
    conn.open()
    conn.on_complete(lambda _c: sim.stop())
    sim.run(until=max_time)
    if conn.completed_at is None:
        raise SimulationError("fluid MPTCP transfer did not complete")
    return conn.completed_at


def packet_mptcp_time(
    specs: Sequence[PathSpec],
    size_bytes: float,
    seed: int = 0,
    rcv_buffer: float = 2_000_000.0,
    max_time: float = 3_000.0,
) -> Tuple[float, List[float]]:
    """Completion time + per-subflow bytes of the packet MPTCP engine."""
    sim = Simulator()
    links = [_packet_link(sim, spec, seed + i) for i, spec in enumerate(specs)]
    conn = PacketMptcpConnection(
        sim, links, FiniteSource(size_bytes), rcv_buffer=rcv_buffer
    )
    conn.open()
    sim.run(until=max_time, max_events=50_000_000)
    if conn.completed_at is None:
        raise SimulationError("packet MPTCP transfer did not complete")
    return conn.completed_at, [sf.bytes_acked_total for sf in conn.subflows]


def compare_onoff_single_path(
    size_bytes: float = mib(32),
    high_mbps: float = 12.0,
    low_mbps: float = 0.8,
    mean_dwell: float = 40.0,
    rtt: float = 0.05,
    seeds: Sequence[int] = (1, 2, 3),
    max_time: float = 4_000.0,
) -> List[ModelComparison]:
    """Matched runs under the paper's §4.3 on/off WiFi modulation.

    Both engines see the *same* capacity sample path per seed (the
    modulation RNG is seeded identically), so the comparison is paired.
    """
    from repro.net.bandwidth import TwoStateMarkovCapacity

    def modulation(seed: int) -> TwoStateMarkovCapacity:
        return TwoStateMarkovCapacity(
            high_rate=mbps_to_bytes_per_sec(high_mbps),
            low_rate=mbps_to_bytes_per_sec(low_mbps),
            mean_high=mean_dwell,
            mean_low=mean_dwell,
            rng=_random.Random(seed),
            start_high=False,
        )

    out: List[ModelComparison] = []
    for seed in seeds:
        # Fluid.
        sim = Simulator()
        path = NetworkPath(
            NetworkInterface(InterfaceKind.WIFI), modulation(seed), base_rtt=rtt
        )
        path.attach(sim)
        source = FiniteSource(size_bytes)
        conn = TcpConnection(sim, path, source, rng=_random.Random(seed + 100))
        done: List[float] = []
        conn.on_delivery(
            lambda _c, _d: done.append(sim.now) if source.exhausted else None
        )
        conn.connect()
        sim.run(until=max_time)
        if not done:
            raise SimulationError("fluid on/off transfer did not complete")
        # Packet.
        sim2 = Simulator()
        link = PacketLink(
            sim2,
            modulation(seed),
            one_way_delay=rtt / 2,
            rng=_random.Random(seed + 100),
        )
        pconn = single_path_connection(sim2, link, FiniteSource(size_bytes))
        pconn.open()
        sim2.run(until=max_time, max_events=100_000_000)
        if pconn.completed_at is None:
            raise SimulationError("packet on/off transfer did not complete")
        out.append(
            ModelComparison(
                label=f"on/off seed {seed}",
                size_bytes=size_bytes,
                fluid_time=done[-1],
                packet_time=pconn.completed_at,
            )
        )
    return out


def hol_goodput_collapse(
    fast: Optional[PathSpec] = None,
    slow: Optional[PathSpec] = None,
    size_bytes: float = mib(4),
    rcv_buffer: float = 64_000.0,
    seed: int = 0,
) -> Tuple[float, float]:
    """Demonstrate receive-buffer head-of-line blocking.

    Returns ``(fast_alone_time, mptcp_time)`` for a small receive
    buffer; with a sufficiently slow and laggy second path, MPTCP takes
    *longer* than the fast path alone — the pathology the paper's
    Bad/Bad category exposes and the reason adaptive path suspension
    can beat always-on MPTCP.
    """
    fast = fast or PathSpec(mbps=8.0, rtt=0.04)
    slow = slow or PathSpec(mbps=0.4, rtt=0.6, buffer_bytes=30_000.0)
    alone = packet_single_path_time(fast, size_bytes, seed)
    together, _split = packet_mptcp_time(
        [fast, slow], size_bytes, seed, rcv_buffer=rcv_buffer
    )
    return alone, together


# ---------------------------------------------------------------------------
# Report-vocabulary wrapper


def agreement_report(
    comparisons: Sequence[ModelComparison],
    tolerance: float = AGREEMENT_TOLERANCE,
) -> Report:
    """Fold model comparisons into the shared checker vocabulary.

    CHK501: a matched scenario whose fluid/packet completion-time ratio
    leaves the agreement band; CHK502: a comparison whose run crashed
    (recorded by :func:`run_agreement_checks`).
    """
    report = Report(tier="packet")
    for comparison in comparisons:
        report.checked += 1
        ratio = comparison.ratio
        if not (1 - tolerance) <= ratio <= (1 + tolerance):
            report.add(
                "CHK501",
                f"fluid/packet disagreement on {comparison.label}: "
                f"fluid {comparison.fluid_time:.2f}s vs packet "
                f"{comparison.packet_time:.2f}s (ratio {ratio:.2f}, "
                f"band {1 - tolerance:.2f}..{1 + tolerance:.2f})",
                context=comparison.label,
            )
    return report


#: Protocols compared fluid-vs-packet by default.  Plain MPTCP is
#: deliberately excluded: its aggregate completion time is dominated by
#: scheduler/coupling details the two engines model differently, so it
#: sits outside the ±30% band (see EXPERIMENTS.md).  This is a live
#: view of the packet engine's ``agreement_protocols`` declaration.
AGREEMENT_PROTOCOLS = ("tcp-wifi", "emptcp")


def cross_engine_agreement_specs(
    engine: str,
    size_bytes: float = mib(2),
    protocols: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (0,),
) -> List[Tuple[str, "RunSpec", "RunSpec"]]:
    """Matched (label, reference spec, ``engine`` spec) triples.

    The generic CHK5xx enumerator: each pair names the *same*
    static-bandwidth scenario (§4.2 good and bad WiFi) and differs
    only in ``engine``, so the whole comparison rides through the
    unified runner — caching, manifests, and traces apply to agreement
    runs like any other experiment.  ``protocols`` defaults to the
    engine's registered ``agreement_protocols``; any engine added to
    the :mod:`repro.engines` registry with a non-empty declaration is
    enumerable here without further edits.
    """
    from repro import engines as _engines
    from repro.experiments.static_bw import LAB_LTE_MBPS
    from repro.runtime.spec import RunSpec

    eng = _engines.get_engine(engine)
    if protocols is None:
        protocols = eng.agreement_protocols
    triples: List[Tuple[str, RunSpec, RunSpec]] = []
    for good, wifi_label in ((True, "good-wifi"), (False, "bad-wifi")):
        kwargs = {
            "good_wifi": good,
            "download_bytes": size_bytes,
            "lte_mbps": LAB_LTE_MBPS,
        }
        for protocol in protocols:
            for seed in seeds:
                triples.append(
                    (
                        f"{protocol} on {wifi_label} seed {seed}",
                        RunSpec(
                            protocol=protocol,
                            builder="static",
                            kwargs=dict(kwargs),
                            seed=seed,
                            engine=_engines.DEFAULT_ENGINE,
                        ),
                        RunSpec(
                            protocol=protocol,
                            builder="static",
                            kwargs=dict(kwargs),
                            seed=seed,
                            engine=eng.name,
                        ),
                    )
                )
    return triples


def all_engine_agreement_specs(
    size_bytes: float = mib(2), seeds: Sequence[int] = (0,)
) -> Dict[str, List[Tuple[str, "RunSpec", "RunSpec"]]]:
    """Agreement triples for *every* registered non-reference engine
    that declares agreement protocols, keyed by engine name."""
    from repro import engines as _engines

    out: Dict[str, List[Tuple[str, "RunSpec", "RunSpec"]]] = {}
    for name in _engines.engine_names():
        if name == _engines.DEFAULT_ENGINE:
            continue
        if not _engines.get_engine(name).agreement_protocols:
            continue
        out[name] = cross_engine_agreement_specs(
            name, size_bytes=size_bytes, seeds=seeds
        )
    return out


def engine_agreement_specs(
    size_bytes: float = mib(2),
    protocols: Sequence[str] = AGREEMENT_PROTOCOLS,
    seeds: Sequence[int] = (0,),
) -> List[Tuple[str, "RunSpec", "RunSpec"]]:
    """Matched (label, fluid spec, packet spec) triples — the packet
    instantiation of :func:`cross_engine_agreement_specs`."""
    return cross_engine_agreement_specs(
        "packet", size_bytes=size_bytes, protocols=protocols, seeds=seeds
    )


def run_engine_agreement(
    size_bytes: float = mib(2),
    protocols: Sequence[str] = AGREEMENT_PROTOCOLS,
    seeds: Sequence[int] = (0,),
    tolerance: float = AGREEMENT_TOLERANCE,
) -> Tuple[Report, List[ModelComparison]]:
    """Run matched fluid/packet scenarios through the unified runner.

    Returns the CHK501 report plus the raw comparisons (for the CLI's
    table and the golden-file test).  Raises
    :class:`~repro.errors.ExecutionError` if a run dies outright.
    """
    from repro.runtime.executor import run_specs

    triples = engine_agreement_specs(
        size_bytes=size_bytes, protocols=protocols, seeds=seeds
    )
    specs = [spec for _label, fluid, packet in triples for spec in (fluid, packet)]
    results = run_specs(specs)
    comparisons: List[ModelComparison] = []
    for i, (label, _fluid, _packet) in enumerate(triples):
        fluid_res, packet_res = results[2 * i], results[2 * i + 1]
        comparisons.append(
            ModelComparison(
                label=label,
                size_bytes=size_bytes,
                fluid_time=fluid_res.download_time,
                packet_time=packet_res.download_time,
            )
        )
    return agreement_report(comparisons, tolerance=tolerance), comparisons


def run_agreement_checks(
    size_bytes: float = mib(2),
    seed: int = 0,
    tolerance: float = AGREEMENT_TOLERANCE,
    protocols: Sequence[str] = AGREEMENT_PROTOCOLS,
) -> Report:
    """Run the fluid/packet agreement suite as a checker tier.

    End-to-end protocol runs (including eMPTCP's full control plane)
    go through the unified experiment runner on both engines (CHK501);
    the head-of-line collapse must also reproduce (CHK503): with a
    small receive buffer and a bad second path, packet MPTCP must be
    *slower* than the fast path alone, or the packet engine has lost
    the effect the Bad/Bad analysis depends on.
    """
    from repro.errors import ExecutionError

    try:
        report, _comparisons = run_engine_agreement(
            size_bytes=size_bytes,
            protocols=protocols,
            seeds=(seed,),
            tolerance=tolerance,
        )
    except (ExecutionError, SimulationError) as exc:
        report = Report(tier="packet")
        report.add("CHK502", f"agreement run failed: {exc}")
        return report
    try:
        alone, together = hol_goodput_collapse(size_bytes=size_bytes, seed=seed)
    except SimulationError as exc:
        report.add("CHK502", f"head-of-line run failed: {exc}")
        return report
    report.checked += 1
    if together <= alone:
        report.add(
            "CHK503",
            f"head-of-line collapse not reproduced: MPTCP with a bad "
            f"second path finished in {together:.2f}s, faster than the "
            f"fast path alone ({alone:.2f}s)",
            context="hol-collapse",
        )
    return report
