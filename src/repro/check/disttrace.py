"""CHK7xx — distributed-trace topology checks.

Validates the lifecycle-span layer (:mod:`repro.obs.dist`) the same
way CHK3xx validates run events: structural invariants that hold for
every correctly-traced batch, checked post-hoc over the exported
JSONL.  Rules:

========  ============================================================
CHK700    a lifecycle file contains no parseable spans (warning — an
          empty or torn file is suspicious but not structural).
CHK701    orphan parent: a span names a ``parent_span_id`` that does
          not exist in its trace, so the span is unreachable from the
          batch root.
CHK702    a trace does not have exactly one root span (``batch``):
          zero roots means the batch span was never closed, several
          mean two batches collided on one trace id.
CHK703    time containment: a child span leaves its parent's
          ``[start_t, end_t]`` window, or a job's queue-wait plus
          execution time exceeds the batch wall time (beyond a small
          scheduling epsilon).
CHK704    a span ends before it starts (negative duration).
CHK705    a stamped run export (``.trace.jsonl`` events or
          ``.spans.json`` profiler doc) references a trace or span id
          that no lifecycle file defines — the correlation the layer
          exists for is broken.
========  ============================================================

A directory with no lifecycle files at all yields an OK report (zero
checked): batch-mode obs dirs produced with tracing off are valid, not
suspicious.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.check.findings import Finding, Report, Severity
from repro.obs.dist import (
    SPAN_BATCH,
    LifecycleSpan,
    iter_lifecycle_files,
    read_lifecycle,
)

TIER = "trace"

#: Scheduling slack allowed before CHK703 fires, seconds.  Spans are
#: recorded from clock reads on either side of async hops; a few tens
#: of milliseconds of skew is bookkeeping, not a broken tree.
EPSILON_S = 0.05


def check_trace_topology(target: Union[str, Path]) -> Report:
    """Run CHK700–CHK705 over every lifecycle file under ``target``."""
    report = Report(tier=TIER)
    target = Path(target)
    files = iter_lifecycle_files(target)
    if not files:
        return report
    known: Dict[str, Set[str]] = {}
    for path in files:
        spans = read_lifecycle(path)
        report.checked += 1
        if not spans:
            report.add(
                "CHK700",
                "lifecycle file contains no parseable spans",
                path=str(path),
                severity=Severity.WARNING,
            )
            continue
        by_id = {span.span_id: span for span in spans}
        trace_id = spans[0].trace_id
        known.setdefault(trace_id, set()).update(by_id)
        _check_trace(report, str(path), trace_id, by_id)
    scan_dir = target if target.is_dir() else target.parent
    _check_references(report, scan_dir, known)
    return report


def _check_trace(
    report: Report,
    path: str,
    trace_id: str,
    by_id: Dict[str, LifecycleSpan],
) -> None:
    roots = [span for span in by_id.values() if not span.parent_span_id]
    if len(roots) != 1:
        names = sorted(span.name for span in roots)
        report.add(
            "CHK702",
            f"trace {trace_id} has {len(roots)} root spans "
            f"(expected exactly 1 batch root): {names or 'none'}",
            path=path,
        )
    for span in by_id.values():
        if span.end_t < span.start_t - EPSILON_S:
            report.add(
                "CHK704",
                f"span {span.name}[{span.span_id}] ends "
                f"{span.start_t - span.end_t:.3f}s before it starts",
                path=path,
            )
        parent = (
            by_id.get(span.parent_span_id) if span.parent_span_id else None
        )
        if span.parent_span_id and parent is None:
            report.add(
                "CHK701",
                f"span {span.name}[{span.span_id}] has unknown parent "
                f"{span.parent_span_id} — unreachable from the batch root",
                path=path,
            )
            continue
        if parent is not None:
            if (
                span.start_t < parent.start_t - EPSILON_S
                or span.end_t > parent.end_t + EPSILON_S
            ):
                report.add(
                    "CHK703",
                    f"span {span.name}[{span.span_id}] "
                    f"[{span.start_t:.3f}, {span.end_t:.3f}] leaves its "
                    f"parent {parent.name} window "
                    f"[{parent.start_t:.3f}, {parent.end_t:.3f}]",
                    path=path,
                )
    _check_budget(report, path, by_id)


def _check_budget(
    report: Report, path: str, by_id: Dict[str, LifecycleSpan]
) -> None:
    """Per job: queue-wait + summed exec durations must fit within the
    batch wall (children run inside the job, jobs inside the batch;
    only genuinely broken clocks or topology can violate this)."""
    root = next(
        (
            span
            for span in by_id.values()
            if span.name == SPAN_BATCH and not span.parent_span_id
        ),
        None,
    )
    if root is None:
        return
    batch_wall_s = root.duration_s + EPSILON_S
    for job in by_id.values():
        if job.name != "job" or job.parent_span_id != root.span_id:
            continue
        child_total_s = 0.0
        for span in by_id.values():
            if span.parent_span_id != job.span_id:
                continue
            if span.name == "queue.wait" or span.name.startswith("job.exec"):
                child_total_s += max(0.0, span.duration_s)
        if child_total_s > batch_wall_s + EPSILON_S:
            report.add(
                "CHK703",
                f"job {job.attrs.get('hash', job.span_id)}: queue-wait + "
                f"exec time {child_total_s:.3f}s exceeds the batch wall "
                f"{root.duration_s:.3f}s",
                path=path,
            )


def _check_references(
    report: Report, scan_dir: Path, known: Dict[str, Set[str]]
) -> None:
    """CHK705 over stamped run exports in the same directory."""
    if not scan_dir.is_dir():
        return
    for path in sorted(scan_dir.glob("*.trace.jsonl")):
        stamp = _first_stamp(path)
        if stamp is None:
            continue  # unstamped: tracing predates the dist layer
        _check_stamp(report, str(path), stamp, known, "run trace")
    for path in sorted(scan_dir.glob("*.spans.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if not isinstance(doc, dict):
            continue
        trace_id = str(doc.get("trace_id", ""))
        span_id = str(doc.get("span_id", ""))
        if not trace_id:
            continue
        _check_stamp(
            report, str(path), (trace_id, span_id), known, "profiler doc"
        )


def _first_stamp(path: Path) -> Optional[Tuple[str, str]]:
    """The ``(trace_id, span_id)`` stamp of a run trace's first event,
    or None when the file is unstamped/unreadable."""
    try:
        with open(path, "r") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except ValueError:
                    return None
                if not isinstance(doc, dict):
                    return None
                trace_id = str(doc.get("trace_id", ""))
                span_id = str(doc.get("span_id", ""))
                return (trace_id, span_id) if trace_id else None
    except OSError:
        return None
    return None


def _check_stamp(
    report: Report,
    path: str,
    stamp: Tuple[str, str],
    known: Dict[str, Set[str]],
    kind: str,
) -> None:
    trace_id, span_id = stamp
    spans = known.get(trace_id)
    if spans is None:
        report.add(
            "CHK705",
            f"{kind} is stamped with trace {trace_id}, which no "
            "lifecycle file defines",
            path=path,
        )
    elif span_id and span_id not in spans:
        # Warning, not error: a fully-cached re-run of an identical
        # batch truncates the lifecycle file (no exec spans — nothing
        # ran) while the prior run's stamped exports remain on disk.
        report.add(
            "CHK705",
            f"{kind} is stamped with span {span_id} of trace "
            f"{trace_id}, but that trace has no such lifecycle span "
            "(stale export from a previous execution?)",
            path=path,
            severity=Severity.WARNING,
        )


__all__ = ["EPSILON_S", "TIER", "check_trace_topology"]
