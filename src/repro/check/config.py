"""Tier 2: static config / scenario verification.

The paper's mechanisms come with algebraic preconditions — the EIB must
carve the WiFi axis into three gap-free, monotone regions (§3.3,
Table 2), the hysteresis safety factor must actually hysterese (§3.4),
τ must respect equation (1)'s lower bound (§3.5), and the power model
must be physically sane (non-negative coefficients).  Violating any of
them does not crash a run; it silently produces wrong energy numbers.
This module checks them *before* simulation time is spent:

* :func:`check_run_spec` is the cheap pre-dispatch gate the execution
  runtime applies to every :class:`~repro.runtime.spec.RunSpec`
  (disable with ``use_runtime(verify=False)``);
* :func:`check_defaults` is the deep sweep behind ``repro check
  config``: default config, every shipped device profile, and every
  EIB table in both transfer directions.
"""

from __future__ import annotations

import dataclasses
import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.check.findings import Finding, Report, Severity
from repro.errors import ConfigurationError, EnergyModelError, ReproError

#: Numerical slack for monotonicity comparisons: EIB thresholds come
#: out of an 80-step bisection, so neighbouring rows can jitter by the
#: bisection resolution without being genuinely non-monotone.
_EIB_TOLERANCE = 1e-6


def _config_fields() -> Dict[str, Any]:
    from repro.core.config import EMPTCPConfig

    return {f.name: f for f in dataclasses.fields(EMPTCPConfig)}


# ---------------------------------------------------------------------------
# EMPTCPConfig


def check_config_dict(
    overrides: Dict[str, Any], context: str = "config"
) -> List[Finding]:
    """Validate a raw override dict (a ``RunSpec.config`` payload).

    CHK202: unknown key; CHK203: the merged config fails its own
    dataclass validation.  Valid dicts then flow into
    :func:`check_emptcp_config` for the semantic rules.
    """
    from repro.core.config import EMPTCPConfig

    findings: List[Finding] = []
    fields = _config_fields()
    unknown = sorted(set(overrides) - set(fields))
    for key in unknown:
        findings.append(
            Finding(
                rule="CHK202",
                message=f"unknown EMPTCPConfig key {key!r} "
                f"(known: {', '.join(sorted(fields))})",
                context=f"{context}.{key}",
            )
        )
    if unknown:
        return findings
    try:
        cfg = EMPTCPConfig(**overrides)
    except (ConfigurationError, TypeError) as exc:
        findings.append(
            Finding(
                rule="CHK203",
                message=f"config overrides do not form a valid EMPTCPConfig: "
                f"{exc}",
                context=context,
            )
        )
        return findings
    findings.extend(check_emptcp_config(cfg, context=context))
    return findings


def check_emptcp_config(cfg: Any, context: str = "config") -> List[Finding]:
    """Semantic rules on a constructed :class:`EMPTCPConfig`.

    CHK201: the hysteresis safety factor must lie in (0, 1) — at 0 the
    controller ping-pongs on threshold noise (warning, since ablations
    legitimately disable it); at or above 1 the WiFi-only transition
    can never fire.
    """
    findings: List[Finding] = []
    sf = cfg.safety_factor
    if sf < 0 or sf >= 1:
        findings.append(
            Finding(
                rule="CHK201",
                message=f"hysteresis safety_factor {sf} outside (0, 1)",
                context=f"{context}.safety_factor",
            )
        )
    elif sf == 0:
        findings.append(
            Finding(
                rule="CHK201",
                message="hysteresis disabled (safety_factor = 0): controller "
                "decisions will oscillate on threshold noise",
                severity=Severity.WARNING,
                context=f"{context}.safety_factor",
            )
        )
    if cfg.delta_min > cfg.delta_max:
        findings.append(
            Finding(
                rule="CHK203",
                message=f"sampling bounds inverted: delta_min {cfg.delta_min} "
                f"> delta_max {cfg.delta_max}",
                context=f"{context}.delta_min",
            )
        )
    return findings


def check_tau_bound(
    cfg: Any,
    wifi_bandwidth_bytes_per_sec: float,
    wifi_rtt: float,
    context: str = "config",
) -> List[Finding]:
    """CHK204: τ against equation (1)'s lower bound at an operating
    point (§3.5) — the timer must outlast slow start plus φ samples,
    or the establishment decision fires on meaningless estimates."""
    from repro.control.delay import minimum_tau

    findings: List[Finding] = []
    if wifi_bandwidth_bytes_per_sec <= 0 or wifi_rtt <= 0:
        return findings
    bound = minimum_tau(
        wifi_bandwidth_bytes_per_sec, wifi_rtt, cfg.required_samples
    )
    if cfg.tau_seconds < bound:
        findings.append(
            Finding(
                rule="CHK204",
                message=f"tau_seconds {cfg.tau_seconds:.3f} violates "
                f"equation (1): minimum {bound:.3f}s at "
                f"{wifi_bandwidth_bytes_per_sec:.0f} B/s, "
                f"RTT {wifi_rtt * 1e3:.0f} ms",
                context=f"{context}.tau_seconds",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# EIB


def check_eib_entries(entries: Sequence[Any], context: str = "eib") -> List[Finding]:
    """Structural rules on an EIB table (rows of ``EibEntry`` shape).

    CHK211: rows must be sorted by cellular rate with no duplicates;
    CHK212: both thresholds must be monotone non-decreasing in the
    cellular rate (more LTE throughput never makes WiFi *less*
    attractive under an affine power model);
    CHK213: thresholds must be non-negative, non-NaN, and must not
    cross (``cellular_only_below <= wifi_only_above`` keeps the three
    regions gap-free).
    """
    findings: List[Finding] = []
    previous = None
    for i, entry in enumerate(entries):
        where = f"{context}[{i}]@{entry.cell_mbps:g}Mbps"
        for label, value in (
            ("cellular_only_below", entry.cellular_only_below),
            ("wifi_only_above", entry.wifi_only_above),
        ):
            if math.isnan(value) or value < 0:
                findings.append(
                    Finding(
                        rule="CHK213",
                        message=f"{label} is {value} (must be a non-negative "
                        f"number)",
                        context=where,
                    )
                )
        if entry.cellular_only_below > entry.wifi_only_above + _EIB_TOLERANCE:
            findings.append(
                Finding(
                    rule="CHK213",
                    message=f"thresholds cross: cellular_only_below "
                    f"{entry.cellular_only_below:.4f} > wifi_only_above "
                    f"{entry.wifi_only_above:.4f} (no gap-free BOTH region)",
                    context=where,
                )
            )
        if previous is not None:
            if entry.cell_mbps <= previous.cell_mbps:
                findings.append(
                    Finding(
                        rule="CHK211",
                        message=f"cell grid not strictly increasing: "
                        f"{previous.cell_mbps:g} -> {entry.cell_mbps:g} Mbps",
                        context=where,
                    )
                )
            if (
                entry.cellular_only_below
                < previous.cellular_only_below - _EIB_TOLERANCE
            ):
                findings.append(
                    Finding(
                        rule="CHK212",
                        message=f"cellular-only threshold not monotone: "
                        f"{previous.cellular_only_below:.4f} -> "
                        f"{entry.cellular_only_below:.4f} Mbps",
                        context=where,
                    )
                )
            if entry.wifi_only_above < previous.wifi_only_above - _EIB_TOLERANCE:
                findings.append(
                    Finding(
                        rule="CHK212",
                        message=f"WiFi-only threshold not monotone: "
                        f"{previous.wifi_only_above:.4f} -> "
                        f"{entry.wifi_only_above:.4f} Mbps",
                        context=where,
                    )
                )
        previous = entry
    return findings


def check_eib(eib: Any, context: str = "eib") -> List[Finding]:
    """Apply :func:`check_eib_entries` to a built
    :class:`~repro.core.eib.EnergyInformationBase`."""
    return check_eib_entries(eib._entries, context=context)


# ---------------------------------------------------------------------------
# Device profiles


def check_device_profile(profile: Any) -> List[Finding]:
    """CHK221: every power-model coefficient non-negative, for every
    interface and RRC parameter set of a device profile."""
    findings: List[Finding] = []
    context = f"profile.{profile.name}"

    def non_negative(value: float, what: str) -> None:
        if math.isnan(value) or value < 0:
            findings.append(
                Finding(
                    rule="CHK221",
                    message=f"{what} is {value} (must be >= 0)",
                    context=f"{context}.{what}",
                )
            )

    non_negative(profile.baseline_w, "baseline_w")
    non_negative(profile.overlap_saving_w, "overlap_saving_w")
    non_negative(profile.wifi_activation_j, "wifi_activation_j")
    for kind, power in profile.interfaces.items():
        for field_name in ("base_w", "per_mbps_w", "per_mbps_up_w", "idle_w"):
            non_negative(
                getattr(power, field_name), f"{kind.value}.{field_name}"
            )
    for kind, rrc in profile.rrc.items():
        for field_name in (
            "promotion_time",
            "promotion_power_w",
            "tail_time",
            "tail_power_w",
            "active_hold",
        ):
            non_negative(getattr(rrc, field_name), f"{kind.value}.{field_name}")
    return findings


# ---------------------------------------------------------------------------
# Scenarios and RunSpecs


def check_scenario(scenario: Any, context: str = "") -> List[Finding]:
    """Semantic checks on a built
    :class:`~repro.experiments.scenario.Scenario` (CHK231 path
    parameters, CHK204 τ at the scenario's initial WiFi operating
    point, CHK221 via its device profile)."""
    import random as _random

    context = context or f"scenario.{scenario.name}"
    findings: List[Finding] = []
    for label, value in (("wifi_rtt", scenario.wifi_rtt), ("cell_rtt", scenario.cell_rtt)):
        if value <= 0:
            findings.append(
                Finding(
                    rule="CHK231",
                    message=f"{label} must be positive, got {value}",
                    context=f"{context}.{label}",
                )
            )
    for label, value in (
        ("wifi_loss", scenario.wifi_loss),
        ("cell_loss", scenario.cell_loss),
    ):
        if not 0 <= value < 1:
            findings.append(
                Finding(
                    rule="CHK231",
                    message=f"{label} must be in [0, 1), got {value}",
                    context=f"{context}.{label}",
                )
            )
    findings.extend(
        check_emptcp_config(scenario.emptcp_config, context=context)
    )
    if scenario.wifi_rtt > 0:
        try:
            initial_rate = scenario.wifi_capacity(_random.Random(0)).rate
        except ReproError:
            initial_rate = 0.0
        findings.extend(
            check_tau_bound(
                scenario.emptcp_config,
                initial_rate,
                scenario.wifi_rtt,
                context=context,
            )
        )
    findings.extend(check_device_profile(scenario.profile))
    return findings


#: RunSpec kwarg-key fragments that denote an on-disk input.
_FILE_KEY_HINTS = ("path", "file", "csv", "trace_dir")


def _check_spec_files(spec: Any) -> List[Finding]:
    """CHK234: workload trace files named by a spec must resolve now —
    a missing CSV should fail in the parent, not inside a pool worker
    after minutes of queueing."""
    findings: List[Finding] = []
    for key, value in spec.kwargs.items():
        if not isinstance(value, str):
            continue
        if not any(hint in key.lower() for hint in _FILE_KEY_HINTS):
            continue
        if not Path(value).exists():
            findings.append(
                Finding(
                    rule="CHK234",
                    message=f"kwarg {key!r} names a file that does not exist: "
                    f"{value}",
                    context=f"{spec.label}.{key}",
                )
            )
    return findings


def check_run_spec(spec: Any, build: bool = False) -> List[Finding]:
    """The pre-dispatch gate for one :class:`RunSpec`.

    Cheap by default: builder known (CHK241), config overrides are
    valid EMPTCPConfig fields/values, referenced files exist.  With
    ``build=True`` the scenario is materialised and the deep scenario/
    profile checks run too (``repro check config`` does this; the
    executor does not, to keep dispatch overhead off the hot path).
    """
    from repro.runtime.spec import (
        _SCENARIO_FNS,
        load_default_builders,
        registered_builders,
    )

    findings: List[Finding] = []
    load_default_builders()
    builders = registered_builders()
    if spec.builder not in builders:
        findings.append(
            Finding(
                rule="CHK241",
                message=f"unknown builder {spec.builder!r} "
                f"(registered: {', '.join(sorted(builders))})",
                context=spec.label,
            )
        )
        return findings
    config_findings = check_config_dict(spec.config, context=spec.label)
    if spec.builder not in _SCENARIO_FNS:
        # Custom builders are free to interpret `config` however they
        # like, so EMPTCPConfig mismatches are only advisory there.
        config_findings = [
            dataclasses.replace(f, severity=Severity.WARNING)
            for f in config_findings
        ]
    findings.extend(config_findings)
    findings.extend(_check_engine(spec))
    findings.extend(_check_spec_files(spec))
    if build:
        from repro.runtime.spec import _SCENARIO_FNS, build_scenario

        if spec.builder in _SCENARIO_FNS:
            try:
                scenario = build_scenario(spec.builder, **spec.kwargs)
            except (ReproError, TypeError) as exc:
                findings.append(
                    Finding(
                        rule="CHK242",
                        message=f"scenario cannot be built: {exc}",
                        context=spec.label,
                    )
                )
            else:
                findings.extend(
                    check_scenario(scenario, context=spec.label)
                )
    return findings


def _check_engine(spec: Any) -> List[Finding]:
    """CHK243: the registry-driven engine gate.

    The spec's engine must be registered, support the spec's protocol,
    and model every feature its scenario needs — all read from the
    :mod:`repro.engines` capability declarations, so a test-registered
    fourth engine is covered without touching this code.  The feature
    check materialises the scenario only for engines whose declared
    set does not already cover everything derivable (the reference
    engine's specs never pay the build), which is what turns the old
    mid-run interferer crash into a pre-dispatch rejection with the
    compiler's canonical message.
    """
    from repro import engines as _engines
    from repro.runtime.spec import _SCENARIO_FNS

    engine = getattr(spec, "engine", _engines.DEFAULT_ENGINE)
    findings: List[Finding] = []
    try:
        eng = _engines.get_engine(engine)
    except ConfigurationError as exc:
        findings.append(
            Finding(rule="CHK243", message=str(exc), context=spec.label)
        )
        return findings
    if eng.name == _engines.DEFAULT_ENGINE and spec.builder not in _SCENARIO_FNS:
        return findings
    if spec.builder not in _SCENARIO_FNS:
        findings.append(
            Finding(
                rule="CHK243",
                message=f"custom builder {spec.builder!r} may ignore "
                f"engine={engine!r}",
                severity=Severity.WARNING,
                context=spec.label,
            )
        )
        return findings
    message = _engines.protocol_error(eng, spec.protocol)
    if message is not None:
        findings.append(
            Finding(rule="CHK243", message=message, context=spec.label)
        )
    if _engines.DERIVED_FEATURES - eng.features:
        try:
            scenario = _SCENARIO_FNS[spec.builder](**spec.kwargs)
        except Exception:
            pass  # unbuildable scenarios are CHK242's job (build=True)
        else:
            message = _engines.capability_error(eng, scenario)
            if message is not None:
                findings.append(
                    Finding(
                        rule="CHK243", message=message, context=spec.label
                    )
                )
    return findings


def verify_specs(specs: Sequence[Any]) -> Report:
    """Verify a batch of specs (the executor's pre-dispatch hook)."""
    report = Report(tier="config")
    for spec in specs:
        report.extend(check_run_spec(spec))
        report.checked += 1
    return report


# ---------------------------------------------------------------------------
# The deep default sweep behind `repro check config`


def check_defaults() -> Report:
    """Verify everything the repo ships: the default
    :class:`EMPTCPConfig`, every device profile, and every (device,
    cellular kind, direction) EIB table."""
    from repro.core.config import EMPTCPConfig
    from repro.core.eib import cached_eib
    from repro.energy.device import DEVICES
    from repro.energy.power import Direction
    from repro.net.interface import InterfaceKind
    from repro.units import mbps_to_bytes_per_sec

    report = Report(tier="config")
    cfg = EMPTCPConfig()
    report.extend(check_emptcp_config(cfg, context="default-config"))
    # Equation (1) at the paper's §4 operating points: good WiFi
    # (12 Mbps / 40 ms) and bad WiFi (0.8 Mbps / 50 ms).
    for label, mbps, rtt in (("good-wifi", 12.0, 0.040), ("bad-wifi", 0.8, 0.050)):
        report.extend(
            check_tau_bound(
                cfg,
                mbps_to_bytes_per_sec(mbps),
                rtt,
                context=f"default-config@{label}",
            )
        )
    report.checked += 1
    for profile in DEVICES.values():
        report.extend(check_device_profile(profile))
        report.checked += 1
        for direction in (Direction.DOWN, Direction.UP):
            for kind in profile.rrc:
                try:
                    eib = cached_eib(profile, kind, direction=direction)
                except EnergyModelError as exc:
                    report.add(
                        "CHK213",
                        f"EIB for {profile.name}/{kind.value}/"
                        f"{direction.value} cannot be built: {exc}",
                        context=f"eib.{profile.name}.{kind.value}",
                    )
                    continue
                report.extend(
                    check_eib(
                        eib,
                        context=f"eib.{profile.name}.{kind.value}."
                        f"{direction.value}",
                    )
                )
                report.checked += 1
    return report
