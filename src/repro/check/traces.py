"""Tier 3: invariant analysis over exported JSONL traces.

``repro.obs`` records what the simulation *did*; this module checks
that what it did was physically and protocol-legal.  The invariants
come straight from the paper's mechanisms:

* energy is cumulative, so checkpoints never decrease and power is
  never negative (CHK303);
* the RRC machine (§2.3) only moves along the edges of its state
  graph, and consecutive transitions chain (CHK304);
* MP_PRIO suspension (§3.4) is a toggle — a subflow cannot be
  suspended twice without an intervening resume (CHK305);
* a subflow cannot deliver more bytes than its connection, and the
  per-subflow deliveries must add up to the connection total
  (CHK306);
* the hysteresis safety factor (§3.4) exists precisely so the
  controller never *switches* while the WiFi prediction sits strictly
  inside the widened band around a threshold (CHK307);
* simulation time, as seen by any single event source, only moves
  forward (CHK302); and every event matches the declared schema
  (CHK301).

Each finding carries the trace file as its path and the 1-based line
of the offending event, so output is greppable back to the raw trace.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.check.findings import Report, Severity
from repro.obs.events import validate_event
from repro.obs.trace import iter_trace_files, read_jsonl

#: Relative tolerance for byte-conservation comparisons — the fluid
#: model accumulates floats over thousands of rounds.
_BYTES_REL_TOL = 1e-6
#: Absolute slack (bytes) for the same comparisons near zero.
_BYTES_ABS_TOL = 1.0
#: Strictness margin for the hysteresis-band check: a prediction this
#: close to the band edge is treated as *on* the edge, not inside.
_BAND_EDGE_TOL = 1e-9

#: Legal RRC edges, mirroring :class:`repro.energy.rrc.RrcMachine`.
LEGAL_RRC_TRANSITIONS = frozenset(
    {
        ("idle", "promoting"),
        ("promoting", "active"),
        ("active", "tail"),
        ("tail", "active"),
        ("tail", "idle"),
    }
)


def _source_key(event: Mapping[str, Any]) -> Tuple[str, str]:
    """The identity whose clock must be monotone.

    Events from one emitter (a subflow, an interface's predictor, a
    connection) are time-ordered; events from *different* emitters
    interleave at equal timestamps, so monotonicity is only meaningful
    per source.
    """
    etype = str(event.get("type"))
    for field in ("subflow", "interface", "conn"):
        value = event.get(field)
        if isinstance(value, str):
            return (etype, value)
    return (etype, "")


def check_events(
    events: Sequence[Mapping[str, Any]], path: str = "<events>"
) -> Report:
    """Run every trace invariant over one event sequence.

    ``path`` labels findings (the trace file for exported traces, a
    logical name for in-memory event lists from the determinism
    detector).  Event indices are reported 1-based to match JSONL line
    numbers.
    """
    report = Report(tier="trace")
    last_t: Dict[Tuple[str, str], float] = {}
    last_energy: Optional[float] = None
    rrc_state: Optional[str] = None
    # Subflow suspension: name -> True (suspended) / False (active);
    # absent = unknown, so the first suspend or resume is always legal.
    suspended: Dict[str, bool] = {}
    # t -> [(subflow, delivered, conn_bytes, line)] for conservation.
    checkpoints: Dict[float, List[Tuple[str, float, float, int]]] = {}
    # The controller's last decision, needed to know which threshold a
    # switch crossed (None until the first decision event).
    last_decision: Optional[str] = None

    for i, event in enumerate(events):
        line = i + 1
        problems = validate_event(event)
        for problem in problems:
            report.add("CHK301", problem, path=path, line=line)
        if problems:
            continue
        etype = event["type"]
        t = float(event["t"])

        source = _source_key(event)
        previous_t = last_t.get(source)
        if previous_t is not None and t < previous_t:
            report.add(
                "CHK302",
                f"time went backwards for {etype}"
                f"{f'/{source[1]}' if source[1] else ''}: "
                f"{previous_t:g} -> {t:g}",
                path=path,
                line=line,
                context=f"{source[0]}:{source[1]}",
            )
        last_t[source] = t

        if etype == "energy.checkpoint":
            total = float(event["total_j"])
            power = float(event["power_w"])
            if power < 0:
                report.add(
                    "CHK303",
                    f"negative power {power:g} W at checkpoint",
                    path=path,
                    line=line,
                    context="power_w",
                )
            if total < 0:
                report.add(
                    "CHK303",
                    f"negative cumulative energy {total:g} J",
                    path=path,
                    line=line,
                    context="total_j",
                )
            if last_energy is not None and total < last_energy:
                report.add(
                    "CHK303",
                    f"cumulative energy decreased: {last_energy:g} J -> "
                    f"{total:g} J",
                    path=path,
                    line=line,
                    context="total_j",
                )
            last_energy = total

        elif etype == "rrc.transition":
            frm, to = str(event["from"]), str(event["to"])
            if (frm, to) not in LEGAL_RRC_TRANSITIONS:
                report.add(
                    "CHK304",
                    f"illegal RRC transition {frm} -> {to}",
                    path=path,
                    line=line,
                    context=f"{frm}->{to}",
                )
            if rrc_state is not None and frm != rrc_state:
                report.add(
                    "CHK304",
                    f"RRC transition chain broken: left {frm!r} but the "
                    f"previous transition entered {rrc_state!r}",
                    path=path,
                    line=line,
                    context="chain",
                )
            if float(event["dwell_s"]) < 0:
                report.add(
                    "CHK304",
                    f"negative RRC dwell time {event['dwell_s']:g} s",
                    path=path,
                    line=line,
                    context="dwell",
                )
            rrc_state = to

        elif etype in ("subflow.suspend", "subflow.resume"):
            name = str(event["subflow"])
            now_suspended = etype == "subflow.suspend"
            # A resume of an active subflow is legal (it re-opens a
            # paused connection); a suspend of a suspended one is not —
            # Subflow.suspend() is a no-op then, so the event cannot
            # legally exist.
            if now_suspended and suspended.get(name) is True:
                report.add(
                    "CHK305",
                    f"subflow {name!r} suspended twice without an "
                    f"intervening resume",
                    path=path,
                    line=line,
                    context=name,
                )
            suspended[name] = now_suspended

        elif etype == "subflow.checkpoint":
            name = str(event["subflow"])
            delivered = float(event["delivered_bytes"])
            conn_bytes = float(event["conn_bytes"])
            slack = _BYTES_ABS_TOL + _BYTES_REL_TOL * abs(conn_bytes)
            if delivered < 0:
                report.add(
                    "CHK306",
                    f"subflow {name!r} delivered negative bytes "
                    f"({delivered:g})",
                    path=path,
                    line=line,
                    context=name,
                )
            if delivered > conn_bytes + slack:
                report.add(
                    "CHK306",
                    f"subflow {name!r} delivered {delivered:g} B, more than "
                    f"the connection total {conn_bytes:g} B",
                    path=path,
                    line=line,
                    context=name,
                )
            checkpoints.setdefault(t, []).append(
                (name, delivered, conn_bytes, line)
            )

        elif etype == "controller.decision":
            _check_decision(report, event, last_decision, path, line)
            last_decision = str(event["decision"])

    _check_byte_conservation(report, checkpoints, path)
    report.checked = len(events)
    return report


def _check_decision(
    report: Report,
    event: Mapping[str, Any],
    previous: Optional[str],
    path: str,
    line: int,
) -> None:
    """CHK307: a *switch* with the WiFi prediction strictly inside the
    hysteresis band around the threshold it crossed is exactly the
    oscillation the safety factor forbids."""
    if not event["switched"] or previous is None:
        return
    sf = float(event["safety_factor"])
    if sf <= 0:
        return  # hysteresis disabled: the band is empty.
    wifi = float(event["wifi_mbps"])
    decision, raw = str(event["decision"]), str(event["raw"])
    if decision == "both" and raw == "wifi-only":
        # The required-samples guard demoting a wifi-only verdict —
        # hysteresis was not what moved the decision, so no band to
        # check.
        return
    # Which threshold did the switch cross?  WIFI_ONLY is always
    # separated from the rest by the wifi-only threshold; CELLULAR_ONLY
    # by the cellular-only threshold.  A switch *to* BOTH crossed
    # whichever threshold separated it from the previous state (the
    # cellular-only one when the veto produced it, since the prediction
    # then sits below both bands).
    if decision == "wifi-only":
        thr = float(event["wifi_only_thr_mbps"])
    elif decision == "cellular-only":
        thr = float(event["cell_only_thr_mbps"])
    elif raw == "cellular-only" or previous == "cellular-only":
        thr = float(event["cell_only_thr_mbps"])
    elif previous == "wifi-only":
        thr = float(event["wifi_only_thr_mbps"])
    else:
        return
    lo, hi = thr * (1 - sf), thr * (1 + sf)
    if lo + _BAND_EDGE_TOL < wifi < hi - _BAND_EDGE_TOL:
        report.add(
            "CHK307",
            f"controller switched to {decision!r} with predicted WiFi "
            f"{wifi:.4f} Mbps strictly inside the hysteresis band "
            f"({lo:.4f}, {hi:.4f}) around {thr:.4f} Mbps",
            path=path,
            line=line,
            context=decision,
        )


def _check_byte_conservation(
    report: Report,
    checkpoints: Dict[float, List[Tuple[str, float, float, int]]],
    path: str,
) -> None:
    """Per checkpoint instant, the subflow deliveries must sum to the
    connection total they each reported."""
    for t, rows in checkpoints.items():
        conn_bytes = rows[0][2]
        total = sum(delivered for _, delivered, _, _ in rows)
        slack = _BYTES_ABS_TOL + _BYTES_REL_TOL * abs(conn_bytes)
        if abs(total - conn_bytes) > slack:
            report.add(
                "CHK306",
                f"subflow deliveries at t={t:g} sum to {total:g} B but the "
                f"connection reports {conn_bytes:g} B",
                path=path,
                line=rows[-1][3],
                context=f"sum@{t:g}",
            )


def check_trace_file(path: Union[str, Path]) -> Report:
    """Analyze one exported ``*.trace.jsonl`` file."""
    path = Path(path)
    try:
        events = read_jsonl(path)
    except (OSError, ValueError) as exc:
        report = Report(tier="trace")
        report.add("CHK301", str(exc), path=str(path))
        report.checked = 1
        return report
    return check_events(events, path=str(path))


def check_traces(target: Union[str, Path]) -> Report:
    """Analyze every trace under ``target`` (file or directory).

    The per-file event counts are folded into one report;
    ``checked`` counts *files*, not events, so "trace: OK (3 checked)"
    reads as three clean trace files.
    """
    report = Report(tier="trace")
    files = list(iter_trace_files(target))
    if not files:
        report.add(
            "CHK300",
            f"no trace files found under {target}",
            severity=Severity.WARNING,
            context=str(target),
        )
        return report
    for trace_path in files:
        file_report = check_trace_file(trace_path)
        report.extend(file_report.findings)
        report.checked += 1
    return report
