"""Tier 1: the repo-specific AST linter.

Generic linters cannot know that ``time.time()`` inside the simulator
breaks replay determinism, that ``Tracer.emit`` calls are contracts
against :data:`~repro.obs.events.EVENT_SCHEMA`, or that a dict passed
as ``RunSpec(config=...)`` must spell :class:`~repro.core.config.
EMPTCPConfig` field names exactly.  These rules do.

Rules
-----

========  ==========================================================
REP101    wall-clock reads (``time.time``/``monotonic``/``datetime.
          now``...) inside the deterministic packages (``sim``,
          ``core``, ``mptcp``, ``tcp``) or the journaled runtime
          modules (queue/scheduler/store, which must read the
          :mod:`repro.runtime.clock` seam) — simulations must depend
          on simulated time only
REP102    unseeded randomness in the deterministic packages: calls to
          the ``random`` module's *global* functions, or
          ``random.Random()`` with no seed argument
REP103    float ``==``/``!=`` against a simulation-clock expression
          (``.now``, ``*_time``, ``*_at``, ``t``) — clock comparisons
          must be ordered (``<=``/``>=``) or identity checks
REP104    ``Tracer.emit`` with an event type missing from
          ``EVENT_SCHEMA``, or missing that type's declared fields
REP105    throughput/energy/power identifiers without a unit suffix
          (``_mbps``, ``_bytes_per_sec``, ``_j``, ``_w``...; see
          :mod:`repro.units`)
REP106    config-key string that is not an ``EMPTCPConfig`` field
          (``RunSpec(config={...})``, ``ScenarioRef.spec(config=...)``,
          ``sweep_config("<field>", ...)``)
REP107    ``__init__.py`` ``__all__`` out of sync with what the module
          actually binds (both directions)
========  ==========================================================

Suppression: append ``# repro: noqa[REP105]`` (or a bare
``# repro: noqa``) to the offending line.  Pre-existing debt lives in
the committed baseline (:mod:`repro.check.baseline`).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.check.cache import CheckCache, combine_hashes, content_hash
from repro.check.findings import Finding, Report, Severity, filter_noqa

#: Bump to invalidate every lint cache entry when rules change.
_LINT_VERSION = "1"

#: Subpackages of ``repro`` whose behaviour must be a pure function of
#: (scenario, seed): anything here feeding on ambient entropy corrupts
#: the result cache and the determinism detector.
DETERMINISTIC_PACKAGES = ("sim", "core", "mptcp", "tcp", "flow", "engines")

#: Individual modules outside those packages that the same rules cover:
#: the runtime's queue, scheduler, and segment store journal/stamp
#: timestamps, so every wall-clock read must go through the replayable
#: :mod:`repro.runtime.clock` seam (never ``time.*`` directly), and any
#: deliberate entropy (retry jitter) must carry an explicit noqa.
DETERMINISTIC_MODULES = (
    ("runtime", "queue.py"),
    ("runtime", "scheduler.py"),
    ("runtime", "store.py"),
    # Trace/span IDs must be content-derived (sha256), never
    # uuid4-on-wallclock: replayed batches must land in the same ID
    # space.  The module is clock-free by design — callers pass
    # timestamps in through the runtime clock seam.
    ("obs", "dist.py"),
)

#: Wall-clock attributes of the ``time`` module (REP101).
_WALLCLOCK_TIME_FNS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
}

#: ``random`` module *global* functions whose hidden shared state makes
#: them unseedable per-component (REP102).
_GLOBAL_RANDOM_FNS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "gauss",
    "normalvariate",
    "expovariate",
    "betavariate",
    "triangular",
    "vonmisesvariate",
    "seed",
    "getrandbits",
}

#: Identifier fragments that mark a numeric name as carrying a unit
#: (REP105).  Matching is substring-based on the lowered name, with
#: ``_j``/``_w``/``_s`` anchored to the end.
_UNIT_TOKENS = (
    "mbps",
    "kbps",
    "bps",
    "byte",
    "bytes",
    "joule",
    "watt",
    "_mw",
    "per_sec",
    "per_bit",
    "per_byte",
    "seconds",
)

#: Fragments that claim a name holds a *dimensionless* quantity (a
#: pure ratio or percentage).  REP105 accepts them — a ratio genuinely
#: has no unit — but the claim is load-bearing: the dataflow tier
#: (REP201) cross-checks it and flags any value with a propagated
#: physical dimension assigned to such a name, so ``energy_ratio =
#: wifi_j - cell_j`` no longer hides behind the suffix.
_DIMENSIONLESS_TOKENS = (
    "_pct",
    "percent",
    "fraction",
    "factor",
    "ratio",
)
_UNIT_SUFFIXES = ("_j", "_w", "_s", "_mw", "_ns", "_ms")

#: Quantity roots that demand a unit suffix when they name a scalar.
_QUANTITY_ROOTS = ("bandwidth", "throughput", "energy", "power", "rate")

#: ``rate`` names that are probabilities/counters, not data rates
#: ("migrated" only contains "rate" by spelling accident).
_RATE_EXEMPT = ("loss", "drop", "hit", "miss", "error", "sample_rate", "frame",
                "migrated")

#: Non-scalar shapes a quantity root may legitimately name.
_NONSCALAR_HINTS = (
    "series",
    "trace",
    "model",
    "profile",
    "meter",
    "machine",
    "process",
    "factory",
    "fn",
    "map",
    "dict",
    "log",
)

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)


def _noqa_lines(source: str) -> Dict[int, Optional[List[str]]]:
    """``{line: [rule, ...] or None}`` for every noqa comment."""
    out: Dict[int, Optional[List[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), 1):
        match = _NOQA_RE.search(line)
        if match:
            rules = match.group("rules")
            out[lineno] = (
                [r.strip().upper() for r in rules.split(",") if r.strip()]
                if rules
                else None
            )
    return out


def _config_field_names() -> Set[str]:
    import dataclasses

    from repro.core.config import EMPTCPConfig

    return {f.name for f in dataclasses.fields(EMPTCPConfig)}


def _event_schema() -> Dict[str, Dict[str, tuple]]:
    from repro.obs.events import EVENT_SCHEMA

    return EVENT_SCHEMA


def _is_deterministic_path(path: str) -> bool:
    parts = Path(path).parts
    try:
        idx = parts.index("repro")
    except ValueError:
        return False
    if len(parts) > idx + 1 and parts[idx + 1] in DETERMINISTIC_PACKAGES:
        return True
    return tuple(parts[idx + 1:]) in DETERMINISTIC_MODULES


def _has_unit(name: str) -> bool:
    lowered = name.lower()
    if any(token in lowered for token in _UNIT_TOKENS):
        return True
    if any(token in lowered for token in _DIMENSIONLESS_TOKENS):
        return True  # dimensionless claim; REP201 verifies it holds
    return any(lowered.endswith(suffix) for suffix in _UNIT_SUFFIXES)


def _needs_unit(name: str) -> bool:
    """True when ``name`` reads like a scalar physical quantity but
    carries no unit token."""
    lowered = name.lower().lstrip("_")
    if not any(root in lowered for root in _QUANTITY_ROOTS):
        return False
    if "rate" in lowered and not any(
        root in lowered for root in _QUANTITY_ROOTS[:-1]
    ):
        if any(exempt in lowered for exempt in _RATE_EXEMPT):
            return False
    if any(hint in lowered for hint in _NONSCALAR_HINTS):
        return False
    return not _has_unit(lowered)


def _is_numeric_annotation(node: Optional[ast.expr]) -> bool:
    """True for ``float``/``int``/``Optional[float]``-shaped annotations
    and for *no* annotation (unannotated scalars still need units)."""
    if node is None:
        return True
    if isinstance(node, ast.Name):
        return node.id in ("float", "int")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in ("float", "int")
    if isinstance(node, ast.Subscript):
        base = node.value
        if isinstance(base, ast.Name) and base.id == "Optional":
            return _is_numeric_annotation(
                node.slice if not isinstance(node.slice, ast.Tuple) else None
            )
    return False


class _Linter(ast.NodeVisitor):
    """One file's worth of rule evaluation."""

    def __init__(self, path: str, config_fields: Set[str], schema: Dict):
        self.path = path
        self.deterministic = _is_deterministic_path(path)
        self.config_fields = config_fields
        self.schema = schema
        self.findings: List[Finding] = []
        self._scope: List[str] = []
        #: local names bound to the ``random`` / ``time`` / ``datetime``
        #: modules by imports (``import random as _random``).
        self.random_aliases: Set[str] = set()
        self.time_aliases: Set[str] = set()
        self.datetime_aliases: Set[str] = set()

    # -- helpers -------------------------------------------------------

    def _context(self, symbol: str = "") -> str:
        scope = ".".join(self._scope)
        if scope and symbol:
            return f"{scope}:{symbol}"
        return scope or symbol

    def _flag(
        self,
        rule: str,
        message: str,
        node: ast.AST,
        symbol: str = "",
        severity: Severity = Severity.ERROR,
    ) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                message=message,
                path=self.path,
                line=getattr(node, "lineno", 0),
                severity=severity,
                context=self._context(symbol),
            )
        )

    # -- imports -------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.random_aliases.add(bound)
            elif alias.name == "time":
                self.time_aliases.add(bound)
            elif alias.name == "datetime":
                self.datetime_aliases.add(bound)
        self.generic_visit(node)

    # -- scope tracking ------------------------------------------------

    def _visit_scoped(self, node, name: str) -> None:
        self._scope.append(name)
        self.generic_visit(node)
        self._scope.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._check_annassign_fields(node)
        self._visit_scoped(node, node.name)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_signature_units(node)
        self._visit_scoped(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_signature_units(node)
        self._visit_scoped(node, node.name)

    # -- REP101 / REP102 ----------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner, attr = func.value.id, func.attr
            if self.deterministic:
                if owner in self.time_aliases and attr in _WALLCLOCK_TIME_FNS:
                    self._flag(
                        "REP101",
                        f"wall-clock call {owner}.{attr}() in a deterministic "
                        f"package; use the simulator clock (sim.now)",
                        node,
                        symbol=f"{owner}.{attr}",
                    )
                if owner in self.datetime_aliases and attr in ("now", "utcnow", "today"):
                    self._flag(
                        "REP101",
                        f"wall-clock call {owner}.{attr}() in a deterministic "
                        f"package; use the simulator clock (sim.now)",
                        node,
                        symbol=f"{owner}.{attr}",
                    )
                if owner in self.random_aliases and attr in _GLOBAL_RANDOM_FNS:
                    self._flag(
                        "REP102",
                        f"global-RNG call {owner}.{attr}() in a deterministic "
                        f"package; draw from a seeded random.Random / "
                        f"RandomStreams stream",
                        node,
                        symbol=f"{owner}.{attr}",
                    )
                if (
                    owner in self.random_aliases
                    and attr == "Random"
                    and not node.args
                    and not node.keywords
                ):
                    self._flag(
                        "REP102",
                        f"{owner}.Random() constructed without a seed in a "
                        f"deterministic package",
                        node,
                        symbol=f"{owner}.Random",
                    )
        if isinstance(func, ast.Attribute) and func.attr == "emit":
            self._check_emit(node)
        self._check_config_keys(node)
        self.generic_visit(node)

    # -- REP103 --------------------------------------------------------

    @staticmethod
    def _clock_name(node: ast.expr) -> Optional[str]:
        name = None
        if isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Name):
            name = node.id
        if name is None:
            return None
        if name == "now" or name == "t":
            return name
        if name.endswith("_time") or name.endswith("_at"):
            return name
        return None

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side, other in ((left, right), (right, left)):
                clock = self._clock_name(side)
                if clock is None:
                    continue
                if isinstance(other, ast.Constant) and other.value is None:
                    continue  # `x == None` is misguided but not a float bug
                self._flag(
                    "REP103",
                    f"float equality against simulation clock {clock!r}; "
                    f"compare with <=/>= or track state explicitly",
                    node,
                    symbol=clock,
                )
                break
        self.generic_visit(node)

    # -- REP104 --------------------------------------------------------

    def _check_emit(self, node: ast.Call) -> None:
        if not node.args:
            return
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            return  # dynamic event type: not statically checkable
        etype = first.value
        fields = self.schema.get(etype)
        if fields is None:
            self._flag(
                "REP104",
                f"tracer emission of unknown event type {etype!r} "
                f"(not in EVENT_SCHEMA)",
                node,
                symbol=etype,
            )
            return
        provided: Set[str] = set()
        opaque = False
        # emit(type, t, **fields): positional slot 2 is `t`.
        if len(node.args) > 1:
            provided.add("t")
        for kw in node.keywords:
            if kw.arg is not None:
                provided.add(kw.arg)
            elif isinstance(kw.value, ast.Dict) and all(
                isinstance(k, ast.Constant) and isinstance(k.value, str)
                for k in kw.value.keys
            ):
                provided.update(k.value for k in kw.value.keys)  # type: ignore[union-attr]
            else:
                opaque = True  # **dynamic — cannot enumerate
        if opaque:
            return
        missing = sorted(set(fields) - provided)
        if "t" not in provided:
            missing.insert(0, "t")
        if missing:
            self._flag(
                "REP104",
                f"tracer emission of {etype!r} is missing declared "
                f"field(s): {', '.join(missing)}",
                node,
                symbol=etype,
            )

    # -- REP105 --------------------------------------------------------

    def _check_signature_units(self, node) -> None:
        args = list(node.args.posonlyargs) + list(node.args.args) + list(
            node.args.kwonlyargs
        )
        for arg in args:
            if arg.arg in ("self", "cls"):
                continue
            if _needs_unit(arg.arg) and _is_numeric_annotation(arg.annotation):
                self._flag(
                    "REP105",
                    f"parameter {arg.arg!r} names a physical quantity without "
                    f"a unit suffix (_mbps/_bytes_per_sec/_j/_w...; see "
                    f"repro.units)",
                    arg,
                    symbol=f"{node.name}.{arg.arg}",
                )

    def _check_annassign_fields(self, node: ast.ClassDef) -> None:
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            target = stmt.target
            if not isinstance(target, ast.Name):
                continue
            if _needs_unit(target.id) and _is_numeric_annotation(stmt.annotation):
                self.findings.append(
                    Finding(
                        rule="REP105",
                        message=(
                            f"field {target.id!r} names a physical quantity "
                            f"without a unit suffix (_mbps/_bytes_per_sec/"
                            f"_j/_w...; see repro.units)"
                        ),
                        path=self.path,
                        line=stmt.lineno,
                        context=self._context(f"{node.name}.{target.id}"),
                    )
                )

    # -- REP106 --------------------------------------------------------

    def _check_config_keys(self, node: ast.Call) -> None:
        dict_nodes: List[ast.Dict] = []
        for kw in node.keywords:
            if kw.arg == "config" and isinstance(kw.value, ast.Dict):
                dict_nodes.append(kw.value)
        func = node.func
        fname = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if fname == "sweep_config" and node.args:
            first = node.args[0]
            if (
                isinstance(first, ast.Constant)
                and isinstance(first.value, str)
                and first.value not in self.config_fields
            ):
                self._flag(
                    "REP106",
                    f"sweep_config parameter {first.value!r} is not an "
                    f"EMPTCPConfig field",
                    first,
                    symbol=first.value,
                )
        if fname not in ("RunSpec", "spec", "run_spec") and not dict_nodes:
            return
        for dict_node in dict_nodes:
            for key in dict_node.keys:
                if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                    continue
                if key.value not in self.config_fields:
                    self._flag(
                        "REP106",
                        f"config key {key.value!r} is not an EMPTCPConfig "
                        f"field",
                        key,
                        symbol=key.value,
                    )


# -- REP107 ------------------------------------------------------------


def _check_all_exports(tree: ast.Module, path: str) -> List[Finding]:
    """``__all__`` vs actually-bound names, both directions.

    Only applied to ``__init__.py`` files that define ``__all__``.
    "Public" for the unlisted direction means: names imported from
    ``repro.*`` modules or defined at top level, not starting with an
    underscore — stdlib/typing imports are implementation detail.
    """
    findings: List[Finding] = []
    bound: Set[str] = set()
    public: Set[str] = set()
    all_names: Optional[List[Tuple[str, int]]] = None
    for node in tree.body:
        if isinstance(node, ast.ImportFrom):
            from_repro = (node.module or "").split(".")[0] == "repro"
            for alias in node.names:
                name = alias.asname or alias.name
                bound.add(name)
                if from_repro and not name.startswith("_"):
                    public.add(name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
            if not node.name.startswith("_"):
                public.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
                    if target.id == "__all__":
                        try:
                            names = ast.literal_eval(node.value)
                        except ValueError:
                            continue
                        all_names = [(n, node.lineno) for n in names]
    if all_names is None:
        return findings
    bound.add("__version__")
    for name, lineno in all_names:
        if name not in bound:
            findings.append(
                Finding(
                    rule="REP107",
                    message=f"__all__ exports {name!r} which the module does "
                    f"not bind",
                    path=path,
                    line=lineno,
                    context=name,
                )
            )
    listed = {n for n, _ in all_names}
    for name in sorted(public - listed):
        findings.append(
            Finding(
                rule="REP107",
                message=f"public name {name!r} is bound but missing from "
                f"__all__",
                path=path,
                line=all_names[0][1] if all_names else 1,
                context=name,
            )
        )
    return findings


# -- entry points ------------------------------------------------------


def lint_source(source: str, path: str) -> List[Finding]:
    """Every (unsuppressed) finding in one file's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="REP100",
                message=f"syntax error: {exc.msg}",
                path=path,
                line=exc.lineno or 0,
                context="syntax",
            )
        ]
    linter = _Linter(path, _config_field_names(), _event_schema())
    linter.visit(tree)
    findings = linter.findings
    if Path(path).name == "__init__.py":
        findings = findings + _check_all_exports(tree, path)
    return filter_noqa(findings, _noqa_lines(source))


def iter_python_files(target: Union[str, Path]) -> List[Path]:
    """Python files under ``target`` (a file or a directory), sorted."""
    target = Path(target)
    if target.is_file():
        return [target]
    return sorted(p for p in target.rglob("*.py") if "__pycache__" not in p.parts)


def _lint_salt() -> str:
    """Everything lint output depends on besides the file's own text:
    rule version, the event schema (REP104), the config field set
    (REP106), and the token vocabularies (REP105)."""
    schema = _event_schema()
    return combine_hashes(
        [_LINT_VERSION]
        + [f"{k}:{sorted(v)}" for k, v in sorted(schema.items())]
        + sorted(_config_field_names())
        + list(_UNIT_TOKENS)
        + list(_DIMENSIONLESS_TOKENS)
        + list(_UNIT_SUFFIXES)
        + list(_RATE_EXEMPT)
        + list(DETERMINISTIC_PACKAGES)
        + ["/".join(parts) for parts in DETERMINISTIC_MODULES]
    )


def lint_paths(
    targets: Sequence[Union[str, Path]],
    rel_to: Optional[Path] = None,
    cache: Optional[CheckCache] = None,
) -> Report:
    """Lint every Python file under the given targets.

    Paths in findings are made relative to ``rel_to`` (default: the
    current working directory) when possible, so baselines are stable
    across checkouts.  The rules are file-local, so with a
    :class:`CheckCache` each unchanged file's findings are replayed
    from disk, keyed on its own content plus the rule salt.
    """
    rel_to = Path(rel_to) if rel_to is not None else Path.cwd()
    salt = _lint_salt() if cache is not None and cache.enabled else ""
    report = Report(tier="lint")
    for target in targets:
        for file in iter_python_files(target):
            try:
                rel = file.resolve().relative_to(rel_to.resolve()).as_posix()
            except ValueError:
                rel = file.as_posix()
            source = file.read_text()
            report.checked += 1
            if cache is not None and cache.enabled:
                key = combine_hashes([salt, rel, content_hash(source)])
                hit = cache.load(key)
                if hit is not None:
                    report.extend(hit)
                    continue
                findings = lint_source(source, rel)
                cache.store(key, findings)
            else:
                findings = lint_source(source, rel)
            report.extend(findings)
    return report


def lint_findings(findings: Iterable[Finding]) -> Report:
    """Wrap raw findings in a lint report (testing convenience)."""
    report = Report(tier="lint")
    report.extend(findings)
    return report
