"""Incremental analysis cache for the static tiers.

Re-running ``repro check lint`` / ``repro check dataflow`` on an
unchanged tree should cost file hashing, not re-analysis.  Findings
are cached per file under ``.repro-cache/check/<tier>/`` keyed by a
content-hash fingerprint:

* **lint** — the rules are file-local, so the key is the file's own
  bytes plus a salt (rule version, event schema, config fields);
* **dataflow** — the rules are interprocedural, so the key also folds
  in the content hashes of the file's *import closure* within the
  analyzed set: a change to ``repro.units`` invalidates everything
  that (transitively) imports it, and nothing else.

A cache entry is a JSON list of finding dicts; ``--no-cache`` on the
CLI bypasses reads and writes entirely.  Entries are content-addressed
so stale files are never wrong, merely unused (``repro cache clear``
or deleting ``.repro-cache/`` reclaims them).

This module lives at the ``repro.check`` level (not inside
``repro.check.dataflow``) because both tiers share it and the lint
tier must not import the dataflow package (which itself imports lint
helpers).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.check.findings import Finding, Severity

#: Default location, next to the result cache (satisfies the same
#: lifecycle: disposable, never committed).
DEFAULT_CHECK_CACHE = Path(".repro-cache") / "check"


def content_hash(data: Union[str, bytes]) -> str:
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def combine_hashes(parts: Iterable[str]) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\0")
    return digest.hexdigest()


class CheckCache:
    """Per-file findings, content-addressed under one tier directory."""

    def __init__(
        self,
        tier: str,
        root: Union[str, Path, None] = None,
        enabled: bool = True,
    ):
        self.root = Path(root) if root is not None else DEFAULT_CHECK_CACHE
        self.dir = self.root / tier
        self.enabled = enabled
        self.hits = 0
        self.misses = 0

    def _entry(self, key: str) -> Path:
        return self.dir / f"{key}.json"

    def load(self, key: str) -> Optional[List[Finding]]:
        """Cached findings for ``key``, or None on miss/disabled."""
        if not self.enabled:
            return None
        entry = self._entry(key)
        try:
            raw = json.loads(entry.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        try:
            findings = [
                Finding(
                    rule=item["rule"],
                    message=item["message"],
                    path=item["path"],
                    line=item["line"],
                    severity=Severity(item["severity"]),
                    context=item["context"],
                )
                for item in raw
            ]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def store(self, key: str, findings: Sequence[Finding]) -> None:
        if not self.enabled:
            return
        self.dir.mkdir(parents=True, exist_ok=True)
        payload = json.dumps([f.to_dict() for f in findings])
        tmp = self._entry(key).with_suffix(".tmp")
        tmp.write_text(payload)
        tmp.replace(self._entry(key))


def closure_digests(
    deps: Dict[str, List[str]], hashes: Dict[str, str], salt: str
) -> Dict[str, str]:
    """Per-node cache keys folding in each node's transitive deps.

    ``deps`` maps node -> direct dependencies (nodes absent from
    ``hashes`` are ignored: imports outside the analyzed set cannot
    change analysis output).  Cycles are handled by treating the whole
    strongly-connected neighbourhood as mutual dependencies.
    """
    keys: Dict[str, str] = {}
    for node in deps:
        seen = {node}
        stack = list(deps.get(node, ()))
        while stack:
            dep = stack.pop()
            if dep in seen or dep not in hashes:
                continue
            seen.add(dep)
            stack.extend(deps.get(dep, ()))
        keys[node] = combine_hashes(
            [salt]
            + [f"{name}={hashes[name]}" for name in sorted(seen) if name in hashes]
        )
    return keys
