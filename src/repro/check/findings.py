"""The shared finding/report vocabulary of the checker tiers.

Every tier — the AST linter, the config verifier, the trace-invariant
analyzer, the determinism detector, and the fluid-vs-packet model
validation — reports through the same two types so that callers (the
CLI, the runtime's pre-dispatch verification, CI) never have to care
which tier produced a problem:

* a :class:`Finding` is one problem: a stable rule ID, a severity, a
  location (file/line for lint, a logical context elsewhere), and a
  message;
* a :class:`Report` is an ordered, self-describing collection of
  findings with deterministic formatting (the golden-file tests diff
  its output verbatim).

Rule ID namespaces::

    REP1xx  static lint (repro.check.lint)
    CHK2xx  config/scenario verification (repro.check.config)
    CHK3xx  trace invariants (repro.check.traces)
    CHK4xx  determinism replay (repro.check.determinism)
    CHK5xx  fluid-vs-packet model agreement (repro.check.packet)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail the check (non-zero exit, refused
    dispatch); ``WARNING`` findings are reported but do not fail.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One problem found by any checker tier."""

    rule: str
    message: str
    #: Repo-relative path for lint findings, trace file for trace
    #: findings, "" for purely logical checks (config objects).
    path: str = ""
    #: 1-based source line (lint) or event index (traces); 0 = n/a.
    line: int = 0
    severity: Severity = Severity.ERROR
    #: Stable logical location — enclosing scope plus offending symbol
    #: for lint, subflow/interface name for traces.  Part of the
    #: baseline fingerprint, so it must not contain line numbers or
    #: volatile values.
    context: str = ""

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used by the lint baseline.

        Two findings with the same fingerprint are "the same violation"
        even after unrelated edits move it to a different line.
        """
        return f"{self.path}:{self.rule}:{self.context or self.message}"

    def format(self) -> str:
        """One deterministic human-readable line."""
        where = self.path or self.context or "<global>"
        if self.path and self.line:
            where = f"{self.path}:{self.line}"
        tag = "" if self.severity is Severity.ERROR else " (warning)"
        return f"{where}: {self.rule}{tag} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "severity": self.severity.value,
            "context": self.context,
        }


@dataclass
class Report:
    """An ordered collection of findings from one checker invocation."""

    tier: str
    findings: List[Finding] = field(default_factory=list)
    #: How many units (files, specs, events, trace files) were examined
    #: — distinguishes "clean" from "checked nothing".
    checked: int = 0

    def add(
        self,
        rule: str,
        message: str,
        path: str = "",
        line: int = 0,
        severity: Severity = Severity.ERROR,
        context: str = "",
    ) -> Finding:
        finding = Finding(
            rule=rule,
            message=message,
            path=path,
            line=line,
            severity=severity,
            context=context,
        )
        self.findings.append(finding)
        return finding

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no *error* findings exist (warnings do not fail)."""
        return not self.errors

    def sorted_findings(self) -> List[Finding]:
        return sorted(
            self.findings,
            key=lambda f: (f.path, f.line, f.rule, f.context, f.message),
        )

    def format(self, verbose: bool = False) -> str:
        """Deterministic multi-line report (golden-file stable).

        Findings are sorted by location and rule; the summary line is
        always last.  ``verbose`` currently has no extra output but is
        kept so the CLI flag stays forward-compatible.
        """
        del verbose
        lines = [f.format() for f in self.sorted_findings()]
        n_err, n_warn = len(self.errors), len(self.warnings)
        if not self.findings:
            lines.append(f"{self.tier}: OK ({self.checked} checked)")
        else:
            lines.append(
                f"{self.tier}: {n_err} error(s), {n_warn} warning(s) "
                f"in {self.checked} checked"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tier": self.tier,
            "checked": self.checked,
            "findings": [f.to_dict() for f in self.sorted_findings()],
        }


def merge_reports(tier: str, reports: Iterable[Report]) -> Report:
    """Fold several reports into one (used by ``repro check all``)."""
    merged = Report(tier=tier)
    for report in reports:
        merged.extend(report.findings)
        merged.checked += report.checked
    return merged


def filter_noqa(
    findings: Iterable[Finding], noqa_lines: Dict[int, Optional[List[str]]]
) -> List[Finding]:
    """Drop findings suppressed by ``# repro: noqa[...]`` comments.

    ``noqa_lines`` maps line number -> list of rule IDs (None = bare
    ``noqa``, which suppresses every rule on that line).
    """
    kept: List[Finding] = []
    for finding in findings:
        rules = noqa_lines.get(finding.line, "absent")
        if rules == "absent":
            kept.append(finding)
        elif rules is not None and finding.rule not in rules:
            kept.append(finding)
    return kept
