"""Perf-telemetry invariants (CHK6xx) — the profiler/perf check tier.

Validates the two artefacts :mod:`repro.obs.prof` and
:mod:`repro.runtime.perf` produce:

* **CHK601** — a perf/bench record is schema-complete and internally
  consistent: required keys present, counters non-negative, and the
  claimed throughput matches ``events / wall_s`` (bench records keep
  the best repeat wholesale, so the identity holds exactly up to
  float noise).
* **CHK602** — a span export is a well-formed tree: every non-root
  path has its parent in the export, counts are positive, totals
  non-negative, and depth agrees with the path.
* **CHK603** — conservation: the direct children of a span never
  accumulate more cumulative wall or sim time than the parent itself
  (self time is non-negative).  Wall clocks are noisy, so the wall
  comparison carries a small absolute tolerance; sim time is
  deterministic and gets only a float epsilon.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Union

from repro.check.findings import Report, Severity
from repro.obs.prof import PATH_SEP

#: Required keys of a PerfRecord dict (bench records add key/repeats).
PERF_RECORD_KEYS = (
    "spec_hash",
    "engine",
    "wall_s",
    "sim_s",
    "events",
    "events_per_sec",
)

#: Relative slack on the events_per_sec == events / wall_s identity.
EPS_RATIO = 1e-6

#: Absolute wall-clock slack (seconds) for CHK603: timer reads inside
#: the parent but outside any child legitimately cost a few µs each.
WALL_SLACK_S = 5e-3

#: Sim time is deterministic; only float accumulation error is allowed.
SIM_EPS = 1e-9


def check_perf_record(
    record: Mapping[str, Any],
    report: Report,
    where: str = "",
) -> None:
    """CHK601 over one perf/bench record dict."""
    report.checked += 1
    context = where or str(record.get("label") or record.get("key") or "")
    missing = [key for key in PERF_RECORD_KEYS if key not in record]
    if missing:
        report.add(
            "CHK601",
            f"perf record missing key(s): {', '.join(missing)}",
            context=context,
        )
        return
    try:
        wall = float(record["wall_s"])
        sim = float(record["sim_s"])
        events = int(record["events"])
        eps = float(record["events_per_sec"])
    except (TypeError, ValueError) as exc:
        report.add(
            "CHK601",
            f"perf record has non-numeric field: {exc}",
            context=context,
        )
        return
    for name, value in (("wall_s", wall), ("sim_s", sim),
                        ("events", events), ("events_per_sec", eps)):
        if value < 0:
            report.add(
                "CHK601",
                f"perf record field {name} is negative ({value})",
                context=context,
            )
    if wall > 0:
        expected = events / wall
        slack = EPS_RATIO * max(expected, 1.0)
        if abs(eps - expected) > slack:
            report.add(
                "CHK601",
                f"events_per_sec inconsistent: recorded {eps:.2f}, but "
                f"events/wall_s = {expected:.2f}",
                context=context,
            )


def check_bench_doc(doc: Mapping[str, Any]) -> Report:
    """CHK601 over every record of a bench document."""
    report = Report(tier="perf")
    records = doc.get("records")
    if not isinstance(records, list):
        report.checked += 1
        report.add("CHK601", "bench document has no 'records' list")
        return report
    for record in records:
        check_perf_record(record, report)
    return report


def check_spans(profile: Mapping[str, Any], where: str = "") -> Report:
    """CHK602/CHK603 over one :meth:`Profiler.to_dict` export."""
    report = Report(tier="perf")
    spans = profile.get("spans", [])
    by_path: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        report.checked += 1
        path = str(span.get("path", ""))
        context = f"{where}:{path}" if where else path
        parts = path.split(PATH_SEP) if path else []
        if not path:
            report.add("CHK602", "span with empty path", context=context)
            continue
        by_path[path] = span
        if int(span.get("depth", 0)) != len(parts):
            report.add(
                "CHK602",
                f"span depth {span.get('depth')} disagrees with path "
                f"({len(parts)} component(s))",
                context=context,
            )
        if int(span.get("count", 0)) < 1:
            report.add(
                "CHK602",
                f"span recorded with count {span.get('count')} (< 1)",
                context=context,
            )
        for field in ("wall_s", "sim_s"):
            if float(span.get(field, 0.0)) < 0:
                report.add(
                    "CHK602",
                    f"span has negative {field} ({span.get(field)})",
                    context=context,
                )
    children: Dict[str, List[Dict[str, Any]]] = {}
    for path, span in by_path.items():
        parts = path.split(PATH_SEP)
        if len(parts) == 1:
            continue
        parent = PATH_SEP.join(parts[:-1])
        if parent not in by_path:
            report.add(
                "CHK602",
                f"orphan span: parent {parent!r} missing from export",
                context=f"{where}:{path}" if where else path,
            )
            continue
        children.setdefault(parent, []).append(span)
    for parent_path, kids in sorted(children.items()):
        parent = by_path[parent_path]
        context = f"{where}:{parent_path}" if where else parent_path
        child_wall = sum(float(k.get("wall_s", 0.0)) for k in kids)
        child_sim = sum(float(k.get("sim_s", 0.0)) for k in kids)
        if child_wall > float(parent.get("wall_s", 0.0)) + WALL_SLACK_S:
            report.add(
                "CHK603",
                f"children's cumulative wall ({child_wall * 1e3:.2f} ms) "
                f"exceeds parent's ({float(parent.get('wall_s', 0.0)) * 1e3:.2f} ms)",
                context=context,
            )
        if child_sim > float(parent.get("sim_s", 0.0)) + SIM_EPS:
            report.add(
                "CHK603",
                f"children's cumulative sim time ({child_sim:.6f} s) "
                f"exceeds parent's ({float(parent.get('sim_s', 0.0)):.6f} s)",
                context=context,
            )
    return report


def check_perf_target(target: Union[str, Path]) -> Report:
    """CLI entry: CHK6xx over a bench JSON, a ``*.spans.json`` export,
    or every such file under a directory."""
    path = Path(target)
    report = Report(tier="perf")
    if path.is_dir():
        files = sorted(
            list(path.glob("BENCH_*.json")) + list(path.glob("*.spans.json"))
        )
        if not files:
            report.checked += 1
            report.add(
                "CHK601",
                f"no BENCH_*.json or *.spans.json under {path}",
                severity=Severity.WARNING,
            )
            return report
        for file in files:
            sub = check_perf_target(file)
            report.extend(sub.findings)
            report.checked += sub.checked
        return report
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        report.checked += 1
        report.add("CHK601", f"cannot parse {path}: {exc}", path=str(path))
        return report
    if "spans" in doc:
        sub = check_spans(doc, where=path.name)
    else:
        sub = check_bench_doc(doc)
    report.extend(sub.findings)
    report.checked += sub.checked
    return report


__all__ = [
    "PERF_RECORD_KEYS",
    "check_bench_doc",
    "check_perf_record",
    "check_perf_target",
    "check_spans",
]
