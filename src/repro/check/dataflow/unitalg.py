"""The abstract unit domain of the dataflow tier (REP201).

The paper's headline numbers are unit conversions all the way down —
Mbps vs bytes/s (a stray factor of 8), mW vs W, J vs J/bit — so the
analysis models *units* rather than bare physical dimensions: seconds
and milliseconds share a dimension but adding them is exactly the bug
class we are hunting.

The domain is a flat lattice over unit symbols plus three special
elements:

* ``None``           — unknown (top): compatible with everything;
* :data:`SCALAR`     — a numeric literal: the identity of ``*``/``/``
  and compatible with every unit under ``+``/``-``/comparison
  (``t + 1.0`` is idiomatic, not a bug);
* :data:`DIMENSIONLESS` — a *computed* pure ratio (``x_j / y_j``):
  incompatible with physical units under ``+``/``-``/comparison.

Multiplication and division follow a small closed algebra
(:data:`MUL`, :data:`DIV`): ``w * s = j`` but ``mw * s = mj`` — so
``energy_j = power_mw * dt_s`` infers ``mj`` flowing into a ``_j``
name, which is precisely the milliwatt bug the analysis exists to
catch.  Pairs outside the tables produce ``None`` (unknown), never a
finding: the rules only fire on *known* incompatibilities.

Unit spellings are seeded from identifier suffixes (the REP105
conventions), from :data:`repro.units.UNIT_SIGNATURES`, and from
function-name suffixes (``..._mbps()`` returns mbps).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: Numeric literal: multiplicative identity, additively compatible
#: with everything.
SCALAR = "scalar"

#: A computed pure ratio (``x / x``): additively *incompatible* with
#: physical units.  Percent-family names (``_pct``, ``ratio``,
#: ``fraction``) map here — scale factors of 100 between them are
#: legal scalar multiplications.
DIMENSIONLESS = "dimensionless"

#: Physical unit symbols the algebra knows.
PHYSICAL_UNITS = frozenset(
    {
        "s",
        "ms",
        "ns",
        "bytes",
        "bits",
        "mbit",
        "kbit",
        "bytes_per_sec",
        "mbps",
        "kbps",
        "bps",
        "w",
        "mw",
        "j",
        "mj",
        "j_per_byte",
        "j_per_bit",
    }
)

#: Identifier suffix -> unit, longest suffix first (``_mw`` must win
#: over ``_w``, ``_bytes_per_sec`` over ``_s``-free ``bytes``).
SUFFIX_UNITS: Tuple[Tuple[str, str], ...] = (
    ("_bytes_per_sec", "bytes_per_sec"),
    ("joules_per_byte", "j_per_byte"),
    ("joules_per_bit", "j_per_bit"),
    ("j_per_byte", "j_per_byte"),
    ("j_per_bit", "j_per_bit"),
    ("_mbps", "mbps"),
    ("_kbps", "kbps"),
    ("_mbit", "mbit"),
    ("_kbit", "kbit"),
    ("_bytes", "bytes"),
    ("_bits", "bits"),
    ("_pct", DIMENSIONLESS),
    ("_percent", DIMENSIONLESS),
    ("_ratio", DIMENSIONLESS),
    ("_fraction", DIMENSIONLESS),
    ("_factor", DIMENSIONLESS),
    ("_mj", "mj"),
    ("_mw", "mw"),
    ("_ms", "ms"),
    ("_ns", "ns"),
    ("_j", "j"),
    ("_w", "w"),
    ("_s", "s"),
)

#: Bare names conventionally carrying a unit in this code base (the
#: simulation clock and its deltas are seconds everywhere).
BARE_NAME_UNITS: Dict[str, str] = {
    "t": "s",
    "dt": "s",
    "now": "s",
    "elapsed": "s",
}

#: ``a * b`` for known unit pairs (symmetric; scalar/dimensionless
#: handled in :func:`mul_units`).  Missing pair = unknown result.
MUL: Dict[Tuple[str, str], str] = {
    ("bytes_per_sec", "s"): "bytes",
    ("mbps", "s"): "mbit",
    ("kbps", "s"): "kbit",
    ("bps", "s"): "bits",
    ("w", "s"): "j",
    ("mw", "s"): "mj",
    ("j_per_byte", "bytes"): "j",
    ("j_per_bit", "bits"): "j",
}

#: ``a / b`` for known unit pairs (ordered).  Missing pair = unknown.
DIV: Dict[Tuple[str, str], str] = {
    ("bytes", "s"): "bytes_per_sec",
    ("bytes", "bytes_per_sec"): "s",
    ("mbit", "s"): "mbps",
    ("mbit", "mbps"): "s",
    ("kbit", "s"): "kbps",
    ("bits", "s"): "bps",
    ("j", "s"): "w",
    ("j", "w"): "s",
    ("mj", "s"): "mw",
    ("mj", "mw"): "s",
    ("j", "bytes"): "j_per_byte",
    ("j", "j_per_byte"): "bytes",
    ("j", "bits"): "j_per_bit",
    ("j", "j_per_bit"): "bits",
}


def unit_of_name(name: str) -> Optional[str]:
    """The unit an identifier spelling declares, or ``None``.

    ``wifi_mbps`` -> ``mbps``; ``energy_ratio`` -> dimensionless;
    ``count`` -> ``None`` (no claim).
    """
    lowered = name.lower()
    bare = BARE_NAME_UNITS.get(lowered)
    if bare is not None:
        return bare
    for suffix, unit in SUFFIX_UNITS:
        if lowered.endswith(suffix):
            return unit
    return None


def mul_units(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Abstract ``a * b``; ``None`` = unknown."""
    if a is None or b is None:
        return None
    if a == SCALAR:
        return b
    if b == SCALAR:
        return a
    if a == DIMENSIONLESS:
        return b
    if b == DIMENSIONLESS:
        return a
    return MUL.get((a, b)) or MUL.get((b, a))


def div_units(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Abstract ``a / b``; ``None`` = unknown."""
    if a is None or b is None:
        return None
    if b in (SCALAR, DIMENSIONLESS):
        return a
    if a == b:
        return DIMENSIONLESS
    if a in (SCALAR, DIMENSIONLESS):
        return None  # 1/x: reciprocal units are outside the vocabulary
    return DIV.get((a, b))


def additive_conflict(a: Optional[str], b: Optional[str]) -> bool:
    """True when adding/subtracting/comparing ``a`` and ``b`` mixes two
    *known, different* units (unknowns and literals never conflict)."""
    if a is None or b is None:
        return False
    if a == SCALAR or b == SCALAR:
        return False
    return a != b


def join_units(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Lattice join at control-flow merges: agree or give up."""
    return a if a == b else None


def format_unit(unit: Optional[str]) -> str:
    """Human spelling for findings messages."""
    if unit is None:
        return "unknown"
    return unit
