"""repro.check.dataflow — the interprocedural dataflow tier (REP2xx).

Where the Tier-1 linter (:mod:`repro.check.lint`) enforces unit
discipline *syntactically* (name suffixes) and determinism *locally*
(direct wall-clock / RNG calls), this tier follows values through
assignments, arithmetic, and call boundaries:

* **REP201 — unit-dimension inference.**  Abstract units seeded from
  the REP105 suffix conventions, :data:`repro.units.UNIT_SIGNATURES`,
  and function names propagate through ``+ - * / %``, comparisons,
  and calls.  Adding seconds to milliseconds, comparing Mbps against
  bytes/s, or assigning a ``power_mw * dt_s`` product (millijoules!)
  to an ``..._j`` name are findings; conversions are legal only
  through :mod:`repro.units`.
* **REP202 — determinism taint.**  Wall-clock reads, unseeded RNG,
  ``os.environ``, and set-iteration order are taint sources; any
  tainted value that flows *through helper functions* into the
  deterministic packages is a finding — the interprocedural
  generalization of REP101/REP102, which only see direct calls.
* **REP203 — emit-payload dataflow.**  ``Tracer.emit`` payload dicts
  built incrementally or returned from helpers are statically
  resolved and verified against ``EVENT_SCHEMA`` — the non-literal
  cases REP104 cannot see.

Architecture: per-module symbol tables (:mod:`.symbols`) -> a
conservative project call graph (:mod:`.callgraph`) -> function
summaries computed to a fixpoint and a forward abstract-interpretation
check pass (:mod:`.interp`), with per-file incremental caching keyed
on import-closure content hashes (:mod:`.cache`).

Suppression and debt follow the lint tier exactly: ``# repro:
noqa[REP201]`` comments, and a committed fingerprint baseline
(default :data:`DEFAULT_DATAFLOW_BASELINE`).
"""

from __future__ import annotations

from collections import deque
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.check.cache import (
    DEFAULT_CHECK_CACHE,
    CheckCache,
    closure_digests,
    combine_hashes,
    content_hash,
)
from repro.check.dataflow.callgraph import (
    Resolver,
    build_call_graph,
    reverse_graph,
)
from repro.check.dataflow.interp import (
    CLOCK_SEAM_MODULES,
    DETERMINISTIC_MODULES,
    DETERMINISTIC_PACKAGES,
    AnalysisContext,
    FunctionInterp,
    Summary,
    seed_params,
)
from repro.check.dataflow.symbols import (
    ModuleTable,
    build_tables,
    module_name_for_path,
)
from repro.check.findings import Finding, Report, filter_noqa
from repro.check.lint import _noqa_lines, iter_python_files

__all__ = [
    "CLOCK_SEAM_MODULES",
    "DEFAULT_CHECK_CACHE",
    "DEFAULT_DATAFLOW_BASELINE",
    "DETERMINISTIC_MODULES",
    "DETERMINISTIC_PACKAGES",
    "AnalysisContext",
    "CheckCache",
    "Finding",
    "FunctionInterp",
    "ModuleTable",
    "Report",
    "Resolver",
    "Summary",
    "analyze_paths",
    "analyze_sources",
    "build_analysis",
    "build_call_graph",
    "build_tables",
    "check_module",
    "closure_digests",
    "combine_hashes",
    "compute_summaries",
    "content_hash",
    "filter_noqa",
    "iter_python_files",
    "module_name_for_path",
    "reverse_graph",
    "seed_params",
]

#: Committed debt ledger for the dataflow tier (kept separate from the
#: lint baseline so `--update-baseline` on either tier cannot clobber
#: the other's fingerprints).
DEFAULT_DATAFLOW_BASELINE = ".repro-dataflow-baseline.json"

#: Bump to invalidate every cache entry when rules change behaviour.
_ANALYSIS_VERSION = "1"

#: A function's summary is re-evaluated at most this many times before
#: the fixpoint degrades it to unknown-unit (taint is kept — it only
#: grows) to guarantee termination on non-monotone unit flows.
_MAX_REVISITS = 8


def _schema() -> Dict[str, Dict[str, tuple]]:
    from repro.obs.events import EVENT_SCHEMA

    return EVENT_SCHEMA


def _signatures() -> Dict[str, Tuple[Tuple[str, ...], str]]:
    from repro.units import UNIT_SIGNATURES

    return UNIT_SIGNATURES


def _salt() -> str:
    """Everything the analysis output depends on besides the sources."""
    schema = _schema()
    return combine_hashes(
        [_ANALYSIS_VERSION]
        + [f"{k}:{sorted(v)}" for k, v in sorted(schema.items())]
        + [f"{k}:{v}" for k, v in sorted(_signatures().items())]
        + [",".join(DETERMINISTIC_PACKAGES)]
        + [",".join(DETERMINISTIC_MODULES)]
        + [",".join(sorted(CLOCK_SEAM_MODULES))]
    )


def build_analysis(
    sources: Dict[str, str]
) -> Tuple[AnalysisContext, Dict[str, ModuleTable]]:
    """Tables, resolver, and *fixpointed* summaries for path->source."""
    named = {
        path: (module_name_for_path(path), text)
        for path, text in sources.items()
    }
    tables = build_tables(named)
    resolver = Resolver(tables)
    ctx = AnalysisContext(
        tables=tables,
        resolver=resolver,
        summaries={},
        schema=_schema(),
        unit_signatures=_signatures(),
    )
    for qual, info in resolver.project.items():
        ctx.summaries[qual] = seed_params(info, ctx)
    compute_summaries(ctx)
    return ctx, tables


def compute_summaries(ctx: AnalysisContext) -> None:
    """Worklist fixpoint over the call graph.

    Each function is interpreted with its callees' current summaries;
    when its return value changes, its callers re-enter the worklist.
    After :data:`_MAX_REVISITS` revisits a function's return unit is
    forced to unknown (taint, which grows monotonically, is kept), so
    termination does not depend on the transfer being monotone.
    """
    graph = build_call_graph(ctx.tables, ctx.resolver)
    callers = reverse_graph(graph)
    worklist = deque(sorted(ctx.resolver.project))
    queued: Set[str] = set(worklist)
    visits: Dict[str, int] = {}
    while worklist:
        qual = worklist.popleft()
        queued.discard(qual)
        info = ctx.resolver.project[qual]
        table = ctx.tables[info.module]
        interp = FunctionInterp(ctx, table, info, sink=None)
        returns = interp.run_function()
        summary = ctx.summaries[qual]
        if returns == summary.returns:
            continue
        visits[qual] = visits.get(qual, 0) + 1
        if visits[qual] > _MAX_REVISITS:
            from dataclasses import replace

            returns = replace(
                returns, unit=None, taint=returns.taint | summary.returns.taint
            )
            if returns == summary.returns:
                continue
        summary.returns = returns
        for caller in sorted(callers.get(qual, ())):
            if caller not in queued:
                worklist.append(caller)
                queued.add(caller)


def check_module(ctx: AnalysisContext, table: ModuleTable) -> List[Finding]:
    """The findings pass for one module (functions + top level)."""
    findings: List[Finding] = []
    FunctionInterp(ctx, table, None, sink=findings).run_module()
    for info in table.functions.values():
        FunctionInterp(ctx, table, info, sink=findings).run_function()
    # A tainted helper called twice on one line (or re-joined control
    # flow) must not double-report.
    unique: List[Finding] = []
    seen: Set[Tuple[str, str, int, str]] = set()
    for finding in findings:
        key = (finding.rule, finding.path, finding.line, finding.message)
        if key not in seen:
            seen.add(key)
            unique.append(finding)
    return unique


def analyze_sources(sources: Dict[str, str]) -> Report:
    """Analyze in-memory sources (path -> text); no caching.

    Paths determine module names through their ``repro`` component, so
    fixture trees like ``fixtures/repro/sim/mod.py`` behave exactly
    like the real packages.
    """
    ctx, tables = build_analysis(sources)
    report = Report(tier="dataflow")
    for module in sorted(tables):
        table = tables[module]
        findings = check_module(ctx, table)
        report.extend(filter_noqa(findings, _noqa_lines(sources[table.path])))
        report.checked += 1
    return report


def analyze_paths(
    targets: Sequence[Union[str, Path]],
    rel_to: Optional[Path] = None,
    cache: Optional[CheckCache] = None,
) -> Report:
    """Analyze every Python file under the given targets.

    Findings carry paths relative to ``rel_to`` (default CWD) so
    baselines are stable across checkouts.  With a :class:`CheckCache`,
    per-file findings are reused when neither the file nor anything in
    its import closure changed; the interprocedural fixpoint itself is
    skipped entirely when every file hits.
    """
    rel_to = Path(rel_to) if rel_to is not None else Path.cwd()
    sources: Dict[str, str] = {}
    for target in targets:
        for file in iter_python_files(target):
            try:
                rel = file.resolve().relative_to(rel_to.resolve()).as_posix()
            except ValueError:
                rel = file.as_posix()
            sources[rel] = file.read_text()

    report = Report(tier="dataflow")
    keys: Dict[str, str] = {}
    cached: Dict[str, List[Finding]] = {}
    if cache is not None and cache.enabled:
        keys = _cache_keys(sources)
        for path in sources:
            hit = cache.load(keys[path])
            if hit is not None:
                cached[path] = hit
        if len(cached) == len(sources):
            for path in sorted(sources):
                report.extend(cached[path])
                report.checked += 1
            return report

    ctx, tables = build_analysis(sources)
    by_path = {table.path: table for table in tables.values()}
    for path in sorted(sources):
        if path in cached:
            report.extend(cached[path])
            report.checked += 1
            continue
        table = by_path.get(path)
        if table is None:  # unparseable: REP100 comes from the lint tier
            report.checked += 1
            continue
        findings = filter_noqa(
            check_module(ctx, table), _noqa_lines(sources[path])
        )
        report.extend(findings)
        report.checked += 1
        if cache is not None and cache.enabled:
            cache.store(keys[path], findings)
    return report


def _cache_keys(sources: Dict[str, str]) -> Dict[str, str]:
    """Per-file cache keys over the module import closure."""
    named = {
        path: (module_name_for_path(path), text)
        for path, text in sources.items()
    }
    tables = build_tables(named)
    hashes: Dict[str, str] = {}
    deps: Dict[str, List[str]] = {}
    path_module: Dict[str, str] = {}
    for module, table in tables.items():
        hashes[module] = content_hash(sources[table.path])
        path_module[table.path] = module
        referenced: Set[str] = set()
        for target in table.module_aliases.values():
            referenced.add(target)
        for target in table.symbol_aliases.values():
            referenced.add(target.rpartition(".")[0])
            referenced.add(target)
        deps[module] = sorted(r for r in referenced if r in tables and r != module)
    digests = closure_digests(deps, hashes, _salt())
    keys: Dict[str, str] = {}
    for path in sources:
        module = path_module.get(path)
        if module is None:  # unparseable file: key on raw content
            keys[path] = combine_hashes([_salt(), path, content_hash(sources[path])])
        else:
            keys[path] = combine_hashes([digests[module], path])
    return keys
