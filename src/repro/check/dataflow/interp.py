"""The forward abstract interpreter behind the REP2xx rules.

One :class:`FunctionInterp` walks one function body (or a module's top
level) with an environment of :class:`AbsVal` abstract values tracking
four facts per expression:

* **unit** — the :mod:`~repro.check.dataflow.unitalg` domain (REP201);
* **taint** — ``(kind, origin)`` pairs for values derived from
  wall-clock reads, unseeded RNG, ``os.environ``, or set-iteration
  order (REP202);
* **dict shape** — statically known string keys (and their values)
  of incrementally built payload dicts (REP203);
* **const** — literal constants, for resolving non-literal
  ``Tracer.emit`` event types.

Interprocedural facts come from :class:`Summary` records: the return
value of every project function, computed to a fixpoint by
:func:`compute_summaries` over the call graph (worklist, reverse
edges).  The same interpreter runs twice per function — once in
summary mode (no findings) during the fixpoint, once in check mode
with a findings sink.

Control flow is handled by branch-and-join: both arms of an ``if``
run on copies of the environment and merge (units must agree or drop
to unknown, taints union, dict shapes must agree).  Loop bodies run
once — enough for the patterns the rules target, and it keeps the
pass linear.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.check.dataflow import unitalg
from repro.check.dataflow.callgraph import Resolver
from repro.check.dataflow.symbols import (
    FunctionInfo,
    ModuleTable,
    package_of,
)
from repro.check.dataflow.unitalg import (
    DIMENSIONLESS,
    SCALAR,
    unit_of_name,
)
from repro.check.findings import Finding, Severity

#: Packages whose behaviour must be a pure function of (scenario,
#: seed).  REP202 guards these — a superset of the lint tier's list:
#: ``packet`` and ``control`` joined when the control plane became
#: engine-agnostic.
DETERMINISTIC_PACKAGES = (
    "sim",
    "core",
    "mptcp",
    "tcp",
    "flow",
    "engines",
    "packet",
    "control",
)

#: Individual modules held to the same standard even though their
#: parent package (``runtime``) is not: the job queue, scheduler, and
#: segment store journal timestamps and must be crash-replayable.
DETERMINISTIC_MODULES = (
    "repro.runtime.queue",
    "repro.runtime.scheduler",
    "repro.runtime.store",
    # Distributed-trace IDs are sha256-derived from batch content;
    # the module takes timestamps as arguments (clock-free) so that
    # replayed batches reassemble into the same span tree.
    "repro.obs.dist",
)

#: The blessed wall-clock boundary.  Values returned by these modules
#: are journaled/replayable instants, so wall-clock taint is laundered
#: at the call edge instead of propagating into the callers above.
CLOCK_SEAM_MODULES = frozenset({"repro.runtime.clock"})

#: Modules exempt from REP201: ``repro.units`` is *the* blessed
#: conversion boundary — inside it, values change unit by design.
UNIT_EXEMPT_MODULES = frozenset({"repro.units"})

#: Taint-source kinds (the first element of each taint pair).
WALLCLOCK = "wall-clock"
RNG = "unseeded-rng"
ENVIRON = "os.environ"
SET_ORDER = "set-iteration-order"

#: Direct wall-clock / RNG reads are REP101/REP102's beat; REP202 only
#: reports them once they travel through a call boundary.
_DIRECT_REPORTED_ELSEWHERE = (WALLCLOCK, RNG)

_WALLCLOCK_PATHS = {
    f"time.{fn}"
    for fn in (
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
    )
}
_DATETIME_SUFFIXES = ("now", "utcnow", "today")

_GLOBAL_RANDOM_FNS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "gauss",
    "normalvariate",
    "expovariate",
    "betavariate",
    "triangular",
    "vonmisesvariate",
    "seed",
    "getrandbits",
}
_NUMPY_RANDOM_FNS = {
    "random",
    "rand",
    "randn",
    "randint",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "exponential",
    "poisson",
    "seed",
}

Taint = FrozenSet[Tuple[str, str]]
_NO_TAINT: Taint = frozenset()
_MAX_TAINTS = 4


@dataclass(frozen=True)
class AbsVal:
    """One abstract value: unit x taint x dict shape x constant."""

    unit: Optional[str] = None
    taint: Taint = _NO_TAINT
    #: Statically known dict entries, or None for non-dicts/unknown.
    entries: Optional[Tuple[Tuple[str, "AbsVal"], ...]] = None
    #: True when ``entries`` lists *every* key the dict can hold.
    complete: bool = False
    const: Any = None
    is_set: bool = False

    def with_taint(self, taint: Taint) -> "AbsVal":
        if not taint:
            return self
        merged = frozenset(list(self.taint | taint)[:_MAX_TAINTS])
        return replace(self, taint=merged)


UNKNOWN = AbsVal()


def join_values(a: AbsVal, b: AbsVal) -> AbsVal:
    """Lattice join at control-flow merges."""
    entries: Optional[Tuple[Tuple[str, AbsVal], ...]] = None
    complete = False
    if a.entries is not None and b.entries is not None:
        if dict(a.entries).keys() == dict(b.entries).keys():
            bmap = dict(b.entries)
            entries = tuple(
                (k, join_values(v, bmap[k])) for k, v in a.entries
            )
            complete = a.complete and b.complete
    return AbsVal(
        unit=unitalg.join_units(a.unit, b.unit),
        taint=frozenset(list(a.taint | b.taint)[:_MAX_TAINTS]),
        entries=entries,
        complete=complete,
        const=a.const if a.const == b.const else None,
        is_set=a.is_set and b.is_set,
    )


@dataclass
class Summary:
    """Interprocedural facts about one project function."""

    returns: AbsVal = field(default_factory=lambda: UNKNOWN)
    #: Declared units of positional parameters, seeded from names and
    #: ``repro.units.UNIT_SIGNATURES`` (None = no claim).
    param_units: Tuple[Optional[str], ...] = ()
    param_names: Tuple[str, ...] = ()


@dataclass
class AnalysisContext:
    """Everything shared across one analysis run."""

    tables: Dict[str, ModuleTable]
    resolver: Resolver
    summaries: Dict[str, Summary]
    schema: Dict[str, Dict[str, tuple]]
    unit_signatures: Dict[str, Tuple[Tuple[str, ...], str]]
    det_packages: Tuple[str, ...] = DETERMINISTIC_PACKAGES
    det_modules: Tuple[str, ...] = DETERMINISTIC_MODULES

    def is_deterministic(self, module: str) -> bool:
        return (
            package_of(module) in self.det_packages
            or module in self.det_modules
        )


def seed_params(info: FunctionInfo, ctx: AnalysisContext) -> Summary:
    """Parameter-unit claims from names (and the units signature
    table, which wins for ``repro.units`` helpers)."""
    node = info.node
    args = (
        list(node.args.posonlyargs)
        + list(node.args.args)
        + list(node.args.kwonlyargs)
    )
    names = tuple(a.arg for a in args)
    units: List[Optional[str]] = [unit_of_name(n) for n in names]
    sig = ctx.unit_signatures.get(info.name)
    if sig is not None and info.module == "repro.units":
        declared = list(sig[0])
        start = 1 if names and names[0] in ("self", "cls") else 0
        for i, unit in enumerate(declared):
            if start + i < len(units):
                units[start + i] = unit
    return Summary(param_units=tuple(units), param_names=names)


class FunctionInterp(ast.NodeVisitor):
    """One abstract-interpretation pass over one function body."""

    def __init__(
        self,
        ctx: AnalysisContext,
        table: ModuleTable,
        info: Optional[FunctionInfo],
        sink: Optional[List[Finding]] = None,
    ):
        self.ctx = ctx
        self.table = table
        self.info = info
        self.sink = sink
        self.cls = info.cls if info else None
        self.env: Dict[str, AbsVal] = {}
        self.ret: Optional[AbsVal] = None
        self.unit_checks = table.module not in UNIT_EXEMPT_MODULES
        self.deterministic = ctx.is_deterministic(table.module)

    # -- plumbing ------------------------------------------------------

    def _scope(self, symbol: str) -> str:
        base = ""
        if self.info is not None:
            base = self.info.qualname.split(":", 1)[1]
        return f"{base}:{symbol}" if base and symbol else (base or symbol)

    def _flag(
        self,
        rule: str,
        message: str,
        node: ast.AST,
        symbol: str = "",
        severity: Severity = Severity.ERROR,
    ) -> None:
        if self.sink is None:
            return
        self.sink.append(
            Finding(
                rule=rule,
                message=message,
                path=self.table.path,
                line=getattr(node, "lineno", 0),
                severity=severity,
                context=self._scope(symbol),
            )
        )

    # -- entry points --------------------------------------------------

    def run_function(self) -> AbsVal:
        assert self.info is not None
        summary = self.ctx.summaries.get(self.info.qualname)
        if summary is None:
            summary = seed_params(self.info, self.ctx)
        for name, unit in zip(summary.param_names, summary.param_units):
            self.env[name] = AbsVal(unit=unit)
        body = self.info.node.body  # type: ignore[attr-defined]
        self.exec_block(body, self.env)
        ret = self.ret if self.ret is not None else UNKNOWN
        declared = (
            unit_of_name(self.info.name) if self.unit_checks else None
        )
        if (
            declared is not None
            and unitalg.additive_conflict(declared, ret.unit)
        ):
            self._flag(
                "REP201",
                f"function {self.info.name!r} declares unit "
                f"{unitalg.format_unit(declared)} in its name but returns "
                f"{unitalg.format_unit(ret.unit)}; convert via repro.units",
                self.info.node,
                symbol=f"return.{self.info.name}",
            )
        # As with assignments: once the declaration is checked, trust
        # the name spelling when inference knows nothing better, so
        # `rate_mbps(x)` carries mbps into callers.
        if declared is not None and ret.unit in (None, SCALAR):
            ret = replace(ret, unit=declared)
        return ret

    def run_module(self) -> None:
        """Interpret module-level statements (class bodies included)."""
        for stmt in self.table.tree.body:
            if isinstance(stmt, ast.ClassDef):
                class_env = dict(self.env)
                for sub in stmt.body:
                    if not isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self.exec_stmt(sub, class_env)
            elif not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                self.exec_stmt(stmt, self.env)

    # -- statements ----------------------------------------------------

    def exec_block(self, body: List[ast.stmt], env: Dict[str, AbsVal]) -> None:
        for stmt in body:
            self.exec_stmt(stmt, env)

    def exec_stmt(self, stmt: ast.stmt, env: Dict[str, AbsVal]) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                self.assign(target, value, env, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self.eval(stmt.value, env)
                self.assign(stmt.target, value, env, stmt)
        elif isinstance(stmt, ast.AugAssign):
            target = stmt.target
            current = (
                self.lookup(target.id, env)
                if isinstance(target, ast.Name)
                else self.eval(target, env)
            )
            value = self.eval(stmt.value, env)
            result = self.binop_value(stmt.op, current, value, stmt)
            if isinstance(target, ast.Name):
                self.assign(target, result, env, stmt)
        elif isinstance(stmt, ast.Return):
            value = (
                self.eval(stmt.value, env) if stmt.value is not None else UNKNOWN
            )
            self.ret = value if self.ret is None else join_values(self.ret, value)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test, env)
            then_env = dict(env)
            else_env = dict(env)
            self.exec_block(stmt.body, then_env)
            self.exec_block(stmt.orelse, else_env)
            self.merge_into(env, then_env, else_env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iterable = self.eval(stmt.iter, env)
            element = UNKNOWN.with_taint(iterable.taint)
            if iterable.is_set:
                element = element.with_taint(
                    frozenset(
                        {(SET_ORDER, f"iteration over a set in "
                                     f"{self.table.module}")}
                    )
                )
                if self.deterministic:
                    self._flag(
                        "REP202",
                        "iteration order over a set is not deterministic "
                        "across processes (hash randomization); sort first",
                        stmt,
                        symbol="set-iteration",
                    )
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = element
            body_env = dict(env)
            self.exec_block(stmt.body, body_env)
            self.exec_block(stmt.orelse, body_env)
            self.merge_into(env, env, body_env)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test, env)
            body_env = dict(env)
            self.exec_block(stmt.body, body_env)
            self.exec_block(stmt.orelse, body_env)
            self.merge_into(env, env, body_env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval(item.context_expr, env)
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    env[item.optional_vars.id] = value
            self.exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            body_env = dict(env)
            self.exec_block(stmt.body, body_env)
            envs = [body_env]
            for handler in stmt.handlers:
                handler_env = dict(env)
                self.exec_block(handler.body, handler_env)
                envs.append(handler_env)
            merged = envs[0]
            for other in envs[1:]:
                merged_copy = dict(merged)
                self.merge_into(merged, merged_copy, other)
            env.update(merged)
            self.exec_block(stmt.orelse, env)
            self.exec_block(stmt.finalbody, env)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            pass  # nested defs get their own summary pass
        elif isinstance(stmt, ast.ClassDef):
            pass
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            if isinstance(stmt, ast.Assert):
                self.eval(stmt.test, env)
            elif stmt.exc is not None:
                self.eval(stmt.exc, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)

    def merge_into(
        self,
        env: Dict[str, AbsVal],
        a: Dict[str, AbsVal],
        b: Dict[str, AbsVal],
    ) -> None:
        """Join two branch environments back into ``env``."""
        for name in set(a) | set(b):
            va, vb = a.get(name), b.get(name)
            if va is None or vb is None:
                env[name] = (va or vb).with_taint(_NO_TAINT)  # type: ignore[union-attr]
            else:
                env[name] = join_values(va, vb)

    # -- assignment ----------------------------------------------------

    def assign(
        self,
        target: ast.expr,
        value: AbsVal,
        env: Dict[str, AbsVal],
        stmt: ast.stmt,
    ) -> None:
        if isinstance(target, ast.Name):
            declared = unit_of_name(target.id) if self.unit_checks else None
            if declared is not None and unitalg.additive_conflict(
                declared, value.unit
            ):
                self._flag(
                    "REP201",
                    f"value of unit {unitalg.format_unit(value.unit)} "
                    f"assigned to {target.id!r} which declares "
                    f"{unitalg.format_unit(declared)}; route the conversion "
                    f"through repro.units",
                    stmt,
                    symbol=target.id,
                )
            # Trust the spelling when inference has nothing better: a
            # `_mbps` name keeps claiming mbps downstream.
            if value.unit is None and declared is not None:
                value = replace(value, unit=declared)
            elif value.unit == SCALAR and declared is not None:
                value = replace(value, unit=declared)
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            element = UNKNOWN.with_taint(value.taint)
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    env[elt.id] = element
        elif isinstance(target, ast.Subscript):
            base = target.value
            if (
                isinstance(base, ast.Name)
                and isinstance(target.slice, ast.Constant)
                and isinstance(target.slice.value, str)
            ):
                existing = env.get(base.id)
                if existing is not None and existing.entries is not None:
                    entries = dict(existing.entries)
                    entries[target.slice.value] = value
                    env[base.id] = replace(
                        existing,
                        entries=tuple(sorted(entries.items())),
                        taint=frozenset(
                            list(existing.taint | value.taint)[:_MAX_TAINTS]
                        ),
                    )
        elif isinstance(target, ast.Starred):
            self.assign(target.value, UNKNOWN.with_taint(value.taint), env, stmt)

    def lookup(self, name: str, env: Dict[str, AbsVal]) -> AbsVal:
        found = env.get(name)
        if found is not None:
            return found
        if name in self.table.constants:
            return AbsVal(unit=SCALAR)
        target = self.table.symbol_aliases.get(name)
        if target is not None:
            module, _, symbol = target.rpartition(".")
            other = self.ctx.tables.get(module)
            if other is not None and symbol in other.constants:
                return AbsVal(unit=SCALAR)
        return AbsVal(unit=unit_of_name(name))

    # -- expressions ---------------------------------------------------

    def eval(self, node: ast.expr, env: Dict[str, AbsVal]) -> AbsVal:
        if isinstance(node, ast.Name):
            return self.lookup(node.id, env)
        if isinstance(node, ast.Constant):
            value = node.value
            if isinstance(value, bool) or value is None:
                return AbsVal(const=value)
            if isinstance(value, (int, float)):
                return AbsVal(unit=SCALAR, const=value)
            if isinstance(value, str):
                return AbsVal(const=value)
            return UNKNOWN
        if isinstance(node, ast.Attribute):
            return self.eval_attribute(node, env)
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left, env)
            right = self.eval(node.right, env)
            return self.binop_value(node.op, left, right, node)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand, env)
        if isinstance(node, ast.Compare):
            operands = [self.eval(node.left, env)] + [
                self.eval(c, env) for c in node.comparators
            ]
            if self.unit_checks:
                for a, b in zip(operands, operands[1:]):
                    if unitalg.additive_conflict(a.unit, b.unit):
                        self._flag(
                            "REP201",
                            f"comparison mixes units "
                            f"{unitalg.format_unit(a.unit)} and "
                            f"{unitalg.format_unit(b.unit)}; convert via "
                            f"repro.units first",
                            node,
                            symbol="compare",
                        )
            taint = frozenset().union(*(v.taint for v in operands))
            return AbsVal().with_taint(taint)
        if isinstance(node, ast.BoolOp):
            values = [self.eval(v, env) for v in node.values]
            result = values[0]
            for value in values[1:]:
                result = join_values(result, value)
            return result
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            return join_values(
                self.eval(node.body, env), self.eval(node.orelse, env)
            )
        if isinstance(node, ast.Call):
            return self.eval_call(node, env)
        if isinstance(node, ast.Dict):
            return self.eval_dict(node, env)
        if isinstance(node, ast.Set):
            taint = frozenset().union(
                *(self.eval(e, env).taint for e in node.elts)
            )
            return AbsVal(is_set=True).with_taint(taint)
        if isinstance(node, (ast.List, ast.Tuple)):
            taint = frozenset().union(
                *(self.eval(e, env).taint for e in node.elts)
            )
            return AbsVal().with_taint(taint)
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value, env)
            if isinstance(node.slice, ast.expr):
                self.eval(node.slice, env)
            return UNKNOWN.with_taint(base.taint)
        if isinstance(node, ast.JoinedStr):
            taint: Taint = frozenset()
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    taint = taint | self.eval(part.value, env).taint
            return AbsVal().with_taint(taint)
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value, env)
            if isinstance(node.target, ast.Name):
                self.assign(node.target, value, env, node)  # type: ignore[arg-type]
                return env.get(node.target.id, value)
            return value
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env)
        if isinstance(node, ast.Await):
            return self.eval(node.value, env)
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            taint: Taint = frozenset()
            for gen in node.generators:
                taint = taint | self.eval(gen.iter, env).taint
            return AbsVal(is_set=isinstance(node, ast.SetComp)).with_taint(
                taint
            )
        if isinstance(node, ast.Lambda):
            return UNKNOWN
        return UNKNOWN

    def eval_attribute(
        self, node: ast.Attribute, env: Dict[str, AbsVal]
    ) -> AbsVal:
        dotted = self.ctx.resolver.flatten(node, self.table)
        if dotted == "os.environ":
            value = AbsVal().with_taint(
                frozenset({(ENVIRON, "os.environ read")})
            )
            self._taint_source(value, node)
            return value
        if dotted is not None and "." in dotted:
            module, _, symbol = dotted.rpartition(".")
            other = self.ctx.tables.get(module)
            if other is not None and symbol in other.constants:
                return AbsVal(unit=SCALAR)
        base_taint: Taint = frozenset()
        if not (
            isinstance(node.value, ast.Name)
            and node.value.id in ("self", "cls")
        ):
            base_taint = self.eval(node.value, env).taint
        unit = unit_of_name(node.attr)
        return AbsVal(unit=unit).with_taint(base_taint)

    def binop_value(
        self, op: ast.operator, left: AbsVal, right: AbsVal, node: ast.AST
    ) -> AbsVal:
        taint = left.taint | right.taint
        unit: Optional[str] = None
        if isinstance(op, (ast.Add, ast.Sub)):
            if self.unit_checks and unitalg.additive_conflict(
                left.unit, right.unit
            ):
                opname = "+" if isinstance(op, ast.Add) else "-"
                self._flag(
                    "REP201",
                    f"incompatible units in "
                    f"{unitalg.format_unit(left.unit)} {opname} "
                    f"{unitalg.format_unit(right.unit)}; convert via "
                    f"repro.units",
                    node,
                    symbol=f"{unitalg.format_unit(left.unit)}{opname}"
                    f"{unitalg.format_unit(right.unit)}",
                )
            else:
                for candidate in (left.unit, right.unit):
                    if candidate not in (None, SCALAR):
                        unit = candidate
                        break
                else:
                    unit = SCALAR if left.unit == right.unit == SCALAR else None
        elif isinstance(op, ast.Mult):
            unit = unitalg.mul_units(left.unit, right.unit)
        elif isinstance(op, (ast.Div, ast.FloorDiv)):
            unit = unitalg.div_units(left.unit, right.unit)
        elif isinstance(op, ast.Mod):
            unit = left.unit
        return AbsVal(unit=unit).with_taint(taint)

    def eval_dict(self, node: ast.Dict, env: Dict[str, AbsVal]) -> AbsVal:
        entries: Dict[str, AbsVal] = {}
        complete = True
        taint: Taint = frozenset()
        for key, value in zip(node.keys, node.values):
            if key is None:  # {**other}
                expanded = self.eval(value, env)
                taint = taint | expanded.taint
                if expanded.entries is not None:
                    entries.update(dict(expanded.entries))
                    complete = complete and expanded.complete
                else:
                    complete = False
                continue
            val = self.eval(value, env)
            taint = taint | val.taint
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                entries[key.value] = val
            else:
                complete = False
        return AbsVal(
            entries=tuple(sorted(entries.items())), complete=complete
        ).with_taint(taint)

    # -- calls ---------------------------------------------------------

    def eval_call(self, node: ast.Call, env: Dict[str, AbsVal]) -> AbsVal:
        func = node.func
        args = [self.eval(a, env) for a in node.args]
        kwargs = {
            kw.arg: self.eval(kw.value, env)
            for kw in node.keywords
            if kw.arg is not None
        }
        star_kwargs = [
            self.eval(kw.value, env)
            for kw in node.keywords
            if kw.arg is None
        ]
        arg_taint: Taint = frozenset()
        for value in list(args) + list(kwargs.values()) + star_kwargs:
            arg_taint = arg_taint | value.taint

        if isinstance(func, ast.Attribute) and func.attr == "emit":
            self.check_emit(node, args, kwargs, star_kwargs)

        dotted = (
            self.ctx.resolver.flatten(func, self.table)
            if isinstance(func, (ast.Name, ast.Attribute))
            else None
        )
        source = self.classify_source(dotted, node)
        if source is not None:
            value = AbsVal().with_taint(frozenset({source})).with_taint(
                arg_taint
            )
            self._taint_source(value, node, direct_kind=source[0])
            return value

        if isinstance(func, ast.Name):
            builtin = self.eval_builtin(func.id, node, args, kwargs, arg_taint)
            if builtin is not None:
                return builtin

        target = self.ctx.resolver.resolve_call(func, self.table, self.cls)
        if target is not None:
            return self.eval_project_call(node, target, args, kwargs, arg_taint)
        # `repro.units` helpers keep their declared signatures even when
        # units.py itself is outside the analyzed set (fixture trees).
        if dotted is not None and dotted.startswith("repro.units."):
            sig = self.ctx.unit_signatures.get(dotted.rpartition(".")[2])
            if sig is not None:
                declared_in, declared_out = sig
                if self.unit_checks:
                    for i, value in enumerate(args):
                        if i < len(declared_in) and unitalg.additive_conflict(
                            declared_in[i], value.unit
                        ):
                            self._flag(
                                "REP201",
                                f"argument {i + 1} of "
                                f"{dotted.rpartition('.')[2]}() declares "
                                f"{unitalg.format_unit(declared_in[i])} but "
                                f"receives {unitalg.format_unit(value.unit)}",
                                node,
                                symbol=f"{dotted.rpartition('.')[2]}.{i + 1}",
                            )
                return AbsVal(unit=declared_out).with_taint(arg_taint)
        return AbsVal().with_taint(arg_taint)

    def classify_source(
        self, dotted: Optional[str], node: ast.Call
    ) -> Optional[Tuple[str, str]]:
        """(kind, description) when a call reads ambient entropy."""
        if dotted is None:
            return None
        if dotted in _WALLCLOCK_PATHS:
            return (WALLCLOCK, f"{dotted}()")
        if dotted.startswith("datetime.") and dotted.rpartition(".")[
            2
        ] in _DATETIME_SUFFIXES:
            return (WALLCLOCK, f"{dotted}()")
        if dotted.startswith("random."):
            fn = dotted.rpartition(".")[2]
            if fn in _GLOBAL_RANDOM_FNS:
                return (RNG, f"{dotted}()")
            if fn == "Random" and not node.args and not node.keywords:
                return (RNG, "random.Random() without a seed")
        if dotted.startswith("numpy.random."):
            fn = dotted.rpartition(".")[2]
            if fn in _NUMPY_RANDOM_FNS:
                return (RNG, f"{dotted}()")
            if fn == "default_rng" and not node.args and not node.keywords:
                return (RNG, "numpy.random.default_rng() without a seed")
        if dotted in ("os.getenv", "os.environ.get"):
            return (ENVIRON, f"{dotted}()")
        return None

    def _taint_source(
        self,
        value: AbsVal,
        node: ast.AST,
        direct_kind: Optional[str] = None,
    ) -> None:
        """REP202 for *direct* sources not owned by REP101/REP102."""
        if not self.deterministic:
            return
        kinds = {kind for kind, _ in value.taint}
        if direct_kind is not None and direct_kind in _DIRECT_REPORTED_ELSEWHERE:
            return
        for kind, desc in sorted(value.taint):
            if kind in _DIRECT_REPORTED_ELSEWHERE:
                continue
            self._flag(
                "REP202",
                f"{desc} feeds a deterministic package "
                f"({package_of(self.table.module)}); results must be a pure "
                f"function of (scenario, seed)",
                node,
                symbol=f"{kind}",
            )
        del kinds

    def eval_builtin(
        self,
        name: str,
        node: ast.Call,
        args: List[AbsVal],
        kwargs: Dict[str, AbsVal],
        arg_taint: Taint,
    ) -> Optional[AbsVal]:
        if name in ("set", "frozenset"):
            return AbsVal(is_set=True).with_taint(arg_taint)
        if name == "sorted":
            # Sorting launders iteration-order taint by construction.
            cleaned = frozenset(
                pair for pair in arg_taint if pair[0] != SET_ORDER
            )
            return AbsVal().with_taint(cleaned)
        if name == "dict":
            if not node.args and all(kw.arg is not None for kw in node.keywords):
                entries = tuple(sorted(kwargs.items()))
                return AbsVal(entries=entries, complete=True).with_taint(
                    arg_taint
                )
            return AbsVal().with_taint(arg_taint)
        if name in ("min", "max"):
            units = [a.unit for a in args]
            if self.unit_checks:
                for i in range(len(units) - 1):
                    if unitalg.additive_conflict(units[i], units[i + 1]):
                        self._flag(
                            "REP201",
                            f"{name}() compares values of units "
                            f"{unitalg.format_unit(units[i])} and "
                            f"{unitalg.format_unit(units[i + 1])}",
                            node,
                            symbol=name,
                        )
            unit = None
            for candidate in units:
                if candidate not in (None, SCALAR):
                    unit = candidate if unit in (None, candidate) else None
                    break
            return AbsVal(unit=unit).with_taint(arg_taint)
        if name in ("abs", "round", "float", "sum"):
            unit = args[0].unit if args else None
            return AbsVal(unit=unit).with_taint(arg_taint)
        if name in ("int", "len", "bool", "str", "repr", "hash", "id"):
            return AbsVal().with_taint(arg_taint)
        return None

    def eval_project_call(
        self,
        node: ast.Call,
        target: str,
        args: List[AbsVal],
        kwargs: Dict[str, AbsVal],
        arg_taint: Taint,
    ) -> AbsVal:
        info = self.ctx.resolver.project[target]
        summary = self.ctx.summaries.get(target) or seed_params(info, self.ctx)
        if info.module in CLOCK_SEAM_MODULES and summary.returns.taint:
            # The clock seam owns its wall-clock reads: replay swaps in
            # recorded instants, so what it returns is deterministic
            # from the caller's point of view.
            cleaned = frozenset(
                pair for pair in summary.returns.taint if pair[0] != WALLCLOCK
            )
            summary = replace(
                summary, returns=replace(summary.returns, taint=cleaned)
            )
        self.check_call_units(node, info, summary, args, kwargs)
        self.check_taint_flow(node, info, summary, args, kwargs)

        returns = summary.returns
        sig = (
            self.ctx.unit_signatures.get(info.name)
            if info.module == "repro.units"
            else None
        )
        if sig is not None:
            returns = replace(returns, unit=sig[1])
        return returns.with_taint(arg_taint)

    def check_call_units(
        self,
        node: ast.Call,
        info: FunctionInfo,
        summary: Summary,
        args: List[AbsVal],
        kwargs: Dict[str, AbsVal],
    ) -> None:
        if not self.unit_checks or self.sink is None:
            return
        names = list(summary.param_names)
        units = list(summary.param_units)
        if names and names[0] in ("self", "cls") and not isinstance(
            node.func, ast.Name
        ):
            names, units = names[1:], units[1:]
        for i, value in enumerate(args):
            if i >= len(units):
                break
            if unitalg.additive_conflict(units[i], value.unit):
                self._flag(
                    "REP201",
                    f"argument {names[i]!r} of {info.name}() declares "
                    f"{unitalg.format_unit(units[i])} but receives "
                    f"{unitalg.format_unit(value.unit)}",
                    node,
                    symbol=f"{info.name}.{names[i]}",
                )
        for kw_name, value in kwargs.items():
            if kw_name in names:
                declared = units[names.index(kw_name)]
                if unitalg.additive_conflict(declared, value.unit):
                    self._flag(
                        "REP201",
                        f"argument {kw_name!r} of {info.name}() declares "
                        f"{unitalg.format_unit(declared)} but receives "
                        f"{unitalg.format_unit(value.unit)}",
                        node,
                        symbol=f"{info.name}.{kw_name}",
                    )

    def check_taint_flow(
        self,
        node: ast.Call,
        info: FunctionInfo,
        summary: Summary,
        args: List[AbsVal],
        kwargs: Dict[str, AbsVal],
    ) -> None:
        if self.sink is None:
            return
        # Tainted return value consumed inside a deterministic package.
        if self.deterministic and summary.returns.taint:
            for kind, desc in sorted(summary.returns.taint):
                self._flag(
                    "REP202",
                    f"{info.name}() returns a value derived from {desc} "
                    f"({kind}); it flows into deterministic package "
                    f"{package_of(self.table.module)!r}",
                    node,
                    symbol=f"call.{info.name}",
                )
        # Tainted argument handed into a deterministic package.
        if self.ctx.is_deterministic(info.module) and not self.deterministic:
            for value in list(args) + list(kwargs.values()):
                for kind, desc in sorted(value.taint):
                    self._flag(
                        "REP202",
                        f"value derived from {desc} ({kind}) is passed "
                        f"into {info.qualname} in deterministic package "
                        f"{package_of(info.module)!r}",
                        node,
                        symbol=f"arg.{info.name}",
                    )

    # -- REP203 --------------------------------------------------------

    def check_emit(
        self,
        node: ast.Call,
        args: List[AbsVal],
        kwargs: Dict[str, AbsVal],
        star_kwargs: List[AbsVal],
    ) -> None:
        if self.sink is None or not node.args:
            return
        literal_type = isinstance(node.args[0], ast.Constant)
        has_star = any(kw.arg is None for kw in node.keywords)
        if literal_type and not has_star:
            return  # fully literal: REP104's territory
        etype = args[0].const
        if not isinstance(etype, str):
            return  # dynamically computed beyond const-propagation
        fields = self.ctx.schema.get(etype)
        if fields is None:
            self._flag(
                "REP203",
                f"tracer emission of unknown event type {etype!r} resolved "
                f"by dataflow (not in EVENT_SCHEMA)",
                node,
                symbol=etype,
            )
            return
        provided: Dict[str, AbsVal] = dict(kwargs)
        complete = True
        for expanded in star_kwargs:
            if expanded.entries is None:
                complete = False
                continue
            provided.update(dict(expanded.entries))
            complete = complete and expanded.complete
        if len(node.args) > 1:
            provided.setdefault("t", args[1])
        if complete:
            missing = sorted(set(fields) - set(provided))
            if "t" not in provided:
                missing.insert(0, "t")
            if missing:
                self._flag(
                    "REP203",
                    f"tracer emission of {etype!r} (payload resolved by "
                    f"dataflow) is missing declared field(s): "
                    f"{', '.join(missing)}",
                    node,
                    symbol=etype,
                )
        for name, value in sorted(provided.items()):
            allowed = fields.get(name)
            if allowed is None or value.const is None:
                continue
            if not isinstance(value.const, tuple(allowed)) or (
                isinstance(value.const, bool) and bool not in allowed
            ):
                self._flag(
                    "REP203",
                    f"field {name!r} of {etype!r} expects "
                    f"{'/'.join(t.__name__ for t in allowed)} but the "
                    f"resolved payload holds {type(value.const).__name__}",
                    node,
                    symbol=f"{etype}.{name}",
                )
