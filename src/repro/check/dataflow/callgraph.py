"""Name resolution and the project call graph.

The dataflow rules are interprocedural, so every ``Call`` node must be
mapped — conservatively — to either a *project function* (one of the
:class:`~repro.check.dataflow.symbols.FunctionInfo` records, whose
summary then flows into the caller) or an *external dotted path*
(``time.monotonic``, ``os.environ.get``, ``numpy.random.uniform``)
that the taint rules classify.

Resolution is deliberately narrow: bare names through the import
table, dotted module attributes, and ``self.``/``cls.`` methods of the
enclosing class.  Arbitrary ``obj.method()`` attribute calls stay
unresolved (returning unknown values) rather than guessing — a wrong
edge would poison unit and taint inference with false facts.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.check.dataflow.symbols import FunctionInfo, ModuleTable


class Resolver:
    """Maps AST call/attribute expressions to qualified names."""

    def __init__(self, tables: Dict[str, ModuleTable]):
        self.tables = tables
        #: qualname -> FunctionInfo over every analyzed module.
        self.project: Dict[str, FunctionInfo] = {}
        for table in tables.values():
            self.project.update(table.functions)

    # -- dotted paths --------------------------------------------------

    def flatten(self, node: ast.expr, table: ModuleTable) -> Optional[str]:
        """Fully qualified dotted path of a Name/Attribute chain.

        ``np.random.uniform`` -> ``numpy.random.uniform`` (through the
        import aliases); ``self._payload`` -> ``self._payload``
        (``self`` is kept literal for the method resolver).  Returns
        ``None`` for chains rooted in calls/subscripts.
        """
        parts: List[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        root = cur.id
        if root in ("self", "cls"):
            mapped = root
        else:
            mapped = (
                table.symbol_aliases.get(root)
                or table.module_aliases.get(root)
                or root
            )
        return ".".join([mapped] + list(reversed(parts)))

    # -- call targets --------------------------------------------------

    def resolve_call(
        self, func: ast.expr, table: ModuleTable, cls: Optional[str]
    ) -> Optional[str]:
        """Qualname of the *project* function a call binds to, or None."""
        if isinstance(func, ast.Name):
            target = table.symbol_aliases.get(func.id)
            if target is not None:
                qual = self._qual_from_dotted(target)
                if qual is not None:
                    return qual
                return None
            return table.resolve_local(func.id)
        if isinstance(func, ast.Attribute):
            dotted = self.flatten(func, table)
            if dotted is None:
                return None
            head, _, rest = dotted.partition(".")
            if head in ("self", "cls") and cls is not None and "." not in rest:
                methods = table.classes.get(cls, {})
                return methods.get(rest)
            return self._qual_from_dotted(dotted)
        return None

    def _qual_from_dotted(self, dotted: str) -> Optional[str]:
        """``repro.units.mib`` -> ``repro.units:mib`` when analyzed."""
        module, _, name = dotted.rpartition(".")
        if not module or not name:
            return None
        qual = f"{module}:{name}"
        if qual in self.project:
            return qual
        return None


def function_callees(
    info: FunctionInfo, table: ModuleTable, resolver: Resolver
) -> Set[str]:
    """Project functions a function's body may call (over-approximate:
    nested defs are included)."""
    callees: Set[str] = set()
    for node in ast.walk(info.node):
        if isinstance(node, ast.Call):
            target = resolver.resolve_call(node.func, table, info.cls)
            if target is not None:
                callees.add(target)
    return callees


def build_call_graph(
    tables: Dict[str, ModuleTable], resolver: Resolver
) -> Dict[str, Set[str]]:
    """{caller qualname -> callee qualnames} over every analyzed module."""
    graph: Dict[str, Set[str]] = {}
    for table in tables.values():
        for qual, info in table.functions.items():
            graph[qual] = function_callees(info, table, resolver)
    return graph


def reverse_graph(graph: Dict[str, Set[str]]) -> Dict[str, Set[str]]:
    """{callee -> callers}, the worklist ordering for the fixpoint."""
    reverse: Dict[str, Set[str]] = {}
    for caller, callees in graph.items():
        for callee in callees:
            reverse.setdefault(callee, set()).add(caller)
    return reverse
