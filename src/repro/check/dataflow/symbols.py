"""Per-module symbol tables: the first layer of the dataflow tier.

One :class:`ModuleTable` per analyzed file records what the
interprocedural passes need to resolve names without re-walking the
AST: the import environment (local alias -> fully qualified module or
symbol), every function and method (qualified as ``module:func`` /
``module:Class.method``), and the classes defined in the module.

Module names are inferred from the path's ``repro`` component
(``src/repro/sim/engine.py`` -> ``repro.sim.engine``), which also
makes the test fixtures under ``tests/data/dataflow_fixtures/repro/``
look like real packages to the analysis.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple


@dataclass
class FunctionInfo:
    """One function or method, as the interpreter sees it."""

    qualname: str  #: ``repro.sim.engine:Engine.step``
    module: str  #: ``repro.sim.engine``
    node: ast.AST  #: the FunctionDef / AsyncFunctionDef
    cls: Optional[str] = None  #: enclosing class name, if a method

    @property
    def name(self) -> str:
        return self.node.name  # type: ignore[attr-defined]


@dataclass
class ModuleTable:
    """Everything name resolution needs to know about one module."""

    module: str
    path: str
    tree: ast.Module
    #: local alias -> fully qualified module name (``import x.y as z``).
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: local name -> fully qualified symbol (``from x import f [as g]``).
    symbol_aliases: Dict[str, str] = field(default_factory=dict)
    #: function qualname -> info, for every def in the module.
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: class name -> {method name -> qualname}.
    classes: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: module-level names bound to numeric literals (``MEGABYTE = 1e6``)
    #: — these evaluate as unit-free scalars, not physical quantities.
    constants: Set[str] = field(default_factory=set)

    def resolve_local(self, name: str) -> Optional[str]:
        """Qualname of a module-level function referenced by bare name."""
        qual = f"{self.module}:{name}"
        return qual if qual in self.functions else None


def module_name_for_path(path: str) -> str:
    """``src/repro/sim/engine.py`` -> ``repro.sim.engine``.

    Falls back to the stem for paths with no ``repro`` component (ad
    hoc test sources), so every file still gets a distinct module name.
    """
    parts = Path(path).parts
    try:
        idx = parts.index("repro")
    except ValueError:
        return Path(path).stem
    dotted = list(parts[idx:-1]) + [Path(path).stem]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


def package_of(module: str) -> str:
    """The ``repro`` subpackage a module lives in (``""`` at top level)."""
    parts = module.split(".")
    if len(parts) >= 2 and parts[0] == "repro":
        return parts[1]
    return ""


def build_module_table(tree: ast.Module, module: str, path: str) -> ModuleTable:
    """One pass over a module's top level (plus class bodies)."""
    table = ModuleTable(module=module, path=path, tree=tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                # `import a.b` binds `a`; `import a.b as c` binds c -> a.b.
                table.module_aliases[bound] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: resolve against this package
                base = module.split(".")
                up = node.level
                base = base[: len(base) - up] if up <= len(base) else []
                prefix = ".".join(base + ([node.module] if node.module else []))
            else:
                prefix = node.module or ""
            for alias in node.names:
                bound = alias.asname or alias.name
                table.symbol_aliases[bound] = (
                    f"{prefix}.{alias.name}" if prefix else alias.name
                )
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if (
            value is not None
            and isinstance(value, ast.Constant)
            and isinstance(value.value, (int, float))
            and not isinstance(value.value, bool)
        ):
            for target in targets:
                if isinstance(target, ast.Name):
                    table.constants.add(target.id)
    _collect_functions(tree.body, table, cls=None)
    return table


def _collect_functions(
    body: List[ast.stmt], table: ModuleTable, cls: Optional[str]
) -> None:
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = (
                f"{table.module}:{cls}.{node.name}"
                if cls
                else f"{table.module}:{node.name}"
            )
            table.functions[qual] = FunctionInfo(
                qualname=qual, module=table.module, node=node, cls=cls
            )
            if cls:
                table.classes.setdefault(cls, {})[node.name] = qual
        elif isinstance(node, ast.ClassDef) and cls is None:
            table.classes.setdefault(node.name, {})
            _collect_functions(node.body, table, cls=node.name)


def build_tables(
    sources: Dict[str, Tuple[str, str]]
) -> Dict[str, ModuleTable]:
    """Parse and tabulate many modules.

    ``sources`` maps path -> (module name, source text); returns
    {module name -> table}.  Unparseable files are skipped here — the
    lint tier owns REP100 syntax reporting.
    """
    tables: Dict[str, ModuleTable] = {}
    for path, (module, text) in sources.items():
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError:
            continue
        tables[module] = build_module_table(tree, module, path)
    return tables
