""""MPTCP with WiFi First" (Raiciu et al. [28], discussed in §4.6).

Strategy: put the cellular subflow in backup mode and activate it only
when WiFi is *not available* — i.e. the WiFi subflow explicitly breaks,
such as an AP disassociation.  Crucially (and this is the paper's
criticism), a WiFi path that is still associated but delivers almost no
bandwidth does NOT trigger the fallback, so in the mobility scenario
this strategy degenerates into TCP over WiFi.  It also activates the
cellular interface at connection establishment (the backup handshake),
needlessly paying promotion and tail.
"""

from __future__ import annotations

import random as _random
from typing import Callable, List, Optional

from repro.mptcp.connection import MptcpMode, MPTCPConnection
from repro.net.path import NetworkPath
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.tcp.connection import ByteSource


class WiFiFirstConnection:
    """MPTCP in backup mode: WiFi preferred, cellular on WiFi breakage."""

    #: How often WiFi association is checked, seconds.
    CHECK_INTERVAL = 0.5

    def __init__(
        self,
        sim: Simulator,
        wifi_path: NetworkPath,
        cellular_path: NetworkPath,
        source: ByteSource,
        rng: Optional[_random.Random] = None,
        name: str = "wifi-first",
    ):
        self.sim = sim
        self.wifi_path = wifi_path
        self.cellular_path = cellular_path
        self.name = name
        self.mptcp = MPTCPConnection(
            sim,
            primary_path=wifi_path,
            source=source,
            secondary_paths=[cellular_path],
            mode=MptcpMode.BACKUP,
            rng=rng,
            auto_join=True,
            name=name,
        )
        self.failovers = 0
        self._wifi_broken = False
        self._monitor = PeriodicProcess(sim, self.CHECK_INTERVAL, self._check_wifi)
        self._complete_listeners: List[Callable[["WiFiFirstConnection"], None]] = []
        self.mptcp.on_complete(self._on_complete)

    def open(self) -> None:
        """Open both subflows (cellular as backup) and watch WiFi."""
        self.mptcp.open()
        self._monitor.start()

    def close(self) -> None:
        """Close all subflows."""
        self._monitor.stop()
        self.mptcp.close()

    def on_complete(self, listener: Callable[["WiFiFirstConnection"], None]) -> None:
        """Subscribe to transfer completion."""
        self._complete_listeners.append(listener)

    def _on_complete(self, _conn: MPTCPConnection) -> None:
        self._monitor.stop()
        for listener in list(self._complete_listeners):
            listener(self)

    def _check_wifi(self) -> None:
        # "Not available" means the association is gone — administrative
        # interface state — not merely poor throughput.
        broken = not self.wifi_path.interface.up
        if broken == self._wifi_broken:
            return
        self._wifi_broken = broken
        wifi_sf = self.mptcp.subflow_for(self.wifi_path.interface.kind)
        cell_sf = self.mptcp.subflow_for(self.cellular_path.interface.kind)
        if cell_sf is None or not cell_sf.established:
            return
        if broken:
            self.failovers += 1
            self.mptcp.set_low_priority(cell_sf, low=False)
            if wifi_sf is not None and wifi_sf.established and not wifi_sf.suspended:
                self.mptcp.set_low_priority(wifi_sf, low=True)
        else:
            if wifi_sf is not None and wifi_sf.established and wifi_sf.suspended:
                self.mptcp.set_low_priority(wifi_sf, low=False)
            self.mptcp.set_low_priority(cell_sf, low=True)

    @property
    def completed_at(self) -> Optional[float]:
        """Transfer completion time."""
        return self.mptcp.completed_at

    @property
    def bytes_received(self) -> float:
        """Bytes delivered so far."""
        return self.mptcp.bytes_received
