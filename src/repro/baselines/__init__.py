"""Comparison strategies evaluated against eMPTCP (§4.6, §6).

* :mod:`repro.baselines.single_path` — plain TCP over WiFi.
* :mod:`repro.baselines.wifi_first` — "MPTCP with WiFi First" (Raiciu
  et al. [28]): cellular in backup mode, used only when WiFi breaks.
* :mod:`repro.baselines.mdp` — the Markov-decision-process scheduler of
  Pluntke et al. [24], computed offline by value iteration and applied
  in one-second epochs.
"""

from repro.baselines.mdp import MdpAction, MdpPolicy, MdpScheduledConnection
from repro.baselines.single_path import SinglePathTcp
from repro.baselines.wifi_first import WiFiFirstConnection

__all__ = [
    "MdpAction",
    "MdpPolicy",
    "MdpScheduledConnection",
    "SinglePathTcp",
    "WiFiFirstConnection",
]
