"""Single-path TCP over WiFi — the paper's constant comparison point.

A thin adapter giving a plain :class:`~repro.tcp.connection.TcpConnection`
the same open/complete surface as the multipath connection classes so
the experiment runner can treat every protocol uniformly.
"""

from __future__ import annotations

import random as _random
from typing import Callable, List, Optional

from repro.net.path import NetworkPath
from repro.sim.engine import Simulator
from repro.tcp.connection import ByteSource, TcpConnection


class SinglePathTcp:
    """TCP over a single (WiFi) path."""

    def __init__(
        self,
        sim: Simulator,
        path: NetworkPath,
        source: ByteSource,
        rng: Optional[_random.Random] = None,
        name: str = "tcp-wifi",
    ):
        self.sim = sim
        self.path = path
        self.source = source
        self.name = name
        self.connection = TcpConnection(sim, path, source, rng=rng, name=name)
        self.completed_at: Optional[float] = None
        self._complete_listeners: List[Callable[["SinglePathTcp"], None]] = []
        self.connection.on_delivery(self._check_complete)

    def open(self) -> None:
        """Start the connection."""
        self.connection.connect()

    def close(self) -> None:
        """Tear the connection down."""
        self.connection.close()

    def on_complete(self, listener: Callable[["SinglePathTcp"], None]) -> None:
        """Subscribe to transfer completion."""
        self._complete_listeners.append(listener)

    def _check_complete(self, _conn: TcpConnection, _delivered: float) -> None:
        if not getattr(self.source, "final", True):
            return
        if self.completed_at is None and self.source.exhausted:
            self.completed_at = self.sim.now
            for listener in list(self._complete_listeners):
                listener(self)

    @property
    def bytes_received(self) -> float:
        """Bytes delivered so far."""
        return self.connection.bytes_delivered
