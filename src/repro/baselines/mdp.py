"""The MDP-based energy scheduler of Pluntke et al. [24] (§4.6).

Pluntke et al. schedule MPTCP path usage with a Markov decision
process: states are discretised per-interface throughput levels, the
action set picks which interfaces to use for the next unit-time epoch
(one second, as in the paper), and the cost is the energy spent in the
epoch.  The policy is far too expensive to compute in the kernel, so it
is computed offline ("in the cloud") and downloaded — here, computed by
value iteration before the run — and applied at run time as a lookup.

§4.6 simulates this scheduler rather than deploying it, and observes
that with an energy model in which LTE's per-second power never drops
below WiFi's, the generated policies choose WiFi-only in every state —
giving exactly the performance (and limitations) of TCP over WiFi.
This implementation reproduces that analysis honestly: the policy is
derived from the cost/transition structure, not hard-coded.
"""

from __future__ import annotations

import enum
import itertools
import random as _random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.energy.device import DeviceProfile
from repro.energy.efficiency import Strategy, strategy_power
from repro.errors import ConfigurationError
from repro.mptcp.connection import MptcpMode, MPTCPConnection
from repro.net.interface import InterfaceKind
from repro.net.path import NetworkPath
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.tcp.connection import ByteSource
from repro.units import bytes_per_sec_to_mbps

#: Decision epoch, seconds ("Unit time for state transitions is set to
#: one second as in [24]").
EPOCH = 1.0

#: Cost assigned to an action that transfers nothing (the flow must
#: make progress); effectively infinite relative to real powers.
_STALL_COST = 1e6


class MdpAction(enum.Enum):
    """Interface sets the scheduler can choose per epoch."""

    WIFI = "wifi"
    CELLULAR = "cellular"
    BOTH = "both"


_ACTION_TO_STRATEGY = {
    MdpAction.WIFI: Strategy.WIFI_ONLY,
    MdpAction.CELLULAR: Strategy.CELLULAR_ONLY,
    MdpAction.BOTH: Strategy.BOTH,
}

State = Tuple[int, int]  # (wifi level index, cellular level index)
TransitionFn = Callable[[State], Sequence[Tuple[State, float]]]


def uniform_level_transitions(
    n_wifi: int, n_cell: int, stay_prob: float = 0.8
) -> TransitionFn:
    """A simple finite state machine of throughput changes: each
    interface independently stays at its level with ``stay_prob`` and
    otherwise jumps uniformly to any other level.  Scenario-specific
    chains can be passed to :class:`MdpPolicy` instead."""
    if not 0 < stay_prob <= 1:
        raise ConfigurationError("stay_prob must be in (0, 1]")

    def transitions(state: State) -> Sequence[Tuple[State, float]]:
        wi, ci = state
        out: List[Tuple[State, float]] = []
        for wj in range(n_wifi):
            pw = stay_prob if wj == wi else (1 - stay_prob) / max(1, n_wifi - 1)
            for cj in range(n_cell):
                pc = stay_prob if cj == ci else (1 - stay_prob) / max(1, n_cell - 1)
                if pw * pc > 0:
                    out.append(((wj, cj), pw * pc))
        return out

    return transitions


class MdpPolicy:
    """Offline value iteration over throughput-level states."""

    def __init__(
        self,
        profile: DeviceProfile,
        wifi_levels_mbps: Sequence[float],
        cell_levels_mbps: Sequence[float],
        transitions: Optional[TransitionFn] = None,
        cell_kind: InterfaceKind = InterfaceKind.LTE,
        discount: float = 0.95,
        iterations: int = 300,
        demand_mbps: float = 0.5,
    ):
        if not wifi_levels_mbps or not cell_levels_mbps:
            raise ConfigurationError("level sets must be non-empty")
        if not 0 < discount < 1:
            raise ConfigurationError("discount must be in (0, 1)")
        self.profile = profile
        self.wifi_levels = list(wifi_levels_mbps)
        self.cell_levels = list(cell_levels_mbps)
        self.cell_kind = cell_kind
        self.discount = discount
        if demand_mbps <= 0:
            raise ConfigurationError("demand_mbps must be positive")
        self.demand_mbps = demand_mbps
        self._transitions = transitions or uniform_level_transitions(
            len(self.wifi_levels), len(self.cell_levels)
        )
        self.values: Dict[State, float] = {}
        self.policy: Dict[State, MdpAction] = {}
        self._solve(iterations)

    # ------------------------------------------------------------------

    def _epoch_cost(self, state: State, action: MdpAction) -> float:
        """Energy (joules) to serve the flow's demand for one epoch.

        Pluntke et al. schedule flows with throughput requirements: an
        action must serve the demand (heavily penalised otherwise) and
        costs the power of running the chosen radios at the served
        rate.  With per-second radio powers where cellular never drops
        below WiFi, this is what makes the policy collapse to WiFi-only
        whenever WiFi can carry the demand (§4.6).
        """
        wifi = self.wifi_levels[state[0]]
        cell = self.cell_levels[state[1]]
        rate = {
            MdpAction.WIFI: wifi,
            MdpAction.CELLULAR: cell,
            MdpAction.BOTH: wifi + cell,
        }[action]
        if rate <= 0:
            return _STALL_COST
        served = min(rate, self.demand_mbps)
        if action is MdpAction.BOTH:
            wifi_served = min(wifi, served)
            cell_served = served - wifi_served
        elif action is MdpAction.WIFI:
            wifi_served, cell_served = served, 0.0
        else:
            wifi_served, cell_served = 0.0, served
        power = strategy_power(
            self.profile,
            _ACTION_TO_STRATEGY[action],
            wifi_served,
            cell_served,
            self.cell_kind,
        )
        cost = power * EPOCH
        if rate < self.demand_mbps:
            cost += _STALL_COST * (1.0 - rate / self.demand_mbps)
        return cost

    def _solve(self, iterations: int) -> None:
        states = list(
            itertools.product(range(len(self.wifi_levels)), range(len(self.cell_levels)))
        )
        # Precompute transition lists and per-(state, action) costs so
        # value iteration is pure arithmetic.
        trans: Dict[State, Sequence[Tuple[State, float]]] = {
            s: list(self._transitions(s)) for s in states
        }
        costs: Dict[Tuple[State, MdpAction], float] = {
            (s, a): self._epoch_cost(s, a) for s in states for a in MdpAction
        }
        values: Dict[State, float] = {s: 0.0 for s in states}
        for _ in range(iterations):
            new_values: Dict[State, float] = {}
            for s in states:
                future = sum(p * values[s2] for s2, p in trans[s])
                best = min(
                    costs[(s, a)] + self.discount * future for a in MdpAction
                )
                new_values[s] = best
            delta = max(abs(new_values[s] - values[s]) for s in states)
            values = new_values
            if delta < 1e-9:
                break
        self.values = values
        for s in states:
            future = sum(p * values[s2] for s2, p in trans[s])
            self.policy[s] = min(
                MdpAction, key=lambda a: costs[(s, a)] + self.discount * future
            )

    # ------------------------------------------------------------------

    def state_for(self, wifi_mbps: float, cell_mbps: float) -> State:
        """Discretise observed throughputs to the nearest levels."""
        wi = min(
            range(len(self.wifi_levels)),
            key=lambda i: abs(self.wifi_levels[i] - wifi_mbps),
        )
        ci = min(
            range(len(self.cell_levels)),
            key=lambda i: abs(self.cell_levels[i] - cell_mbps),
        )
        return wi, ci

    def action_for(self, wifi_mbps: float, cell_mbps: float) -> MdpAction:
        """The scheduled action for observed throughputs."""
        return self.policy[self.state_for(wifi_mbps, cell_mbps)]

    def chosen_actions(self) -> List[MdpAction]:
        """Distinct actions the policy ever chooses (§4.6 observes this
        collapses to {WIFI} under LTE-unfavourable energy models)."""
        return sorted(set(self.policy.values()), key=lambda a: a.value)


class MdpScheduledConnection:
    """MPTCP driven by a precomputed MDP policy in 1-second epochs."""

    def __init__(
        self,
        sim: Simulator,
        wifi_path: NetworkPath,
        cellular_path: NetworkPath,
        source: ByteSource,
        policy: MdpPolicy,
        rng: Optional[_random.Random] = None,
        name: str = "mdp",
    ):
        self.sim = sim
        self.wifi_path = wifi_path
        self.cellular_path = cellular_path
        self.policy = policy
        self.name = name
        # auto_join is off: the scheduler owns the decision of whether
        # the cellular subflow exists at all.  A policy that never
        # schedules cellular (§4.6's observed outcome) therefore never
        # pays its promotion/tail — matching the paper's "same energy
        # performance as TCP over WiFi".
        self.mptcp = MPTCPConnection(
            sim,
            primary_path=wifi_path,
            source=source,
            secondary_paths=[cellular_path],
            mode=MptcpMode.FULL,
            rng=rng,
            auto_join=False,
            name=name,
        )
        self.epochs = 0
        self._last_wifi_mbps = bytes_per_sec_to_mbps(wifi_path.capacity.rate)
        self._last_cell_mbps = bytes_per_sec_to_mbps(cellular_path.capacity.rate)
        self._epoch_proc = PeriodicProcess(sim, EPOCH, self._epoch)
        self._complete_listeners: List[Callable[["MdpScheduledConnection"], None]] = []
        self.mptcp.on_complete(self._on_complete)

    def open(self) -> None:
        """Open the connection and start epoch scheduling."""
        self.mptcp.open()
        self._epoch_proc.start()

    def close(self) -> None:
        """Close all subflows."""
        self._epoch_proc.stop()
        self.mptcp.close()

    def on_complete(self, listener) -> None:
        """Subscribe to transfer completion."""
        self._complete_listeners.append(listener)

    def _on_complete(self, _conn: MPTCPConnection) -> None:
        self._epoch_proc.stop()
        for listener in list(self._complete_listeners):
            listener(self)

    def _epoch(self) -> None:
        self.epochs += 1
        self._observe()
        action = self.policy.action_for(self._last_wifi_mbps, self._last_cell_mbps)
        wifi_sf = self.mptcp.subflow_for(self.wifi_path.interface.kind)
        cell_sf = self.mptcp.subflow_for(self.cellular_path.interface.kind)
        want_wifi = action in (MdpAction.WIFI, MdpAction.BOTH)
        want_cell = action in (MdpAction.CELLULAR, MdpAction.BOTH)
        if want_cell and cell_sf is None and self.mptcp.opened:
            cell_sf = self.mptcp.add_subflow(self.cellular_path)
        for subflow, want in ((wifi_sf, want_wifi), (cell_sf, want_cell)):
            if subflow is None or not subflow.established:
                continue
            if want and subflow.suspended:
                self.mptcp.set_low_priority(subflow, low=False)
            elif not want and not subflow.suspended:
                self.mptcp.set_low_priority(subflow, low=True)

    def _observe(self) -> None:
        """Track per-interface throughput; suspended interfaces keep
        their last observation (as in the offline simulation)."""
        wifi_sf = self.mptcp.subflow_for(self.wifi_path.interface.kind)
        cell_sf = self.mptcp.subflow_for(self.cellular_path.interface.kind)
        if wifi_sf is not None and wifi_sf.established and not wifi_sf.suspended:
            self._last_wifi_mbps = bytes_per_sec_to_mbps(wifi_sf.current_rate)
        if cell_sf is not None and cell_sf.established and not cell_sf.suspended:
            self._last_cell_mbps = bytes_per_sec_to_mbps(cell_sf.current_rate)

    @property
    def completed_at(self) -> Optional[float]:
        """Transfer completion time."""
        return self.mptcp.completed_at

    @property
    def bytes_received(self) -> float:
        """Bytes delivered so far."""
        return self.mptcp.bytes_received
