"""repro — a reproduction of *Design, Implementation, and Evaluation of
Energy-Aware Multi-Path TCP* (Lim et al., CoNEXT 2015).

The public API re-exports the pieces a downstream user needs:

* the eMPTCP connection and its configuration (:mod:`repro.core`);
* the MPTCP/TCP substrate (:mod:`repro.mptcp`, :mod:`repro.tcp`);
* the network substrate (:mod:`repro.net`);
* the energy model and device profiles (:mod:`repro.energy`);
* the evaluation harness (:mod:`repro.experiments`) and baselines
  (:mod:`repro.baselines`).

Quick start::

    from repro import (EMPTCPConfig, EMPTCPConnection, EnergyMeter,
                       GALAXY_S3, Simulator)
    # see examples/quickstart.py for a complete runnable setup

or, one level higher, run a packaged experiment::

    from repro.experiments import run_scenario
    from repro.experiments.static_bw import static_scenario
    result = run_scenario("emptcp", static_scenario(good_wifi=True))
"""

from repro.core import EMPTCPConfig, EMPTCPConnection, EnergyInformationBase
from repro.energy import DEVICES, GALAXY_S3, NEXUS_5, DeviceProfile, EnergyMeter
from repro.errors import (
    ConfigurationError,
    EnergyModelError,
    ProtocolError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.mptcp import MptcpMode, MPTCPConnection
from repro.net import (
    ConstantCapacity,
    InterfaceKind,
    NetworkInterface,
    NetworkPath,
    PiecewiseTraceCapacity,
    TwoStateMarkovCapacity,
    WiFiChannel,
)
from repro.sim import Simulator
from repro.tcp import FiniteSource, InfiniteSource, TcpConnection

__version__ = "1.0.0"

__all__ = [
    "ConfigurationError",
    "ConstantCapacity",
    "DEVICES",
    "DeviceProfile",
    "EMPTCPConfig",
    "EMPTCPConnection",
    "EnergyInformationBase",
    "EnergyMeter",
    "EnergyModelError",
    "FiniteSource",
    "GALAXY_S3",
    "InfiniteSource",
    "InterfaceKind",
    "MPTCPConnection",
    "MptcpMode",
    "NEXUS_5",
    "NetworkInterface",
    "NetworkPath",
    "PiecewiseTraceCapacity",
    "ProtocolError",
    "ReproError",
    "SimulationError",
    "Simulator",
    "TcpConnection",
    "TwoStateMarkovCapacity",
    "WiFiChannel",
    "WorkloadError",
    "__version__",
]
