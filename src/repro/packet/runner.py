"""Packet-engine scenario runner: the segment-level twin of the fluid
run path in :mod:`repro.experiments.runner`.

``compile_packet_scenario`` lowers a
:class:`~repro.experiments.scenario.Scenario` to a pair of
:class:`~repro.packet.link.PacketLink`\\ s (the same capacity-process
factories and seeded streams feed both engines, so a scenario means
the same network on either); ``run_packet_scenario`` is the
``engine="packet"`` hook behind ``run_scenario``.  The runner owns the
energy meter and RRC machine exactly as on the fluid engine, probing
delivered rates since packet links have no aggregate-rate listeners.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro import obs as _obs
from repro.energy.meter import EnergyMeter
from repro.energy.rrc import RrcMachine
from repro.engines.compiler import ensure_supported, validate_run
from repro.errors import SimulationError
from repro.experiments.scenario import RunResult, Scenario
from repro.net.interface import InterfaceKind
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RandomStreams
from repro.sim.trace import TimeSeries

#: Sampling interval for the result's rate traces, seconds (matches
#: the fluid runner's TRACE_INTERVAL).
TRACE_INTERVAL = 1.0


def compile_packet_scenario(
    scenario: Scenario, sim: Simulator, streams: RandomStreams
) -> Tuple["PacketLink", "PacketLink"]:
    """Materialize one scenario as segment-level links.

    Returns ``(wifi_link, cell_link)``.  Capability mismatches (WiFi
    contention has no packet-level counterpart yet) are normally
    caught at Tier-2 verify time; the check here is the defensive
    backstop for direct callers, with the same canonical error.
    """
    from repro.packet.link import PacketLink

    ensure_supported("packet", scenario)
    wifi_link = PacketLink(
        sim,
        scenario.wifi_capacity(streams.stream("wifi-capacity")),
        one_way_delay=scenario.wifi_rtt / 2,
        loss_rate=scenario.wifi_loss,
        rng=streams.stream("wifi-link"),
        name="wifi",
    )
    cell_link = PacketLink(
        sim,
        scenario.cell_capacity(streams.stream("cell-capacity")),
        one_way_delay=scenario.cell_rtt / 2,
        loss_rate=scenario.cell_loss,
        rng=streams.stream("cell-link"),
        name=scenario.cell_kind.value,
    )
    wifi_link.attach(sim)
    cell_link.attach(sim)
    return wifi_link, cell_link


def run_packet_scenario(
    protocol: str, scenario: Scenario, seed: int = 0
) -> RunResult:
    """Execute one (protocol, scenario, seed) run at segment granularity."""
    from repro.experiments.protocols import build_protocol
    from repro.experiments.runner import _mean_mbps
    from repro.tcp.connection import FiniteSource, InfiniteSource

    validate_run("packet", protocol, scenario)
    sim = Simulator()
    streams = RandomStreams(seed)
    wifi_link, cell_link = compile_packet_scenario(scenario, sim, streams)
    profile = scenario.profile
    cell_kind = scenario.cell_kind

    meter = EnergyMeter(sim, profile, direction=scenario.direction)
    rrc = RrcMachine(sim, profile.rrc[cell_kind])
    rrc.on_state_change(lambda _t, state: meter.set_rrc_state(cell_kind, state))
    meter.add_one_shot(profile.wifi_activation_j)

    if scenario.download_bytes is not None:
        source = FiniteSource(scenario.download_bytes)
    else:
        source = InfiniteSource()
    conn = build_protocol(
        protocol,
        sim,
        wifi_link,
        cell_link,
        source,
        profile=profile,
        config=scenario.emptcp_config,
        direction=scenario.direction,
        engine="packet",
        cell_kind=cell_kind,
        meter=meter,
        rrc=rrc,
    )

    # The eMPTCP adapter probes rates into the shared meter itself;
    # plain packet protocols need the runner's prober.
    prober: Optional[PeriodicProcess] = None
    if not hasattr(conn, "bytes_by_kind"):
        acked_cursor: Dict[int, float] = {}

        def probe() -> None:
            for i, subflow in enumerate(conn.subflows):
                kind = InterfaceKind.WIFI if i == 0 else cell_kind
                acked = subflow.bytes_acked_total
                rate = (acked - acked_cursor.get(i, 0.0)) / 0.25
                acked_cursor[i] = acked
                meter.set_rate(kind, max(0.0, rate))
                if kind.is_cellular and rate > 0:
                    rrc.on_activity(sim.now)

        prober = PeriodicProcess(sim, 0.25, probe)
        prober.start()

    # --- tracing ---------------------------------------------------------
    wifi_rates = TimeSeries("wifi-rate-Bps")
    cell_rates = TimeSeries("cell-rate-Bps")
    wifi_avail = TimeSeries("wifi-available-Bps")
    cell_avail = TimeSeries("cell-available-Bps")
    delivered_cursor = {InterfaceKind.WIFI: 0.0, cell_kind: 0.0}

    def trace_tick() -> None:
        now = sim.now
        by_kind = _packet_bytes_by_kind(conn, cell_kind)
        for kind, series in (
            (InterfaceKind.WIFI, wifi_rates),
            (cell_kind, cell_rates),
        ):
            delivered = by_kind.get(kind, 0.0)
            series.record(
                now, (delivered - delivered_cursor[kind]) / TRACE_INTERVAL
            )
            delivered_cursor[kind] = delivered
        wifi_avail.record(now, wifi_link.capacity.rate)
        cell_avail.record(now, cell_link.capacity.rate)

    tracer = PeriodicProcess(sim, TRACE_INTERVAL, trace_tick)
    tracer.start(immediate=True)

    # --- run -------------------------------------------------------------
    conn.open()
    if scenario.download_bytes is not None:
        conn.on_complete(lambda _c: sim.stop())
        sim.run(until=scenario.max_sim_time)
        if conn.completed_at is None:
            raise SimulationError(
                f"{protocol} on {scenario.name} (packet engine): transfer "
                f"did not complete within {scenario.max_sim_time}s"
            )
        download_time = conn.completed_at
    else:
        sim.run(until=scenario.duration)
        download_time = None

    bytes_received = conn.bytes_received
    energy_at_completion = meter.checkpoint()
    _checkpoint_packet_subflows(sim, conn, cell_kind)

    # --- drain the residual cellular tail --------------------------------
    tracer.stop()
    conn.close()
    if prober is not None:
        prober.stop()
        meter.set_rate(InterfaceKind.WIFI, 0.0)
        meter.set_rate(cell_kind, 0.0)
    rrc_params = profile.rrc[cell_kind]
    drain = (
        rrc_params.promotion_time + rrc_params.active_hold + rrc_params.tail_time + 1.0
    )
    sim.run(until=sim.now + drain)
    energy_total = meter.checkpoint()

    return RunResult(
        protocol=protocol,
        scenario=scenario.name,
        seed=seed,
        download_time=download_time,
        bytes_received=bytes_received,
        energy_j=energy_total,
        energy_at_completion_j=energy_at_completion,
        energy_series=meter.energy_series,
        wifi_rate_series=wifi_rates,
        cell_rate_series=cell_rates,
        measured_wifi_mbps=_mean_mbps(wifi_avail),
        measured_cell_mbps=_mean_mbps(cell_avail),
        diagnostics=_packet_diagnostics(conn, cell_kind),
    )


def _packet_mptcp_of(conn):
    """The underlying PacketMptcpConnection of any packet protocol."""
    return getattr(conn, "mptcp", conn if hasattr(conn, "subflows") else None)


def _packet_bytes_by_kind(conn, cell_kind) -> Dict:
    """Unique delivered bytes per interface for any packet protocol."""
    if hasattr(conn, "bytes_by_kind"):
        return conn.bytes_by_kind()
    out = {InterfaceKind.WIFI: 0.0, cell_kind: 0.0}
    mp = _packet_mptcp_of(conn)
    if mp is not None:
        for i in range(len(mp.subflows)):
            kind = InterfaceKind.WIFI if i == 0 else cell_kind
            out[kind] = out.get(kind, 0.0) + mp.subflow_delivered[i]
    return out


def _checkpoint_packet_subflows(sim: Simulator, conn, cell_kind) -> None:
    """Packet twin of the fluid runner's ``subflow.checkpoint`` events
    (same CHK306 byte-conservation analysis).

    ``subflow_delivered`` counts unique DSN bytes, so the subflows sum
    exactly to in-order delivery plus whatever still sits in the
    reassembly buffer (zero at completion; nonzero only when a fixed
    measurement window cut the run mid-flight).
    """
    trace = _obs.tracer_or_none()
    if trace is None:
        return
    mp = _packet_mptcp_of(conn)
    if mp is None:
        return
    conn_bytes = mp.bytes_delivered + mp.reassembly_buffered
    for i, sf in enumerate(mp.subflows):
        kind = InterfaceKind.WIFI if i == 0 else cell_kind
        trace.emit(
            "subflow.checkpoint",
            t=sim.now,
            subflow=sf.name,
            interface=kind.value,
            delivered_bytes=mp.subflow_delivered[i],
            conn_bytes=conn_bytes,
        )


def _packet_diagnostics(conn, cell_kind) -> Dict[str, float]:
    """Pull counters off a packet-engine connection."""
    diag: Dict[str, float] = {}
    mp = _packet_mptcp_of(conn)
    if mp is not None:
        diag["subflows"] = float(len(mp.subflows))
        diag["reinjections"] = float(mp.reinjections)
        for kind, total in _packet_bytes_by_kind(conn, cell_kind).items():
            diag[f"{kind.value}_bytes"] = total
    port_subflow = getattr(conn, "subflow", None)
    if callable(port_subflow):
        for kind in (InterfaceKind.WIFI, cell_kind):
            view = port_subflow(kind)
            diag[f"{kind.value}_suspends"] = float(
                view.suspend_count if view is not None else 0.0
            )
    controller = getattr(conn, "controller", None)
    if controller is not None:
        diag["decision_switches"] = float(controller.switches)
    delayed = getattr(conn, "delayed", None)
    if delayed is not None:
        diag["cell_established"] = 1.0 if delayed.done else 0.0
        if delayed.established_at is not None:
            diag["cell_established_at"] = delayed.established_at
    return diag


__all__ = ["TRACE_INTERVAL", "compile_packet_scenario", "run_packet_scenario"]
