"""Removed — the cross-model validation lives in
:mod:`repro.check.packet`.

This module spent one release as a deprecated re-export shim (with a
``DeprecationWarning``); that grace period is over.  Importing it now
fails fast with a pointer to the new home rather than silently keeping
a second import path alive.
"""

raise ImportError(
    "repro.packet.validate was removed: the fluid-vs-packet validation "
    "moved to repro.check.packet — import from there instead "
    "(e.g. `from repro.check.packet import run_agreement_checks`)"
)
