"""Deprecated shim — the cross-model validation moved to
:mod:`repro.check.packet`.

The implementation now lives in the checker subsystem so packet-level
validation shares the :class:`~repro.check.findings.Report` vocabulary
with the lint/config/trace tiers.  This module re-exports the public
names so existing imports keep working; new code should import from
``repro.check.packet`` directly.
"""

from __future__ import annotations

import warnings

from repro.check.packet import (  # noqa: F401  (re-exports)
    AGREEMENT_TOLERANCE,
    ModelComparison,
    PathSpec,
    agreement_report,
    compare_onoff_single_path,
    compare_single_path,
    fluid_mptcp_time,
    fluid_single_path_time,
    hol_goodput_collapse,
    packet_mptcp_time,
    packet_single_path_time,
    run_agreement_checks,
)

__all__ = [
    "AGREEMENT_TOLERANCE",
    "ModelComparison",
    "PathSpec",
    "agreement_report",
    "compare_onoff_single_path",
    "compare_single_path",
    "fluid_mptcp_time",
    "fluid_single_path_time",
    "hol_goodput_collapse",
    "packet_mptcp_time",
    "packet_single_path_time",
    "run_agreement_checks",
]

warnings.warn(
    "repro.packet.validate moved to repro.check.packet; "
    "update imports (this shim will be removed)",
    DeprecationWarning,
    stacklevel=2,
)
