"""A packet link: drop-tail queue, serialisation, propagation, loss.

One direction carries data segments; the reverse direction (ACKs) is
modelled as pure propagation delay — the standard simplification for
asymmetric bulk transfer, where ACKs are small enough not to queue.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Callable, Optional

from repro import obs as _obs
from repro.errors import ConfigurationError
from repro.net.bandwidth import CapacityProcess
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class Segment:
    """One TCP segment on the wire.

    ``seq``/``size`` are subflow-level byte coordinates; ``dsn`` is the
    MPTCP data-sequence-number of the payload (equal to ``seq`` for
    single-path TCP).  ``sent_at`` timestamps the (re)transmission for
    RTT sampling; ``retransmit`` marks it per Karn's algorithm.
    """

    seq: float
    size: float
    dsn: float
    sent_at: float
    retransmit: bool = False


class PacketLink:
    """One-way data link with a byte-bounded drop-tail queue."""

    def __init__(
        self,
        sim: Simulator,
        capacity: CapacityProcess,
        one_way_delay: float,
        buffer_bytes: float = 126_000.0,
        loss_rate: float = 0.0,
        rng: Optional[_random.Random] = None,
        name: str = "link",
    ):
        if one_way_delay < 0:
            raise ConfigurationError("one_way_delay must be >= 0")
        if buffer_bytes <= 0:
            raise ConfigurationError("buffer_bytes must be positive")
        if not 0 <= loss_rate < 1:
            raise ConfigurationError("loss_rate must be in [0, 1)")
        self.sim = sim
        self.capacity = capacity
        self.one_way_delay = one_way_delay
        self.buffer_bytes = buffer_bytes
        self.loss_rate = loss_rate
        self.rng = rng or _random.Random(0)
        self.name = name
        self._prof = _obs.profiler_or_none()
        self._busy_until = 0.0
        self._queued_bytes = 0.0
        self.delivered = 0
        self.dropped_overflow = 0
        self.dropped_random = 0

    def attach(self, sim: Simulator) -> None:
        """Attach the capacity process if not already attached."""
        if not self.capacity.attached:
            self.capacity.attach(sim)

    @property
    def queued_bytes(self) -> float:
        """Bytes currently waiting or in service."""
        return self._queued_bytes

    def send(
        self,
        segment: Segment,
        deliver: Callable[[Segment], None],
    ) -> bool:
        """Enqueue a segment; returns False if it was dropped.

        ``deliver`` fires when the segment reaches the far end
        (after queueing + serialisation + propagation).
        """
        prof = self._prof
        if prof is not None:
            with prof.span("packet.link.send"):
                return self._send_inner(segment, deliver)
        return self._send_inner(segment, deliver)

    def _send_inner(
        self,
        segment: Segment,
        deliver: Callable[[Segment], None],
    ) -> bool:
        now = self.sim.now
        rate = self.capacity.rate
        if rate <= 0:
            # A dead link drops everything (the sender's RTO handles it).
            self.dropped_overflow += 1
            return False
        if self._queued_bytes + segment.size > self.buffer_bytes:
            self.dropped_overflow += 1
            return False
        if self.loss_rate > 0 and self.rng.random() < self.loss_rate:
            self.dropped_random += 1
            return False
        service = segment.size / rate
        start = max(now, self._busy_until)
        done = start + service
        self._busy_until = done
        self._queued_bytes += segment.size
        self.sim.schedule_at(done, self._serviced, segment, deliver)
        return True

    def _serviced(self, segment: Segment, deliver: Callable[[Segment], None]) -> None:
        self._queued_bytes -= segment.size
        self.sim.schedule(self.one_way_delay, self._delivered, segment, deliver)

    def _delivered(self, segment: Segment, deliver: Callable[[Segment], None]) -> None:
        self.delivered += 1
        prof = self._prof
        if prof is not None:
            # ``deliver`` runs the receive path end-to-end: ACK
            # processing, reassembly, and window updates.
            with prof.span("packet.link.deliver"):
                deliver(segment)
        else:
            deliver(segment)
