"""Segment-level MPTCP: a data-sequence layer over packet subflows.

The connection owns the byte source and a finite connection-level
receive buffer.  Subflows pull DSN chunks through ``assign`` as their
congestion windows open (ack-clocked pulling approximates the min-RTT
scheduler: the faster subflow simply asks more often), but no chunk is
assigned beyond ``rcv_buffer`` bytes past the highest in-order DSN the
receiver has delivered — so a slow subflow holding the lowest
outstanding DSN genuinely *blocks* the fast one.  This is the
head-of-line mechanism the fluid model approximates with its
utilization formula, reproduced here for validation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.packet.link import PacketLink
from repro.packet.tcp import PacketTcpConnection
from repro.sim.engine import Simulator
from repro.tcp.connection import ByteSource


class DsnReassembly:
    """Connection-level in-order delivery over the data sequence space."""

    def __init__(self) -> None:
        self.dsn_next = 0.0
        self._ooo: Dict[float, float] = {}  # start -> size
        self.buffered_bytes = 0.0
        #: Unique bytes the most recent :meth:`on_data` call absorbed
        #: (0 for duplicates/reinjections).  Summed per subflow this is
        #: exactly conservative: every DSN byte is credited once, to
        #: whichever subflow landed it first.
        self.last_accepted = 0.0

    def on_data(self, dsn: float, size: float) -> float:
        """Absorb one delivered chunk; return bytes newly in order."""
        if dsn + size <= self.dsn_next:
            self.last_accepted = 0.0
            return 0.0  # duplicate
        before = self.dsn_next
        if dsn > self.dsn_next:
            if dsn not in self._ooo:
                self._ooo[dsn] = size
                self.buffered_bytes += size
                self.last_accepted = size
            else:
                self.last_accepted = 0.0
            return 0.0
        # In-order (possibly straddling dsn_next): the newly accepted
        # bytes are the head advance before any buffered chunks pop —
        # those were credited when they first arrived out of order.
        self.last_accepted = dsn + size - before
        self.dsn_next = max(self.dsn_next, dsn + size)
        while self.dsn_next in self._ooo:
            chunk = self._ooo.pop(self.dsn_next)
            self.buffered_bytes -= chunk
            self.dsn_next += chunk
        return self.dsn_next - before


class PacketMptcpConnection:
    """An MPTCP connection at segment granularity."""

    def __init__(
        self,
        sim: Simulator,
        links: List[PacketLink],
        source: ByteSource,
        rcv_buffer: float = 2_000_000.0,
        name: str = "pmptcp",
    ):
        if not links:
            raise ConfigurationError("need at least one link")
        if rcv_buffer <= 0:
            raise ConfigurationError("rcv_buffer must be positive")
        self.sim = sim
        self.source = source
        self.rcv_buffer = rcv_buffer
        self.name = name
        self._dsn_next_assign = 0.0
        self._reassembly = DsnReassembly()
        self.bytes_delivered = 0.0
        self.completed_at: Optional[float] = None
        #: Outstanding chunks: dsn -> (size, owner index, assigned at).
        self._outstanding: Dict[float, Tuple[float, int, float]] = {}
        self._reinjected: set = set()
        self.reinjections = 0
        self.subflows: List[PacketTcpConnection] = []
        #: Unique DSN bytes credited to each subflow (reinjected
        #: duplicates count once, for whichever copy arrived first) —
        #: sums exactly to ``bytes_delivered`` plus reassembly buffer.
        self.subflow_delivered: List[float] = []
        self._complete_listeners: List[
            Callable[["PacketMptcpConnection"], None]
        ] = []
        self._opened = False
        for link in links:
            self.add_subflow(link)

    # ------------------------------------------------------------------

    def add_subflow(self, link: PacketLink) -> PacketTcpConnection:
        """Join a new subflow over ``link``; started immediately if the
        connection is already open (delayed establishment support)."""
        index = len(self.subflows)
        subflow = PacketTcpConnection(
            self.sim,
            link,
            assigner=lambda max_bytes, idx=index: self._assign(max_bytes, idx),
            deliver=lambda dsn, size, idx=index: self._on_subflow_delivery(
                dsn, size, idx
            ),
            name=f"{self.name}/sf{index}",
        )
        self.subflows.append(subflow)
        self.subflow_delivered.append(0.0)
        if self._opened:
            subflow.start()
        return subflow

    def open(self) -> None:
        """Start all subflows."""
        self._opened = True
        for subflow in self.subflows:
            subflow.start()

    def close(self) -> None:
        """Stop all subflows."""
        for subflow in self.subflows:
            subflow.close()

    def _assign(
        self, max_bytes: float, subflow_idx: int = 0
    ) -> Optional[Tuple[float, float]]:
        """Hand a DSN chunk to a subflow, bounded by the receive window.

        When neither new data nor window space is available, the caller
        may instead *reinject* the chunk blocking the receive window if
        another subflow owns it (opportunistic retransmission, Raiciu
        et al. NSDI'12) — the duplicate is harmless and whichever copy
        arrives first unblocks the connection.
        """
        window_left = self.rcv_buffer - (
            self._dsn_next_assign - self._reassembly.dsn_next
        )
        grant_cap = min(max_bytes, window_left)
        if grant_cap > 0:
            granted = self.source.take(grant_cap)
            if granted > 0:
                chunk = (self._dsn_next_assign, granted)
                self._outstanding[chunk[0]] = (granted, subflow_idx, self.sim.now)
                self._dsn_next_assign += granted
                return chunk
        return self._maybe_reinject(subflow_idx)

    def _maybe_reinject(self, subflow_idx: int) -> Optional[Tuple[float, float]]:
        head = self._reassembly.dsn_next
        entry = self._outstanding.get(head)
        if entry is None:
            return None
        size, owner, assigned_at = entry
        if owner == subflow_idx or head in self._reinjected:
            return None
        # Only reinject a chunk that is demonstrably stalling: it has
        # been outstanding for well over the requester's own RTT.
        requester = self.subflows[subflow_idx]
        stall_threshold = max(0.05, 2.0 * requester.rtt.srtt)
        if self.sim.now - assigned_at <= stall_threshold:
            return None
        self._reinjected.add(head)
        self.reinjections += 1
        return (head, size)

    def _on_subflow_delivery(
        self, dsn: float, size: float, subflow_idx: int = 0
    ) -> None:
        self._outstanding.pop(dsn, None)
        self._reinjected.discard(dsn)
        in_order = self._reassembly.on_data(dsn, size)
        self.subflow_delivered[subflow_idx] += self._reassembly.last_accepted
        if in_order > 0:
            self.bytes_delivered += in_order
            # The advancing receive window may unblock other subflows.
            for subflow in self.subflows:
                subflow.notify_data()
        if (
            self.completed_at is None
            and self.source.exhausted
            and getattr(self.source, "final", True)
            and self._reassembly.dsn_next >= self._dsn_next_assign - 1e-6
        ):
            self.completed_at = self.sim.now
            for listener in list(self._complete_listeners):
                listener(self)

    def on_complete(
        self, listener: Callable[["PacketMptcpConnection"], None]
    ) -> None:
        """Subscribe to transfer completion (fires once, at the instant
        the last in-order byte arrives)."""
        self._complete_listeners.append(listener)

    # ------------------------------------------------------------------

    @property
    def reassembly_buffered(self) -> float:
        """Bytes held out-of-order at the connection level."""
        return self._reassembly.buffered_bytes

    @property
    def bytes_received(self) -> float:
        """In-order bytes delivered to the application."""
        return self.bytes_delivered


def single_path_connection(
    sim: Simulator,
    link: PacketLink,
    source: ByteSource,
    name: str = "ptcp",
) -> PacketMptcpConnection:
    """Plain TCP as a one-subflow MPTCP connection (DSN == seq)."""
    return PacketMptcpConnection(sim, [link], source, name=name)
