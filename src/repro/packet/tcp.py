"""Segment-level TCP: one reliable, congestion-controlled byte stream
over a :class:`~repro.packet.link.PacketLink`.

Implements the sender/receiver pair at the fidelity the fluid model
abstracts away: per-segment transmission, cumulative ACKs, duplicate-ACK
fast retransmit (NewReno-style recovery), retransmission timeouts with
exponential backoff, Karn's rule for RTT sampling, and an out-of-order
reassembly buffer.  Connections start established (the three-way
handshake adds one RTT and nothing else to the dynamics under study).

Data is supplied by an *assigner* — ``assign(max_bytes)`` returning a
``(dsn, size)`` chunk or ``None`` — so the same sender serves
single-path TCP (DSN == sequence number) and an MPTCP subflow (DSNs
handed out by the connection-level scheduler, bounded by the shared
receive buffer).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.packet.link import PacketLink, Segment
from repro.sim.engine import EventHandle, Simulator
from repro.tcp.rtt import RttEstimator

Assigner = Callable[[float], Optional[Tuple[float, float]]]
DeliverCallback = Callable[[float, float], None]  # (dsn, size)

#: Maximum segment size, bytes.
MSS = 1448.0

#: Duplicate ACKs that trigger fast retransmit.
DUPACK_THRESHOLD = 3


SackBlocks = Tuple[Tuple[float, float], ...]

#: Maximum SACK blocks carried per ACK (RFC 2018 allows 3-4).
MAX_SACK_BLOCKS = 4


class SubflowReceiver:
    """In-order reassembly, cumulative ACKs, and SACK blocks."""

    def __init__(self, deliver: DeliverCallback):
        self.rcv_nxt = 0.0
        self._deliver = deliver
        self._buffered: Dict[float, Segment] = {}
        self._last_ooo_seq: Optional[float] = None
        self.duplicate_segments = 0

    def on_segment(self, segment: Segment) -> Tuple[float, SackBlocks]:
        """Absorb one segment; return (cumulative ACK, SACK blocks)."""
        if segment.seq + segment.size <= self.rcv_nxt:
            self.duplicate_segments += 1
        elif segment.seq > self.rcv_nxt:
            self._buffered.setdefault(segment.seq, segment)
            self._last_ooo_seq = segment.seq
        else:
            # In order (possibly overlapping the left edge).
            self._advance(segment)
            while self.rcv_nxt in self._buffered:
                self._advance(self._buffered.pop(self.rcv_nxt))
        return self.rcv_nxt, self.sack_blocks()

    def sack_blocks(self) -> SackBlocks:
        """Out-of-order coverage, merged into ranges.

        RFC 2018 ordering: the block containing the most recently
        received segment comes first, so across a stream of ACKs the
        sender's scoreboard accumulates coverage of *every* range, not
        just the lowest few — essential when loss is heavy and only a
        handful of blocks fit per ACK.
        """
        if not self._buffered:
            return ()
        blocks: List[Tuple[float, float]] = []
        start: Optional[float] = None
        end = 0.0
        for seq in sorted(self._buffered):
            segment = self._buffered[seq]
            if start is None:
                start, end = seq, seq + segment.size
            elif seq <= end:
                end = max(end, seq + segment.size)
            else:
                blocks.append((start, end))
                start, end = seq, seq + segment.size
        blocks.append((start, end))  # type: ignore[arg-type]
        if self._last_ooo_seq is not None:
            for i, (b_start, b_end) in enumerate(blocks):
                if b_start <= self._last_ooo_seq < b_end:
                    blocks.insert(0, blocks.pop(i))
                    break
        return tuple(blocks[:MAX_SACK_BLOCKS])

    def _advance(self, segment: Segment) -> None:
        new_end = segment.seq + segment.size
        self.rcv_nxt = max(self.rcv_nxt, new_end)
        self._deliver(segment.dsn, segment.size)

    @property
    def buffered_segments(self) -> int:
        """Out-of-order segments held for reassembly."""
        return len(self._buffered)


class PacketTcpConnection:
    """A segment-level TCP sender with its receiver and ACK path."""

    def __init__(
        self,
        sim: Simulator,
        link: PacketLink,
        assigner: Assigner,
        deliver: DeliverCallback,
        ack_delay: Optional[float] = None,
        mss: float = MSS,
        init_cwnd_segments: int = 10,
        coupling: Optional[Callable[[], float]] = None,
        name: str = "ptcp",
    ):
        if mss <= 0:
            raise ConfigurationError("mss must be positive")
        self.sim = sim
        self.link = link
        self.assigner = assigner
        self.mss = mss
        self.coupling = coupling
        self.name = name
        self.ack_delay = link.one_way_delay if ack_delay is None else ack_delay

        self.snd_una = 0.0
        self.snd_nxt = 0.0
        self.cwnd = init_cwnd_segments * mss
        self.ssthresh = float("inf")
        self.dup_acks = 0
        self.in_recovery = False
        self.recovery_point = 0.0
        self.rtt = RttEstimator()
        self.receiver = SubflowReceiver(deliver)

        self._segments: Dict[float, Segment] = {}  # seq -> unacked segment
        self._order: List[float] = []  # unacked seqs, ascending
        self._sacked: set = set()  # seqs covered by SACK blocks
        self._rtx_done: set = set()  # lost seqs already retransmitted
        self._highest_sacked = 0.0
        self._all_lost = False  # post-RTO: every unSACKed segment is lost
        self._rto_handle: Optional[EventHandle] = None
        self._rto_backoff = 1.0
        self.fast_retransmits = 0
        self.timeouts = 0
        self.bytes_acked_total = 0.0
        self.closed = False
        self.paused = False

        link.attach(sim)

    # ------------------------------------------------------------------
    # sending

    def start(self) -> None:
        """Begin transmitting (connection assumed established)."""
        self._try_send()

    def notify_data(self) -> None:
        """New application data may be available."""
        if not self.closed:
            self._try_send()

    def close(self) -> None:
        """Stop all activity."""
        self.closed = True
        self._cancel_rto()

    def pause(self) -> None:
        """Stop sending *new* data (MP_PRIO suspension).  In-flight
        segments still complete and retransmissions still repair losses
        — suspension must not strand assigned DSNs."""
        self.paused = True

    def resume(self) -> None:
        """Resume sending after :meth:`pause`."""
        if not self.paused:
            return
        self.paused = False
        self._try_send()

    @property
    def flight_size(self) -> float:
        """Unacknowledged bytes."""
        return self.snd_nxt - self.snd_una

    def _pipe(self) -> float:
        """Bytes considered in flight under the SACK scoreboard: unacked
        and not SACKed, excluding lost segments that have not been
        retransmitted (RFC 6675's pipe, simplified)."""
        pipe = 0.0
        for seq in self._order:
            segment = self._segments[seq]
            if seq in self._sacked:
                continue
            if self._is_lost(seq) and seq not in self._rtx_done:
                continue
            pipe += segment.size
        return pipe

    def _is_lost(self, seq: float) -> bool:
        """A hole below the highest SACKed byte counts as lost; after an
        RTO every unSACKed segment does (RFC 6675 §5.1)."""
        if seq in self._sacked:
            return False
        if self._all_lost:
            return True
        segment = self._segments[seq]
        return seq + segment.size <= self._highest_sacked

    def _try_send(self) -> None:
        if self.closed:
            return
        budget = 512  # safety valve against pathological loops
        while budget > 0:
            budget -= 1
            pipe = self._pipe() if self.in_recovery else self.flight_size
            if pipe + self.mss > self.cwnd + 1e-9:
                break
            if self.in_recovery:
                outcome = self._retransmit_next_lost()
                if outcome is True:
                    continue
                if outcome is False:
                    break  # queue congested; retry on the next ACK
            if self.paused:
                break  # suspended: repair losses but take no new data
            chunk = self.assigner(self.mss)
            if chunk is None:
                break
            dsn, size = chunk
            if size <= 0:
                break
            segment = Segment(
                seq=self.snd_nxt, size=size, dsn=dsn, sent_at=self.sim.now
            )
            self._segments[segment.seq] = segment
            self._order.append(segment.seq)
            self.snd_nxt += size
            self.link.send(segment, self._segment_arrived)
            self._arm_rto()

    def _segment_arrived(self, segment: Segment) -> None:
        ack_no, sacks = self.receiver.on_segment(segment)
        self.sim.schedule(self.ack_delay, self._on_ack, ack_no, sacks)

    # ------------------------------------------------------------------
    # ACK clock

    def _on_ack(self, ack_no: float, sacks: "SackBlocks" = ()) -> None:
        if self.closed:
            return
        self._absorb_sacks(sacks)
        if ack_no > self.snd_una:
            self._on_new_ack(ack_no)
        elif self.flight_size > 0:
            self._on_dup_ack()
        self._try_send()

    def _absorb_sacks(self, sacks: "SackBlocks") -> None:
        for start, end in sacks:
            self._highest_sacked = max(self._highest_sacked, end)
            for seq in self._order:
                if seq in self._sacked:
                    continue
                segment = self._segments[seq]
                if start <= seq and seq + segment.size <= end:
                    self._sacked.add(seq)

    def _on_new_ack(self, ack_no: float) -> None:
        acked = ack_no - self.snd_una
        self.bytes_acked_total += acked
        self.snd_una = ack_no
        self.dup_acks = 0
        self._sample_rtt(ack_no)  # before the acked segments are dropped
        self._drop_acked(ack_no)
        if self.in_recovery and ack_no >= self.recovery_point:
            self.in_recovery = False
            self._all_lost = False
            self._rtx_done.clear()
        if not self.in_recovery or self._all_lost:
            # Post-RTO recovery is slow start: the window grows while
            # the scoreboard paces the retransmissions.
            self._grow_window(acked)
        self._rto_backoff = 1.0
        if self.flight_size > 0:
            self._arm_rto()
        else:
            self._cancel_rto()

    def _grow_window(self, acked: float) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += min(acked, self.mss * 2)  # RFC 3465, L=2
        else:
            factor = self.coupling() if self.coupling is not None else 1.0
            self.cwnd += max(0.0, factor) * self.mss * acked / self.cwnd

    def _on_dup_ack(self) -> None:
        self.dup_acks += 1
        if self.dup_acks == DUPACK_THRESHOLD and not self.in_recovery:
            self.fast_retransmits += 1
            self.in_recovery = True
            self.recovery_point = self.snd_nxt
            self.ssthresh = max(self.flight_size / 2.0, 2 * self.mss)
            self.cwnd = self.ssthresh
            self._retransmit_next_lost(force_first=True)

    def _retransmit_next_lost(self, force_first: bool = False):
        """Retransmit the lowest lost, not-yet-retransmitted segment.

        Returns True when one was sent, False when the queue rejected
        it (caller should back off until the next ACK), and None when
        nothing is pending retransmission.  ``force_first`` retransmits
        the segment at ``snd_una`` even if the SACK scoreboard has no
        evidence yet (classic 3-dupack fast retransmit before any SACK
        arrived)."""
        for seq in self._order:
            if (
                not self._all_lost
                and seq >= self._highest_sacked
                and not (force_first and seq == self.snd_una)
            ):
                break  # nothing beyond the highest SACK can be "lost" yet
            if seq in self._sacked or seq in self._rtx_done:
                continue
            if self._is_lost(seq) or (force_first and seq == self.snd_una):
                return self._retransmit(seq)
        return None

    def _retransmit(self, seq: float) -> bool:
        """Retransmit one segment; False if the queue rejected it (the
        segment stays eligible for a later attempt)."""
        segment = self._segments.get(seq)
        if segment is None:
            return True
        resend = Segment(
            seq=segment.seq,
            size=segment.size,
            dsn=segment.dsn,
            sent_at=self.sim.now,
            retransmit=True,
        )
        accepted = self.link.send(resend, self._segment_arrived)
        if accepted:
            self._segments[resend.seq] = resend
            self._rtx_done.add(seq)
            self._arm_rto()
        return accepted

    # ------------------------------------------------------------------
    # RTO

    def _arm_rto(self) -> None:
        self._cancel_rto()
        delay = self.rtt.rto * self._rto_backoff
        self._rto_handle = self.sim.schedule(delay, self._rto_fired)

    def _cancel_rto(self) -> None:
        if self._rto_handle is not None:
            self._rto_handle.cancel()
            self._rto_handle = None

    def _rto_fired(self) -> None:
        self._rto_handle = None
        if self.closed or self.flight_size <= 0:
            return
        self.timeouts += 1
        self.ssthresh = max(self.flight_size / 2.0, 2 * self.mss)
        self.cwnd = 2 * self.mss
        self.dup_acks = 0
        # Re-enter SACK loss recovery with everything unSACKed marked
        # lost (RFC 6675): subsequent ACKs clock out the retransmissions
        # instead of one hole per RTO.
        self.in_recovery = True
        self.recovery_point = self.snd_nxt
        self._all_lost = True
        self._rtx_done.clear()  # everything may be retransmitted again
        self._rto_backoff = min(64.0, self._rto_backoff * 2.0)
        if self._order:
            self._retransmit(self._order[0])
        # Always re-arm: if the retransmission was itself dropped (dead
        # or saturated link) the next backoff must still fire.
        self._arm_rto()

    # ------------------------------------------------------------------
    # bookkeeping

    def _drop_acked(self, ack_no: float) -> None:
        while self._order and self._order[0] < ack_no:
            seq = self._order.pop(0)
            self._segments.pop(seq, None)
            self._sacked.discard(seq)
            self._rtx_done.discard(seq)

    def _sample_rtt(self, ack_no: float) -> None:
        # Karn's rule: only segments never retransmitted produce samples.
        # The segment ending exactly at ack_no is the freshest candidate;
        # approximate by using the most recent fully-acked original.
        candidate: Optional[Segment] = None
        for seq, segment in list(self._segments.items()):
            if seq + segment.size <= ack_no and not segment.retransmit:
                if candidate is None or segment.sent_at > candidate.sent_at:
                    candidate = segment
        if candidate is not None:
            sample = self.sim.now - candidate.sent_at
            if sample > 0:
                self.rtt.observe(sample)