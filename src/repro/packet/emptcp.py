"""eMPTCP over the packet engine.

The control-plane components of the reproduction — the Holt-Winters
:class:`~repro.core.predictor.BandwidthPredictor`, the
:class:`~repro.core.eib.EnergyInformationBase`, and the hysteresis
:class:`~repro.core.controller.PathUsageController` — are engine-
agnostic: they consume throughput samples and emit path decisions.
This module drives them from segment-level subflows, with a compact
delayed-establishment gate (κ bytes / τ timer / efficiency veto, the
§3.5 logic), demonstrating that the paper's contribution works
unchanged on a high-fidelity transport.

Energy is metered exactly as in the fluid runner: a periodic rate
probe reports each interface's delivered rate to the
:class:`~repro.energy.meter.EnergyMeter`, and the cellular RRC machine
is fed activity so promotion/tail costs accrue.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import EMPTCPConfig
from repro.core.controller import PathDecision, PathUsageController
from repro.core.eib import cached_eib
from repro.core.predictor import BandwidthPredictor
from repro.energy.device import GALAXY_S3, DeviceProfile
from repro.energy.meter import EnergyMeter
from repro.energy.rrc import RrcMachine
from repro.errors import ConfigurationError
from repro.net.interface import InterfaceKind
from repro.packet.link import PacketLink
from repro.packet.mptcp import PacketMptcpConnection
from repro.packet.tcp import PacketTcpConnection
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess, Timer
from repro.tcp.connection import ByteSource


class PacketEmptcp:
    """Energy-aware MPTCP over segment-level subflows."""

    def __init__(
        self,
        sim: Simulator,
        wifi_link: PacketLink,
        cellular_link: PacketLink,
        source: ByteSource,
        profile: DeviceProfile = GALAXY_S3,
        config: Optional[EMPTCPConfig] = None,
        cell_kind: InterfaceKind = InterfaceKind.LTE,
        meter: Optional[EnergyMeter] = None,
        probe_interval: float = 0.25,
        name: str = "pemptcp",
    ):
        if not cell_kind.is_cellular:
            raise ConfigurationError("cell_kind must be cellular")
        self.sim = sim
        self.config = config or EMPTCPConfig()
        self.profile = profile
        self.cell_kind = cell_kind
        self.cellular_link = cellular_link
        self.name = name

        self.mptcp = PacketMptcpConnection(sim, [wifi_link], source, name=name)
        self.wifi_subflow = self.mptcp.subflows[0]
        self.cell_subflow: Optional[PacketTcpConnection] = None

        self.predictor = BandwidthPredictor(sim, self.config)
        self.controller = PathUsageController(
            self.config,
            cached_eib(profile, cell_kind),
            self.predictor,
            cell_kind=cell_kind,
            initial=PathDecision.WIFI_ONLY,
        )
        self.cell_established_at: Optional[float] = None
        self.suspend_count = 0

        # Energy wiring.
        self.meter = meter or EnergyMeter(sim, profile)
        self.rrc = RrcMachine(sim, profile.rrc[cell_kind])
        self.rrc.on_state_change(
            lambda _t, state: self.meter.set_rrc_state(cell_kind, state)
        )
        self.meter.add_one_shot(profile.wifi_activation_j)

        self._last_bytes: Dict[InterfaceKind, float] = {
            InterfaceKind.WIFI: 0.0,
            cell_kind: 0.0,
        }
        self._probe = PeriodicProcess(sim, probe_interval, self._probe_tick)
        self._decisions = PeriodicProcess(
            sim, self.config.decision_interval, self._control_tick
        )
        self._tau = Timer(sim, self._tau_expired)

    # ------------------------------------------------------------------
    # lifecycle

    def open(self) -> None:
        """Open the WiFi subflow; arm the τ timer; start probing."""
        self.mptcp.open()
        self._probe.start()
        self._tau.start(self.config.tau_seconds)

    def close(self) -> None:
        """Stop everything (tails may still drain in the meter)."""
        self._probe.stop()
        self._decisions.stop()
        self._tau.cancel()
        self.mptcp.close()
        self.meter.set_rate(InterfaceKind.WIFI, 0.0)
        self.meter.set_rate(self.cell_kind, 0.0)

    @property
    def completed_at(self) -> Optional[float]:
        """Transfer completion time."""
        return self.mptcp.completed_at

    @property
    def bytes_received(self) -> float:
        """In-order bytes delivered."""
        return self.mptcp.bytes_received

    # ------------------------------------------------------------------
    # sampling + energy probe

    def _probe_tick(self) -> None:
        interval = self._probe.interval
        for kind, subflow in self._subflows_by_kind().items():
            if subflow is None:
                continue
            delivered = subflow.bytes_acked_total
            rate = (delivered - self._last_bytes[kind]) / interval
            self._last_bytes[kind] = delivered
            self.meter.set_rate(kind, max(0.0, rate))
            if kind.is_cellular and rate > 0:
                self.rrc.on_activity(self.sim.now)
            if subflow.paused:
                continue  # deactivated interfaces keep old samples (§3.2)
            if rate <= 0 and subflow.flight_size <= 0:
                continue  # app-limited idle window
            self.predictor.observe(kind, rate)
        # κ trigger (§3.5): once κ bytes arrived over WiFi, evaluate
        # establishment on every probe until the veto clears.
        if (
            self.cell_subflow is None
            and self.completed_at is None
            and self.wifi_subflow.bytes_acked_total >= self.config.kappa_bytes
            and not self._establishment_vetoed()
        ):
            self._tau.cancel()
            self._establish_cellular()

    def _subflows_by_kind(self) -> Dict[InterfaceKind, Optional[PacketTcpConnection]]:
        return {
            InterfaceKind.WIFI: self.wifi_subflow,
            self.cell_kind: self.cell_subflow,
        }

    # ------------------------------------------------------------------
    # delayed establishment (§3.5, compact form)

    def _tau_expired(self) -> None:
        if self.cell_subflow is not None or self.completed_at is not None:
            return
        if self._establishment_vetoed():
            self._tau.start(self.config.tau_seconds)
            return
        self._establish_cellular()

    def _establishment_vetoed(self) -> bool:
        phi = max(1, self.config.required_samples // 2)
        if self.predictor.sample_count(InterfaceKind.WIFI) < phi:
            return True
        wifi = self.predictor.predict_mbps(InterfaceKind.WIFI)
        cell = self.predictor.predict_mbps(self.cell_kind)
        _cell_thr, wifi_thr = self.controller.eib.thresholds(cell)
        return wifi >= wifi_thr

    def _establish_cellular(self) -> None:
        self.cell_established_at = self.sim.now
        self.rrc.on_activity(self.sim.now)  # promotion begins
        self.cell_subflow = self.mptcp.add_subflow(self.cellular_link)
        self.controller.current = PathDecision.BOTH
        self._decisions.start()

    # ------------------------------------------------------------------
    # path usage control

    def _control_tick(self) -> None:
        if self.completed_at is not None:
            self._decisions.stop()
            return
        # κ check rides on the decision cadence: bytes over WiFi.
        if (
            self.predictor.sample_count(self.cell_kind)
            < self.config.required_samples
        ):
            decision = PathDecision.BOTH
            self.controller.current = decision
        else:
            decision = self.controller.decide(now=self.sim.now)
        self._apply(decision)

    def _apply(self, decision: PathDecision) -> None:
        cell = self.cell_subflow
        if cell is None:
            return
        want_cell = decision in (PathDecision.BOTH, PathDecision.CELLULAR_ONLY)
        want_wifi = decision in (PathDecision.BOTH, PathDecision.WIFI_ONLY)
        if want_cell and cell.paused:
            self.rrc.on_activity(self.sim.now)
            cell.resume()
        elif not want_cell and not cell.paused:
            self.suspend_count += 1
            cell.pause()
        if want_wifi and self.wifi_subflow.paused:
            self.wifi_subflow.resume()
        elif not want_wifi and not self.wifi_subflow.paused:
            self.wifi_subflow.pause()

def run_packet_protocol(
    protocol: str,
    wifi_mbps: float,
    cell_mbps: float,
    size_bytes: float,
    wifi_rtt: float = 0.04,
    cell_rtt: float = 0.07,
    profile: DeviceProfile = GALAXY_S3,
    seed: int = 0,
    max_time: float = 2_000.0,
):
    """Run one packet-level protocol ('mptcp' | 'emptcp' | 'tcp-wifi')
    with energy metering; returns (completion_time, energy_j)."""
    import random as _random

    from repro.net.bandwidth import ConstantCapacity
    from repro.tcp.connection import FiniteSource
    from repro.units import mbps_to_bytes_per_sec

    sim = Simulator()
    wifi_link = PacketLink(
        sim,
        ConstantCapacity(mbps_to_bytes_per_sec(wifi_mbps)),
        one_way_delay=wifi_rtt / 2,
        rng=_random.Random(seed),
        name="wifi",
    )
    cell_link = PacketLink(
        sim,
        ConstantCapacity(mbps_to_bytes_per_sec(cell_mbps)),
        one_way_delay=cell_rtt / 2,
        rng=_random.Random(seed + 1),
        name="lte",
    )
    source = FiniteSource(size_bytes)
    meter = EnergyMeter(sim, profile)

    if protocol == "emptcp":
        conn = PacketEmptcp(
            sim, wifi_link, cell_link, source, profile=profile, meter=meter
        )
        conn.open()
    elif protocol in ("mptcp", "tcp-wifi"):
        links = [wifi_link] if protocol == "tcp-wifi" else [wifi_link, cell_link]
        conn = PacketMptcpConnection(sim, links, source)
        rrc = RrcMachine(sim, profile.rrc[InterfaceKind.LTE])
        rrc.on_state_change(
            lambda _t, s: meter.set_rrc_state(InterfaceKind.LTE, s)
        )
        meter.add_one_shot(profile.wifi_activation_j)
        last = {0: 0.0, 1: 0.0}

        def probe():
            for i, subflow in enumerate(conn.subflows):
                kind = InterfaceKind.WIFI if i == 0 else InterfaceKind.LTE
                delivered = subflow.bytes_acked_total
                rate = (delivered - last[i]) / 0.25
                last[i] = delivered
                meter.set_rate(kind, max(0.0, rate))
                if kind.is_cellular and rate > 0:
                    rrc.on_activity(sim.now)

        prober = PeriodicProcess(sim, 0.25, probe)
        prober.start()
        conn.open()
    else:
        raise ConfigurationError(f"unknown packet protocol {protocol!r}")

    while sim.now < max_time and conn.completed_at is None:
        if not sim.step():
            break
    if conn.completed_at is None:
        raise ConfigurationError(f"{protocol} did not complete in {max_time}s")
    done = conn.completed_at
    conn.close()
    if protocol in ("mptcp", "tcp-wifi"):
        prober.stop()
        meter.set_rate(InterfaceKind.WIFI, 0.0)
        meter.set_rate(InterfaceKind.LTE, 0.0)
    params = profile.rrc[InterfaceKind.LTE]
    sim.run(until=sim.now + params.tail_time + params.active_hold + 1.5)
    return done, meter.checkpoint()
