"""eMPTCP over the packet engine — a thin data-plane adapter.

All policy (the Holt-Winters predictor, EIB consultation, the
hysteresis path-usage controller, and §3.5 delayed establishment)
lives in the shared :class:`~repro.control.plane.ControlPlane`; this
module only implements the
:class:`~repro.control.port.DataPlanePort` over segment-level
subflows: :class:`_PacketSubflowView` presents each
:class:`~repro.packet.tcp.PacketTcpConnection` with the fluid
subflow's vocabulary (``bytes_delivered``, ``suspended``,
``sending``, ``handshake_rtt``), so the same
:class:`~repro.core.sampler.ThroughputSampler` drives the predictor
on both engines.

Energy is metered exactly as in the fluid runner: a periodic rate
probe reports each interface's delivered rate to the
:class:`~repro.energy.meter.EnergyMeter`, and the cellular RRC machine
is fed activity so promotion/tail costs accrue.  When the experiment
runner owns the meter and RRC machine (``rrc=`` passed), the adapter
skips that wiring and only reports rates/activity.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro import obs as _obs
from repro.control.delay import DelayedEstablishment
from repro.control.plane import ControlPlane
from repro.control.port import DeliveryListener
from repro.core.config import EMPTCPConfig
from repro.core.controller import PathDecision, PathUsageController
from repro.core.eib import EnergyInformationBase
from repro.core.predictor import BandwidthPredictor
from repro.energy.device import GALAXY_S3, DeviceProfile
from repro.energy.meter import EnergyMeter
from repro.energy.power import Direction
from repro.energy.rrc import RrcMachine
from repro.errors import ConfigurationError
from repro.net.interface import InterfaceKind
from repro.packet.link import PacketLink
from repro.packet.mptcp import PacketMptcpConnection
from repro.packet.tcp import PacketTcpConnection
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess


class _PacketSubflowView:
    """A :class:`~repro.control.port.SubflowLike` face over one packet
    subflow, crediting only unique DSN bytes (reinjected duplicates are
    excluded, keeping per-subflow byte conservation exact)."""

    def __init__(
        self,
        mptcp: PacketMptcpConnection,
        index: int,
        kind: InterfaceKind,
        link: PacketLink,
    ):
        self._mptcp = mptcp
        self._index = index
        self._kind = kind
        self.name = mptcp.subflows[index].name
        self._handshake_rtt = 2.0 * link.one_way_delay
        self.suspend_count = 0
        self.resume_count = 0

    @property
    def raw(self) -> PacketTcpConnection:
        """The underlying packet subflow."""
        return self._mptcp.subflows[self._index]

    @property
    def interface_kind(self) -> InterfaceKind:
        return self._kind

    @property
    def established(self) -> bool:
        # Packet subflows carry data as soon as they are started; the
        # handshake is folded into the link's first RTT.
        return True

    @property
    def suspended(self) -> bool:
        return self.raw.paused

    @property
    def sending(self) -> bool:
        return self.raw.flight_size > 0

    @property
    def bytes_delivered(self) -> float:
        return self._mptcp.subflow_delivered[self._index]

    @property
    def handshake_rtt(self) -> Optional[float]:
        return self._handshake_rtt


class PacketEmptcp:
    """Energy-aware MPTCP over segment-level subflows."""

    def __init__(
        self,
        sim: Simulator,
        wifi_link: PacketLink,
        cellular_link: PacketLink,
        source,
        profile: DeviceProfile = GALAXY_S3,
        config: Optional[EMPTCPConfig] = None,
        cell_kind: InterfaceKind = InterfaceKind.LTE,
        meter: Optional[EnergyMeter] = None,
        probe_interval: float = 0.25,
        direction: Direction = Direction.DOWN,
        rrc: Optional[RrcMachine] = None,
        eib: Optional[EnergyInformationBase] = None,
        name: str = "pemptcp",
    ):
        if not cell_kind.is_cellular:
            raise ConfigurationError("cell_kind must be cellular")
        self.sim = sim
        self.config = config or EMPTCPConfig()
        self.profile = profile
        self.cell_kind = cell_kind
        self.cellular_link = cellular_link
        self.direction = direction
        self.name = name

        self.mptcp = PacketMptcpConnection(sim, [wifi_link], source, name=name)
        self._views: Dict[InterfaceKind, Optional[_PacketSubflowView]] = {
            InterfaceKind.WIFI: _PacketSubflowView(
                self.mptcp, 0, InterfaceKind.WIFI, wifi_link
            ),
            cell_kind: None,
        }
        self.suspend_count = 0

        self.control = ControlPlane(
            sim,
            port=self,
            config=self.config,
            profile=profile,
            cell_kind=cell_kind,
            direction=direction,
            eib=eib,
        )

        # Energy wiring.  When the caller (the unified experiment
        # runner) owns the RRC machine, it has already wired state
        # changes into the meter and charged the WiFi activation shot;
        # the adapter then only reports rates and activity.
        self.meter = meter or EnergyMeter(sim, profile, direction=direction)
        self._owns_rrc = rrc is None
        self.rrc = rrc or RrcMachine(sim, profile.rrc[cell_kind])
        if self._owns_rrc:
            self.rrc.on_state_change(
                lambda _t, state: self.meter.set_rrc_state(cell_kind, state)
            )
            self.meter.add_one_shot(profile.wifi_activation_j)

        self._delivery_listeners: List[DeliveryListener] = []
        self._delivery_cursor: Dict[InterfaceKind, float] = {
            InterfaceKind.WIFI: 0.0,
            cell_kind: 0.0,
        }
        self._energy_cursor: Dict[InterfaceKind, float] = {
            InterfaceKind.WIFI: 0.0,
            cell_kind: 0.0,
        }
        self._last_delivery = 0.0
        self._probe = PeriodicProcess(sim, probe_interval, self._probe_tick)
        self._trace = _obs.tracer_or_none()
        self._prof = _obs.profiler_or_none()
        self.mptcp.on_complete(lambda _c: self.control.stop())

    # ------------------------------------------------------------------
    # lifecycle

    def open(self) -> None:
        """Open the WiFi subflow; arm the τ timer; start probing."""
        self._last_delivery = self.sim.now
        self.mptcp.open()
        self._probe.start()
        wifi_view = self._views[InterfaceKind.WIFI]
        assert wifi_view is not None
        self.control.subflow_established(wifi_view)
        self.control.start()

    def close(self) -> None:
        """Stop everything (tails may still drain in the meter)."""
        self._probe.stop()
        self.control.stop()
        self.mptcp.close()
        self.meter.set_rate(InterfaceKind.WIFI, 0.0)
        self.meter.set_rate(self.cell_kind, 0.0)

    def on_complete(self, listener) -> None:
        """Subscribe to transfer completion."""
        self.mptcp.on_complete(lambda _mp: listener(self))

    @property
    def completed_at(self) -> Optional[float]:
        """Transfer completion time."""
        return self.mptcp.completed_at

    @property
    def bytes_received(self) -> float:
        """In-order bytes delivered."""
        return self.mptcp.bytes_received

    def bytes_by_kind(self) -> Dict[InterfaceKind, float]:
        """Unique delivered bytes per interface (for tracing)."""
        return {
            kind: (view.bytes_delivered if view is not None else 0.0)
            for kind, view in self._views.items()
        }

    # ------------------------------------------------------------------
    # DataPlanePort implementation (what the control plane drives)

    def subflow(self, kind: InterfaceKind) -> Optional[_PacketSubflowView]:
        """Port: the subflow view over ``kind``, if joined."""
        return self._views.get(kind)

    def join_cellular(self) -> _PacketSubflowView:
        """Port: establish the cellular subflow (§3.5 commit)."""
        self.rrc.on_activity(self.sim.now)  # promotion begins
        self.mptcp.add_subflow(self.cellular_link)
        view = _PacketSubflowView(
            self.mptcp,
            len(self.mptcp.subflows) - 1,
            self.cell_kind,
            self.cellular_link,
        )
        self._views[self.cell_kind] = view
        self.control.subflow_established(view)
        return view

    def set_subflow_usage(self, kind: InterfaceKind, in_use: bool) -> None:
        """Port: pause/resume the ``kind`` subflow (the packet engine's
        MP_PRIO equivalent)."""
        view = self._views.get(kind)
        if view is None:
            return
        conn = view.raw
        if in_use and conn.paused:
            if kind.is_cellular:
                self.rrc.on_activity(self.sim.now)
            conn.resume()
            view.resume_count += 1
            if self._trace is not None:
                self._trace.emit(
                    "subflow.resume",
                    t=self.sim.now,
                    subflow=view.name,
                    interface=kind.value,
                )
        elif not in_use and not conn.paused:
            conn.pause()
            view.suspend_count += 1
            if kind.is_cellular:
                self.suspend_count += 1
            if self._trace is not None:
                self._trace.emit(
                    "subflow.suspend",
                    t=self.sim.now,
                    subflow=view.name,
                    interface=kind.value,
                )

    def on_delivery(self, listener: DeliveryListener) -> None:
        """Port: delivery events as (interface kind, bytes); reported
        at probe granularity."""
        self._delivery_listeners.append(listener)

    @property
    def is_idle(self) -> bool:
        """Port: nothing in flight and no delivery for over a probe
        period (the §3.5 idle veto)."""
        for view in self._views.values():
            if view is not None and view.raw.flight_size > 0:
                return False
        threshold = max(self._probe.interval, 0.05)
        return self.sim.now - self._last_delivery > threshold

    @property
    def source_exhausted(self) -> bool:
        """Port: the application queued no further bytes."""
        return self.mptcp.source.exhausted

    @property
    def completed(self) -> bool:
        """Port: the transfer has finished."""
        return self.mptcp.completed_at is not None

    # ------------------------------------------------------------------
    # energy + delivery probe

    def _probe_tick(self) -> None:
        prof = self._prof
        if prof is not None:
            with prof.span("packet.probe"):
                self._probe_tick_inner()
        else:
            self._probe_tick_inner()

    def _probe_tick_inner(self) -> None:
        interval = self._probe.interval
        for kind, view in self._views.items():
            if view is None:
                continue
            # Energy sees the raw delivered rate (duplicates included —
            # the radio transmitted them either way).
            acked = view.raw.bytes_acked_total
            rate = (acked - self._energy_cursor[kind]) / interval
            self._energy_cursor[kind] = acked
            self.meter.set_rate(kind, max(0.0, rate))
            if kind.is_cellular and rate > 0:
                self.rrc.on_activity(self.sim.now)
            # The control plane sees unique DSN bytes (drives κ).
            delivered = view.bytes_delivered
            delta = delivered - self._delivery_cursor[kind]
            self._delivery_cursor[kind] = delivered
            if delta > 0:
                self._last_delivery = self.sim.now
                for listener in list(self._delivery_listeners):
                    listener(kind, delta)

    # ------------------------------------------------------------------
    # views (delegating to the control plane / MPTCP connection)

    @property
    def predictor(self) -> BandwidthPredictor:
        """The §3.2 bandwidth predictor."""
        return self.control.predictor

    @property
    def controller(self) -> PathUsageController:
        """The §3.4 path-usage controller."""
        return self.control.controller

    @property
    def delayed(self) -> DelayedEstablishment:
        """The §3.5 delayed-establishment module."""
        return self.control.delayed

    @property
    def eib(self) -> EnergyInformationBase:
        """The §3.3 energy information base consulted for decisions."""
        return self.control.eib

    @property
    def decision(self) -> PathDecision:
        """The controller's current decision."""
        return self.control.decision

    @property
    def cell_established_at(self) -> Optional[float]:
        """When the cellular subflow was joined (None if never)."""
        return self.control.delayed.established_at

    @property
    def wifi_subflow(self) -> PacketTcpConnection:
        """The raw WiFi packet subflow."""
        return self.mptcp.subflows[0]

    @property
    def cell_subflow(self) -> Optional[PacketTcpConnection]:
        """The raw cellular packet subflow (None until established)."""
        view = self._views.get(self.cell_kind)
        return view.raw if view is not None else None


def run_packet_protocol(
    protocol: str,
    wifi_mbps: float,
    cell_mbps: float,
    size_bytes: float,
    wifi_rtt: float = 0.04,
    cell_rtt: float = 0.07,
    profile: DeviceProfile = GALAXY_S3,
    seed: int = 0,
    max_time: float = 2_000.0,
):
    """Run one packet-level protocol ('mptcp' | 'emptcp' | 'tcp-wifi')
    with energy metering; returns (completion_time, energy_j)."""
    import random as _random

    from repro.net.bandwidth import ConstantCapacity
    from repro.packet.mptcp import PacketMptcpConnection as _Mptcp
    from repro.tcp.connection import FiniteSource
    from repro.units import mbps_to_bytes_per_sec

    sim = Simulator()
    wifi_link = PacketLink(
        sim,
        ConstantCapacity(mbps_to_bytes_per_sec(wifi_mbps)),
        one_way_delay=wifi_rtt / 2,
        rng=_random.Random(seed),
        name="wifi",
    )
    cell_link = PacketLink(
        sim,
        ConstantCapacity(mbps_to_bytes_per_sec(cell_mbps)),
        one_way_delay=cell_rtt / 2,
        rng=_random.Random(seed + 1),
        name="lte",
    )
    source = FiniteSource(size_bytes)
    meter = EnergyMeter(sim, profile)

    if protocol == "emptcp":
        conn = PacketEmptcp(
            sim, wifi_link, cell_link, source, profile=profile, meter=meter
        )
        conn.open()
    elif protocol in ("mptcp", "tcp-wifi"):
        links = [wifi_link] if protocol == "tcp-wifi" else [wifi_link, cell_link]
        conn = _Mptcp(sim, links, source)
        rrc = RrcMachine(sim, profile.rrc[InterfaceKind.LTE])
        rrc.on_state_change(
            lambda _t, s: meter.set_rrc_state(InterfaceKind.LTE, s)
        )
        meter.add_one_shot(profile.wifi_activation_j)
        last = {0: 0.0, 1: 0.0}

        def probe():
            for i, subflow in enumerate(conn.subflows):
                kind = InterfaceKind.WIFI if i == 0 else InterfaceKind.LTE
                delivered = subflow.bytes_acked_total
                rate = (delivered - last[i]) / 0.25
                last[i] = delivered
                meter.set_rate(kind, max(0.0, rate))
                if kind.is_cellular and rate > 0:
                    rrc.on_activity(sim.now)

        prober = PeriodicProcess(sim, 0.25, probe)
        prober.start()
        conn.open()
    else:
        raise ConfigurationError(f"unknown packet protocol {protocol!r}")

    while sim.now < max_time and conn.completed_at is None:
        if not sim.step():
            break
    if conn.completed_at is None:
        raise ConfigurationError(f"{protocol} did not complete in {max_time}s")
    done = conn.completed_at
    conn.close()
    if protocol in ("mptcp", "tcp-wifi"):
        prober.stop()
        meter.set_rate(InterfaceKind.WIFI, 0.0)
        meter.set_rate(InterfaceKind.LTE, 0.0)
    params = profile.rrc[InterfaceKind.LTE]
    sim.run(until=sim.now + params.tail_time + params.active_hold + 1.5)
    return done, meter.checkpoint()
