"""Packet-level transport engine (validation substrate).

The main reproduction runs on a fluid, round-based TCP model
(:mod:`repro.tcp`) — fast and adequate for the paper's energy/time
claims.  This package implements the same protocols at *segment*
granularity: drop-tail links with serialisation and propagation,
cumulative ACKs, duplicate-ACK fast retransmit, RTO recovery, and an
MPTCP data-sequence layer with a finite connection-level receive buffer
(real head-of-line blocking instead of the fluid model's utilization
formula).

Its purpose is validation: :mod:`repro.check.packet` runs matched
fluid/packet scenarios and checks that the macroscopic quantities the
reproduction relies on (throughput, completion time, loss response)
agree — and documents where they do not (reordering pathologies the
fluid model smooths over).
"""

from repro.packet.link import PacketLink
from repro.packet.mptcp import PacketMptcpConnection
from repro.packet.tcp import PacketTcpConnection

__all__ = ["PacketLink", "PacketMptcpConnection", "PacketTcpConnection"]
