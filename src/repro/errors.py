"""Exception hierarchy for the repro package.

Every exception raised intentionally by this library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """Raised when the discrete-event engine is misused.

    Examples: scheduling an event in the past, running a simulator that
    was already stopped, or cancelling a handle twice.
    """


class ConfigurationError(ReproError):
    """Raised when a component is constructed with invalid parameters."""


class ProtocolError(ReproError):
    """Raised when a TCP/MPTCP state machine is driven illegally.

    Examples: sending on a closed connection, joining a subflow twice,
    or changing the priority of an unknown subflow.
    """


class EnergyModelError(ReproError):
    """Raised for invalid energy-model inputs (negative rates, unknown
    interfaces, non-monotonic EIB tables...)."""


class WorkloadError(ReproError):
    """Raised when a workload description is invalid (empty web page,
    non-positive file size, malformed mobility route...)."""


class ExecutionError(ReproError):
    """Raised by the execution runtime when one or more runs could not
    be completed (simulation failure, worker crash, or per-run timeout
    after the bounded retries were exhausted)."""
