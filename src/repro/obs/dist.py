"""Cross-process trace context and lifecycle spans.

PR 2's :class:`~repro.obs.trace.Tracer` and PR 5's
:class:`~repro.obs.prof.Profiler` each stop at the process boundary:
a batch submitted over HTTP fans out through the job queue, scheduler
shards and worker pools, and nothing ties the resulting per-run JSONL
exports back to the batch that caused them.  This module supplies the
missing identity layer:

* :func:`derive_trace_id` / :func:`span_id_for` — **deterministic**
  identifiers derived via SHA-256 from the batch content (spec hashes
  plus an optional salt such as the batch id).  No ``uuid4``, no
  wall-clock, no ambient randomness: the same submission always maps
  to the same ID space, so replayed batches correlate instead of
  fragmenting (and the module passes the REP101/REP202 determinism
  tiers without exemptions).
* :class:`TraceContext` — the ``(trace_id, span_id, parent_span_id)``
  triple that crosses process boundaries as a plain dict.
* :class:`LifecycleSpan` — one timed scheduler/queue event (batch
  root, per-job span, queue wait, execution attempt) serialized as a
  JSON line into ``<trace_id>.lifecycle.jsonl`` next to the existing
  run exports.
* :class:`SpanRecorder` — the thread-safe sink: JSONL persistence plus
  a bounded in-memory *flight ring* that can be dumped to disk when a
  job fails or times out (``flight-<reason>.jsonl``).

The module is deliberately **pure**: it never reads a clock.  Callers
(scheduler, service, executor) pass timestamps in, sourced from the
replayable :mod:`repro.runtime.clock` seam; keeping the clock out of
this module both satisfies the determinism tiers and avoids an
``obs -> runtime`` import cycle.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, Iterable, List, Optional, Union

#: File suffix of per-trace lifecycle span exports.
LIFECYCLE_SUFFIX = ".lifecycle.jsonl"

#: File-name prefix of flight-recorder dumps.
FLIGHT_PREFIX = "flight-"

#: Default capacity of the flight-recorder ring.
DEFAULT_FLIGHT_RING = 512

#: Canonical span names, root to leaf.
SPAN_BATCH = "batch"
SPAN_JOB = "job"
SPAN_WAIT = "queue.wait"
SPAN_EXEC = "job.exec"

#: Hex digits kept from the SHA-256 digest (64 bits — collision-safe
#: for any realistic batch count, short enough to read in a tree).
_ID_HEX = 16


def derive_trace_id(spec_hashes: Iterable[str], salt: str = "") -> str:
    """Trace ID for a batch: SHA-256 over its spec hashes and ``salt``.

    The service salts with the batch id so resubmitting the same specs
    in a new batch gets a fresh trace; ``run_many`` leaves the salt
    empty so re-running an identical batch *reuses* its trace (and the
    recorder truncates the old lifecycle file instead of duplicating).
    """
    digest = hashlib.sha256()
    digest.update(b"repro.trace")
    digest.update(salt.encode("utf-8"))
    for spec_hash in spec_hashes:
        digest.update(b"|")
        digest.update(str(spec_hash).encode("utf-8"))
    return digest.hexdigest()[:_ID_HEX]


def span_id_for(trace_id: str, name: str, *qualifiers: Any) -> str:
    """Deterministic span ID: SHA-256 over trace id, name, qualifiers.

    Because IDs are content-derived, any process holding the trace id
    and the span coordinates (e.g. a worker told "job.exec, hash X,
    attempt 2") derives the same ID without coordination.
    """
    digest = hashlib.sha256()
    digest.update(b"repro.span")
    digest.update(trace_id.encode("utf-8"))
    for part in (name,) + qualifiers:
        digest.update(b"|")
        digest.update(str(part).encode("utf-8"))
    return digest.hexdigest()[:_ID_HEX]


@dataclass(frozen=True)
class TraceContext:
    """The propagated triple; crosses pickling boundaries as a dict."""

    trace_id: str
    span_id: str
    parent_span_id: str = ""

    def child(self, name: str, *qualifiers: Any) -> "TraceContext":
        """Context for a child span of this one."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=span_id_for(self.trace_id, name, *qualifiers),
            parent_span_id=self.span_id,
        )

    def stamp(self) -> Dict[str, str]:
        """The two fields stamped onto run exports (events, metrics,
        profiler docs) to tie them back to this span."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    def to_dict(self) -> Dict[str, str]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "TraceContext":
        return cls(
            trace_id=str(doc.get("trace_id", "")),
            span_id=str(doc.get("span_id", "")),
            parent_span_id=str(doc.get("parent_span_id", "")),
        )


def root_context(spec_hashes: Iterable[str], salt: str = "") -> TraceContext:
    """The batch-root context for a set of spec hashes."""
    trace_id = derive_trace_id(spec_hashes, salt=salt)
    return TraceContext(
        trace_id=trace_id,
        span_id=span_id_for(trace_id, SPAN_BATCH),
        parent_span_id="",
    )


@dataclass(frozen=True)
class LifecycleSpan:
    """One timed queue/scheduler event in a trace."""

    trace_id: str
    span_id: str
    parent_span_id: str
    name: str
    start_t: float
    end_t: float
    status: str = "ok"
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_t - self.start_t

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "name": self.name,
            "start_t": self.start_t,
            "end_t": self.end_t,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "LifecycleSpan":
        attrs = doc.get("attrs")
        return cls(
            trace_id=str(doc.get("trace_id", "")),
            span_id=str(doc.get("span_id", "")),
            parent_span_id=str(doc.get("parent_span_id", "")),
            name=str(doc.get("name", "")),
            start_t=float(doc.get("start_t", 0.0)),
            end_t=float(doc.get("end_t", 0.0)),
            status=str(doc.get("status", "ok")),
            attrs=dict(attrs) if isinstance(attrs, dict) else {},
        )


class SpanRecorder:
    """Thread-safe lifecycle-span sink plus flight-recorder ring.

    Spans go two places: appended as JSON lines to
    ``<sink_dir>/<trace_id>.lifecycle.jsonl`` (the first span of a
    trace *truncates* the file, so re-running an identical batch —
    same deterministic trace id — replaces the old spans instead of
    accumulating duplicates), and into a bounded in-memory ring that
    :meth:`dump_flight` snapshots to disk when a job fails or times
    out.  Disk errors are swallowed: observability must never take the
    scheduler down.
    """

    def __init__(
        self,
        sink_dir: Optional[Union[str, Path]] = None,
        ring_size: int = DEFAULT_FLIGHT_RING,
    ):
        self.sink_dir = Path(sink_dir) if sink_dir is not None else None
        self._ring: Deque[LifecycleSpan] = deque(maxlen=max(1, ring_size))
        self._lock = threading.Lock()
        #: Trace ids whose lifecycle file this instance already opened
        #: (truncated); later spans of the same trace append.
        self._started: set = set()
        self.recorded = 0
        self.dropped_writes = 0

    def record(self, span: LifecycleSpan) -> None:
        line = json.dumps(span.to_dict(), sort_keys=True)
        with self._lock:
            self._ring.append(span)
            self.recorded += 1
            if self.sink_dir is None or not span.trace_id:
                return
            mode = "a" if span.trace_id in self._started else "w"
            try:
                self.sink_dir.mkdir(parents=True, exist_ok=True)
                path = self.sink_dir / f"{span.trace_id}{LIFECYCLE_SUFFIX}"
                with open(path, mode) as fh:
                    fh.write(line + "\n")
            except OSError:
                self.dropped_writes += 1
                return
            self._started.add(span.trace_id)

    def tail(self, count: Optional[int] = None) -> List[LifecycleSpan]:
        """Most recent spans in the ring, oldest first."""
        with self._lock:
            spans = list(self._ring)
        return spans if count is None else spans[-count:]

    def dump_flight(
        self, out_dir: Union[str, Path], reason: str, t: float
    ) -> Optional[Path]:
        """Write the current ring to ``flight-<reason>.jsonl`` under
        ``out_dir``; first line is a header with the reason and dump
        time.  Returns the path, or None if the write failed."""
        spans = self.tail()
        safe = "".join(
            ch if ch.isalnum() or ch in "-._" else "-" for ch in reason
        )
        path = Path(out_dir) / f"{FLIGHT_PREFIX}{safe}.jsonl"
        header = {"reason": reason, "t": t, "spans": len(spans)}
        try:
            Path(out_dir).mkdir(parents=True, exist_ok=True)
            with open(path, "w") as fh:
                fh.write(json.dumps(header, sort_keys=True) + "\n")
                for span in spans:
                    fh.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        except OSError:
            self.dropped_writes += 1
            return None
        return path


def read_lifecycle(path: Union[str, Path]) -> List[LifecycleSpan]:
    """Spans from one lifecycle file, deduplicated by span id (last
    occurrence wins — a retried write shadows the stale one).
    Malformed lines are skipped, not fatal: a crashed scheduler may
    leave a torn tail."""
    by_id: Dict[str, LifecycleSpan] = {}
    order: List[str] = []
    with open(path, "r") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                continue
            if not isinstance(doc, dict):
                continue
            span = LifecycleSpan.from_dict(doc)
            if not span.span_id:
                continue
            if span.span_id not in by_id:
                order.append(span.span_id)
            by_id[span.span_id] = span
    return [by_id[span_id] for span_id in order]


def iter_lifecycle_files(target: Union[str, Path]) -> List[Path]:
    """Lifecycle files under ``target`` (a directory, or one file)."""
    target = Path(target)
    if target.is_file():
        return [target]
    if not target.is_dir():
        return []
    return sorted(target.glob(f"*{LIFECYCLE_SUFFIX}"))


def load_spans(
    target: Union[str, Path]
) -> Dict[str, Dict[str, LifecycleSpan]]:
    """``{trace_id: {span_id: span}}`` across every lifecycle file
    under ``target``."""
    out: Dict[str, Dict[str, LifecycleSpan]] = {}
    for path in iter_lifecycle_files(target):
        for span in read_lifecycle(path):
            out.setdefault(span.trace_id, {})[span.span_id] = span
    return out


__all__ = [
    "DEFAULT_FLIGHT_RING",
    "FLIGHT_PREFIX",
    "LIFECYCLE_SUFFIX",
    "LifecycleSpan",
    "SPAN_BATCH",
    "SPAN_EXEC",
    "SPAN_JOB",
    "SPAN_WAIT",
    "SpanRecorder",
    "TraceContext",
    "derive_trace_id",
    "iter_lifecycle_files",
    "load_spans",
    "read_lifecycle",
    "root_context",
    "span_id_for",
]
