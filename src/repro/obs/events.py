"""The event schema: one entry per instrumented decision point.

Every event carries ``t`` (simulation time, seconds) and ``type``; the
table below lists the required per-type fields and their JSON types.
Extra fields are allowed (components may attach context), unknown
event types are not — ``make trace-smoke`` validates every exported
trace line against this table, so the schema is the compatibility
contract between the emitters and ``trace summarize``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Tuple, Union

from repro.obs.trace import iter_trace_files, read_jsonl

_NUM = (int, float)
_STR = (str,)
_BOOL = (bool,)

#: type name -> {field: allowed python types}.  ``t``/``type`` are
#: implicit on every event.
EVENT_SCHEMA: Dict[str, Dict[str, Tuple[type, ...]]] = {
    # core.controller — one per path-usage evaluation: the EIB verdict
    # before hysteresis, the post-hysteresis decision, and both raw
    # thresholds the safety factor widened.
    "controller.decision": {
        "wifi_mbps": _NUM,
        "cell_mbps": _NUM,
        "raw": _STR,
        "decision": _STR,
        "cell_only_thr_mbps": _NUM,
        "wifi_only_thr_mbps": _NUM,
        "safety_factor": _NUM,
        "switched": _BOOL,
    },
    # core.predictor — one per throughput sample: the measurement and
    # the forecast it produced.
    "predictor.sample": {
        "interface": _STR,
        "sample_mbps": _NUM,
        "forecast_mbps": _NUM,
    },
    # core.delay — each κ/τ trigger evaluation and its outcome.
    "delay.trigger": {
        "trigger": _STR,     # "kappa" | "tau"
        "action": _STR,      # "established" | "postponed"
        "wifi_bytes": _NUM,
    },
    # mptcp.connection — every MP_PRIO option sent.
    "mptcp.mp_prio": {
        "subflow": _STR,
        "low": _BOOL,
    },
    # mptcp.subflow — effective suspension state changes.
    "subflow.suspend": {"subflow": _STR, "interface": _STR},
    "subflow.resume": {"subflow": _STR, "interface": _STR},
    # tcp.connection — a lost round (buffer overrun or random loss).
    "tcp.loss": {"conn": _STR, "interface": _STR},
    # energy.rrc — state-machine transitions with the time spent in
    # the state being left.
    "rrc.transition": {
        "from": _STR,
        "to": _STR,
        "dwell_s": _NUM,
    },
    # energy.meter — explicit checkpoints (run completion, one-shots).
    "energy.checkpoint": {
        "total_j": _NUM,
        "power_w": _NUM,
    },
    # experiments.runner — per-subflow byte accounting at transfer
    # completion; lets the trace analyzer check byte conservation
    # (each subflow <= the connection total, and the subflows sum to
    # it).
    "subflow.checkpoint": {
        "subflow": _STR,
        "interface": _STR,
        "delivered_bytes": _NUM,
        "conn_bytes": _NUM,
    },
    # flow.engine — sampled fleet-wide aggregates, one per obs epoch
    # (large fleets cannot afford per-session events; this is the
    # population-level heartbeat).
    "fleet.epoch": {
        "sessions": _NUM,
        "active": _NUM,
        "completed": _NUM,
        "energy_j": _NUM,
        "goodput_mbps": _NUM,
    },
    # flow.engine — per-session completion records for the first few
    # sessions (a bounded sample; `conn` keys the trace source).
    "fleet.session": {
        "conn": _STR,
        "protocol": _STR,
        "bytes": _NUM,
        "energy_j": _NUM,
        "completed": _BOOL,
    },
}


def validate_event(event: Mapping[str, Any]) -> List[str]:
    """Schema problems with one event (empty list = valid)."""
    problems: List[str] = []
    etype = event.get("type")
    if not isinstance(etype, str):
        return [f"missing or non-string 'type': {etype!r}"]
    if not isinstance(event.get("t"), _NUM) or isinstance(event.get("t"), bool):
        problems.append(f"{etype}: missing or non-numeric 't'")
    fields = EVENT_SCHEMA.get(etype)
    if fields is None:
        return problems + [f"unknown event type {etype!r}"]
    for name, allowed in fields.items():
        value = event.get(name)
        if value is None and None.__class__ not in allowed:
            problems.append(f"{etype}: missing field {name!r}")
        elif not isinstance(value, allowed) or (
            bool not in allowed and isinstance(value, bool)
        ):
            problems.append(
                f"{etype}: field {name!r} has type {type(value).__name__}, "
                f"expected {'/'.join(t.__name__ for t in allowed)}"
            )
    return problems


def validate_events(events: Iterable[Mapping[str, Any]]) -> List[str]:
    """Schema problems across a sequence of events."""
    problems: List[str] = []
    for i, event in enumerate(events):
        for problem in validate_event(event):
            problems.append(f"event {i}: {problem}")
    return problems


def validate_trace_files(target: Union[str, Path]) -> Dict[str, List[str]]:
    """Validate every trace under ``target`` (file or directory).

    Returns ``{file: problems}`` for the files that failed; an empty
    dict means everything validated.
    """
    failures: Dict[str, List[str]] = {}
    for path in iter_trace_files(target):
        try:
            problems = validate_events(read_jsonl(path))
        except (OSError, ValueError) as exc:
            problems = [str(exc)]
        if problems:
            failures[str(path)] = problems
    return failures
