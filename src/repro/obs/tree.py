"""Cross-process span-tree assembly for ``trace tree``.

Takes one obs directory — lifecycle spans
(``<trace_id>.lifecycle.jsonl`` from the scheduler/service), per-run
event traces (``<hash>.trace.jsonl``), and profiler docs
(``<hash>.spans.json``) — and reassembles the single logical tree the
batch formed at runtime: batch root → per-job spans → queue-wait and
execution attempts, with each run's stamped exports attached to the
attempt that produced them.

Pure file-reading and formatting; no clock, no runtime imports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.dist import (
    LifecycleSpan,
    iter_lifecycle_files,
    read_lifecycle,
)

#: Profiler spans shown per execution node, by cumulative wall time.
TOP_PROFILE_SPANS = 3


@dataclass
class RunAnnotation:
    """What one run's stamped exports contribute to an exec span."""

    span_id: str
    trace_id: str
    events: int = 0
    trace_file: str = ""
    profile_top: List[Tuple[str, float]] = field(default_factory=list)


@dataclass
class SpanNode:
    """One lifecycle span plus its children and run annotations."""

    span: LifecycleSpan
    children: List["SpanNode"] = field(default_factory=list)
    annotation: Optional[RunAnnotation] = None


@dataclass
class TraceTree:
    """One trace's reassembled forest (normally a single root)."""

    trace_id: str
    roots: List[SpanNode] = field(default_factory=list)
    #: Spans whose parent id is unknown (broken topology — CHK701).
    orphans: List[SpanNode] = field(default_factory=list)
    span_count: int = 0


def _scan_run_annotations(
    target: Path,
) -> Dict[Tuple[str, str], RunAnnotation]:
    """``{(trace_id, span_id): annotation}`` from stamped run exports.

    Every line of a stamped ``.trace.jsonl`` carries the same stamp,
    so the first line identifies the file and the rest just count.
    Unstamped files (tracing predates the dist layer) are skipped.
    """
    out: Dict[Tuple[str, str], RunAnnotation] = {}
    if not target.is_dir():
        return out
    for path in sorted(target.glob("*.trace.jsonl")):
        first: Optional[Dict[str, Any]] = None
        events = 0
        try:
            with open(path, "r") as fh:
                for line in fh:
                    if not line.strip():
                        continue
                    events += 1
                    if first is None:
                        try:
                            doc = json.loads(line)
                        except ValueError:
                            break
                        if isinstance(doc, dict):
                            first = doc
        except OSError:
            continue
        if first is None:
            continue
        trace_id = str(first.get("trace_id", ""))
        span_id = str(first.get("span_id", ""))
        if not trace_id or not span_id:
            continue
        key = (trace_id, span_id)
        note = out.setdefault(
            key, RunAnnotation(span_id=span_id, trace_id=trace_id)
        )
        note.events = events
        note.trace_file = path.name
    for path in sorted(target.glob("*.spans.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if not isinstance(doc, dict):
            continue
        trace_id = str(doc.get("trace_id", ""))
        span_id = str(doc.get("span_id", ""))
        if not trace_id or not span_id:
            continue
        spans = doc.get("spans", [])
        top: List[Tuple[str, float]] = []
        if isinstance(spans, list):
            timed = [
                (str(s.get("path", "?")), float(s.get("wall_s", 0.0)))
                for s in spans
                if isinstance(s, dict)
            ]
            timed.sort(key=lambda pair: -pair[1])
            top = timed[:TOP_PROFILE_SPANS]
        note = out.setdefault(
            (trace_id, span_id),
            RunAnnotation(span_id=span_id, trace_id=trace_id),
        )
        note.profile_top = top
    return out


def load_trace_forest(
    target: Union[str, Path],
    trace_id: Optional[str] = None,
) -> List[TraceTree]:
    """Reassemble every trace under ``target`` (an obs directory or a
    single lifecycle file); ``trace_id`` filters by prefix."""
    target = Path(target)
    scan_dir = target if target.is_dir() else target.parent
    notes = _scan_run_annotations(scan_dir)
    trees: List[TraceTree] = []
    for path in iter_lifecycle_files(target):
        spans = read_lifecycle(path)
        if not spans:
            continue
        tid = spans[0].trace_id
        if trace_id is not None and not tid.startswith(trace_id):
            continue
        nodes = {
            span.span_id: SpanNode(
                span=span, annotation=notes.get((span.trace_id, span.span_id))
            )
            for span in spans
        }
        tree = TraceTree(trace_id=tid, span_count=len(nodes))
        for node in nodes.values():
            parent_id = node.span.parent_span_id
            if not parent_id:
                tree.roots.append(node)
            elif parent_id in nodes:
                nodes[parent_id].children.append(node)
            else:
                tree.orphans.append(node)
        for node in nodes.values():
            node.children.sort(key=lambda n: (n.span.start_t, n.span.name))
        tree.roots.sort(key=lambda n: (n.span.start_t, n.span.name))
        tree.orphans.sort(key=lambda n: (n.span.start_t, n.span.name))
        trees.append(tree)
    return trees


def _describe(node: SpanNode) -> str:
    span = node.span
    name = span.name
    attrs = span.attrs
    if name == "job.exec" and "attempt" in attrs:
        name = f"job.exec#{attrs['attempt']}"
    parts = [name, f"{span.duration_s:.3f}s"]
    if span.status != "ok":
        parts.append(span.status.upper())
    if name.startswith("job.exec"):
        worker = attrs.get("worker")
        shard = attrs.get("shard")
        if worker:
            parts.append(f"worker={worker}")
        if shard and shard != worker:
            parts.append(f"shard={shard}")
    elif span.name == "job":
        if attrs.get("label"):
            parts.append(str(attrs["label"]))
        if attrs.get("outcome"):
            parts.append(f"outcome={attrs['outcome']}")
        if attrs.get("attempts", 1) not in (1, None):
            parts.append(f"attempts={attrs['attempts']}")
        if attrs.get("worker") == "cache":
            parts.append("cache-hit")
        digest = str(attrs.get("hash", ""))
        if digest:
            parts.append(f"[{digest[:12]}]")
    elif span.name == "batch":
        if attrs.get("batch"):
            parts.append(str(attrs["batch"]))
        if attrs.get("jobs") is not None:
            parts.append(f"jobs={attrs['jobs']}")
    note = node.annotation
    if note is not None:
        if note.events:
            parts.append(f"· {note.events} events")
        for prof_path, wall_s in note.profile_top[:1]:
            parts.append(f"· hot: {prof_path} {wall_s:.3f}s")
    return " ".join(parts)


def _render(node: SpanNode, prefix: str, is_last: bool, out: List[str]) -> None:
    connector = "`-- " if is_last else "|-- "
    out.append(f"{prefix}{connector}{_describe(node)}")
    child_prefix = prefix + ("    " if is_last else "|   ")
    for index, child in enumerate(node.children):
        _render(child, child_prefix, index == len(node.children) - 1, out)


def format_trace_forest(trees: List[TraceTree]) -> str:
    """The ``trace tree`` report for every reassembled trace."""
    if not trees:
        return "no lifecycle traces found"
    out: List[str] = []
    for tree in trees:
        root_note = (
            "" if len(tree.roots) == 1
            else f" ({len(tree.roots)} roots — expected 1)"
        )
        out.append(
            f"trace {tree.trace_id} · {tree.span_count} spans{root_note}"
        )
        for index, root in enumerate(tree.roots):
            _render(root, "", index == len(tree.roots) - 1, out)
        if tree.orphans:
            out.append(f"  orphans ({len(tree.orphans)} spans with unknown "
                       "parents):")
            for orphan in tree.orphans:
                out.append(f"    ? {_describe(orphan)}")
        out.append("")
    return "\n".join(out).rstrip("\n") + "\n"


__all__ = [
    "RunAnnotation",
    "SpanNode",
    "TOP_PROFILE_SPANS",
    "TraceTree",
    "format_trace_forest",
    "load_trace_forest",
]
