"""Counters, gauges, and histograms for simulation runs.

A :class:`MetricsRegistry` is the cheap aggregate companion to the
event tracer: where the tracer answers "what happened, in order", the
registry answers "how much, in total" without storing per-event data.
Instruments are created on first use and identified by dotted names
(``controller.switches``, ``predictor.samples.wifi``); the whole
registry exports to a flat JSON-ready dict.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional


class Counter:
    """A monotonically increasing count (or sum, via ``inc(amount)``)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Summary of observed values: count/sum/min/max/mean/percentiles.

    Deliberately bucket-free: values are kept verbatim (a simulation
    run observes thousands of values, not millions) and percentiles
    are computed on demand from the sorted sequence, so the perf
    tables get exact p50/p90/p99 rather than bucket-boundary
    approximations.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_values", "_sorted")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._values: List[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self._sorted and self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> Optional[float]:
        """The ``p``-th percentile (0–100, linear interpolation between
        closest ranks); ``None`` for an empty histogram — an absent
        measurement, not a measured zero."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._values:
            return None
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        rank = (p / 100.0) * (len(self._values) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(self._values) - 1)
        frac = rank - lo
        return self._values[lo] * (1.0 - frac) + self._values[hi] * frac

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """A namespace of lazily created instruments."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            self._check_free(name)
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            self._check_free(name)
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            self._check_free(name)
            inst = self._histograms[name] = Histogram(name)
        return inst

    def _check_free(self, name: str) -> None:
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if name in table:
                raise ValueError(f"{name!r} is already registered as a {kind}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }
