"""Prometheus text exposition (format 0.0.4) over MetricsRegistry.

The live metrics plane serves ``GET /v1/metrics`` from the experiment
service; this module owns the wire format so the service stays a thin
adapter.  Only the subset of the exposition format we emit is
implemented: ``# HELP`` / ``# TYPE`` headers, counter/gauge samples,
and summaries (quantile-labelled samples plus ``_sum``/``_count``).
Output is deterministic — families sorted by name, label sets sorted
by label name — so a golden-file test can pin the format.

:func:`parse_prometheus` is the matching reader used by
``service top`` and the smoke tests; it handles exactly what
:func:`render_prometheus` writes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

#: Quantiles a histogram is summarized at.
SUMMARY_QUANTILES = (50.0, 90.0, 99.0)

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: One sample: (labels, value).
Sample = Tuple[Dict[str, str], float]


@dataclass
class MetricFamily:
    """One named metric with zero or more labelled samples."""

    name: str
    kind: str  # "counter" | "gauge" | "summary"
    help: str = ""
    samples: List[Sample] = field(default_factory=list)
    #: For summaries: the ``_sum`` / ``_count`` pair.
    sum_count: Optional[Tuple[float, float]] = None

    def add(self, value: float, **labels: str) -> "MetricFamily":
        self.samples.append((dict(labels), float(value)))
        return self


def sanitize_name(name: str) -> str:
    """A metric-safe name: dots and dashes become underscores."""
    return _NAME_OK.sub("_", name)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    parts = [
        f'{sanitize_name(key)}="{_escape_label(str(val))}"'
        for key, val in sorted(labels.items())
    ]
    return "{" + ",".join(parts) + "}"


def render_prometheus(families: List[MetricFamily]) -> str:
    """The exposition document; always ends with a newline."""
    lines: List[str] = []
    for fam in sorted(families, key=lambda f: f.name):
        name = sanitize_name(fam.name)
        help_text = fam.help or name.replace("_", " ")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {fam.kind}")
        for labels, value in sorted(
            fam.samples, key=lambda s: sorted(s[0].items())
        ):
            lines.append(
                f"{name}{_format_labels(labels)} {_format_value(value)}"
            )
        if fam.kind == "summary" and fam.sum_count is not None:
            total, count = fam.sum_count
            lines.append(f"{name}_sum {_format_value(total)}")
            lines.append(f"{name}_count {_format_value(count)}")
    return "\n".join(lines) + "\n"


def registry_families(
    registry: MetricsRegistry, prefix: str = "repro"
) -> List[MetricFamily]:
    """Families for every instrument in ``registry``.

    Counters gain the conventional ``_total`` suffix, histograms
    become summaries at :data:`SUMMARY_QUANTILES`.
    """
    doc = registry.to_dict()
    families: List[MetricFamily] = []
    for name, value in sorted(doc.get("counters", {}).items()):
        fam_name = f"{prefix}_{sanitize_name(name)}"
        if not fam_name.endswith("_total"):
            fam_name += "_total"
        families.append(
            MetricFamily(fam_name, "counter").add(float(value))
        )
    for name, value in sorted(doc.get("gauges", {}).items()):
        if value is None:
            continue
        families.append(
            MetricFamily(
                f"{prefix}_{sanitize_name(name)}", "gauge"
            ).add(float(value))
        )
    for name in sorted(doc.get("histograms", {})):
        hist = registry.histogram(name)
        if not hist.count:
            continue
        summary = hist.summary()
        fam = MetricFamily(
            f"{prefix}_{sanitize_name(name)}",
            "summary",
            sum_count=(float(summary["sum"]), float(summary["count"])),
        )
        for pct in SUMMARY_QUANTILES:
            value = hist.percentile(pct)
            if value is not None:
                fam.add(value, quantile=str(pct / 100.0))
        families.append(fam)
    return families


def parse_prometheus(text: str) -> Dict[str, List[Sample]]:
    """``{family_name: [(labels, value), ...]}`` for a document
    produced by :func:`render_prometheus`.  ``_sum``/``_count`` lines
    parse as their own names."""
    out: Dict[str, List[Sample]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        labels: Dict[str, str] = {}
        if "{" in line:
            name, rest = line.split("{", 1)
            body, tail = rest.rsplit("}", 1)
            value_text = tail.strip()
            for pair in re.findall(r'(\w+)="((?:[^"\\]|\\.)*)"', body):
                key, raw = pair
                labels[key] = (
                    raw.replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
        else:
            name, value_text = line.rsplit(None, 1)
        try:
            value = float(value_text)
        except ValueError:
            continue
        out.setdefault(name.strip(), []).append((labels, value))
    return out


__all__ = [
    "MetricFamily",
    "SUMMARY_QUANTILES",
    "Sample",
    "parse_prometheus",
    "registry_families",
    "render_prometheus",
    "sanitize_name",
]
