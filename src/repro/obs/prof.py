"""Deterministic hierarchical span profiler (``repro.obs.prof``).

Where the tracer answers "what happened" and the metrics registry
"how much", the profiler answers "where did the time go".  Components
hold a profiler reference obtained once at construction::

    self._prof = obs.profiler_or_none()     # None while disabled

and guard each instrumented region with the same ``is not None``
identity check the tracer uses, so an unprofiled run pays a single
pointer comparison per region and nothing else::

    prof = self._prof
    if prof is not None:
        with prof.span("engine.dispatch"):
            callback(*args)
    else:
        callback(*args)

Spans nest: a span opened while another is active becomes its child,
and statistics are aggregated per *path* (``sim.run/sim.dispatch/
control.decision``), not per instance.  Each node accumulates

* ``count`` — times the span was entered;
* ``wall_s`` — cumulative wall-clock seconds (non-deterministic);
* ``sim_s`` — cumulative *simulated* seconds, read from the clock a
  :class:`~repro.sim.engine.Simulator` binds at construction.  Sim
  time is a pure function of the event schedule, so this column is
  bit-identical across repeated runs — the deterministic half of every
  profile.

Self time is derived at export: a node's cumulative total minus the
sum of its direct children.  ``repro check``'s CHK6xx tier verifies
the resulting tree (children never exceed their parent; see
:mod:`repro.check.perf`).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Separator joining span names into a path key.
PATH_SEP = "/"

#: Spans nested deeper than this are still timed but collapse into
#: their ancestor at the limit, bounding the aggregate table for
#: pathological recursion.
MAX_DEPTH = 64


class _SpanContext:
    """Reusable ``with``-block adapter for one span name."""

    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: "Profiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_SpanContext":
        self._profiler.begin(self._name)
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        self._profiler.end()


class SpanStats:
    """Aggregated statistics for one span path."""

    __slots__ = ("path", "count", "wall_s", "sim_s", "first_sim_t")

    def __init__(self, path: Tuple[str, ...]):
        self.path = path
        self.count = 0
        self.wall_s = 0.0
        self.sim_s = 0.0
        #: Simulated time at which this path was first entered (None
        #: until entered with a bound clock) — lets ``trace timeline``
        #: place spans chronologically among traced events.
        self.first_sim_t: Optional[float] = None

    @property
    def name(self) -> str:
        return self.path[-1] if self.path else ""

    @property
    def depth(self) -> int:
        return len(self.path)


class Profiler:
    """Hierarchical span aggregator with an optional sim-time clock."""

    __slots__ = ("_stack", "_nodes", "clock")

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        #: (name, wall enter, sim enter) for each open span.
        self._stack: List[Tuple[str, float, float]] = []
        self._nodes: Dict[Tuple[str, ...], SpanStats] = {}
        #: Zero-argument callable returning current simulated seconds.
        #: The first :class:`~repro.sim.engine.Simulator` constructed
        #: inside a profiling capture binds itself here.
        self.clock = clock

    # ------------------------------------------------------------------
    # recording

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulation clock (first binding wins)."""
        if self.clock is None:
            self.clock = clock

    def span(self, name: str) -> _SpanContext:
        """A context manager timing one region under ``name``."""
        return _SpanContext(self, name)

    def begin(self, name: str) -> None:
        """Open a span (prefer :meth:`span` unless a ``with`` block
        cannot wrap the region)."""
        clock = self.clock
        sim_t = clock() if clock is not None else 0.0
        self._stack.append((name, time.perf_counter(), sim_t))

    def end(self) -> None:
        """Close the innermost open span."""
        if not self._stack:
            return
        name, wall_enter, sim_enter = self._stack.pop()
        path = tuple(frame[0] for frame in self._stack[:MAX_DEPTH - 1])
        path += (name,)
        node = self._nodes.get(path)
        if node is None:
            node = self._nodes[path] = SpanStats(path)
        node.count += 1
        node.wall_s += time.perf_counter() - wall_enter
        clock = self.clock
        if clock is not None:
            node.sim_s += clock() - sim_enter
            if node.first_sim_t is None:
                node.first_sim_t = sim_enter
        elif node.first_sim_t is None:
            node.first_sim_t = 0.0

    def unwind(self) -> None:
        """Close every span still open (a run that raised mid-span)."""
        while self._stack:
            self.end()

    # ------------------------------------------------------------------
    # queries / export

    @property
    def open_spans(self) -> int:
        """Number of spans currently on the stack."""
        return len(self._stack)

    def records(self) -> List[SpanStats]:
        """All aggregated nodes in tree (depth-first path) order."""
        return [self._nodes[path] for path in sorted(self._nodes)]

    def children_of(self, path: Tuple[str, ...]) -> List[SpanStats]:
        """Direct children of ``path`` (the roots for ``path == ()``)."""
        return [
            node
            for node in self.records()
            if node.depth == len(path) + 1 and node.path[: len(path)] == path
        ]

    def self_times(self, path: Tuple[str, ...]) -> Tuple[float, float]:
        """``(self wall, self sim)`` of a node: cumulative minus the
        direct children's cumulative."""
        node = self._nodes[path]
        child_wall = sum(c.wall_s for c in self.children_of(path))
        child_sim = sum(c.sim_s for c in self.children_of(path))
        return node.wall_s - child_wall, node.sim_s - child_sim

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready export (the ``*.spans.json`` payload)."""
        self.unwind()
        spans = []
        for node in self.records():
            self_wall, self_sim = self.self_times(node.path)
            spans.append(
                {
                    "path": PATH_SEP.join(node.path),
                    "name": node.name,
                    "depth": node.depth,
                    "count": node.count,
                    "wall_s": node.wall_s,
                    "sim_s": node.sim_s,
                    "self_wall_s": self_wall,
                    "self_sim_s": self_sim,
                    "first_sim_t": node.first_sim_t,
                }
            )
        return {"spans": spans, "clock_bound": self.clock is not None}


def format_span_table(profile: Dict[str, Any]) -> str:
    """Render a :meth:`Profiler.to_dict` export as a self/cumulative
    hot-path table, indented by span depth."""
    spans = profile.get("spans", [])
    if not spans:
        return "no spans recorded (was the profiled region ever entered?)"
    name_width = max(
        len("  " * (s["depth"] - 1) + s["name"]) for s in spans
    )
    name_width = max(name_width, len("span"))
    header = (
        f"{'span':<{name_width}}  {'count':>9}  "
        f"{'self ms':>10}  {'cum ms':>10}  {'self sim s':>10}  {'cum sim s':>10}"
    )
    lines = [header, "-" * len(header)]
    for s in spans:
        label = "  " * (s["depth"] - 1) + s["name"]
        lines.append(
            f"{label:<{name_width}}  {s['count']:>9d}  "
            f"{s['self_wall_s'] * 1e3:>10.2f}  {s['wall_s'] * 1e3:>10.2f}  "
            f"{s['self_sim_s']:>10.3f}  {s['sim_s']:>10.3f}"
        )
    return "\n".join(lines)


__all__ = [
    "MAX_DEPTH",
    "PATH_SEP",
    "Profiler",
    "SpanStats",
    "format_span_table",
]
