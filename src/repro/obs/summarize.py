"""Post-hoc aggregation of exported traces (CLI: ``trace summarize``).

Reads one ``*.trace.jsonl`` file or every one under a directory and
reduces the event stream to the quantities §4 of the paper reasons
about: how often the controller decided what (and how often it
switched), what the predictor saw versus what it forecast, when the
delayed-establishment triggers fired, how the MP_PRIO suspensions
landed, and how long the cellular radio dwelt in each RRC state.

Also home to the ``trace timeline`` view, which merges a run's trace
events with the spans of its sibling ``*.spans.json`` profile (when
the run was captured with ``--profile``) into one chronological,
sim-time-ordered listing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Union

from repro.obs.trace import iter_trace_files, read_jsonl


def summarize_events(events: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Reduce an event stream to a JSON-ready aggregate dict."""
    by_type: Dict[str, int] = {}
    decisions: Dict[str, int] = {}
    switches = 0
    samples: Dict[str, Dict[str, float]] = {}
    mp_prio = {"suspend": 0, "resume": 0}
    rrc_dwell: Dict[str, float] = {}
    rrc_transitions = 0
    triggers: Dict[str, int] = {}
    last_energy_j = None
    span = [None, None]

    for event in events:
        etype = event.get("type", "?")
        by_type[etype] = by_type.get(etype, 0) + 1
        t = event.get("t")
        if isinstance(t, (int, float)):
            span[0] = t if span[0] is None else min(span[0], t)
            span[1] = t if span[1] is None else max(span[1], t)
        if etype == "controller.decision":
            decisions[event["decision"]] = decisions.get(event["decision"], 0) + 1
            if event.get("switched"):
                switches += 1
        elif etype == "predictor.sample":
            stats = samples.setdefault(
                event["interface"],
                {"count": 0, "sample_sum": 0.0, "forecast_sum": 0.0,
                 "last_forecast_mbps": 0.0},
            )
            stats["count"] += 1
            stats["sample_sum"] += event["sample_mbps"]
            stats["forecast_sum"] += event["forecast_mbps"]
            stats["last_forecast_mbps"] = event["forecast_mbps"]
        elif etype == "mptcp.mp_prio":
            mp_prio["suspend" if event["low"] else "resume"] += 1
        elif etype == "rrc.transition":
            rrc_transitions += 1
            state = event["from"]
            rrc_dwell[state] = rrc_dwell.get(state, 0.0) + event["dwell_s"]
        elif etype == "delay.trigger":
            key = f"{event['trigger']}/{event['action']}"
            triggers[key] = triggers.get(key, 0) + 1
        elif etype == "energy.checkpoint":
            last_energy_j = event["total_j"]

    predictor = {
        iface: {
            "samples": int(s["count"]),
            "mean_sample_mbps": s["sample_sum"] / s["count"],
            "mean_forecast_mbps": s["forecast_sum"] / s["count"],
            "last_forecast_mbps": s["last_forecast_mbps"],
        }
        for iface, s in samples.items()
        if s["count"]
    }
    return {
        "events": sum(by_type.values()),
        "by_type": dict(sorted(by_type.items())),
        "span_s": (span[1] - span[0]) if span[0] is not None else 0.0,
        "controller": {"decisions": decisions, "switches": switches},
        "predictor": predictor,
        "mp_prio": mp_prio,
        "delay_triggers": dict(sorted(triggers.items())),
        "rrc": {
            "transitions": rrc_transitions,
            "dwell_s": dict(sorted(rrc_dwell.items())),
        },
        "final_energy_j": last_energy_j,
    }


def summarize_target(target: Union[str, Path]) -> Dict[str, Any]:
    """Aggregate every trace file under ``target`` (file or directory).

    Returns the combined summary plus a per-file event count so a
    multi-run directory stays attributable.
    """
    files = list(iter_trace_files(target))
    all_events: List[Mapping[str, Any]] = []
    per_file: Dict[str, int] = {}
    skipped: List[str] = []
    for path in files:
        # A zero-byte trace means the exporting run died before its
        # first flush; skip it with a warning instead of folding an
        # empty stream (or, worse, crashing) into the aggregate.
        try:
            if path.stat().st_size == 0:
                skipped.append(path.name)
                continue
        except OSError:
            skipped.append(path.name)
            continue
        events = read_jsonl(path)
        per_file[path.name] = len(events)
        all_events.extend(events)
    summary = summarize_events(all_events)
    summary["files"] = per_file
    summary["skipped"] = skipped
    return summary


def format_trace_summary(summary: Mapping[str, Any]) -> str:
    """Human-readable rendering of :func:`summarize_target` output."""
    lines: List[str] = []
    nfiles = len(summary.get("files", {}))
    lines.append(
        f"{summary['events']} events"
        + (f" across {nfiles} trace file(s)" if nfiles else "")
        + f", spanning {summary['span_s']:.1f}s of simulated time"
    )
    for name in summary.get("skipped", []):
        lines.append(f"warning: skipped empty trace file {name}")
    if summary["by_type"]:
        lines.append("event counts:")
        for etype, count in summary["by_type"].items():
            lines.append(f"  {etype:22s} {count}")
    ctrl = summary["controller"]
    if ctrl["decisions"]:
        parts = ", ".join(f"{k}={v}" for k, v in sorted(ctrl["decisions"].items()))
        lines.append(f"controller: {parts}; {ctrl['switches']} switch(es)")
    for iface, stats in sorted(summary["predictor"].items()):
        lines.append(
            f"predictor[{iface}]: {stats['samples']} samples, "
            f"mean {stats['mean_sample_mbps']:.2f} Mbps, "
            f"forecast mean {stats['mean_forecast_mbps']:.2f} / "
            f"last {stats['last_forecast_mbps']:.2f} Mbps"
        )
    prio = summary["mp_prio"]
    if prio["suspend"] or prio["resume"]:
        lines.append(
            f"MP_PRIO: {prio['suspend']} suspend(s), {prio['resume']} resume(s)"
        )
    if summary["delay_triggers"]:
        parts = ", ".join(
            f"{k}={v}" for k, v in summary["delay_triggers"].items()
        )
        lines.append(f"delayed establishment: {parts}")
    rrc = summary["rrc"]
    if rrc["transitions"]:
        dwell = ", ".join(
            f"{state}={secs:.2f}s" for state, secs in rrc["dwell_s"].items()
        )
        lines.append(f"RRC: {rrc['transitions']} transition(s); dwell {dwell}")
    if summary.get("final_energy_j") is not None:
        lines.append(f"final energy checkpoint: {summary['final_energy_j']:.2f} J")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# trace timeline: events + spans, chronologically


def spans_path_for(trace_path: Union[str, Path]) -> Path:
    """The sibling ``*.spans.json`` a profiled run exports next to its
    ``*.trace.jsonl`` (same stem, same directory)."""
    path = Path(trace_path)
    name = path.name
    if name.endswith(".trace.jsonl"):
        name = name[: -len(".trace.jsonl")]
    else:
        name = path.stem
    return path.with_name(f"{name}.spans.json")


def build_timeline(trace_path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Merge one run's trace events with its profile spans, ordered by
    simulated time.

    Each entry is ``{"t", "kind", "label", "detail"}`` where ``kind``
    is ``"event"`` or ``"span"``.  A span is placed at the sim time it
    was *first* entered and its detail carries the aggregate (count,
    cumulative wall/sim).  Runs captured without ``--profile`` simply
    yield an events-only timeline.
    """
    entries: List[Dict[str, Any]] = []
    for event in read_jsonl(trace_path):
        t = event.get("t")
        detail = ", ".join(
            f"{key}={event[key]}"
            for key in sorted(event)
            if key not in ("t", "type")
        )
        entries.append(
            {
                "t": float(t) if isinstance(t, (int, float)) else 0.0,
                "kind": "event",
                "label": str(event.get("type", "?")),
                "detail": detail,
            }
        )
    spans_file = spans_path_for(trace_path)
    if spans_file.is_file():
        try:
            profile = json.loads(spans_file.read_text())
        except ValueError:
            profile = {}
        for span in profile.get("spans", []):
            entries.append(
                {
                    "t": float(span.get("first_sim_t") or 0.0),
                    "kind": "span",
                    "label": str(span.get("path", "?")),
                    "detail": (
                        f"count={span.get('count', 0)}, "
                        f"cum wall={span.get('wall_s', 0.0) * 1e3:.2f}ms, "
                        f"cum sim={span.get('sim_s', 0.0):.3f}s"
                    ),
                }
            )
    # Stable sort: ties keep events before the spans they triggered
    # only by insertion order, which already lists events first.
    entries.sort(key=lambda entry: entry["t"])
    return entries


def format_timeline(entries: List[Dict[str, Any]]) -> str:
    """Human-readable rendering of :func:`build_timeline` output."""
    if not entries:
        return "empty timeline (no events, no spans)"
    label_width = min(40, max(len(e["label"]) for e in entries))
    lines = []
    for entry in entries:
        lines.append(
            f"t={entry['t']:>10.3f}s  {entry['kind']:<5}  "
            f"{entry['label']:<{label_width}}  {entry['detail']}"
        )
    n_spans = sum(1 for e in entries if e["kind"] == "span")
    lines.append(
        f"{len(entries) - n_spans} event(s), {n_spans} span path(s)"
    )
    return "\n".join(lines)
