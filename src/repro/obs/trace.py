"""The structured-event tracer.

A :class:`Tracer` is a ring buffer of timestamped, typed event dicts.
Components emit events only while a capture session is active (see
:mod:`repro.obs`); with no session the per-component tracer reference
is ``None`` and the hot paths pay a single identity check, nothing
more.

Events are plain dicts — ``{"t": <sim time>, "type": <event type>,
...fields}`` — so a trace exports losslessly to JSONL and back.  The
per-type field contracts live in :mod:`repro.obs.events`.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, Iterable, Iterator, List, Optional, Union

#: Default ring capacity.  A smoke-scale run emits a few thousand
#: events; paper-scale runs tens of thousands.  The ring bounds memory
#: for pathological cases (an instrumented infinite-duration run)
#: while keeping every event of a normal run.
DEFAULT_RING_SIZE = 200_000


class Tracer:
    """A ring-buffered recorder of structured simulation events."""

    def __init__(self, ring_size: int = DEFAULT_RING_SIZE):
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        self.ring_size = ring_size
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=ring_size)
        #: Total events emitted, including any the ring evicted.
        self.emitted = 0

    def emit(self, type: str, t: float, **fields: Any) -> None:
        """Record one event at simulation time ``t``."""
        event: Dict[str, Any] = {"t": float(t), "type": type}
        event.update(fields)
        self._ring.append(event)
        self.emitted += 1

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self._ring)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring (0 unless the run overflowed it)."""
        return self.emitted - len(self._ring)

    def events(self, type: Optional[str] = None) -> List[Dict[str, Any]]:
        """Buffered events, optionally filtered by event type."""
        if type is None:
            return list(self._ring)
        return [e for e in self._ring if e["type"] == type]

    def clear(self) -> None:
        """Drop every buffered event (the emitted counter is kept)."""
        self._ring.clear()

    def to_jsonl(
        self,
        path: Union[str, Path],
        extra: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Write the buffered events as one JSON object per line.

        ``extra`` fields (e.g. the distributed-trace
        ``trace_id``/``span_id`` stamp) are merged into every exported
        line without mutating the in-memory ring; the event schema
        permits extra fields, so stamped files still validate.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as fh:
            for event in self._ring:
                doc = {**event, **extra} if extra else event
                fh.write(json.dumps(doc, sort_keys=True) + "\n")
        return path


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a trace file back into event dicts.

    Raises ``ValueError`` on a malformed line so callers (the schema
    validator, ``trace summarize``) fail loudly rather than silently
    skipping corrupt data.
    """
    events: List[Dict[str, Any]] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: malformed JSON: {exc}") from exc
        if not isinstance(event, dict):
            raise ValueError(f"{path}:{lineno}: event is not an object")
        events.append(event)
    return events


def iter_trace_files(target: Union[str, Path]) -> Iterable[Path]:
    """Trace files under ``target`` (a ``*.trace.jsonl`` file or a dir)."""
    target = Path(target)
    if target.is_dir():
        return sorted(target.glob("*.trace.jsonl"))
    return [target]
