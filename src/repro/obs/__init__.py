"""repro.obs — structured tracing and metrics for simulation runs.

The observability layer has three pieces:

* :class:`~repro.obs.trace.Tracer` — a ring-buffered recorder of typed
  events (JSONL-exportable; schema in :mod:`repro.obs.events`);
* :class:`~repro.obs.metrics.MetricsRegistry` — counters / gauges /
  histograms for cheap aggregates;
* a process-ambient **capture session** that turns both on.

Instrumented components look the session up *once, at construction*::

    self._trace = obs.tracer_or_none()      # None while disabled

and guard every hot emission with a plain identity check, so a run
outside a capture session pays one ``is not None`` per decision point
and nothing else — no call, no allocation, no formatting.

Capturing a run::

    with obs.capture() as session:
        result = run_scenario("emptcp", scenario)
    session.tracer.to_jsonl("run.trace.jsonl")
    session.metrics.to_dict()

The parallel runtime (:mod:`repro.runtime.executor`) wraps every
executed :class:`~repro.runtime.spec.RunSpec` in its own session when
tracing is requested (CLI ``--trace`` / ``--metrics``) and files the
exports next to the run manifest, keyed by the spec's content hash.

Sessions are per-process and not thread-safe by design: simulation
runs are single-threaded, and the process pool gives each worker its
own ambient slot.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.prof import Profiler, SpanStats, format_span_table
from repro.obs.trace import DEFAULT_RING_SIZE, Tracer, iter_trace_files, read_jsonl
from repro.obs.events import (
    EVENT_SCHEMA,
    validate_event,
    validate_events,
    validate_trace_files,
)
from repro.obs.dist import (
    LifecycleSpan,
    SpanRecorder,
    TraceContext,
    derive_trace_id,
    root_context,
    span_id_for,
)

__all__ = [
    "Tracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Profiler",
    "SpanStats",
    "format_span_table",
    "ObsSession",
    "ObsOptions",
    "capture",
    "current",
    "tracer_or_none",
    "metrics_or_none",
    "profiler_or_none",
    "EVENT_SCHEMA",
    "validate_event",
    "validate_events",
    "validate_trace_files",
    "read_jsonl",
    "iter_trace_files",
    "DEFAULT_RING_SIZE",
    "LifecycleSpan",
    "SpanRecorder",
    "TraceContext",
    "derive_trace_id",
    "root_context",
    "span_id_for",
]


@dataclass
class ObsSession:
    """One active capture: a tracer, metrics registry, and/or profiler."""

    tracer: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None
    profiler: Optional[Profiler] = None


@dataclass(frozen=True)
class ObsOptions:
    """How the execution runtime should capture runs.

    ``dir`` is where per-run exports land (``<hash>.trace.jsonl`` /
    ``<hash>.metrics.json``); ``trace``/``metrics`` choose what is
    collected.  The dataclass is picklable so it crosses the process
    boundary to pool workers unchanged.
    """

    dir: str
    trace: bool = True
    metrics: bool = False
    profile: bool = False
    ring_size: int = DEFAULT_RING_SIZE

    @property
    def enabled(self) -> bool:
        return self.trace or self.metrics or self.profile

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dir": self.dir,
            "trace": self.trace,
            "metrics": self.metrics,
            "profile": self.profile,
            "ring_size": self.ring_size,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ObsOptions":
        return cls(
            dir=data["dir"],
            trace=bool(data.get("trace", True)),
            metrics=bool(data.get("metrics", False)),
            profile=bool(data.get("profile", False)),
            ring_size=int(data.get("ring_size", DEFAULT_RING_SIZE)),
        )


#: The process-ambient session; None means observability is off.
_current: Optional[ObsSession] = None


def current() -> Optional[ObsSession]:
    """The active capture session, if any."""
    return _current


def tracer_or_none() -> Optional[Tracer]:
    """The active tracer, or None when disabled.

    Components call this once at construction and keep the result, so
    a run started inside a capture session traces for its whole life
    while disabled runs carry no tracer at all.
    """
    return _current.tracer if _current is not None else None


def metrics_or_none() -> Optional[MetricsRegistry]:
    """The active metrics registry, or None when disabled."""
    return _current.metrics if _current is not None else None


def profiler_or_none() -> Optional[Profiler]:
    """The active span profiler, or None when disabled."""
    return _current.profiler if _current is not None else None


@contextmanager
def capture(
    trace: bool = True,
    metrics: bool = True,
    profile: bool = False,
    ring_size: int = DEFAULT_RING_SIZE,
) -> Iterator[ObsSession]:
    """Activate observability for the dynamic extent of the block.

    Nested captures shadow the outer session (components constructed
    inside see the innermost one) and restore it on exit.
    """
    global _current
    session = ObsSession(
        tracer=Tracer(ring_size) if trace else None,
        metrics=MetricsRegistry() if metrics else None,
        profiler=Profiler() if profile else None,
    )
    previous = _current
    _current = session
    try:
        yield session
    finally:
        _current = previous
