"""The web-browsing workload (§5.4).

The paper deploys a copy of CNN's home page — 107 web objects — and
fetches it the way the Android browser does: six parallel persistent
(MP)TCP connections.  We reproduce the object-count and the dispatch
discipline; object sizes are drawn from a seeded heavy-tailed
distribution with almost all objects under 256 KB (the property §5.4
leans on: small objects mean eMPTCP never opens the LTE subflow).

:class:`ObjectQueueSource` is a byte source with *object boundaries*:
a connection drains the current object, then goes idle until the
dispatcher (in :mod:`repro.experiments.web`) assigns the next one after
a request round-trip.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import List

from repro.errors import WorkloadError
from repro.units import kib

#: Number of objects on the paper's snapshot of the CNN home page.
CNN_OBJECT_COUNT = 107

#: Parallel connections the Android browser opens (§5.4).
BROWSER_CONNECTIONS = 6


@dataclass
class WebPage:
    """A page to download: a list of object sizes in bytes."""

    object_sizes: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.object_sizes:
            raise WorkloadError("page must have at least one object")
        if any(s <= 0 for s in self.object_sizes):
            raise WorkloadError("object sizes must be positive")

    @property
    def total_bytes(self) -> float:
        """Total page weight."""
        return sum(self.object_sizes)

    def __len__(self) -> int:
        return len(self.object_sizes)


def cnn_like_page(seed: int = 2014, n_objects: int = CNN_OBJECT_COUNT) -> WebPage:
    """A synthetic page shaped like the paper's CNN snapshot.

    Sizes follow a lognormal body (median ≈ 8 KB) with a few larger
    images, capped at 256 KB so that "almost all objects are small
    (<256 KB)" holds exactly as §5.4 states.
    """
    if n_objects < 1:
        raise WorkloadError("n_objects must be >= 1")
    rng = _random.Random(seed)
    sizes: List[float] = []
    for _ in range(n_objects):
        size = rng.lognormvariate(9.0, 1.3)  # median ~ e^9 ≈ 8.1 KB
        sizes.append(min(max(size, 200.0), kib(256) - 1))
    return WebPage(sizes)


class ObjectQueueSource:
    """A byte source fed one web object at a time.

    Unlike :class:`~repro.tcp.connection.FiniteSource`, exhaustion here
    is temporary: the dispatcher pushes the next object (after the
    request RTT) and wakes the connection with ``notify_data``.
    """

    #: Exhaustion is temporary — connection classes must not treat an
    #: empty queue as end-of-transfer (see MPTCPConnection._maybe_complete).
    final = False

    def __init__(self) -> None:
        self._current = 0.0
        self.total_taken = 0.0
        self.objects_pushed = 0

    def push(self, nbytes: float) -> None:
        """Queue the next object's bytes for transfer."""
        if nbytes <= 0:
            raise WorkloadError("object size must be positive")
        self._current += nbytes
        self.objects_pushed += 1

    def take(self, max_bytes: float) -> float:
        grant = max(0.0, min(max_bytes, self._current))
        self._current -= grant
        self.total_taken += grant
        return grant

    @property
    def remaining(self) -> float:
        """Bytes of the currently queued object(s) left to send."""
        return self._current

    @property
    def exhausted(self) -> bool:
        """True while waiting for the dispatcher's next object."""
        return self._current <= 0
