"""The mobility scenario (§4.5, Figure 11).

The paper walks a fixed indoor route for 250 seconds: the device starts
near the AP, leaves its usable range, and returns, so WiFi throughput
swings between full rate and (nearly) nothing while the association is
kept.  We model the route as timed waypoints in a 2-D floor plan,
derive the device-AP distance over time, map distance to WiFi rate with
a smooth indoor path-loss-flavoured falloff, and emit a piecewise
capacity trace for :class:`~repro.net.bandwidth.PiecewiseTraceCapacity`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import WorkloadError


@dataclass(frozen=True)
class Waypoint:
    """A timed position along the walking route (seconds, metres)."""

    time: float
    x: float
    y: float


class MobilityRoute:
    """Piecewise-linear movement through timed waypoints."""

    def __init__(self, waypoints: Sequence[Waypoint]):
        if len(waypoints) < 2:
            raise WorkloadError("route needs at least two waypoints")
        times = [w.time for w in waypoints]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise WorkloadError("waypoint times must be strictly increasing")
        self.waypoints = list(waypoints)

    @property
    def duration(self) -> float:
        """Time of the last waypoint."""
        return self.waypoints[-1].time

    def position(self, t: float) -> Tuple[float, float]:
        """Interpolated position at time ``t`` (clamped to the route)."""
        pts = self.waypoints
        if t <= pts[0].time:
            return pts[0].x, pts[0].y
        if t >= pts[-1].time:
            return pts[-1].x, pts[-1].y
        for a, b in zip(pts, pts[1:]):
            if a.time <= t <= b.time:
                frac = (t - a.time) / (b.time - a.time)
                return a.x + frac * (b.x - a.x), a.y + frac * (b.y - a.y)
        raise WorkloadError(f"time {t} not covered by route")  # pragma: no cover

    def distance_to(self, t: float, point: Tuple[float, float]) -> float:
        """Distance from the device to ``point`` at time ``t``."""
        x, y = self.position(t)
        return math.hypot(x - point[0], y - point[1])


def wifi_rate_at_distance(
    distance: float,
    max_rate: float,
    usable_range: float,
    floor_rate: float = 0.0,
) -> float:
    """Map device-AP distance to deliverable WiFi rate.

    Near the AP the rate is ~max; it rolls off smoothly and is
    essentially gone past the usable range (the red dashed circle of
    Figure 11) while the device may *stay associated* — which is
    exactly why "MPTCP with WiFi-First" fails in this scenario (§4.6).

        rate(d) = max_rate / (1 + (d / (0.8 range))^6) , floored.
    """
    if max_rate < 0 or usable_range <= 0:
        raise WorkloadError("max_rate must be >= 0 and usable_range positive")
    if distance < 0:
        raise WorkloadError("distance must be >= 0")
    knee = 0.8 * usable_range
    rate = max_rate / (1.0 + (distance / knee) ** 6)
    return max(floor_rate, rate)


def route_capacity_trace(
    route: MobilityRoute,
    ap_position: Tuple[float, float],
    max_rate: float,
    usable_range: float,
    step: float = 1.0,
    floor_rate: float = 0.0,
) -> List[Tuple[float, float]]:
    """Sample the route into a ``(time, rate)`` trace at ``step``
    seconds, suitable for :class:`PiecewiseTraceCapacity`."""
    if step <= 0:
        raise WorkloadError("step must be positive")
    trace: List[Tuple[float, float]] = []
    t = 0.0
    while t <= route.duration + 1e-9:
        d = route.distance_to(t, ap_position)
        trace.append((t, wifi_rate_at_distance(d, max_rate, usable_range, floor_rate)))
        t += step
    return trace


#: AP position for the default route (metres), mirroring Figure 11's
#: red square near one end of the corridor loop.
DEFAULT_AP_POSITION: Tuple[float, float] = (5.0, 5.0)

#: Estimated usable AP range, metres (the red dashed circle).
DEFAULT_USABLE_RANGE = 30.0


def default_route() -> MobilityRoute:
    """A 250-second corridor loop like Figure 11's.

    Starts near the AP (blue point), makes an early excursion out of
    usable range around t ≈ 25-40 s (as in Figure 12's trace), returns,
    wanders the in-range part of the floor, makes one more excursion,
    and ends back near the start.  The device is inside range *most of
    the time* — the property §4.5 leans on when explaining why TCP over
    WiFi has the best per-byte efficiency here.
    """
    return MobilityRoute(
        [
            Waypoint(0.0, 8.0, 5.0),
            Waypoint(20.0, 20.0, 8.0),
            Waypoint(35.0, 45.0, 12.0),  # first out-of-range excursion
            Waypoint(55.0, 55.0, 25.0),
            Waypoint(75.0, 30.0, 20.0),  # walking back toward range
            Waypoint(100.0, 12.0, 12.0),
            Waypoint(130.0, 8.0, 18.0),
            Waypoint(155.0, 22.0, 10.0),
            Waypoint(180.0, 48.0, 15.0),  # second excursion
            Waypoint(200.0, 56.0, 30.0),
            Waypoint(225.0, 25.0, 18.0),
            Waypoint(250.0, 8.0, 6.0),
        ]
    )
