"""Trace-driven capacity from CSV files.

Lets a user replay *their own* recorded link conditions: a two-column
CSV of ``time_s, mbps`` becomes a
:class:`~repro.net.bandwidth.PiecewiseTraceCapacity`.  This closes the
loop for anyone reproducing the paper against real measurements (e.g. a
`tc`-shaped testbed log or iperf samples).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import List, Sequence, Tuple, Union

from repro.errors import WorkloadError
from repro.net.bandwidth import PiecewiseTraceCapacity
from repro.units import bytes_per_sec_to_mbps, mbps_to_bytes_per_sec

TraceRows = List[Tuple[float, float]]


def parse_bandwidth_csv(text: str) -> TraceRows:
    """Parse ``time_s, mbps`` rows into a ``(time, bytes/s)`` trace.

    A header row is detected and skipped; blank lines and ``#``
    comments are ignored.  Times must be strictly increasing and rates
    non-negative.
    """
    rows: TraceRows = []
    reader = csv.reader(io.StringIO(text))
    for line_no, row in enumerate(reader, start=1):
        if not row or row[0].lstrip().startswith("#"):
            continue
        if len(row) < 2:
            raise WorkloadError(f"line {line_no}: expected 'time_s,mbps'")
        try:
            t = float(row[0])
            mbps = float(row[1])
        except ValueError:
            if line_no == 1:
                continue  # header
            raise WorkloadError(f"line {line_no}: non-numeric row {row!r}")
        if mbps < 0:
            raise WorkloadError(f"line {line_no}: negative rate {mbps}")
        rows.append((t, mbps_to_bytes_per_sec(mbps)))
    if not rows:
        raise WorkloadError("trace file contains no samples")
    times = [t for t, _ in rows]
    if any(b <= a for a, b in zip(times, times[1:])):
        raise WorkloadError("trace times must be strictly increasing")
    return rows


def load_bandwidth_trace(path: Union[str, Path]) -> TraceRows:
    """Read and parse a bandwidth CSV file."""
    return parse_bandwidth_csv(Path(path).read_text())


def capacity_from_csv(path: Union[str, Path]) -> PiecewiseTraceCapacity:
    """A capacity process replaying the CSV file's trace."""
    return PiecewiseTraceCapacity(load_bandwidth_trace(path))


def dump_bandwidth_csv(trace: Sequence[Tuple[float, float]]) -> str:
    """Serialise a ``(time, bytes/s)`` trace back to CSV (Mbps column),
    e.g. to export a generated mobility trace for external tools."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["time_s", "mbps"])
    for t, rate in trace:
        writer.writerow([f"{t:.3f}", f"{bytes_per_sec_to_mbps(rate):.4f}"])
    return out.getvalue()
