"""In-the-wild environment sampling (§5).

The paper collects traces at three client sites (a university building,
student housing behind Cisco Long-Reach Ethernet, and a residence on a
cable network) against three servers (WDC, AMS, SNG).  Network quality
varies per site and per run; categorising measured throughputs at
8 Mbps yields the four quadrants of Figure 14.

We reproduce the methodology: each sampled environment fixes a server
(hence WAN RTT) and draws WiFi/LTE bandwidths from per-site
distributions wide enough that all four categories occur, exactly as in
the paper's scatter (both axes spanning ~0-25 Mbps).
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import WorkloadError
from repro.net.host import WILD_SERVERS, Server


@dataclass(frozen=True)
class ClientSite:
    """One measurement location with its WiFi quality distribution."""

    name: str
    #: Lognormal parameters for WiFi throughput, Mbps.
    wifi_mu: float
    wifi_sigma: float
    #: Access-link RTT contribution of the WiFi side, seconds.
    wifi_access_rtt: float


#: The three client locations of §5.  Parameters chosen so campus WiFi
#: is usually good, Long-Reach Ethernet-fed housing is mediocre, and
#: the cable-fed residence is in between.
CLIENT_SITES: Dict[str, ClientSite] = {
    "campus": ClientSite("campus", wifi_mu=2.5, wifi_sigma=0.55, wifi_access_rtt=0.010),
    "longreach": ClientSite(
        "longreach", wifi_mu=1.3, wifi_sigma=0.75, wifi_access_rtt=0.018
    ),
    "residence": ClientSite(
        "residence", wifi_mu=2.0, wifi_sigma=0.65, wifi_access_rtt=0.014
    ),
}

#: LTE throughput distribution (shared carrier across sites), Mbps.
LTE_MU = 2.1
LTE_SIGMA = 0.75
LTE_ACCESS_RTT = 0.040

#: Clamp sampled throughputs into the paper's observed range (Fig 14).
MAX_MBPS = 25.0
MIN_MBPS = 0.3


@dataclass(frozen=True)
class WildEnvironment:
    """One sampled client-site/server combination."""

    site: ClientSite
    server: Server
    wifi_mbps: float
    lte_mbps: float

    @property
    def name(self) -> str:
        """Human-readable environment label."""
        return f"{self.site.name}->{self.server.name}"

    @property
    def wifi_rtt(self) -> float:
        """End-to-end WiFi-path RTT, seconds."""
        return self.site.wifi_access_rtt + self.server.internet_rtt

    @property
    def lte_rtt(self) -> float:
        """End-to-end LTE-path RTT, seconds."""
        return LTE_ACCESS_RTT + self.server.internet_rtt


def clamp_mbps(mbps: float) -> float:
    """Clamp a sampled throughput into the paper's observed range."""
    return max(MIN_MBPS, min(MAX_MBPS, mbps))


class WildSampler:
    """Deterministic sampler over sites, servers, and link qualities."""

    def __init__(self, seed: int = 185):
        self._rng = _random.Random(seed)
        self._sites = list(CLIENT_SITES.values())
        self._servers = list(WILD_SERVERS.values())

    def sample(self) -> WildEnvironment:
        """Draw one environment."""
        site = self._rng.choice(self._sites)
        server = self._rng.choice(self._servers)
        wifi = clamp_mbps(self._rng.lognormvariate(site.wifi_mu, site.wifi_sigma))
        lte = clamp_mbps(self._rng.lognormvariate(LTE_MU, LTE_SIGMA))
        return WildEnvironment(site=site, server=server, wifi_mbps=wifi, lte_mbps=lte)

    def environments(self, n: int) -> List[WildEnvironment]:
        """Draw ``n`` environments (deterministic given the seed)."""
        if n < 1:
            raise WorkloadError("n must be >= 1")
        return [self.sample() for _ in range(n)]


