"""Chunked video streaming — §7's "more statistically varied
application traffic" future-work item.

A :class:`VideoSession` mimics a DASH-style player: it fetches
fixed-duration media chunks into a playback buffer, starts playing once
a startup threshold is buffered, drains the buffer in real time, and
rebuffers (stalls) when it runs dry.  The fetch discipline is
buffer-driven: a new chunk is requested whenever the buffer is below
its target and no chunk is in flight — so unlike the paper's backlogged
downloads, the connection alternates between bursts and idleness,
exercising eMPTCP's idle detection and the cellular tail in a new way.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import WorkloadError
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.workloads.web import ObjectQueueSource

#: Playback clock granularity, seconds.
PLAYBACK_TICK = 0.25


class VideoSession:
    """A buffer-driven streaming client on top of one connection.

    Parameters
    ----------
    source:
        The connection's byte source; the session pushes chunk bytes
        into it and the connection drains them.
    notify_data:
        Callback waking the connection when a chunk is queued.
    media_seconds:
        Total length of the video.
    bitrate_bytes_per_sec:
        Media bitrate (a 2.5 Mbps stream is ~312 kB/s).
    chunk_seconds:
        Media duration per chunk (DASH segments are typically 2-10 s).
    startup_buffer / target_buffer:
        Playback starts at ``startup_buffer`` seconds of media;
        fetching pauses above ``target_buffer``.
    """

    def __init__(
        self,
        sim: Simulator,
        source: ObjectQueueSource,
        notify_data: Callable[[], None],
        media_seconds: float = 120.0,
        bitrate_bytes_per_sec: float = 312_500.0,
        chunk_seconds: float = 4.0,
        startup_buffer: float = 4.0,
        target_buffer: float = 16.0,
        request_rtt: float = 0.05,
    ):
        if media_seconds <= 0 or bitrate_bytes_per_sec <= 0 or chunk_seconds <= 0:
            raise WorkloadError("media parameters must be positive")
        if not 0 < startup_buffer <= target_buffer:
            raise WorkloadError("need 0 < startup_buffer <= target_buffer")
        self.sim = sim
        self.source = source
        self.notify_data = notify_data
        self.bitrate = bitrate_bytes_per_sec
        self.chunk_seconds = chunk_seconds
        self.chunk_bytes = bitrate_bytes_per_sec * chunk_seconds
        self.total_chunks = max(1, round(media_seconds / chunk_seconds))
        self.startup_buffer = startup_buffer
        self.target_buffer = target_buffer
        self.request_rtt = request_rtt

        self.buffer_seconds = 0.0
        self.playing = False
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.chunks_fetched = 0
        self.chunks_played = 0.0
        self.rebuffer_events = 0
        self.rebuffer_time = 0.0
        self.stall_log: List[float] = []
        self._chunk_in_flight = False
        self._delivered_for_chunk = 0.0
        self._stalled_since: Optional[float] = None
        self._clock = PeriodicProcess(sim, PLAYBACK_TICK, self._tick)

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin fetching and start the playback clock."""
        self._clock.start()
        self._request_next()

    def stop(self) -> None:
        """Stop the session (end of measurement window)."""
        self._clock.stop()
        self._note_stall_end()

    @property
    def done(self) -> bool:
        """True once the whole video has been played out."""
        return self.finished_at is not None

    @property
    def media_played(self) -> float:
        """Seconds of media played so far."""
        return self.chunks_played * self.chunk_seconds

    # ------------------------------------------------------------------
    # fetch side

    def _request_next(self) -> None:
        if self._chunk_in_flight or self.chunks_fetched >= self.total_chunks:
            return
        if self.buffer_seconds >= self.target_buffer:
            return
        self._chunk_in_flight = True
        self._delivered_for_chunk = 0.0
        self.sim.schedule(self.request_rtt, self._push_chunk)

    def _push_chunk(self) -> None:
        self.source.push(self.chunk_bytes)
        self.notify_data()

    def on_delivery(self, delivered: float) -> None:
        """Feed per-round delivered bytes from the connection."""
        if not self._chunk_in_flight:
            return
        self._delivered_for_chunk += delivered
        if self._delivered_for_chunk + 1e-6 >= self.chunk_bytes:
            self._chunk_in_flight = False
            self.chunks_fetched += 1
            self.buffer_seconds += self.chunk_seconds
            if not self.playing and self.buffer_seconds >= self.startup_buffer:
                self._start_playback()
            self._request_next()

    # ------------------------------------------------------------------
    # playback side

    def _start_playback(self) -> None:
        self.playing = True
        if self.started_at is None:
            self.started_at = self.sim.now
        self._note_stall_end()

    def _tick(self) -> None:
        if self.playing:
            play = min(PLAYBACK_TICK, self.buffer_seconds)
            self.buffer_seconds -= play
            self.chunks_played += play / self.chunk_seconds
            if self.media_played >= self.total_chunks * self.chunk_seconds - 1e-6:
                self.finished_at = self.sim.now
                self.stop()
                return
            if self.buffer_seconds <= 1e-9 and self.chunks_fetched < self.total_chunks:
                # Ran dry: stall until the startup threshold refills.
                self.playing = False
                self.rebuffer_events += 1
                self._stalled_since = self.sim.now
        self._request_next()

    def _note_stall_end(self) -> None:
        if self._stalled_since is not None:
            self.rebuffer_time += self.sim.now - self._stalled_since
            self._stalled_since = None
