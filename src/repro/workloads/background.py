"""Markov on-off UDP interferers (§4.4).

Each interfering node shares the WiFi channel with the device and
alternates between silent and transmitting states: a silent node turns
on with rate λ_on per second (exponential dwell with mean 1/λ_on) and a
transmitting node turns off with rate λ_off.  The paper fixes
λ_on = 0.05 and sweeps λ_off ∈ {0.025, 0.05} with n ∈ {2, 3} nodes.
"""

from __future__ import annotations

import random as _random
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.net.contention import WiFiChannel
from repro.sim.engine import Simulator
from repro.units import mbps_to_bytes_per_sec

#: Default per-node UDP offered load while transmitting, bytes/s.
DEFAULT_UDP_RATE = mbps_to_bytes_per_sec(3.0)


class OnOffUdpNode:
    """One interfering WiFi node with Markov on-off UDP traffic."""

    def __init__(
        self,
        sim: Simulator,
        lambda_on: float,
        lambda_off: float,
        rng: _random.Random,
        rate_bytes_per_sec: float = DEFAULT_UDP_RATE,
        start_on: bool = False,
        name: str = "interferer",
    ):
        if lambda_on <= 0 or lambda_off <= 0:
            raise ConfigurationError("lambda_on and lambda_off must be positive")
        if rate_bytes_per_sec <= 0:
            raise ConfigurationError("UDP rate must be positive")
        self.sim = sim
        self.lambda_on = lambda_on
        self.lambda_off = lambda_off
        self.rng = rng
        self.name = name
        self._rate = rate_bytes_per_sec
        self._on = start_on
        self.transitions = 0
        self._schedule_flip()

    @property
    def active(self) -> bool:
        """True while transmitting (occupying the channel)."""
        return self._on

    @property
    def rate(self) -> float:
        """Offered UDP load, bytes/s (0 while silent)."""
        return self._rate if self._on else 0.0

    def _schedule_flip(self) -> None:
        rate = self.lambda_off if self._on else self.lambda_on
        dwell = self.rng.expovariate(rate)
        self.sim.schedule(dwell, self._flip)

    def _flip(self) -> None:
        self._on = not self._on
        self.transitions += 1
        self._schedule_flip()


def make_interferers(
    sim: Simulator,
    channel: WiFiChannel,
    n: int,
    lambda_on: float,
    lambda_off: float,
    rng: _random.Random,
    rate_bytes_per_sec: Optional[float] = None,
) -> List[OnOffUdpNode]:
    """Create ``n`` interferers and attach them to the channel."""
    if n < 0:
        raise ConfigurationError("n must be >= 0")
    nodes: List[OnOffUdpNode] = []
    for i in range(n):
        node = OnOffUdpNode(
            sim,
            lambda_on,
            lambda_off,
            _random.Random(rng.getrandbits(64)),
            rate_bytes_per_sec=rate_bytes_per_sec or DEFAULT_UDP_RATE,
            name=f"interferer-{i}",
        )
        channel.add_interferer(node)
        nodes.append(node)
    return nodes
