"""Workload generators: file downloads, Markov on-off background
traffic, the mobility route, the multi-object web page, and the
in-the-wild environment sampler."""

from repro.workloads.background import OnOffUdpNode, make_interferers
from repro.workloads.mobility import (
    MobilityRoute,
    default_route,
    route_capacity_trace,
    wifi_rate_at_distance,
)
from repro.workloads.streaming import VideoSession
from repro.workloads.traces import (
    capacity_from_csv,
    dump_bandwidth_csv,
    load_bandwidth_trace,
    parse_bandwidth_csv,
)
from repro.workloads.web import ObjectQueueSource, WebPage, cnn_like_page
from repro.workloads.wild import WildEnvironment, WildSampler

__all__ = [
    "MobilityRoute",
    "ObjectQueueSource",
    "OnOffUdpNode",
    "VideoSession",
    "WebPage",
    "WildEnvironment",
    "WildSampler",
    "capacity_from_csv",
    "cnn_like_page",
    "default_route",
    "dump_bandwidth_csv",
    "load_bandwidth_trace",
    "make_interferers",
    "parse_bandwidth_csv",
    "route_capacity_trace",
    "wifi_rate_at_distance",
]
