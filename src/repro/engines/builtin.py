"""Registrations for the three built-in backends.

Each registration is declaration plus lazy-import closures: the heavy
backend modules (fluid runner, packet stack, numpy flow tier) load on
first *run*, not on first registry lookup, and the import direction
stays acyclic (``repro.engines`` never imports a backend at module
scope — the backends import ``repro.engines``).

The per-engine protocol tuples declared here are the single source of
truth: ``repro.experiments.protocols`` derives its legacy
``ENGINE_PROTOCOLS`` / ``PACKET_PROTOCOLS`` / ``FLOW_PROTOCOLS`` views
from these registrations, so the sets cannot drift apart again.
"""

from __future__ import annotations

from repro.engines.base import (
    DERIVED_FEATURES,
    FEATURE_BYTES,
    FEATURE_DURATION,
    FEATURE_UPLOAD,
    Engine,
)
from repro.engines.registry import register_engine

#: Protocols available at segment granularity and on the analytic
#: tier (both backends implement exactly the control-plane protocols).
_SEGMENT_PROTOCOLS = ("emptcp", "mptcp", "tcp-wifi")


def _fluid_run(protocol, scenario, seed):
    from repro.experiments.runner import run_fluid_scenario

    return run_fluid_scenario(protocol, scenario, seed)


def _fluid_compile(scenario, sim, streams):
    from repro.experiments.runner import build_paths

    return build_paths(sim, scenario, streams)


def _fluid_factory(protocol, **kwargs):
    from repro.experiments.protocols import _build_fluid_protocol

    return _build_fluid_protocol(protocol, **kwargs)


def _packet_run(protocol, scenario, seed):
    from repro.packet.runner import run_packet_scenario

    return run_packet_scenario(protocol, scenario, seed)


def _packet_compile(scenario, sim, streams):
    from repro.packet.runner import compile_packet_scenario

    return compile_packet_scenario(scenario, sim, streams)


def _packet_factory(protocol, **kwargs):
    from repro.experiments.protocols import _build_packet_protocol

    return _build_packet_protocol(protocol, **kwargs)


def _flow_run(protocol, scenario, seed):
    from repro.flow.single import run_flow_scenario

    return run_flow_scenario(protocol, scenario, seed)


def _flow_compile(scenario, sim, streams):
    from repro.flow.single import compile_flow_scenario

    return compile_flow_scenario(scenario, sim, streams)


def register_builtin_engines() -> None:
    """Register fluid, packet, and flow (idempotent via ``replace``)."""
    from repro.experiments.protocols import PROTOCOLS

    register_engine(
        Engine(
            name="fluid",
            protocols=PROTOCOLS,
            features=DERIVED_FEATURES,
            run=_fluid_run,
            compile=_fluid_compile,
            obs_fidelity="full",
            protocol_factory=_fluid_factory,
            description="rate-based reference model (§4/§5 results)",
        ),
        replace=True,
    )
    register_engine(
        Engine(
            name="packet",
            protocols=_SEGMENT_PROTOCOLS,
            features=frozenset(
                {FEATURE_UPLOAD, FEATURE_DURATION, FEATURE_BYTES}
            ),
            run=_packet_run,
            compile=_packet_compile,
            obs_fidelity="full",
            protocol_factory=_packet_factory,
            # Plain MPTCP is deliberately excluded from agreement: its
            # aggregate completion time is dominated by scheduler and
            # coupling details the engines model differently (see
            # EXPERIMENTS.md).
            agreement_protocols=("tcp-wifi", "emptcp"),
            description="segment-granularity validation substrate",
        ),
        replace=True,
    )
    register_engine(
        Engine(
            name="flow",
            protocols=_SEGMENT_PROTOCOLS,
            features=frozenset(
                {FEATURE_UPLOAD, FEATURE_DURATION, FEATURE_BYTES}
            ),
            run=_flow_run,
            compile=_flow_compile,
            obs_fidelity="sampled",
            # The vectorized tier has no per-connection objects, so
            # build_protocol refuses flow with a pointer to
            # run_scenario(..., engine="flow").
            protocol_factory=None,
            agreement_protocols=("tcp-wifi", "mptcp", "emptcp"),
            description="analytic vectorized tier (population scale)",
        ),
        replace=True,
    )
