"""The engine registry: the one place a backend is declared.

Mirrors the scenario-builder registry in :mod:`repro.runtime.spec`:
built-in engines are registered lazily on first lookup, tests may
register (and unregister) extra engines, and every consumer — the
runner, the CLI, CHK243, the agreement-spec enumeration — reads the
live registry rather than a hand-maintained tuple.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.engines.base import Engine
from repro.errors import ConfigurationError

_ENGINES: Dict[str, Engine] = {}
_builtins_loaded = False


def load_default_engines() -> None:
    """Register the built-in backends (idempotent)."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    from repro.engines import builtin

    builtin.register_builtin_engines()


def register_engine(engine: Engine, replace: bool = False) -> Engine:
    """Add an engine to the registry; returns it for chaining."""
    load_default_engines()
    if engine.name in _ENGINES and not replace:
        raise ConfigurationError(
            f"engine {engine.name!r} is already registered; "
            "pass replace=True to override"
        )
    _ENGINES[engine.name] = engine
    return engine


def unregister_engine(name: str) -> None:
    """Remove an engine (test cleanup); unknown names are a no-op."""
    _ENGINES.pop(name, None)


def engine_names() -> Tuple[str, ...]:
    """Registered engine names, the default engine first."""
    load_default_engines()
    from repro.engines.base import DEFAULT_ENGINE

    names = sorted(_ENGINES)
    if DEFAULT_ENGINE in names:
        names.remove(DEFAULT_ENGINE)
        names.insert(0, DEFAULT_ENGINE)
    return tuple(names)


def registered_engines() -> Dict[str, Engine]:
    """A snapshot of the registry (name -> :class:`Engine`)."""
    load_default_engines()
    return dict(_ENGINES)


def get_engine(name: str) -> Engine:
    """Look an engine up, or refuse with the canonical unknown-engine
    error (the same text the CLI and CHK243 surface)."""
    load_default_engines()
    try:
        return _ENGINES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {name!r}; choose one of "
            f"{', '.join(engine_names())}"
        ) from None
