"""The scenario compiler: one :class:`Scenario`, lowered per backend.

``required_features`` derives what a scenario actually asks for —
interferers, upload direction, duration-vs-bytes workload — and the
capability check compares that against the engine's declared feature
set.  Rejections happen *here*, with one canonical message, at Tier-2
verify time (CHK243, before any pool dispatch) and again defensively
at the top of each backend's lowering; the three diverging runtime
guards this replaces (``Scenario.packet_links``, ``flow/single.py``,
``check/config.py``) are gone.

``compile_scenario`` then hands the scenario to the engine's
registered ``compile`` hook: fluid paths, ``PacketLink`` pairs, or
flow state arrays — the runner never needs to know which.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Optional, Union

from repro.engines.base import (
    FEATURE_BYTES,
    FEATURE_DURATION,
    FEATURE_INTERFERERS,
    FEATURE_UPLOAD,
    Engine,
)
from repro.engines.registry import get_engine, registered_engines
from repro.errors import ConfigurationError

EngineRef = Union[str, Engine]


def _resolve(engine: EngineRef) -> Engine:
    return engine if isinstance(engine, Engine) else get_engine(engine)


def required_features(scenario: Any) -> FrozenSet[str]:
    """The features a built scenario needs from its engine.

    Duck-typed on the :class:`~repro.experiments.scenario.Scenario`
    fields so custom scenario-like objects participate: missing
    attributes simply contribute nothing.
    """
    needed = set()
    if getattr(scenario, "interferers", None) is not None:
        needed.add(FEATURE_INTERFERERS)
    direction = getattr(scenario, "direction", None)
    if direction is not None and getattr(direction, "value", direction) != "down":
        needed.add(FEATURE_UPLOAD)
    if getattr(scenario, "duration", None) is not None:
        needed.add(FEATURE_DURATION)
    elif getattr(scenario, "download_bytes", None) is not None:
        needed.add(FEATURE_BYTES)
    return frozenset(needed)


def unsupported_features(engine: EngineRef, scenario: Any) -> FrozenSet[str]:
    """The scenario features this engine does not model (empty = runnable)."""
    return _resolve(engine).missing_features(required_features(scenario))


def capability_error(engine: EngineRef, scenario: Any) -> Optional[str]:
    """The canonical capability-rejection message, or None if the
    engine supports everything the scenario needs.

    Every layer that refuses a (scenario, engine) pairing — CHK243,
    the runner, each backend's lowering — formats it here, so the
    message can never drift between copies again.
    """
    eng = _resolve(engine)
    missing = eng.missing_features(required_features(scenario))
    if not missing:
        return None
    name = getattr(scenario, "name", "<unnamed>")
    able = sorted(
        other.name
        for other in registered_engines().values()
        if not other.missing_features(frozenset(missing))
    )
    return (
        f"scenario {name!r} needs {', '.join(sorted(missing))}, which the "
        f"{eng.name!r} engine does not model; engines that do: "
        f"{', '.join(able) if able else 'none registered'}"
    )


def protocol_error(engine: EngineRef, protocol: str) -> Optional[str]:
    """The canonical unsupported-protocol message, or None if fine."""
    eng = _resolve(engine)
    if eng.supports_protocol(protocol):
        return None
    return (
        f"protocol {protocol!r} is not supported by the {eng.name!r} "
        f"engine (supported: {', '.join(eng.protocols)})"
    )


def ensure_supported(engine: EngineRef, scenario: Any) -> Engine:
    """Raise the canonical error unless the engine models everything
    the scenario needs; returns the resolved engine."""
    eng = _resolve(engine)
    message = capability_error(eng, scenario)
    if message is not None:
        raise ConfigurationError(message)
    return eng


def validate_run(
    engine: EngineRef, protocol: str, scenario: Any
) -> Engine:
    """Full pre-run gate: engine exists, supports the protocol, and
    models the scenario's features.  Raises
    :class:`~repro.errors.ConfigurationError` with the canonical
    message; returns the resolved engine on success."""
    eng = _resolve(engine)
    message = protocol_error(eng, protocol)
    if message is not None:
        raise ConfigurationError(message)
    return ensure_supported(eng, scenario)


def compile_scenario(
    engine: EngineRef, scenario: Any, sim: Any, streams: Any
) -> Any:
    """Lower one scenario to the engine's native substrate.

    Checks capabilities first, then delegates to the registered
    ``compile`` hook — fluid ``(wifi_path, cell_path, channel)``,
    packet ``(wifi_link, cell_link)``, or flow
    ``(state, wifi_cap, cell_cap)``.
    """
    eng = ensure_supported(engine, scenario)
    return eng.compile(scenario, sim, streams)
