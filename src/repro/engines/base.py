"""The :class:`Engine` capability record — the contract every backend
declares once, instead of smearing engine knowledge across the
experiment layer.

An engine says what it *is* (name, description, observability
fidelity), what it can *run* (supported protocols), and which scenario
features it *models* (WiFi interferers, upload direction, duration-
vs-bytes workloads, per-carrier cellular profiles).  Everything that
used to special-case ``if engine == "packet"`` — the runner dispatch,
the CLI's ``--engine`` validation, CHK243's pre-dispatch gate, the
CHK5xx agreement-spec enumeration, ``build_protocol``'s error text —
now reads this record from the registry, so a new backend is one
registration, not five edits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, FrozenSet, Optional, Tuple

from repro.errors import ConfigurationError

#: The engine experiments run on unless told otherwise, and the
#: reference side of every CHK5xx cross-engine agreement pair.
DEFAULT_ENGINE = "fluid"

# -- scenario features ------------------------------------------------------
#
# A feature names something a Scenario can ask for that not every
# backend models.  The compiler derives the *required* set from a built
# scenario (see :func:`repro.engines.compiler.required_features`) and
# refuses the run at verify time when the engine's declared set does
# not cover it.

#: Markov on-off contenders on the WiFi channel (§4.4).
FEATURE_INTERFERERS = "interferers"
#: Upload direction (transmit-slope energy, direction-specific EIB).
FEATURE_UPLOAD = "upload"
#: Fixed measurement window instead of a finite transfer (§4.5).
FEATURE_DURATION = "duration"
#: Finite download of a known size (§4.2/§4.3 and the wild runs).
FEATURE_BYTES = "bytes"
#: Distinct capacity/power profiles per cellular carrier (future work;
#: reserved so dual-LTE scenarios become one registration).
FEATURE_PER_CARRIER = "per-carrier-profiles"

#: Every feature an engine may declare.
ALL_FEATURES = frozenset(
    {
        FEATURE_INTERFERERS,
        FEATURE_UPLOAD,
        FEATURE_DURATION,
        FEATURE_BYTES,
        FEATURE_PER_CARRIER,
    }
)

#: The subset :func:`~repro.engines.compiler.required_features` can
#: currently derive from a built :class:`Scenario`.  An engine that
#: declares all of these never needs its scenarios built at verify
#: time — nothing derivable could be unsupported.
DERIVED_FEATURES = frozenset(
    {FEATURE_INTERFERERS, FEATURE_UPLOAD, FEATURE_DURATION, FEATURE_BYTES}
)

#: ``run(protocol, scenario, seed) -> RunResult``.
RunFn = Callable[[str, Any, int], Any]
#: ``compile(scenario, sim, streams) -> backend-specific lowering``.
CompileFn = Callable[[Any, Any, Any], Any]


@dataclass(frozen=True)
class Engine:
    """One transport backend, by declaration.

    ``run`` executes a single (protocol, scenario, seed) and returns
    the standard :class:`~repro.experiments.scenario.RunResult`;
    ``compile`` lowers a :class:`~repro.experiments.scenario.Scenario`
    to whatever the backend consumes (fluid ``NetworkPath`` pairs,
    ``PacketLink`` pairs, flow state arrays).  Both are plain callables
    so registrations can defer heavy imports inside closures.
    """

    name: str
    #: Protocols this backend can run (``build_protocol``'s and the
    #: CLI's validation source).
    protocols: Tuple[str, ...]
    #: Scenario features this backend models (⊆ :data:`ALL_FEATURES`).
    features: FrozenSet[str]
    run: RunFn
    compile: CompileFn
    #: "full" = per-event obs stream; "sampled" = periodic snapshots.
    obs_fidelity: str = "full"
    #: Per-connection constructor for ``build_protocol``; None means
    #: the backend has no per-connection objects (the vectorized flow
    #: tier) and ``build_protocol`` must refuse with a pointer to
    #: ``run_scenario``.
    protocol_factory: Optional[Callable[..., Any]] = None
    #: Protocols whose fluid-vs-this agreement is checked by CHK5xx.
    #: Empty for the reference engine itself (nothing to compare).
    agreement_protocols: Tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("an Engine needs a non-empty name")
        if not self.protocols:
            raise ConfigurationError(
                f"engine {self.name!r} declares no protocols"
            )
        unknown = frozenset(self.features) - ALL_FEATURES
        if unknown:
            raise ConfigurationError(
                f"engine {self.name!r} declares unknown features: "
                f"{', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(ALL_FEATURES))})"
            )
        stray = set(self.agreement_protocols) - set(self.protocols)
        if stray:
            raise ConfigurationError(
                f"engine {self.name!r} lists agreement protocols it does "
                f"not support: {', '.join(sorted(stray))}"
            )

    def supports_protocol(self, protocol: str) -> bool:
        return protocol in self.protocols

    def missing_features(self, required: FrozenSet[str]) -> FrozenSet[str]:
        """The subset of ``required`` this engine does not model."""
        return frozenset(required) - self.features
